"""Fast-path execution engine: pre-compiled kernels ≡ the interpreted path.

The simulator and the reference VM each grow a specialization layer
(stage kernels / a jump-threaded dispatch table). These tests pin the
central contract: with ``fast`` on or off, every observable — XDP
actions, packet bytes, map state, and *cycle counts* — is identical.
"""

import pytest

from repro.apps import dnat, firewall, router, suricata, toy_counter, tunnel
from repro.core import compile_program
from repro.ebpf.asm import assemble_program
from repro.ebpf.isa import MapSpec
from repro.ebpf.maps import MapSet
from repro.ebpf.vm import Vm
from repro.ebpf.xdp import XdpAction
from repro.hwsim import PipelineSimulator, SimOptions
from repro.hwsim.multi import MultiProgramNic
from repro.net.packet import FiveTuple, ipv4, mac, udp_packet

MAPS = {"m": MapSpec("m", "array", 4, 8, 4)}
PKT = bytes(range(64))

RMW = """
    r2 = 0
    *(u32 *)(r10 - 4) = r2
    r1 = map[m]
    r2 = r10
    r2 += -4
    call 1
    if r0 == 0 goto out
    r2 = *(u64 *)(r0 + 0)
    r2 += 1
    *(u64 *)(r0 + 0) = r2
out:
    r0 = 2
    exit
"""

F1 = FiveTuple(ipv4("10.0.0.1"), ipv4("192.168.0.1"), 17, 1000, 53)


def run_both(program, frames, setup=None, gap=1, keep_records=True):
    """Run frames through the pipeline with fast on and off; assert every
    observable matches and return the (fast, interpreted) reports."""
    pipeline = compile_program(program)
    reports = []
    map_sets = []
    for fast in (True, False):
        maps = MapSet(program.maps)
        if setup is not None:
            setup(maps)
        sim = PipelineSimulator(
            pipeline, maps=maps,
            options=SimOptions(fast=fast, keep_records=keep_records),
        )
        reports.append(sim.run_packets(list(frames), gap=gap))
        map_sets.append(maps)

    fast_rep, slow_rep = reports
    assert fast_rep.cycles == slow_rep.cycles
    assert fast_rep.action_counts == slow_rep.action_counts
    assert fast_rep.flush_events == slow_rep.flush_events
    assert fast_rep.squashed_packets == slow_rep.squashed_packets
    assert fast_rep.stall_cycles == slow_rep.stall_cycles
    assert fast_rep.sum_total_cycles == slow_rep.sum_total_cycles
    assert fast_rep.sum_pipeline_cycles == slow_rep.sum_pipeline_cycles
    assert fast_rep.sum_restarts == slow_rep.sum_restarts
    if keep_records:
        assert len(fast_rep.records) == len(slow_rep.records)
        for a, b in zip(fast_rep.records, slow_rep.records):
            assert (a.pid, a.action, a.data) == (b.pid, b.action, b.data)
            assert a.exit_cycle == b.exit_cycle
            assert a.restarts == b.restarts
    for fd in program.maps:
        assert bytes(map_sets[0][fd].storage) == bytes(map_sets[1][fd].storage)
    return fast_rep, slow_rep


class TestAppParity:
    def test_toy_counter(self):
        frames = [toy_counter.packet_for_key(k % 4) for k in range(24)]
        frames.append(b"\x00" * 10)  # short packet -> implicit drop path
        run_both(toy_counter.build(), frames)

    def test_firewall(self):
        frames = []
        for ft in (F1, F1.reversed(), FiveTuple(1, 2, 17, 3, 4)):
            frames.append(udp_packet(src_ip=ft.src_ip, dst_ip=ft.dst_ip,
                                     sport=ft.sport, dport=ft.dport))
        run_both(firewall.build(), frames * 10,
                 setup=lambda m: firewall.allow_flow(m, F1))

    @pytest.mark.parametrize("use_atomic", [True, False])
    def test_router(self, use_atomic):
        def setup(maps):
            router.add_route(maps, ipv4("192.168.1.1"),
                             mac("02:00:00:00:01:01"),
                             mac("02:00:00:00:01:02"), 3)
        frames = [
            udp_packet(dst_ip="192.168.1.200", size=64),
            udp_packet(dst_ip="8.8.8.8", size=64),
            udp_packet(dst_ip="192.168.1.4", size=64, ttl=1),
        ] * 10
        run_both(router.build(use_atomic), frames, setup=setup)
        if not use_atomic:
            # back-to-back routed packets share the stats slot: the RAW
            # hazard fires flushes, and parity must hold through them
            storm = [udp_packet(dst_ip="192.168.1.200", size=64)] * 30
            fast_rep, _ = run_both(router.build(False), storm, setup=setup)
            assert fast_rep.flush_events > 0

    def test_tunnel(self):
        def setup(maps):
            tunnel.add_tunnel(maps, ipv4("10.0.0.9"), ipv4("172.16.0.1"),
                              ipv4("172.16.0.2"),
                              mac("02:00:00:00:02:01"),
                              mac("02:00:00:00:02:02"))
        frames = [udp_packet(dst_ip="10.0.0.9", size=96),
                  udp_packet(dst_ip="10.9.9.9", size=96)] * 8
        run_both(tunnel.build(), frames, setup=setup)

    def test_suricata(self):
        frames = [udp_packet(src_ip=F1.src_ip, dst_ip=F1.dst_ip,
                             sport=F1.sport, dport=F1.dport)] * 12
        run_both(suricata.build(), frames,
                 setup=lambda m: suricata.add_bypass(m, F1))

    def test_dnat(self):
        frames = [udp_packet(src_ip=f"10.1.0.{i}", dst_ip="10.0.0.80",
                             sport=5000 + i, dport=80) for i in range(6)] * 3
        run_both(dnat.build(), frames)


class TestHazardParity:
    def test_rmw_flush_storm(self):
        prog = assemble_program(RMW, maps=MAPS)
        fast_rep, _ = run_both(prog, [PKT] * 40)
        assert fast_rep.flush_events > 0

    def test_rmw_spaced_no_flush(self):
        prog = assemble_program(RMW, maps=MAPS)
        fast_rep, _ = run_both(prog, [PKT] * 10, gap=40)
        assert fast_rep.flush_events == 0

    def test_atomic_counter(self):
        source = """
            r2 = 0
            *(u32 *)(r10 - 4) = r2
            r1 = map[m]
            r2 = r10
            r2 += -4
            call 1
            if r0 == 0 goto out
            r2 = 1
            lock *(u64 *)(r0 + 0) += r2
        out:
            r0 = 2
            exit
        """
        prog = assemble_program(source, maps=MAPS)
        fast_rep, _ = run_both(prog, [PKT] * 40)
        assert fast_rep.flush_events == 0

    def test_keep_records_false_aggregates(self):
        prog = assemble_program(RMW, maps=MAPS)
        run_both(prog, [PKT] * 40, keep_records=False)


class TestSnapshotRoundTrip:
    """_InFlight snapshot/restore under the fast path, with pending WAR
    writes in flight at snapshot time."""

    def _packet(self, pid=0):
        from repro.hwsim.sim import _InFlight
        return _InFlight(pid, PKT, arrival_cycle=0)

    def test_round_trip_restores_everything(self):
        pkt = self._packet()
        pkt.regs[3] = 0xDEAD
        pkt.stack[0:4] = b"\x01\x02\x03\x04"
        pkt.ctx.packet[5] = 0x7F
        pkt.enabled = {2, 5}
        pkt.pending_writes = [(1, 0, b"\x11" * 8, 4)]
        pkt.value_reads = {1: {0}}
        pkt.addr_reads = {1: [(bytes(4), 0)]}
        pkt.take_snapshot(stage=4)

        # mutate past the snapshot
        pkt.regs[3] = 0
        pkt.stack[0:4] = bytes(4)
        pkt.ctx.packet[5] = 0
        pkt.enabled = {9}
        pkt.pending_writes.append((1, 8, b"\x22" * 8, 7))
        pkt.value_reads[1].add(1)
        pkt.take_snapshot(stage=9)

        assert len(pkt.snapshots) == 2
        stage = pkt.restore_snapshot(pkt.snapshots[0])
        assert stage == 4
        assert pkt.regs[3] == 0xDEAD
        assert bytes(pkt.stack[0:4]) == b"\x01\x02\x03\x04"
        assert pkt.ctx.packet[5] == 0x7F
        assert pkt.enabled == {2, 5}
        assert pkt.pending_writes == [(1, 0, b"\x11" * 8, 4)]
        assert pkt.value_reads == {1: {0}}
        # later snapshots are squashed
        assert [s.stage for s in pkt.snapshots] == [4]

    def test_snapshot_isolated_from_later_mutation(self):
        pkt = self._packet()
        pkt.pending_writes = [(1, 0, b"\x11" * 8, 4)]
        pkt.take_snapshot(stage=2)
        # in-place mutation after the snapshot must not leak into it
        pkt.pending_writes.append((1, 8, b"\x33" * 8, 5))
        pkt.regs[1] = 77
        snap = pkt.snapshots[0]
        assert snap.pending_writes == [(1, 0, b"\x11" * 8, 4)]
        assert snap.regs[1] != 77 or pkt.regs[1] == snap.regs[1] == 77

    def test_war_write_survives_flush_restart(self):
        # end-to-end: a WAR-buffered store flushed mid-pipeline must
        # replay exactly once under the fast path (counter stays exact)
        prog = assemble_program(RMW, maps=MAPS)
        pipeline = compile_program(prog)
        maps = MapSet(prog.maps)
        sim = PipelineSimulator(pipeline, maps=maps,
                                options=SimOptions(fast=True))
        rep = sim.run_packets([PKT] * 40)
        assert rep.flush_events > 0
        value = int.from_bytes(maps.by_name("m").lookup(bytes(4)), "little")
        assert value == 40


class TestVmFastPath:
    def _run(self, program, frames, fast, setup=None):
        maps = MapSet(program.maps)
        if setup is not None:
            setup(maps)
        vm = Vm(program, maps=maps, fast=fast)
        return [vm.run(f) for f in frames], maps

    @pytest.mark.parametrize("app, setup", [
        (toy_counter, None),
        (firewall, lambda m: firewall.allow_flow(m, F1)),
        (dnat, None),
    ], ids=["toy_counter", "firewall", "dnat"])
    def test_parity(self, app, setup):
        program = app.build()
        if app is toy_counter:
            frames = [toy_counter.packet_for_key(k % 4) for k in range(12)]
        else:
            frames = [udp_packet(src_ip=F1.src_ip, dst_ip=F1.dst_ip,
                                 sport=F1.sport, dport=F1.dport)] * 12
        fast_res, fast_maps = self._run(program, frames, True, setup)
        slow_res, slow_maps = self._run(program, frames, False, setup)
        for a, b in zip(fast_res, slow_res):
            assert a.action == b.action
            assert a.packet == b.packet
            assert a.redirect_ifindex == b.redirect_ifindex
            assert a.instructions_executed == b.instructions_executed
        for fd in program.maps:
            assert bytes(fast_maps[fd].storage) == bytes(slow_maps[fd].storage)

    def test_error_parity_unbounded_loop(self):
        source = """
        top:
            r0 = 0
            goto top
        """
        program = assemble_program(source)
        from repro.ebpf.vm import VmError
        for fast in (True, False):
            vm = Vm(program, fast=fast)
            with pytest.raises(VmError, match="instruction limit"):
                vm.run(PKT)


class TestRunStream:
    def test_matches_run_packets(self):
        program = firewall.build()
        pipeline = compile_program(program)

        def fresh_sim():
            maps = MapSet(program.maps)
            firewall.allow_flow(maps, F1)
            return PipelineSimulator(pipeline, maps=maps,
                                     options=SimOptions(keep_records=False))

        frames = [udp_packet(src_ip=F1.src_ip, dst_ip=F1.dst_ip,
                             sport=F1.sport, dport=F1.dport)] * 100
        ref = fresh_sim().run_packets(frames)
        got = fresh_sim().run_stream(iter(frames), batch_size=7)
        assert got.cycles == ref.cycles
        assert got.action_counts == ref.action_counts
        assert got.sum_total_cycles == ref.sum_total_cycles

    def test_multi_program_stream(self):
        pipelines = [compile_program(firewall.build()),
                     compile_program(router.build())]

        def classify(frame):
            return frame[35] % 2  # low byte of the UDP source port

        def make_nic():
            maps = [MapSet(p.program.maps) for p in pipelines]
            firewall.allow_flow(maps[0], F1)
            router.add_route(maps[1], ipv4("192.168.1.1"),
                             mac("02:00:00:00:01:01"),
                             mac("02:00:00:00:01:02"), 3)
            return MultiProgramNic(pipelines, classify, maps=maps)

        frames = [udp_packet(src_ip=F1.src_ip, dst_ip=F1.dst_ip,
                             sport=1000 + i, dport=53) for i in range(60)]
        ref = make_nic().run_at_line_rate(frames)
        got = make_nic().run_stream(iter(frames), batch_size=8)
        assert [(r.name, r.packets) for r in got] == \
               [(r.name, r.packets) for r in ref]
        for a, b in zip(got, ref):
            assert (a.report is None) == (b.report is None)
            if a.report is not None:
                assert a.report.cycles == b.report.cycles
                assert a.report.action_counts == b.report.action_counts

    def test_bad_batch_size_rejected(self):
        pipeline = compile_program(toy_counter.build())
        sim = PipelineSimulator(pipeline)
        with pytest.raises(ValueError):
            sim.run_stream([PKT], batch_size=0)


class TestFrameBuffer:
    def test_views_round_trip(self):
        from repro.net.packet import FrameBuffer
        frames = [udp_packet(sport=i, dport=53) for i in range(5)]
        buf = FrameBuffer(frames)
        assert len(buf) == 5
        assert buf.nbytes == sum(len(f) for f in frames)
        for view, frame in zip(buf, frames):
            assert isinstance(view, memoryview)
            assert bytes(view) == frame
        assert bytes(buf[3]) == frames[3]

    def test_sealed_after_export(self):
        from repro.net.packet import FrameBuffer, PacketError
        buf = FrameBuffer([PKT])
        list(buf)
        with pytest.raises(PacketError, match="sealed"):
            buf.append(PKT)

    def test_rejects_empty_frame(self):
        from repro.net.packet import FrameBuffer, PacketError
        with pytest.raises(PacketError):
            FrameBuffer([b""])

    def test_feeds_simulator(self):
        from repro.net.packet import FrameBuffer
        program = toy_counter.build()
        pipeline = compile_program(program)
        frames = [toy_counter.packet_for_key(k % 4) for k in range(20)]
        buf = FrameBuffer(frames)
        maps = MapSet(program.maps)
        sim = PipelineSimulator(pipeline, maps=maps,
                                options=SimOptions(keep_records=False))
        rep = sim.run_stream(buf, batch_size=6)
        maps2 = MapSet(program.maps)
        sim2 = PipelineSimulator(pipeline, maps=maps2,
                                 options=SimOptions(keep_records=False))
        ref = sim2.run_packets(frames)
        assert rep.cycles == ref.cycles
        assert rep.action_counts == ref.action_counts
        for fd in program.maps:
            assert bytes(maps[fd].storage) == bytes(maps2[fd].storage)

"""Map semantics: array/hash/LRU/per-CPU, update flags, host interface."""

import pytest

from repro.ebpf.isa import MapSpec
from repro.ebpf.maps import (
    BPF_ANY,
    BPF_EXIST,
    BPF_NOEXIST,
    ArrayMap,
    HashMap,
    LruHashMap,
    MapError,
    MapSet,
    PercpuArrayMap,
    create_map,
)


def key4(i: int) -> bytes:
    return i.to_bytes(4, "little")


def val8(v: int) -> bytes:
    return v.to_bytes(8, "little")


class TestArrayMap:
    def _map(self, entries=4):
        return ArrayMap(MapSpec("a", "array", 4, 8, entries))

    def test_all_slots_exist_zeroed(self):
        m = self._map()
        assert m.lookup(key4(0)) == bytes(8)
        assert m.entry_count() == 4

    def test_update_and_lookup(self):
        m = self._map()
        m.update(key4(2), val8(99))
        assert m.lookup(key4(2)) == val8(99)

    def test_out_of_range_lookup_misses(self):
        m = self._map()
        assert m.lookup(key4(4)) is None

    def test_out_of_range_update_fails(self):
        with pytest.raises(MapError):
            self._map().update(key4(9), val8(1))

    def test_delete_rejected(self):
        with pytest.raises(MapError):
            self._map().delete(key4(0))

    def test_noexist_flag_rejected(self):
        with pytest.raises(MapError):
            self._map().update(key4(0), val8(1), flags=BPF_NOEXIST)

    def test_key_size_enforced(self):
        with pytest.raises(MapError):
            self._map().lookup(b"\x00" * 3)

    def test_value_size_enforced(self):
        with pytest.raises(MapError):
            self._map().update(key4(0), b"\x01" * 7)

    def test_key_must_be_4_bytes(self):
        with pytest.raises(MapError):
            ArrayMap(MapSpec("a", "array", 8, 8, 4))

    def test_items(self):
        m = self._map()
        m.update(key4(1), val8(5))
        items = dict(m.items())
        assert items[key4(1)] == val8(5)
        assert len(items) == 4

    def test_stable_value_addresses(self):
        m = self._map()
        assert m.value_addr(2) == 16
        assert m.slot_of_addr(19) == 2


class TestHashMap:
    def _map(self, entries=3):
        return HashMap(MapSpec("h", "hash", 8, 8, entries))

    def test_miss_then_hit(self):
        m = self._map()
        k = b"flowkey1"
        assert m.lookup(k) is None
        m.update(k, val8(7))
        assert m.lookup(k) == val8(7)

    def test_overwrite(self):
        m = self._map()
        m.update(b"flowkey1", val8(1))
        m.update(b"flowkey1", val8(2))
        assert m.lookup(b"flowkey1") == val8(2)
        assert m.entry_count() == 1

    def test_full_map_rejects_insert(self):
        m = self._map(entries=2)
        m.update(b"k1111111", val8(1))
        m.update(b"k2222222", val8(2))
        with pytest.raises(MapError):
            m.update(b"k3333333", val8(3))

    def test_delete_frees_slot(self):
        m = self._map(entries=1)
        m.update(b"k1111111", val8(1))
        assert m.delete(b"k1111111")
        assert m.lookup(b"k1111111") is None
        m.update(b"k2222222", val8(2))  # slot reusable

    def test_delete_missing_returns_false(self):
        assert not self._map().delete(b"missingk")

    def test_noexist_flag(self):
        m = self._map()
        m.update(b"k1111111", val8(1), flags=BPF_NOEXIST)
        with pytest.raises(MapError):
            m.update(b"k1111111", val8(2), flags=BPF_NOEXIST)

    def test_exist_flag(self):
        m = self._map()
        with pytest.raises(MapError):
            m.update(b"k1111111", val8(1), flags=BPF_EXIST)

    def test_slot_stable_across_updates(self):
        m = self._map()
        slot = m.update(b"k1111111", val8(1))
        assert m.update(b"k1111111", val8(2)) == slot
        assert m.lookup_slot(b"k1111111") == slot

    def test_deleted_slot_zeroed(self):
        m = self._map()
        slot = m.update(b"k1111111", val8(0xFF))
        m.delete(b"k1111111")
        assert m.storage[slot * 8 : slot * 8 + 8] == bytes(8)

    def test_clear(self):
        m = self._map()
        m.update(b"k1111111", val8(1))
        m.clear()
        assert m.entry_count() == 0
        assert m.lookup(b"k1111111") is None


class TestLruHashMap:
    def _map(self, entries=2):
        return LruHashMap(MapSpec("l", "lru_hash", 4, 8, entries))

    def test_evicts_least_recently_used(self):
        m = self._map()
        m.update(key4(1), val8(1))
        m.update(key4(2), val8(2))
        m.lookup(key4(1))  # touch 1 -> 2 becomes LRU
        m.update(key4(3), val8(3))
        assert m.lookup(key4(2)) is None
        assert m.lookup(key4(1)) == val8(1)
        assert m.lookup(key4(3)) == val8(3)

    def test_update_refreshes_recency(self):
        m = self._map()
        m.update(key4(1), val8(1))
        m.update(key4(2), val8(2))
        m.update(key4(1), val8(11))  # refresh 1
        m.update(key4(3), val8(3))
        assert m.lookup(key4(2)) is None
        assert m.lookup(key4(1)) == val8(11)


class TestPercpuArray:
    def test_behaves_like_array(self):
        m = PercpuArrayMap(MapSpec("p", "percpu_array", 4, 8, 2))
        m.update(key4(1), val8(5))
        assert m.lookup(key4(1)) == val8(5)


class TestFactoryAndMapSet:
    def test_create_map_dispatch(self):
        assert isinstance(create_map(MapSpec("a", "array", 4, 8, 1)), ArrayMap)
        assert isinstance(create_map(MapSpec("h", "hash", 4, 8, 1)), HashMap)
        assert isinstance(create_map(MapSpec("l", "lru_hash", 4, 8, 1)), LruHashMap)

    def test_mapset_by_name_and_fd(self):
        ms = MapSet({1: MapSpec("a", "array", 4, 8, 1), 2: MapSpec("h", "hash", 4, 8, 1)})
        assert ms.by_name("h").name == "h"
        assert ms.fd_of("a") == 1
        assert 2 in ms and 3 not in ms
        with pytest.raises(MapError):
            ms.by_name("zzz")
        with pytest.raises(MapError):
            ms[9]

    def test_snapshot_and_clear(self):
        ms = MapSet({1: MapSpec("a", "array", 4, 8, 2)})
        ms[1].update(key4(0), val8(3))
        snap = ms.snapshot()
        assert snap[1][:8] == val8(3)
        ms.clear()
        assert ms.snapshot()[1] == bytes(16)

"""Verifier tests: rejection rules and the region type analysis."""

import pytest

from repro.ebpf import isa
from repro.ebpf.asm import assemble_program
from repro.ebpf.isa import MapSpec
from repro.ebpf.verifier import (
    RegKind,
    VerifierError,
    verify,
)

MAPS = {"m": MapSpec("m", "array", 4, 8, 4)}


def verify_src(source: str, maps=None, **kwargs):
    return verify(assemble_program(source, maps=maps), **kwargs)


class TestRejections:
    def test_uninitialised_register_read(self):
        with pytest.raises(VerifierError, match="uninitialised register r3"):
            verify_src("r0 = r3\nexit")

    def test_uninitialised_on_one_path(self):
        source = """
            if r1 == 0 goto skip
            r2 = 5
        skip:
            r0 = r2
            exit
        """
        with pytest.raises(VerifierError, match="uninitialised"):
            verify_src(source)

    def test_backward_branch_rejected(self):
        source = """
        top:
            r0 = 0
            goto top
        """
        with pytest.raises(VerifierError, match="backward"):
            verify_src(source)

    def test_backward_branch_allowed_with_flag(self):
        source = """
            r0 = 2
            r2 = 3
        top:
            r2 -= 1
            if r2 != 0 goto top
            exit
        """
        verify_src(source, allow_back_edges=True)

    def test_fall_off_end(self):
        with pytest.raises(VerifierError, match="falls off"):
            verify_src("r0 = 0")

    def test_exit_with_uninit_r0(self):
        with pytest.raises(VerifierError):
            verify_src("exit")

    def test_null_map_value_deref(self):
        source = """
            r2 = 0
            *(u32 *)(r10 - 4) = r2
            r1 = map[m]
            r2 = r10
            r2 += -4
            call 1
            r0 = *(u64 *)(r0 + 0)
            exit
        """
        with pytest.raises(VerifierError, match="NULL"):
            verify_src(source, maps=MAPS)

    def test_null_check_enables_deref(self):
        source = """
            r2 = 0
            *(u32 *)(r10 - 4) = r2
            r1 = map[m]
            r2 = r10
            r2 += -4
            call 1
            if r0 == 0 goto out
            r3 = *(u64 *)(r0 + 0)
        out:
            r0 = 2
            exit
        """
        verify_src(source, maps=MAPS)

    def test_ne_null_check_also_works(self):
        source = """
            r2 = 0
            *(u32 *)(r10 - 4) = r2
            r1 = map[m]
            r2 = r10
            r2 += -4
            call 1
            if r0 != 0 goto deref
            r0 = 2
            exit
        deref:
            r3 = *(u64 *)(r0 + 0)
            r0 = 2
            exit
        """
        verify_src(source, maps=MAPS)

    def test_map_ptr_deref_rejected(self):
        source = "r1 = map[m]\nr0 = *(u64 *)(r1 + 0)\nexit"
        with pytest.raises(VerifierError, match="map pointer"):
            verify_src(source, maps=MAPS)

    def test_scalar_deref_rejected(self):
        with pytest.raises(VerifierError, match="not dereferenceable"):
            verify_src("r2 = 5\nr0 = *(u64 *)(r2 + 0)\nexit")

    def test_ctx_write_rejected(self):
        with pytest.raises(VerifierError, match="read-only"):
            verify_src("*(u32 *)(r1 + 0) = 5\nr0 = 2\nexit")

    def test_ctx_out_of_bounds(self):
        with pytest.raises(VerifierError, match="ctx access"):
            verify_src("r0 = *(u32 *)(r1 + 100)\nexit")

    def test_stack_out_of_bounds(self):
        with pytest.raises(VerifierError, match="stack access"):
            verify_src("*(u64 *)(r10 - 520) = r1\nr0 = 2\nexit")

    def test_stack_positive_offset_rejected(self):
        with pytest.raises(VerifierError, match="stack access"):
            verify_src("r2 = *(u64 *)(r10 + 8)\nr0 = 2\nexit")

    def test_unknown_helper(self):
        with pytest.raises(VerifierError, match="unknown helper"):
            verify_src("call 9999\nr0 = 2\nexit")

    def test_lookup_without_map_ptr(self):
        source = "r1 = 5\nr2 = r10\nr2 += -4\ncall 1\nr0 = 2\nexit"
        with pytest.raises(VerifierError, match="map pointer"):
            verify_src(source)

    def test_unknown_map_fd(self):
        prog = assemble_program("r1 = map[m]\nr0 = 2\nexit", maps=MAPS)
        # strip the map table to simulate a dangling fd
        prog.maps.clear()
        with pytest.raises(VerifierError, match="unknown map"):
            verify(prog)

    def test_partial_pointer_spill_rejected(self):
        source = "*(u32 *)(r10 - 4) = r1\nr0 = 2\nexit"
        with pytest.raises(VerifierError, match="partial spill"):
            verify_src(source)

    def test_helper_arg_uninitialised(self):
        # bpf_map_lookup_elem takes 2 args; r2 never set
        with pytest.raises(VerifierError, match="uninitialised"):
            verify_src("r1 = map[m]\ncall 1\nr0 = 2\nexit", maps=MAPS)


class TestTypeTracking:
    def test_entry_types(self):
        result = verify_src("r0 = 2\nexit")
        state = result.state_before(0)
        assert state.reg(isa.R1).kind == RegKind.CTX
        assert state.reg(isa.R10).kind == RegKind.STACK
        assert state.reg(isa.R0).kind == RegKind.UNINIT

    def test_packet_pointer_from_ctx(self):
        result = verify_src(
            "r2 = *(u32 *)(r1 + 4)\nr3 = *(u32 *)(r1 + 0)\nr0 = 2\nexit"
        )
        state = result.state_before(2)
        assert state.reg(2).kind == RegKind.PACKET_END
        assert state.reg(3).kind == RegKind.PACKET

    def test_pointer_arithmetic_keeps_region(self):
        result = verify_src(
            "r3 = *(u32 *)(r1 + 0)\nr3 += 14\nr0 = 2\nexit"
        )
        assert result.state_before(2).reg(3).kind == RegKind.PACKET

    def test_pointer_minus_pointer_is_scalar(self):
        result = verify_src(
            """
            r2 = *(u32 *)(r1 + 4)
            r3 = *(u32 *)(r1 + 0)
            r2 -= r3
            r0 = 2
            exit
            """
        )
        assert result.state_before(3).reg(2).kind == RegKind.SCALAR

    def test_spilled_pointer_restored(self):
        source = """
            r3 = *(u32 *)(r1 + 0)
            *(u64 *)(r10 - 8) = r3
            r4 = *(u64 *)(r10 - 8)
            r0 = *(u8 *)(r4 + 0)
            r0 = 2
            exit
        """
        result = verify_src(source)
        assert result.state_before(3).reg(4).kind == RegKind.PACKET

    def test_map_value_type_carries_fd(self):
        source = """
            r2 = 0
            *(u32 *)(r10 - 4) = r2
            r1 = map[m]
            r2 = r10
            r2 += -4
            call 1
            if r0 == 0 goto out
            r3 = *(u64 *)(r0 + 0)
        out:
            r0 = 2
            exit
        """
        result = verify_src(source, maps=MAPS)
        # instruction 7 is the deref; before it r0 must be MAP_VALUE fd=1
        deref_state = result.state_before(7)
        assert deref_state.reg(0).kind == RegKind.MAP_VALUE
        assert deref_state.reg(0).map_fd == 1

    def test_call_makes_r1_to_r5_uninit(self):
        source = """
            r2 = 0
            *(u32 *)(r10 - 4) = r2
            r1 = map[m]
            r2 = r10
            r2 += -4
            call 1
            r0 = 2
            exit
        """
        result = verify_src(source, maps=MAPS)
        after_call = result.state_before(6)
        for reg in (1, 2, 3, 4, 5):
            assert after_call.reg(reg).kind == RegKind.UNINIT

    def test_adjust_head_invalidates_packet_pointers(self):
        source = """
            r9 = r1
            r6 = *(u32 *)(r1 + 0)
            r2 = -20
            call 44
            r0 = *(u8 *)(r6 + 0)
            exit
        """
        with pytest.raises(VerifierError, match="uninitialised"):
            verify_src(source)

    def test_unreachable_code_has_no_state(self):
        source = """
            r0 = 2
            goto out
            r0 = 1
        out:
            exit
        """
        result = verify_src(source)
        assert result.state_before(2) is None
        assert result.reachable(0) and not result.reachable(2)

    def test_join_of_same_map_values(self):
        source = """
            r2 = 0
            *(u32 *)(r10 - 4) = r2
            r1 = map[m]
            r2 = r10
            r2 += -4
            call 1
            if r0 == 0 goto out
            r3 = *(u64 *)(r0 + 0)
            *(u64 *)(r0 + 0) = r3
        out:
            r0 = 2
            exit
        """
        verify_src(source, maps=MAPS)

    def test_evaluation_apps_all_verify(self):
        from repro.apps import EVALUATION_APPS, leaky_bucket, toy_counter

        for mod in EVALUATION_APPS.values():
            verify(mod.build())
        verify(toy_counter.build())
        verify(leaky_bucket.build())


class TestMapKindRules:
    DELETE = """
        r2 = 0
        *(u32 *)(r10 - 4) = r2
        r1 = map[{name}]
        r2 = r10
        r2 += -4
        call 3
        r0 = 2
        exit
    """

    def test_delete_on_array_rejected(self):
        with pytest.raises(VerifierError, match="cannot be deleted"):
            verify_src(self.DELETE.format(name="m"), maps=MAPS)

    def test_delete_on_percpu_array_rejected(self):
        maps = {"p": MapSpec("p", "percpu_array", 4, 8, 4)}
        with pytest.raises(VerifierError, match="cannot be deleted"):
            verify_src(self.DELETE.format(name="p"), maps=maps)

    def test_delete_on_hash_kinds_allowed(self):
        for kind in ("hash", "lru_hash"):
            maps = {"h": MapSpec("h", kind, 4, 8, 4)}
            verify_src(self.DELETE.format(name="h"), maps=maps)

"""Persistent compile cache: hits skip analysis, keys track inputs."""

import pickle

import pytest

from repro.apps import firewall, toy_counter
from repro.core import CompileOptions, compile_program
from repro.core import compiler as compiler_mod
from repro.core.cache import (
    CompileCache,
    cache_key,
    compile_cached,
    default_cache_dir,
    get_default_cache,
    warm_cache,
)
from repro.ebpf.maps import MapSet
from repro.hwsim import PipelineSimulator, SimOptions


@pytest.fixture()
def cache(tmp_path):
    return CompileCache(tmp_path / "cache")


class TestCacheKey:
    def test_stable(self):
        prog = toy_counter.build()
        assert cache_key(prog) == cache_key(prog)

    def test_tracks_program(self):
        assert cache_key(toy_counter.build()) != cache_key(firewall.build())

    def test_tracks_options(self):
        prog = toy_counter.build()
        assert cache_key(prog, CompileOptions()) != \
               cache_key(prog, CompileOptions(enable_pruning=False))

    def test_tracks_maps(self):
        import dataclasses

        prog_a = toy_counter.build()
        prog_b = toy_counter.build()
        # build() shares module-level MapSpec constants: swap in a copy
        fd, spec = next(iter(prog_b.maps.items()))
        prog_b.maps[fd] = dataclasses.replace(
            spec, max_entries=spec.max_entries + 1
        )
        assert cache_key(prog_a) != cache_key(prog_b)


class TestCompileCached:
    def test_miss_then_disk_hit(self, cache):
        prog = toy_counter.build()
        compile_cached(prog, cache=cache)
        assert cache.misses == 1 and cache.stores == 1
        assert cache.stats()["disk_entries"] == 1

        # a fresh cache object over the same directory (a "new process")
        # must satisfy the compile from disk without running any pass
        cold = CompileCache(cache.directory)
        real = compiler_mod.compile_program

        def boom(*args, **kwargs):
            raise AssertionError("analysis passes ran despite a cache hit")

        compiler_mod.compile_program = boom
        try:
            pipeline = compile_cached(prog, cache=cold)
        finally:
            compiler_mod.compile_program = real
        assert cold.hits == 1 and cold.misses == 0
        assert pipeline.n_stages > 0

    def test_memory_hit_skips_unpickling(self, cache):
        prog = toy_counter.build()
        first = compile_cached(prog, cache=cache)
        second = compile_cached(prog, cache=cache)
        assert second is first  # same in-memory object, no disk round-trip
        assert cache.hits == 1

    def test_cached_pipeline_simulates_identically(self, cache):
        prog = toy_counter.build()
        frames = [toy_counter.packet_for_key(k % 4) for k in range(16)]

        def run(pipeline):
            maps = MapSet(prog.maps)
            sim = PipelineSimulator(pipeline, maps=maps,
                                    options=SimOptions(keep_records=False))
            return sim.run_packets(frames), maps

        ref_rep, ref_maps = run(compile_program(prog))
        compile_cached(prog, cache=cache)
        cold = CompileCache(cache.directory)
        got_rep, got_maps = run(compile_cached(prog, cache=cold))
        assert got_rep.cycles == ref_rep.cycles
        assert got_rep.action_counts == ref_rep.action_counts
        for fd in prog.maps:
            assert bytes(got_maps[fd].storage) == bytes(ref_maps[fd].storage)

    def test_corrupt_entry_recompiles(self, cache):
        prog = toy_counter.build()
        compile_cached(prog, cache=cache)
        key = cache_key(prog)
        path = cache.directory / f"{key}.pipeline.pkl"
        path.write_bytes(b"not a pickle")
        cold = CompileCache(cache.directory)
        pipeline = compile_cached(prog, cache=cold)
        assert pipeline.n_stages > 0
        assert cold.misses == 1
        assert not path.read_bytes() == b"not a pickle"  # rewritten

    def test_wrong_type_entry_is_a_miss(self, cache):
        prog = toy_counter.build()
        key = cache_key(prog)
        cache.directory.mkdir(parents=True)
        (cache.directory / f"{key}.pipeline.pkl").write_bytes(
            pickle.dumps({"not": "a pipeline"})
        )
        compile_cached(prog, cache=cache)
        assert cache.misses == 1


class TestLru:
    def test_eviction_order(self, cache):
        cache.memory_entries = 2
        progs = [toy_counter.build(), firewall.build()]
        pipes = [compile_cached(p, cache=cache) for p in progs]
        # touch the first so the second is the LRU victim
        assert compile_cached(progs[0], cache=cache) is pipes[0]
        third = compile_cached(
            progs[0], CompileOptions(enable_pruning=False), cache=cache
        )
        assert third is not pipes[0]
        assert len(cache._memory) == 2
        # firewall fell out of memory but still hits from disk
        hits_before = cache.hits
        again = compile_cached(progs[1], cache=cache)
        assert cache.hits == hits_before + 1
        assert again is not pipes[1]  # re-unpickled, not the same object


class TestWarmCache:
    def test_warms_every_program_to_disk_in_order(self, cache):
        progs = [toy_counter.build(), firewall.build()]
        pipelines = warm_cache(progs, cache=cache)
        assert [p.name for p in pipelines] == [p.name for p in progs]
        assert cache.stats()["disk_entries"] == 2

    def test_warmed_cache_satisfies_a_fresh_process_without_compiling(
        self, cache
    ):
        progs = [toy_counter.build(), firewall.build()]
        warm_cache(progs, cache=cache)
        # a fresh cache over the same directory (a "new process") must be
        # fully warm: no analysis pass may run again
        cold = CompileCache(cache.directory)
        real = compiler_mod.compile_program

        def boom(*args, **kwargs):
            raise AssertionError("compile ran despite a warm cache")

        compiler_mod.compile_program = boom
        try:
            pipelines = warm_cache(progs, cache=cold)
        finally:
            compiler_mod.compile_program = real
        assert [p.name for p in pipelines] == [p.name for p in progs]
        assert cold.stores == 0

    def test_serial_path_with_one_worker(self, cache):
        progs = [toy_counter.build(), firewall.build()]
        pipelines = warm_cache(progs, cache=cache, workers=1)
        assert len(pipelines) == 2
        assert cache.stats()["disk_entries"] == 2

    def test_pool_failure_names_the_program(self, cache, monkeypatch):
        import multiprocessing as mp

        if "fork" not in mp.get_all_start_methods():
            pytest.skip("needs fork to inherit the monkeypatch")
        real = compiler_mod.compile_program

        def picky(program, options=None):
            if program.name == "firewall":
                raise RuntimeError("synthetic compile failure")
            return real(program, options)

        monkeypatch.setattr(compiler_mod, "compile_program", picky)
        with pytest.raises(RuntimeError, match="firewall"):
            warm_cache(
                [toy_counter.build(), firewall.build()],
                cache=cache, workers=2,
            )

    def test_warmed_pipeline_simulates_identically(self, cache):
        prog = toy_counter.build()
        frames = [toy_counter.packet_for_key(k % 4) for k in range(16)]

        def run(pipeline):
            maps = MapSet(prog.maps)
            sim = PipelineSimulator(pipeline, maps=maps,
                                    options=SimOptions(keep_records=False))
            return sim.run_packets(frames), maps

        ref_rep, ref_maps = run(compile_program(prog))
        warm_cache([prog], cache=cache)
        cold = CompileCache(cache.directory)
        got_rep, got_maps = run(warm_cache([prog], cache=cold)[0])
        assert got_rep.cycles == ref_rep.cycles
        assert got_rep.action_counts == ref_rep.action_counts
        for fd in prog.maps:
            assert bytes(got_maps[fd].storage) == bytes(ref_maps[fd].storage)


class TestHousekeeping:
    def test_clear(self, cache):
        compile_cached(toy_counter.build(), cache=cache)
        compile_cached(firewall.build(), cache=cache)
        assert cache.clear() == 2
        assert cache.stats()["disk_entries"] == 0
        assert cache.stats()["memory_entries"] == 0

    def test_default_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("EHDL_CACHE_DIR", str(tmp_path / "override"))
        assert default_cache_dir() == tmp_path / "override"
        assert get_default_cache().directory == tmp_path / "override"
        monkeypatch.setenv("EHDL_CACHE_DIR", str(tmp_path / "other"))
        assert get_default_cache().directory == tmp_path / "other"

    def test_atomic_write_leaves_no_temp_files(self, cache):
        compile_cached(toy_counter.build(), cache=cache)
        stray = [p for p in cache.directory.iterdir()
                 if not p.name.endswith(".pipeline.pkl")]
        assert stray == []


class TestConcurrency:
    """Atomic rename-on-write makes the cache safe under concurrent
    readers and writers: a get() racing any number of put()s returns
    either None or a complete, valid Pipeline — never a torn pickle."""

    def test_concurrent_readers_and_writers(self, cache):
        import threading

        prog = toy_counter.build()
        key = cache_key(prog)
        pipeline = compile_program(prog)
        stop = threading.Event()
        failures = []

        def writer():
            while not stop.is_set():
                try:
                    CompileCache(cache.directory).put(key, pipeline)
                except Exception as exc:  # pragma: no cover
                    failures.append(f"writer: {exc!r}")
                    return

        def reader():
            # a private CompileCache per reader: no in-memory LRU hits,
            # every get() really deserialises from disk
            local = CompileCache(cache.directory, memory_entries=0)
            while not stop.is_set():
                try:
                    got = local.get(key)
                except Exception as exc:  # pragma: no cover
                    failures.append(f"reader: {exc!r}")
                    return
                if got is not None and got.n_stages != pipeline.n_stages:
                    failures.append("reader observed a torn pipeline")
                    return

        threads = [threading.Thread(target=writer) for _ in range(3)]
        threads += [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        import time

        time.sleep(0.5)
        stop.set()
        for thread in threads:
            thread.join(timeout=10)
        assert failures == []
        # the entry on disk is whole and loadable afterwards
        final = CompileCache(cache.directory, memory_entries=0).get(key)
        assert final is not None and final.n_stages == pipeline.n_stages

    def test_concurrent_compile_cached_same_program(self, cache):
        from concurrent.futures import ThreadPoolExecutor

        prog = firewall.build()

        def compile_one(_i):
            return compile_cached(prog, cache=CompileCache(cache.directory))

        with ThreadPoolExecutor(max_workers=8) as pool:
            pipelines = list(pool.map(compile_one, range(16)))
        stages = {p.n_stages for p in pipelines}
        assert len(stages) == 1
        # exactly one entry on disk, no stray temp files
        entries = list(cache.directory.glob("*.pipeline.pkl"))
        assert len(entries) == 1
        stray = [p for p in cache.directory.iterdir()
                 if not p.name.endswith(".pipeline.pkl")]
        assert stray == []

    def test_garbage_entry_is_miss_and_unlinked(self, cache):
        prog = toy_counter.build()
        key = cache_key(prog)
        cache.directory.mkdir(parents=True, exist_ok=True)
        path = cache.directory / f"{key}.pipeline.pkl"
        path.write_bytes(b"\x80\x04 definitely not a pipeline")
        fresh = CompileCache(cache.directory, memory_entries=0)
        assert fresh.get(key) is None
        assert not path.exists()
        assert fresh.stats()["misses"] == 1

    def test_wrong_type_pickle_is_miss(self, cache):
        prog = toy_counter.build()
        key = cache_key(prog)
        cache.directory.mkdir(parents=True, exist_ok=True)
        path = cache.directory / f"{key}.pipeline.pkl"
        path.write_bytes(pickle.dumps({"not": "a pipeline"}))
        fresh = CompileCache(cache.directory, memory_entries=0)
        assert fresh.get(key) is None

"""Differential tests: pipeline simulation ≡ reference VM.

The central correctness claim of the whole compiler — the generated
pipeline computes the same function as sequential eBPF execution — over
all five evaluation applications, hazard-heavy workloads and every
compiler-option corner.
"""

import pytest

from repro.apps import dnat, firewall, router, suricata, toy_counter, tunnel
from repro.core import CompileOptions, compile_program
from repro.hwsim import run_differential
from repro.net.packet import (
    FiveTuple,
    ipv4,
    mac,
    tcp_packet,
    udp_packet,
)

F1 = FiveTuple(ipv4("10.0.0.1"), ipv4("192.168.0.1"), 17, 1000, 53)
F2 = FiveTuple(ipv4("10.0.0.2"), ipv4("192.168.0.2"), 17, 2000, 53)


class TestToyCounter:
    def test_mixed_traffic(self):
        frames = [toy_counter.packet_for_key(k) for k in (0, 1, 2, 3, 1, 1, 2) * 6]
        run_differential(toy_counter.build(), frames).raise_on_mismatch()

    def test_short_packets(self):
        frames = [toy_counter.packet_for_key(1), b"\x00" * 8, b"", bytes(13)]
        run_differential(toy_counter.build(), frames).raise_on_mismatch()

    @pytest.mark.parametrize("gap", [1, 3, 25])
    def test_various_injection_gaps(self, gap):
        frames = [toy_counter.packet_for_key(k % 4) for k in range(20)]
        run_differential(toy_counter.build(), frames, gap=gap).raise_on_mismatch()

    @pytest.mark.parametrize(
        "options",
        [
            CompileOptions(enable_ilp=False, enable_fusion=False),
            CompileOptions(enable_fusion=False),
            CompileOptions(enable_pruning=False),
            CompileOptions(elide_bounds_checks=False),
            CompileOptions(dead_code_elimination=False),
            CompileOptions(elide_ctx_loads=False),
            CompileOptions(frame_size=32),
            CompileOptions(max_row_width=2),
        ],
        ids=[
            "no-ilp", "no-fusion", "no-pruning", "keep-bounds",
            "no-dce", "no-ctx-elide", "frame32", "vliw2",
        ],
    )
    def test_all_compiler_option_corners(self, options):
        frames = [toy_counter.packet_for_key(k % 4) for k in range(16)]
        frames.append(b"\x00" * 10)  # short packet
        run_differential(
            toy_counter.build(), frames, compile_options=options
        ).raise_on_mismatch()


class TestFirewall:
    def _setup(self, maps):
        firewall.allow_flow(maps, F1)
        firewall.allow_flow(maps, F2)

    def test_mixed_verdicts(self):
        frames = []
        for ft in (F1, F1.reversed(), F2, FiveTuple(1, 2, 17, 3, 4)):
            frames.append(
                udp_packet(src_ip=ft.src_ip, dst_ip=ft.dst_ip,
                           sport=ft.sport, dport=ft.dport, size=64)
            )
        frames.append(tcp_packet(size=64))  # non-UDP -> PASS
        frames = frames * 8
        run_differential(
            firewall.build(), frames, setup=self._setup
        ).raise_on_mismatch()

    def test_atomic_counters_consistent_at_line_rate(self):
        frames = [udp_packet(src_ip=F1.src_ip, dst_ip=F1.dst_ip,
                             sport=F1.sport, dport=F1.dport, size=64)] * 50
        res = run_differential(firewall.build(), frames, setup=self._setup)
        res.raise_on_mismatch()
        assert res.hw_report.flush_events == 0


class TestRouter:
    def _setup(self, maps):
        router.add_route(maps, ipv4("192.168.1.1"), mac("02:00:00:00:01:01"),
                         mac("02:00:00:00:01:02"), 3)

    def _frames(self):
        return [
            udp_packet(dst_ip="192.168.1.200", size=64),  # routed
            udp_packet(dst_ip="8.8.8.8", size=64),        # no route
            udp_packet(dst_ip="192.168.1.4", size=64, ttl=1),  # ttl expired
        ] * 10

    def test_atomic_variant(self):
        run_differential(
            router.build(), self._frames(), setup=self._setup
        ).raise_on_mismatch()

    def test_rmw_variant_with_flushes(self):
        res = run_differential(
            router.build(use_atomic=False), self._frames(), setup=self._setup
        )
        res.raise_on_mismatch()

    def test_rmw_variant_back_to_back_flushes(self):
        # consecutive routed packets share the stats slot: the counter's
        # load sits inside the store's hazard window -> flushes fire, and
        # the count still comes out exact
        frames = [udp_packet(dst_ip="192.168.1.200", size=64)] * 30
        res = run_differential(
            router.build(use_atomic=False), frames, setup=self._setup
        )
        res.raise_on_mismatch()
        assert res.hw_report.flush_events > 0  # global-counter RAW hazard


class TestTunnel:
    def _setup(self, maps):
        tunnel.add_tunnel(maps, ipv4("192.168.0.50"), ipv4("100.0.0.1"),
                          ipv4("100.0.0.2"), mac("02:11:22:33:44:55"),
                          mac("02:66:77:88:99:aa"))

    def test_encap_and_pass(self):
        frames = [
            udp_packet(dst_ip="192.168.0.50", size=96),
            udp_packet(dst_ip="1.2.3.4", size=64),
            udp_packet(dst_ip="192.168.0.50", size=64),
        ] * 8
        run_differential(
            tunnel.build(), frames, setup=self._setup
        ).raise_on_mismatch()


class TestSuricata:
    BAD = FiveTuple(ipv4("6.6.6.6"), ipv4("192.168.0.1"), 17, 666, 53)

    def _setup(self, maps):
        suricata.add_bypass(maps, self.BAD)

    def test_filter_and_counters(self):
        frames = [
            udp_packet(src_ip=self.BAD.src_ip, dst_ip=self.BAD.dst_ip,
                       sport=self.BAD.sport, dport=self.BAD.dport, size=64),
            udp_packet(src_ip="10.0.0.3", size=64),
            tcp_packet(src_ip="10.0.0.4", size=64),
        ] * 10
        run_differential(
            suricata.build(), frames, setup=self._setup
        ).raise_on_mismatch()


class TestDnat:
    def _frames(self, repeats=3, flows=6):
        frames = []
        for i in range(flows):
            f = udp_packet(src_ip=f"10.1.0.{i + 1}", dst_ip="8.8.8.8",
                           sport=4000 + i, dport=53, size=64)
            frames += [f] * repeats
        return frames

    def test_spaced_out_fully_identical(self):
        # with no overlap in the pipeline the HW is bit-identical to the
        # VM, including the port-allocation counter
        run_differential(dnat.build(), self._frames(), gap=60).raise_on_mismatch()

    def test_line_rate_ignoring_alloc_counter(self):
        # at line rate, speculative allocations burn ports (Appendix A.2
        # anomaly); everything else must match when flows do not interleave
        # within the hazard window
        frames = self._frames(repeats=1, flows=12) * 2
        # each flow appears twice, far apart -> no flush interference
        res = run_differential(dnat.build(), frames, ignore_maps=["ports"])
        assert res.hw_report is not None


class TestDiffInfrastructure:
    def test_mismatch_reporting(self):
        from repro.hwsim.diff import DiffResult, Mismatch

        result = DiffResult(packets=1, mismatches=[Mismatch(0, "action", 1, 2)])
        assert not result.ok
        with pytest.raises(AssertionError, match="action"):
            result.raise_on_mismatch()

"""Tests of the execution-backend registry (:mod:`repro.hwsim.engines`).

The registry is the single enumeration point for every way the repo can
execute an XDP program. Two properties are load-bearing and pinned here:

* the three ``pipeline`` engines (interpreted, fast, codegen) are
  different executions of the *same* cycle-level model and must be
  bit-identical — XDP actions, packet bytes, final map state AND
  per-packet inject/exit cycles — on every evaluation app;
* the ``vm`` and ``rtl`` engines share the end-to-end observables
  (actions, bytes, maps) with the pipeline engines but not the cycle
  structure, and :func:`compare_runs` must honour that distinction.

On a pipeline-pair mismatch the generated source is dumped to
``codegen-debug/`` so the CI workflow can upload it as an artifact.
"""

import functools

import pytest

from repro.core.compiler import compile_program
from repro.hwsim import SimOptions
from repro.hwsim.codegen import write_debug_source
from repro.hwsim.engines import (
    ENGINES,
    compare_runs,
    engine_names,
    get_engine,
    pipeline_engine_names,
    run_engine,
)
from tests.test_rtl import APP_CASES

# Freeze the helper clock (cycle-to-ns rounds to zero) so that
# time-dependent programs — the leaky bucket policer — read the same
# bpf_ktime_get_ns on the cycle-counting engines as on the VM.
_FROZEN = SimOptions(clock_mhz=1e9)

# Every unordered pair with at least one pipeline engine; the three
# pipeline pairs additionally compare cycle structure.
PIPELINE_PAIRS = [
    ("interpreted", "fast"),
    ("interpreted", "codegen"),
    ("fast", "codegen"),
]
REFERENCE_PAIRS = [
    ("vm", "codegen"),
    ("vm", "fast"),
]


class TestRegistry:
    def test_engine_names(self):
        assert engine_names() == [
            "vm", "interpreted", "fast", "codegen", "rtl", "rtl-interp"
        ]

    def test_pipeline_engine_names(self):
        assert pipeline_engine_names() == ["interpreted", "fast", "codegen"]

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            get_engine("verilog")

    def test_cycle_exactness_split(self):
        # only the pipeline engines promise identical cycle structure
        for name, spec in ENGINES.items():
            assert spec.cycle_exact == (spec.kind == "pipeline"), name

    def test_simulator_rejects_non_pipeline_engine(self):
        from repro.apps import toy_counter
        from repro.hwsim import PipelineSimulator, SimError

        pipeline = compile_program(toy_counter.build())
        with pytest.raises(SimError):
            PipelineSimulator(pipeline, options=SimOptions(engine="rtl"))


@functools.lru_cache(maxsize=None)
def _compiled(app):
    build, _setup, _frames = APP_CASES[app]
    program = build()
    return program, compile_program(program)


def _run_pair(app, a, b, gap=1):
    _build, setup, frames = APP_CASES[app]
    program, pipeline = _compiled(app)
    runs = {
        name: run_engine(
            name, program, frames,
            pipeline=pipeline, sim_options=_FROZEN, setup=setup, gap=gap,
        )
        for name in (a, b)
    }
    mismatches = compare_runs(runs[a], runs[b])
    if mismatches:
        # postmortem material for the CI artifact upload
        path = write_debug_source(pipeline, "codegen-debug")
        mismatches.append(f"generated source dumped to {path}")
    assert not mismatches, "\n".join(mismatches)
    return runs


class TestEngineMatrix:
    """Cross-engine differential on every evaluation app."""

    @pytest.mark.parametrize("a,b", PIPELINE_PAIRS)
    @pytest.mark.parametrize("app", sorted(APP_CASES))
    def test_pipeline_pair_bit_identical(self, app, a, b):
        runs = _run_pair(app, a, b)
        # cycle_exact pairs must actually have compared cycle structure
        assert runs[a].total_cycles is not None
        assert runs[a].total_cycles == runs[b].total_cycles

    @pytest.mark.parametrize("a,b", REFERENCE_PAIRS)
    @pytest.mark.parametrize("app", sorted(APP_CASES))
    def test_vm_agrees_on_observables(self, app, a, b):
        # One packet in flight: the regime in which the pipeline is
        # sequentially consistent with the VM. At tighter spacings hazard
        # replays may legitimately re-draw bpf_get_prandom_u32 (dnat's
        # port allocator), which the replay-free VM never does.
        _program, pipeline = _compiled(app)
        runs = _run_pair(app, a, b, gap=pipeline.n_stages + 2)
        # the reference leg carries no cycle structure
        assert runs["vm"].total_cycles is None
        assert runs["vm"].packet_cycles == []

    def test_rtl_engine_through_registry(self):
        # One cheap smoke through the rtl entry: full app coverage of the
        # RTL leg lives in test_rtl's three-way differential.
        app = "toy_counter"
        _build, setup, frames = APP_CASES[app]
        program, pipeline = _compiled(app)
        vm = run_engine("vm", program, frames, pipeline=pipeline,
                        setup=setup)
        rtl = run_engine("rtl", program, frames, pipeline=pipeline,
                         setup=setup)
        assert not compare_runs(vm, rtl)

    def test_wide_gap_matches_back_to_back(self):
        # injection spacing must not change verdicts, bytes, or map state
        app = "firewall"
        _build, setup, frames = APP_CASES[app]
        program, pipeline = _compiled(app)
        tight = run_engine("codegen", program, frames, pipeline=pipeline,
                           sim_options=_FROZEN, setup=setup, gap=1)
        wide = run_engine("codegen", program, frames, pipeline=pipeline,
                          sim_options=_FROZEN, setup=setup,
                          gap=pipeline.n_stages + 2)
        assert tight.actions == wide.actions
        assert tight.frames == wide.frames
        assert tight.map_items == wide.map_items
        assert tight.total_cycles < wide.total_cycles


class TestThreeWayEngineSelection:
    def test_three_way_hw_leg_on_codegen(self):
        from repro.rtl import run_three_way

        build, setup, frames = APP_CASES["firewall"]
        result = run_three_way(build(), frames, setup=setup,
                               engine="codegen")
        result.raise_on_mismatch()
        assert result.ok


class TestCliEngineFlag:
    PROG = """
.map counters array key=4 value=8 entries=1

    r0 = 2
    exit
"""

    @pytest.fixture()
    def prog_file(self, tmp_path):
        path = tmp_path / "simple.ebpf"
        path.write_text(self.PROG)
        return str(path)

    def test_run_engine_codegen(self, capsys, prog_file):
        from repro.cli import main

        assert main(["run", prog_file, "--packets", "40",
                     "--engine", "codegen"]) == 0
        assert "engine: codegen" in capsys.readouterr().out

    def test_run_engine_vm_reference(self, capsys, prog_file):
        from repro.cli import main

        assert main(["run", prog_file, "--packets", "10",
                     "--engine", "vm"]) == 0
        out = capsys.readouterr().out
        assert "engine: vm" in out and "10/10 packets" in out

    def test_bench_enumerates_pipeline_engines(self, capsys, prog_file):
        from repro.cli import main

        assert main(["bench", prog_file, "--packets", "60",
                     "--flows", "4"]) == 0
        out = capsys.readouterr().out
        for engine in pipeline_engine_names():
            assert engine in out
        assert "parity OK" in out and "3 engines" in out

    def test_verify_engine_codegen(self, capsys, prog_file):
        from repro.cli import main

        assert main(["verify", prog_file, "--packets", "6",
                     "--engine", "codegen"]) == 0
        assert "OK" in capsys.readouterr().out

"""Randomized differential testing of HASH-map programs.

Array maps never change their key→slot mapping; hash maps do — inserts
and deletes invalidate *address-resolution* reads (the lookup-miss →
insert race that DNAT hits). This module sweeps random programs over the
lookup / insert-on-miss / delete / rmw-on-hit vocabulary, back-to-back,
so the update/delete flush paths and their snapshots get hammered.
"""

import random

import pytest

from repro.ebpf.builder import ProgramBuilder
from repro.hwsim import run_differential

PACKET_DEPTH = 16
TRIALS = 60


def build_program(rng: random.Random):
    """A random hash-map program.

    Per op: derive a key byte from the packet, look it up, then on the
    miss path optionally insert a constant value; on the hit path read,
    rmw, or delete. Constant-value inserts and deletes are idempotent
    under flush-replay, so sequential equality must hold exactly.
    """
    b = ProgramBuilder("randhash")
    entries = rng.choice([2, 4, 8])
    b.add_map("h", "hash", key_size=4, value_size=8, max_entries=entries)
    b.load("u32", 7, 1, 4)
    b.load("u32", 6, 1, 0)
    b.mov(2, 6)
    b.alu_imm("+", 2, PACKET_DEPTH)
    b.jmp_reg(">", 2, 7, "drop")

    ops = []
    for i in range(rng.randint(1, 3)):
        key_off = rng.randrange(PACKET_DEPTH)
        miss_kind = rng.choice(["insert", "nothing"])
        hit_kind = rng.choice(["read", "rmw", "delete", "nothing"])
        ops.append((key_off, miss_kind, hit_kind))
        b.load("u8", 2, 6, key_off)
        b.alu_imm("&", 2, 3)
        b.store("u32", 10, 2, -4)
        b.ld_map(1, "h")
        b.mov(2, 10)
        b.alu_imm("+", 2, -4)
        b.call(1)
        b.jmp_imm("!=", 0, 0, f"hit_{i}")
        if miss_kind == "insert":
            b.store_imm("u64", 10, -16, 100 + i)
            b.store_imm("u64", 10, -12, 0)
            b.ld_map(1, "h")
            b.mov(2, 10)
            b.alu_imm("+", 2, -4)
            b.mov(3, 10)
            b.alu_imm("+", 3, -16)
            b.mov_imm(4, 0)
            b.call(2)
        b.jmp(f"end_{i}")
        b.label(f"hit_{i}")
        if hit_kind == "read":
            b.load("u64", 8, 0, 0)
        elif hit_kind == "rmw":
            b.load("u64", 3, 0, 0)
            b.alu_imm("+", 3, 1)
            b.store("u64", 0, 3, 0)
        elif hit_kind == "delete":
            b.ld_map(1, "h")
            b.mov(2, 10)
            b.alu_imm("+", 2, -4)
            b.call(3)
        b.label(f"end_{i}")

    b.mov_imm(0, 3)
    b.exit()
    b.label("drop")
    b.mov_imm(0, 1)
    b.exit()
    return b.build(), ops


def frames_for(rng: random.Random):
    out = []
    for _ in range(rng.randint(2, 8)):
        out.append(bytes([rng.randrange(4) for _ in range(PACKET_DEPTH)])
                   + bytes(64 - PACKET_DEPTH))
    return out


def _replay_divergence_risk(ops) -> bool:
    """Helper updates and deletes commit immediately and irreversibly; a
    packet swept up in a flush after such a commit may restart from
    scratch (when ordering constraints force it below its snapshot) and
    re-take its miss/hit branch against the map its own commit mutated.
    This is Appendix A.2's accepted scope — the paper's hardware cannot
    rewind a committed insert either ("writing to earlier maps is not
    repeated", at the price of not repairing everything). Programs using
    only lookup/load/store stay exactly sequential (proven by the strict
    arm of this sweep and test_property_maps); the targeted DNAT-shape
    insert race below is also exact."""
    return any(m == "insert" or hit == "delete" for _k, m, hit in ops)


class TestRandomHashPrograms:
    @pytest.mark.parametrize("seed", [11, 222, 3333, 44444])
    def test_line_rate_equivalence_sweep(self, seed):
        rng = random.Random(seed)
        for trial in range(TRIALS):
            program, ops = build_program(rng)
            frames = frames_for(rng)
            gap = rng.choice([1, 1, 1, 2, 3])
            result = run_differential(program, frames, gap=gap)
            if _replay_divergence_risk(ops):
                bad = [m for m in result.mismatches
                       if m.index >= 0 and m.what == "action"]
                assert not bad, (
                    f"seed={seed} trial={trial} ops={ops}: {bad}"
                )
            else:
                assert result.ok, (
                    f"seed={seed} trial={trial} ops={ops} gap={gap}: "
                    f"{result.mismatches[0]}"
                )

    def test_insert_race_two_packets(self):
        # the DNAT shape: both packets miss, first inserts, second must
        # observe the insert (via flush + re-execution)
        rng = random.Random(0)
        b = ProgramBuilder("insert_race")
        b.add_map("h", "hash", key_size=4, value_size=8, max_entries=4)
        b.load("u32", 7, 1, 4)
        b.load("u32", 6, 1, 0)
        b.mov(2, 6)
        b.alu_imm("+", 2, 4)
        b.jmp_reg(">", 2, 7, "drop")
        b.store_imm("u32", 10, -4, 7)
        b.ld_map(1, "h")
        b.mov(2, 10)
        b.alu_imm("+", 2, -4)
        b.call(1)
        b.jmp_imm("!=", 0, 0, "hit")
        b.store_imm("u64", 10, -16, 1)
        b.store_imm("u64", 10, -12, 0)
        b.ld_map(1, "h")
        b.mov(2, 10)
        b.alu_imm("+", 2, -4)
        b.mov(3, 10)
        b.alu_imm("+", 3, -16)
        b.mov_imm(4, 0)
        b.call(2)
        b.mov_imm(0, 3)
        b.exit()
        b.label("hit")
        b.load("u64", 3, 0, 0)
        b.alu_imm("+", 3, 1)
        b.store("u64", 0, 3, 0)
        b.mov_imm(0, 2)
        b.exit()
        b.label("drop")
        b.mov_imm(0, 1)
        b.exit()
        prog = b.build()
        run_differential(prog, [bytes(64)] * 6).raise_on_mismatch()

    def test_delete_reinsert_cycle_spaced(self):
        # with no overlap even delete churn is exact
        rng = random.Random(1)
        program, _ops = build_program(rng)
        frames = [bytes([k % 4] * PACKET_DEPTH) + bytes(48) for k in range(12)]
        run_differential(program, frames, gap=120).raise_on_mismatch()

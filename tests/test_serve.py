"""Serving daemon tests: control plane, hot-swap determinism, the soak.

The acceptance test at the bottom is the ISSUE's soak harness: Zipfian
traffic over a million-flow population with mid-stream hot-swaps and
runtime map writes, proven bit-identical against the offline segmented
replay of the journal.
"""

import threading

import pytest

from repro.apps import firewall, toy_counter
from repro.hwsim.sim import SimError
from repro.net.flows import flow_at
from repro.net.packet import udp_packet
from repro.serve import (
    CtlClient,
    CtlError,
    FeedSpec,
    Feeder,
    NicDaemon,
    ProgramSpec,
    ServeConfig,
    ServeError,
    ServeServer,
    carry_maps,
    parse_feed_spec,
    segmented_replay,
    verify_replay,
)
from repro.serve.protocol import (
    MAX_LINE,
    ProtocolError,
    decode,
    encode,
    validate_request,
)


def two_slot_config(**overrides):
    """toy_counter default slot + firewall slot steered at IPv4."""
    settings = dict(
        programs=[ProgramSpec("bg", toy_counter.build()),
                  ProgramSpec("fw", firewall.build(), ethertype=0x0800)],
        feed=FeedSpec(source="synth", packets=4096, flows=512,
                      distribution="zipf", seed=7),
        engine="codegen", batch_size=512, exit_when_drained=True,
    )
    settings.update(overrides)
    return ServeConfig(**settings)


class TestProtocol:
    def test_round_trip(self):
        message = {"id": 3, "op": "swap", "name": "fw", "keep_maps": True}
        assert decode(encode(message)) == message

    def test_reject_non_object(self):
        with pytest.raises(ProtocolError):
            decode(b"[1, 2]\n")
        with pytest.raises(ProtocolError):
            decode(b"not json")

    def test_reject_oversized(self):
        with pytest.raises(ProtocolError):
            encode({"id": 1, "op": "ping", "blob": "x" * MAX_LINE})

    def test_validate_request(self):
        assert validate_request({"op": "ping"}) == "ping"
        with pytest.raises(ProtocolError):
            validate_request({"op": "reboot"})
        with pytest.raises(ProtocolError):
            validate_request({"id": 1})


class TestFeedSpec:
    def test_parse_gen(self):
        spec = parse_feed_spec("gen:packets=200,flows=10,dist=zipf,seed=5")
        assert spec.source == "gen"
        assert (spec.packets, spec.flows, spec.seed) == (200, 10, 5)
        assert spec.distribution == "zipf"

    def test_parse_synth_with_exponent(self):
        spec = parse_feed_spec("synth:flows=0x100,exponent=1.2")
        assert spec.source == "synth"
        assert spec.flows == 256
        assert spec.zipf_exponent == 1.2

    def test_parse_pcap(self):
        assert parse_feed_spec("pcap:/tmp/x.pcap").path == "/tmp/x.pcap"
        assert parse_feed_spec("/tmp/y.pcap").source == "pcap"

    def test_parse_errors(self):
        with pytest.raises(ValueError):
            parse_feed_spec("dpdk:packets=1")
        with pytest.raises(ValueError):
            parse_feed_spec("gen:bogus=1")
        with pytest.raises(ValueError):
            parse_feed_spec("gen:packets")
        with pytest.raises(ValueError):
            parse_feed_spec("gen:dist=pareto")

    def test_describe_round_trips(self):
        spec = parse_feed_spec("synth:packets=9,flows=3,dist=zipf")
        assert parse_feed_spec(spec.describe()) == spec


class TestFeeder:
    def test_deterministic_restart(self):
        feeder = Feeder(FeedSpec(source="synth", packets=300, flows=50,
                                 distribution="zipf", seed=3))
        first = [bytes(f) for f in feeder.frames()]
        second = [bytes(f) for f in feeder.frames()]
        assert first == second
        assert len(first) == 300

    def test_synth_matches_flow_enumeration(self):
        feeder = Feeder(FeedSpec(source="synth", packets=64, flows=4,
                                 seed=1))
        for frame in feeder.frames():
            src = int.from_bytes(frame[26:30], "big")
            sport = int.from_bytes(frame[34:36], "big")
            index = sport - 1024
            assert 0 <= index < 4
            assert src == flow_at(index).src_ip

    def test_synth_ip_checksum_valid(self):
        feeder = Feeder(FeedSpec(source="synth", packets=8, flows=8))
        for frame in feeder.frames():
            total = sum(
                int.from_bytes(frame[off:off + 2], "big")
                for off in range(14, 34, 2)
            )
            while total >> 16:
                total = (total & 0xFFFF) + (total >> 16)
            assert total == 0xFFFF

    def test_batches_cut_and_seal(self):
        feeder = Feeder(FeedSpec(source="gen", packets=70, flows=5))
        batches = list(feeder.batches(32))
        assert [len(b) for b in batches] == [32, 32, 6]

    def test_pcap_feed(self, tmp_path):
        from repro.net.pcap import write_pcap

        frames = [udp_packet(sport=1000 + i) for i in range(5)]
        path = tmp_path / "t.pcap"
        write_pcap(str(path), [(i * 1e-6, f) for i, f in enumerate(frames)])
        feeder = Feeder(parse_feed_spec(str(path)))
        assert [bytes(f) for f in feeder.frames()] == frames


class TestCarryMaps:
    def test_carries_matching_entries(self):
        prog = firewall.build()
        from repro.ebpf.maps import MapSet

        old = MapSet(prog.maps)
        key = firewall.flow_key(flow_at(0))
        old.by_name("flows").update(key, b"\x05" + bytes(7))
        fresh = carry_maps(old, firewall.build())
        assert fresh.by_name("flows").lookup(key) == b"\x05" + bytes(7)

    def test_shape_mismatch_keeps_fresh_map(self):
        from repro.ebpf.maps import MapSet

        old = MapSet(firewall.build().maps)
        old.by_name("flows").update(firewall.flow_key(flow_at(0)), bytes(8))
        fresh = carry_maps(old, toy_counter.build())  # no 'flows' map
        assert all(m.entry_count() == 0 or m.name != "flows"
                   for m in fresh.maps.values())

    @staticmethod
    def _prog_with(map_type, key_size=4, value_size=8, max_entries=4):
        from repro.ebpf.asm import assemble_program
        from repro.ebpf.isa import MapSpec

        spec = MapSpec("conns", map_type, key_size=key_size,
                       value_size=value_size, max_entries=max_entries)
        return assemble_program("r0 = 2\nexit", maps={"conns": spec})

    def test_lru_carry_preserves_eviction_order(self):
        from repro.ebpf.maps import MapSet

        old = MapSet(self._prog_with("lru_hash").maps)
        conns = old.by_name("conns")
        keys = [i.to_bytes(4, "little") for i in range(1, 5)]
        for key in keys:
            conns.update(key, bytes(8))
        conns.lookup(keys[0])  # touch: recency now k2, k3, k4, k1
        fresh = carry_maps(old, self._prog_with("lru_hash"))
        carried = fresh.by_name("conns")
        assert carried.lru_keys() == conns.lru_keys()
        # the carried recency order governs eviction: a fifth insert
        # must evict k2, not k1
        carried.update((9).to_bytes(4, "little"), bytes(8))
        assert carried.lookup(keys[1]) is None
        assert carried.lookup(keys[0]) is not None

    def test_kind_mismatch_refuses_carry(self):
        from repro.ebpf.maps import MapSet

        # same name, same geometry, different map kind — carrying hash
        # entries into an LRU map would fabricate a recency order
        for old_kind, new_kind in (("hash", "lru_hash"),
                                   ("lru_hash", "hash")):
            old = MapSet(self._prog_with(old_kind).maps)
            old.by_name("conns").update(bytes(4), bytes(8))
            fresh = carry_maps(old, self._prog_with(new_kind))
            assert fresh.by_name("conns").entry_count() == 0

    def test_geometry_mismatch_refuses_carry(self):
        from repro.ebpf.maps import MapSet

        old = MapSet(self._prog_with("lru_hash").maps)
        old.by_name("conns").update(bytes(4), bytes(8))
        fresh = carry_maps(old, self._prog_with("lru_hash", value_size=16))
        assert fresh.by_name("conns").entry_count() == 0


class TestBoundarySemantics:
    def test_map_write_at_boundary_zero_seen_by_first_batch(self):
        config = two_slot_config()
        daemon = NicDaemon(config)
        key = firewall.flow_key(flow_at(0))
        pending = daemon.schedule(0, {
            "op": "map_update", "program": "fw", "map": "flows",
            "key": key.hex(), "value": "00" * 8,
        })
        report = daemon.run()
        assert pending.error is None
        fw = report["programs"]["fw"]["incarnations"][0]
        # flow 0 is the hottest Zipf flow; with the allow entry installed
        # before any traffic, some of its packets must have been TXed
        assert fw["actions"].get("TX", 0) > 0
        assert report["journal"][0] == {
            "batch": 0, "op": "map_update", "name": "fw", "map": "flows",
            "key": key.hex(), "value": "00" * 8,
        }

    def test_swap_lands_exactly_at_scheduled_boundary(self):
        config = two_slot_config()
        daemon = NicDaemon(config)
        daemon.schedule(3, {"op": "swap", "name": "fw",
                            "program": toy_counter.build()})
        report = daemon.run()
        incarnations = report["programs"]["fw"]["incarnations"]
        assert [i["program"] for i in incarnations] == [
            "firewall", "toy_counter"
        ]
        assert incarnations[1]["from_batch"] == 3
        # every frame in this feed is IPv4 -> steered at fw, so the
        # packet split must equal the batch split exactly
        assert incarnations[0]["packets"] == 3 * config.batch_size
        assert incarnations[0]["packets"] + incarnations[1]["packets"] == 4096
        assert report["journal"][-1]["op"] == "swap"
        assert report["journal"][-1]["batch"] == 3

    def test_keep_maps_survives_swap(self):
        config = two_slot_config()
        daemon = NicDaemon(config)
        key = firewall.flow_key(flow_at(0))
        daemon.schedule(0, {"op": "map_update", "program": "fw",
                            "map": "flows", "key": key.hex(),
                            "value": "00" * 8})
        daemon.schedule(4, {"op": "swap", "name": "fw",
                            "program": firewall.build(),
                            "keep_maps": True})
        report = daemon.run()
        flows = report["maps"]["fw"]["flows"]
        assert key.hex() in flows
        second = report["programs"]["fw"]["incarnations"][1]
        assert second["actions"].get("TX", 0) > 0  # allow entry survived

    def test_swap_without_keep_maps_resets_state(self):
        config = two_slot_config()
        daemon = NicDaemon(config)
        key = firewall.flow_key(flow_at(0))
        daemon.schedule(0, {"op": "map_update", "program": "fw",
                            "map": "flows", "key": key.hex(),
                            "value": "00" * 8})
        daemon.schedule(4, {"op": "swap", "name": "fw",
                            "program": firewall.build()})
        report = daemon.run()
        assert report["maps"]["fw"]["flows"] == {}
        second = report["programs"]["fw"]["incarnations"][1]
        assert second["actions"].get("TX", 0) == 0

    def test_unload_falls_back_to_default_slot(self):
        config = two_slot_config()
        daemon = NicDaemon(config)
        daemon.schedule(2, {"op": "unload", "name": "fw"})
        report = daemon.run()
        assert "fw" in report["retired"]
        bg = report["programs"]["bg"]["incarnations"][0]
        # after the unload every IPv4 frame falls back to slot 0
        assert bg["packets"] == 4096 - 2 * config.batch_size

    def test_load_then_steer(self):
        config = two_slot_config()
        daemon = NicDaemon(config)
        daemon.schedule(2, {"op": "load", "name": "fw2",
                            "program": firewall.build(),
                            "ethertype": 0x0800})
        report = daemon.run()
        fw2 = report["programs"]["fw2"]["incarnations"][0]
        assert fw2["from_batch"] == 2
        assert fw2["packets"] == 4096 - 2 * config.batch_size

    def test_boundary_replay_identity(self):
        config = two_slot_config()
        daemon = NicDaemon(config)
        key = firewall.flow_key(flow_at(1))
        daemon.schedule(0, {"op": "map_update", "program": "fw",
                            "map": "flows", "key": key.hex(),
                            "value": "00" * 8})
        daemon.schedule(2, {"op": "map_delete", "program": "fw",
                            "map": "flows", "key": key.hex()})
        daemon.schedule(5, {"op": "swap", "name": "fw",
                            "program": firewall.build(),
                            "keep_maps": True})
        report = daemon.run()
        offline = segmented_replay(config, report, daemon.program_table)
        assert verify_replay(report, offline) == []


class TestQuarantine:
    def _daemon_with_poisoned_fw(self, fail_on_call=2):
        config = two_slot_config()
        daemon = NicDaemon(config)
        sim = daemon.nic._sim_for(1)
        original = sim.run_packets
        calls = {"n": 0}

        def poisoned(frames, **kwargs):
            calls["n"] += 1
            if calls["n"] == fail_on_call:
                raise SimError("injected fault")
            return original(frames, **kwargs)

        sim.run_packets = poisoned
        return config, daemon

    def test_simerror_quarantines_not_fatal(self):
        config, daemon = self._daemon_with_poisoned_fw()
        report = daemon.run()
        assert report["quarantined"] == ["fw"]
        fw = report["programs"]["fw"]
        assert fw["state"] == "quarantined"
        # failed batch + all later batches are counted, not executed
        assert fw["quarantined_frames"] == 4096 - config.batch_size
        events = [e for e in report["journal"] if e.get("event")]
        assert events == [{"batch": 2, "event": "quarantine",
                           "name": "fw", "error": events[0]["error"]}]
        assert "injected fault" in events[0]["error"]
        # the other slot kept serving every batch
        assert report["batches"] == 8

    def test_quarantine_metrics(self):
        from repro import telemetry

        with telemetry.scoped() as registry:
            _config, daemon = self._daemon_with_poisoned_fw()
            daemon.registry = registry
            daemon.run()
            names = {
                (m["name"], tuple(sorted(m.get("labels", {}).items())))
                for m in registry.snapshot()["metrics"]
            }
        assert ("ehdl_serve_quarantined_total",
                (("program", "fw"),)) in names
        assert ("ehdl_serve_quarantined_frames_total",
                (("program", "fw"),)) in names

    def test_replay_excludes_quarantined_program(self):
        config, daemon = self._daemon_with_poisoned_fw()
        report = daemon.run()
        offline = segmented_replay(config, report, daemon.program_table)
        assert verify_replay(report, offline) == []

    def test_swap_revives_quarantined_slot(self):
        config, daemon = self._daemon_with_poisoned_fw(fail_on_call=1)
        daemon.schedule(4, {"op": "swap", "name": "fw",
                            "program": firewall.build()})
        report = daemon.run()
        assert report["quarantined"] == []
        incarnations = report["programs"]["fw"]["incarnations"]
        assert incarnations[-1]["packets"] == 4 * config.batch_size


class TestControlErrors:
    def test_unknown_program(self):
        daemon = NicDaemon(two_slot_config())
        with pytest.raises(ServeError):
            daemon.handle({"op": "map_lookup", "program": "nope",
                           "map": "flows", "key": 0})

    def test_unknown_map(self):
        daemon = NicDaemon(two_slot_config())
        with pytest.raises(ServeError):
            daemon.handle({"op": "map_lookup", "program": "fw",
                           "map": "nope", "key": 0})

    def test_wrong_key_width(self):
        daemon = NicDaemon(two_slot_config())
        with pytest.raises(ServeError):
            daemon.handle({"op": "map_lookup", "program": "fw",
                           "map": "flows", "key": "aabb"})

    def test_duplicate_slot_names_rejected(self):
        with pytest.raises(ServeError):
            NicDaemon(two_slot_config(programs=[
                ProgramSpec("x", toy_counter.build()),
                ProgramSpec("x", firewall.build()),
            ]))


class TestServerSocket:
    def test_end_to_end_over_unix_socket(self, tmp_path):
        config = two_slot_config(
            feed=FeedSpec(source="synth", packets=200_000, flows=64),
            batch_size=256, exit_when_drained=False,
        )
        daemon = NicDaemon(config)
        socket_path = str(tmp_path / "serve.sock")
        result = {}

        def serve():
            result["report"] = daemon.run()

        thread = threading.Thread(target=serve, daemon=True)
        with ServeServer(daemon, socket_path):
            thread.start()
            with CtlClient.wait_for(socket_path, timeout=10) as ctl:
                pong = ctl.call("ping")
                assert pong["pong"] is True and pong["protocol"] == 1
                key = firewall.flow_key(flow_at(2))
                updated = ctl.call("map_update", program="fw", map="flows",
                                   key=key.hex(), value="00" * 8)
                assert updated["key"] == key.hex()
                looked = ctl.call("map_lookup", program="fw", map="flows",
                                  key=key.hex())
                # the data plane keeps counting this flow between our
                # calls, so assert presence, not the exact counter value
                assert looked["value"] is not None
                items = ctl.call("map_items", program="fw", map="flows")
                assert key.hex() in [k for k, _v in items["items"]]
                swap = ctl.call("swap", name="fw",
                                program="app:toy_counter")
                assert swap["program"] == "toy_counter"
                status = ctl.call("status")
                assert status["steering"] == {"0x0800": "fw"}
                assert {p["name"] for p in status["programs"]} == {"bg", "fw"}
                with pytest.raises(CtlError):
                    ctl.call("swap", name="missing", program="app:firewall")
                metrics = ctl.call("metrics")
                assert any(m["name"] == "ehdl_serve_swaps_total"
                           for m in metrics["metrics"])
                stopping = ctl.call("shutdown")
                assert stopping["stopping"] is True
            thread.join(timeout=30)
        assert not thread.is_alive()
        report = result["report"]
        assert report["programs"]["fw"]["swaps"] == 1
        journal_ops = [e.get("op") for e in report["journal"]]
        assert journal_ops[-1] == "shutdown"
        assert "swap" in journal_ops and "map_update" in journal_ops

    def test_malformed_line_gets_error_response(self, tmp_path):
        import json
        import socket as socketlib

        daemon = NicDaemon(two_slot_config())
        socket_path = str(tmp_path / "serve.sock")
        with ServeServer(daemon, socket_path):
            client = socketlib.socket(socketlib.AF_UNIX,
                                      socketlib.SOCK_STREAM)
            client.connect(socket_path)
            client.sendall(b"this is not json\n")
            line = client.makefile().readline()
            client.close()
        response = json.loads(line)
        assert response["ok"] is False


class TestCli:
    def test_serve_cli_with_replay_verification(self, capsys, tmp_path):
        import json

        from repro.cli import main

        report_path = tmp_path / "report.json"
        code = main([
            "serve",
            "--program", "bg=app:toy_counter",
            "--program", "fw=app:firewall",
            "--steer", "fw=0x0800",
            "--feed", "gen:packets=1500,flows=40,dist=zipf,seed=2",
            "--batch-size", "256",
            "--exit-when-drained",
            "--verify-replay",
            "--report-out", str(report_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "bit-identical" in out
        report = json.loads(report_path.read_text())
        assert report["divergences"] == []
        assert report["frames"] == 1500

    def test_serve_rejects_bad_program_syntax(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["serve", "--program", "no-equals-sign",
                  "--exit-when-drained"])

    def test_ctl_unreachable_daemon(self, capsys, tmp_path):
        from repro.cli import main

        code = main(["ctl", "--socket", str(tmp_path / "none.sock"),
                     "--timeout", "0.2", "ping"])
        assert code == 2


class TestSoak:
    """The acceptance soak: a million-flow Zipfian stream, mid-stream
    hot-swaps and map writes, bit-identical to the offline replay."""

    def test_million_flow_soak_with_hot_swaps(self):
        config = two_slot_config(
            feed=FeedSpec(source="synth", packets=30_000,
                          flows=1_000_000, distribution="zipf", seed=11),
            batch_size=1024,
        )
        daemon = NicDaemon(config)
        scheduled = []
        for i in range(4):  # seed allow-entries for the 4 hottest flows
            key = firewall.flow_key(flow_at(i))
            scheduled.append(daemon.schedule(0, {
                "op": "map_update", "program": "fw", "map": "flows",
                "key": key.hex(), "value": "00" * 8,
            }))
        # a same-program upgrade keeping its flow table, a cross-program
        # swap, and a default-slot swap: three mid-stream switchovers
        scheduled.append(daemon.schedule(5, {
            "op": "swap", "name": "fw", "program": firewall.build(),
            "keep_maps": True,
        }))
        scheduled.append(daemon.schedule(12, {
            "op": "swap", "name": "fw", "program": toy_counter.build(),
        }))
        scheduled.append(daemon.schedule(20, {
            "op": "swap", "name": "bg", "program": toy_counter.build(),
        }))
        report = daemon.run()
        assert [p.error for p in scheduled] == [None] * len(scheduled)

        # >= 3 mid-stream hot-swaps actually landed
        swaps = [e for e in report["journal"] if e.get("op") == "swap"]
        assert len(swaps) == 3
        assert [e["batch"] for e in swaps] == [5, 12, 20]
        assert report["epoch"] == 3

        # zero dropped frames across every swap: every offered frame is
        # accounted to exactly one incarnation of one slot
        accounted = sum(
            incarnation["packets"]
            for program in report["programs"].values()
            for incarnation in program["incarnations"]
        )
        assert accounted == report["frames"] == 30_000
        assert report["quarantined"] == []

        # the keep_maps upgrade at batch 5 preserved the seeded allow
        # entries: the second firewall incarnation still TXes them
        incarnations = report["programs"]["fw"]["incarnations"]
        assert [i["program"] for i in incarnations] == [
            "firewall", "firewall", "toy_counter"
        ]
        assert incarnations[0]["actions"].get("TX", 0) > 0
        assert incarnations[1]["actions"].get("TX", 0) > 0

        # bit-identical against the offline segmented replay: action
        # counts per incarnation, cycles, and final map state
        offline = segmented_replay(config, report, daemon.program_table)
        divergences = verify_replay(report, offline)
        assert divergences == []

        # swap latency telemetry flowed through the registry
        assert len(report["swap_latencies_us"]) == 3
        assert all(lat > 0 for lat in report["swap_latencies_us"])

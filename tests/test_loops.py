"""Bounded-loop unrolling tests (§2.2 / §3.5)."""

import pytest

from repro.core import compile_program
from repro.core.loops import (
    LoopError,
    find_backward_branch,
    unroll_loops,
)
from repro.ebpf.asm import assemble_program
from repro.ebpf.vm import run_program
from repro.ebpf.xdp import XdpAction
from repro.hwsim import run_differential

PKT = bytes(range(64))

SUM_LOOP = """
    r6 = *(u32 *)(r1 + 0)
    r7 = *(u32 *)(r1 + 4)
    r2 = r6
    r2 += 8
    if r2 > r7 goto drop
    r9 = 0
    r8 = 0
loop:
    r3 = r6
    r3 += r8
    r4 = *(u8 *)(r3 + 0)
    r9 += r4
    r8 += 1
    if r8 != 8 goto loop
    *(u64 *)(r6 + 0) = r9
    r0 = 2
    exit
drop:
    r0 = 1
    exit
"""


class TestDetection:
    def test_finds_backward_branch(self):
        prog = assemble_program(SUM_LOOP)
        assert find_backward_branch(prog) is not None

    def test_straight_line_has_none(self):
        prog = assemble_program("r0 = 2\nexit")
        assert find_backward_branch(prog) is None


class TestUnrolling:
    def test_trip_count(self):
        prog = assemble_program(SUM_LOOP)
        unrolled, report = unroll_loops(prog)
        assert report.loops_unrolled == 1
        assert report.total_trip_count == 8
        assert find_backward_branch(unrolled) is None

    def test_semantics_preserved(self):
        prog = assemble_program(SUM_LOOP)
        unrolled, _ = unroll_loops(prog)
        for pkt in (PKT, bytes(64), bytes([0xFF] * 64)):
            assert run_program(unrolled, pkt).packet == run_program(prog, pkt).packet

    def test_decrementing_loop(self):
        source = """
            r6 = *(u32 *)(r1 + 0)
            r9 = 0
            r8 = 5
        loop:
            r9 += r8
            r8 -= 1
            if r8 != 0 goto loop
            *(u64 *)(r6 + 0) = r9
            r0 = 2
            exit
        """
        prog = assemble_program(source)
        unrolled, report = unroll_loops(prog)
        assert report.total_trip_count == 5
        res = run_program(unrolled, PKT)
        assert int.from_bytes(res.packet[:8], "little") == 15

    def test_break_out_of_loop(self):
        # a conditional exit from mid-body must be retargeted per copy
        source = """
            r6 = *(u32 *)(r1 + 0)
            r9 = 0
            r8 = 0
        loop:
            r4 = *(u8 *)(r6 + 0)
            if r4 == 77 goto found
            r9 += 1
            r8 += 1
            if r8 != 4 goto loop
            r0 = 2
            exit
        found:
            r0 = 1
            exit
        """
        prog = assemble_program(source)
        unrolled, _ = unroll_loops(prog)
        assert run_program(unrolled, bytes([77]) + bytes(63)).action == XdpAction.DROP
        assert run_program(unrolled, bytes(64)).action == XdpAction.PASS

    def test_prefix_jump_over_loop_stretched(self):
        source = """
            r6 = *(u32 *)(r1 + 0)
            r8 = 0
            r9 = 0
            if r9 == 0 goto after
        loop:
            r9 += 1
            r8 += 1
            if r8 != 3 goto loop
        after:
            r0 = 2
            exit
        """
        prog = assemble_program(source)
        unrolled, _ = unroll_loops(prog)
        assert run_program(unrolled, PKT).action == XdpAction.PASS

    def test_compiled_loop_matches_vm(self):
        prog = assemble_program(SUM_LOOP)
        run_differential(prog, [PKT, bytes(64), bytes(3)]).raise_on_mismatch()

    def test_pipeline_reports_unroll(self):
        pipe = compile_program(assemble_program(SUM_LOOP))
        assert pipe.loops_unrolled == 1


class TestRejections:
    def test_unconditional_backward_jump(self):
        source = """
        top:
            r0 = 0
            goto top
        """
        with pytest.raises(LoopError, match="unbounded"):
            unroll_loops(assemble_program(source))

    def test_data_dependent_bound(self):
        # the induction register is loaded from the packet: not static
        source = """
            r6 = *(u32 *)(r1 + 0)
            r8 = *(u8 *)(r6 + 0)
        loop:
            r8 -= 1
            if r8 != 0 goto loop
            r0 = 2
            exit
        """
        with pytest.raises(LoopError, match="initial value"):
            unroll_loops(assemble_program(source))

    def test_register_comparison_bound(self):
        source = """
            r8 = 0
            r9 = 5
        loop:
            r8 += 1
            if r8 != r9 goto loop
            r0 = 2
            exit
        """
        with pytest.raises(LoopError, match="constant"):
            unroll_loops(assemble_program(source))

    def test_non_constant_step(self):
        source = """
            r8 = 8
            r9 = 2
        loop:
            r8 /= r9
            if r8 != 1 goto loop
            r0 = 2
            exit
        """
        with pytest.raises(LoopError, match="unsupported"):
            unroll_loops(assemble_program(source))

    def test_never_terminating_recurrence(self):
        source = """
            r8 = 0
        loop:
            r8 += 2
            if r8 != 5 goto loop
            r0 = 2
            exit
        """
        with pytest.raises(LoopError, match="trip count exceeds"):
            unroll_loops(assemble_program(source))

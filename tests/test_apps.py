"""Behavioural tests of the evaluation applications (via the VM)."""

import pytest

from repro.apps import (
    EVALUATION_APPS,
    dnat,
    firewall,
    leaky_bucket,
    router,
    suricata,
    toy_counter,
    tunnel,
)
from repro.ebpf.maps import MapSet
from repro.ebpf.vm import Vm
from repro.ebpf.xdp import XdpAction
from repro.net.packet import (
    ETH_HLEN,
    FiveTuple,
    IPv4,
    Udp,
    checksum16,
    ipv4,
    ipv4_str,
    mac,
    parse_five_tuple,
    tcp_packet,
    udp_packet,
)


def vm_for(prog):
    maps = MapSet(prog.maps)
    return Vm(prog, maps=maps), maps


class TestToyCounter:
    def test_counts_by_ethertype(self):
        prog = toy_counter.build()
        vm, maps = vm_for(prog)
        for key in (1, 1, 2, 3, 0, 0, 0):
            res = vm.run(toy_counter.packet_for_key(key))
            assert res.action == XdpAction.TX
        stats = maps.by_name("stats")
        counts = [
            int.from_bytes(stats.lookup(i.to_bytes(4, "little")), "little")
            for i in range(4)
        ]
        assert counts == [3, 2, 1, 1]

    def test_short_packet_dropped(self):
        prog = toy_counter.build()
        vm, _ = vm_for(prog)
        assert vm.run(bytes(10)).action == XdpAction.DROP

    def test_expected_key_helper(self):
        for key in range(4):
            frame = toy_counter.packet_for_key(key)
            assert toy_counter.expected_key(frame) == key


class TestFirewall:
    F = FiveTuple(ipv4("10.0.0.1"), ipv4("192.168.9.9"), 17, 5555, 53)

    def _packet(self, ft, **kw):
        return udp_packet(src_ip=ft.src_ip, dst_ip=ft.dst_ip,
                          sport=ft.sport, dport=ft.dport, size=64, **kw)

    def test_unknown_flow_dropped(self):
        vm, _ = vm_for(firewall.build())
        assert vm.run(self._packet(self.F)).action == XdpAction.DROP

    def test_allowed_flow_forwarded(self):
        vm, maps = vm_for(firewall.build())
        firewall.allow_flow(maps, self.F)
        assert vm.run(self._packet(self.F)).action == XdpAction.TX

    def test_reverse_direction_allowed(self):
        vm, maps = vm_for(firewall.build())
        firewall.allow_flow(maps, self.F)
        assert vm.run(self._packet(self.F.reversed())).action == XdpAction.TX

    def test_counter_increments(self):
        vm, maps = vm_for(firewall.build())
        firewall.allow_flow(maps, self.F)
        for _ in range(5):
            vm.run(self._packet(self.F))
        assert firewall.flow_counter(maps, self.F) == 5

    def test_non_udp_passes(self):
        vm, _ = vm_for(firewall.build())
        assert vm.run(tcp_packet(size=64)).action == XdpAction.PASS

    def test_non_ip_passes(self):
        vm, _ = vm_for(firewall.build())
        frame = bytearray(udp_packet(size=64))
        frame[12:14] = b"\x86\xdd"
        assert vm.run(bytes(frame)).action == XdpAction.PASS


class TestRouter:
    DST_MAC = mac("02:0a:0b:0c:0d:0e")
    SRC_MAC = mac("02:01:02:03:04:05")

    def _vm(self):
        vm, maps = vm_for(router.build())
        router.add_route(maps, ipv4("192.168.7.1"), self.DST_MAC, self.SRC_MAC, 5)
        return vm, maps

    def test_routed_packet(self):
        vm, maps = self._vm()
        res = vm.run(udp_packet(dst_ip="192.168.7.200", size=64, ttl=9))
        assert res.action == XdpAction.REDIRECT
        assert res.redirect_ifindex == 5
        assert res.packet[0:6] == self.DST_MAC
        assert res.packet[6:12] == self.SRC_MAC
        hdr = res.packet[ETH_HLEN : ETH_HLEN + 20]
        assert hdr[8] == 8  # ttl decremented
        assert checksum16(hdr) == 0  # incremental checksum stays valid
        assert router.routed_count(maps) == 1

    def test_checksum_carry_wrap(self):
        # a TTL whose checksum word wraps exercises the carry folding
        vm, _ = self._vm()
        for ttl in (1 + 1, 17, 64, 255):
            res = vm.run(udp_packet(dst_ip="192.168.7.3", size=64, ttl=ttl))
            hdr = res.packet[ETH_HLEN : ETH_HLEN + 20]
            assert checksum16(hdr) == 0, f"ttl={ttl}"

    def test_no_route_passes(self):
        vm, _ = self._vm()
        assert vm.run(udp_packet(dst_ip="8.8.8.8", size=64)).action == XdpAction.PASS

    def test_ttl_expiry_passes_to_kernel(self):
        vm, _ = self._vm()
        res = vm.run(udp_packet(dst_ip="192.168.7.4", size=64, ttl=1))
        assert res.action == XdpAction.PASS

    def test_prefix_match_is_slash24(self):
        vm, _ = self._vm()
        assert vm.run(udp_packet(dst_ip="192.168.7.77", size=64)).action == XdpAction.REDIRECT
        assert vm.run(udp_packet(dst_ip="192.168.8.1", size=64)).action == XdpAction.PASS


class TestTunnel:
    def _vm(self):
        vm, maps = vm_for(tunnel.build())
        tunnel.add_tunnel(maps, ipv4("10.5.0.9"), ipv4("100.0.0.1"),
                          ipv4("100.0.0.2"), mac("02:ff:00:00:00:01"),
                          mac("02:ff:00:00:00:02"))
        return vm, maps

    def test_encapsulation(self):
        vm, maps = self._vm()
        inner = udp_packet(dst_ip="10.5.0.9", size=90)
        res = vm.run(inner)
        assert res.action == XdpAction.TX
        assert len(res.packet) == 90 + 20
        outer = IPv4.parse(res.packet[ETH_HLEN:])
        assert outer.proto == 4  # IPIP
        assert ipv4_str(outer.src) == "100.0.0.1"
        assert ipv4_str(outer.dst) == "100.0.0.2"
        assert checksum16(res.packet[ETH_HLEN : ETH_HLEN + 20]) == 0
        assert outer.total_length == (90 - ETH_HLEN) + 20
        # inner packet preserved after the outer headers
        assert res.packet[ETH_HLEN + 20 :] == inner[ETH_HLEN:]
        assert tunnel.encapsulated_count(maps) == 1

    def test_new_ethernet_header(self):
        vm, _ = self._vm()
        res = vm.run(udp_packet(dst_ip="10.5.0.9", size=64))
        assert res.packet[0:6] == mac("02:ff:00:00:00:01")
        assert res.packet[12:14] == b"\x08\x00"

    def test_unconfigured_destination_passes(self):
        vm, _ = self._vm()
        assert vm.run(udp_packet(dst_ip="9.9.9.9", size=64)).action == XdpAction.PASS


class TestDnat:
    def _frames(self, n=3):
        return [udp_packet(src_ip=f"172.16.0.{i+1}", dst_ip="8.8.4.4",
                           sport=7000 + i, dport=53, size=64) for i in range(n)]

    def test_first_packet_allocates_binding(self):
        vm, maps = vm_for(dnat.build())
        res = vm.run(self._frames(1)[0])
        assert res.action == XdpAction.TX
        ft = parse_five_tuple(res.packet)
        assert ipv4_str(ft.src_ip) == "100.64.0.1"
        assert ft.sport == 1024
        assert dnat.bindings_count(maps) == 1

    def test_binding_reused(self):
        vm, maps = vm_for(dnat.build())
        frame = self._frames(1)[0]
        first = vm.run(frame)
        second = vm.run(frame)
        assert first.packet == second.packet
        assert dnat.bindings_count(maps) == 1

    def test_distinct_flows_get_distinct_ports(self):
        vm, maps = vm_for(dnat.build())
        ports = set()
        for frame in self._frames(5):
            res = vm.run(frame)
            ports.add(parse_five_tuple(res.packet).sport)
        assert len(ports) == 5

    def test_checksum_valid_after_rewrite(self):
        vm, _ = vm_for(dnat.build())
        res = vm.run(self._frames(1)[0])
        assert checksum16(res.packet[ETH_HLEN : ETH_HLEN + 20]) == 0
        # UDP checksum cleared (legal for IPv4)
        assert res.packet[40:42] == b"\x00\x00"

    def test_reverse_binding_installed(self):
        vm, maps = vm_for(dnat.build())
        vm.run(self._frames(1)[0])
        assert maps.by_name("rnat").entry_count() == 1

    def test_host_binding_reader(self):
        vm, maps = vm_for(dnat.build())
        frame = self._frames(1)[0]
        vm.run(frame)
        ft = parse_five_tuple(frame)
        binding = dnat.binding_for(maps, ft)
        assert binding == (ipv4("100.64.0.1"), 1024)

    def test_non_udp_passes(self):
        vm, _ = vm_for(dnat.build())
        assert vm.run(tcp_packet(size=64)).action == XdpAction.PASS


class TestSuricata:
    BAD = FiveTuple(ipv4("6.6.6.6"), ipv4("10.0.0.1"), 17, 31337, 53)

    def _vm(self):
        vm, maps = vm_for(suricata.build())
        suricata.add_bypass(maps, self.BAD)
        return vm, maps

    def test_bypassed_flow_dropped(self):
        vm, maps = self._vm()
        frame = udp_packet(src_ip=self.BAD.src_ip, dst_ip=self.BAD.dst_ip,
                           sport=self.BAD.sport, dport=self.BAD.dport, size=64)
        assert vm.run(frame).action == XdpAction.DROP
        assert suricata.stats(maps)["dropped"] == 1

    def test_clean_traffic_passes_with_stats(self):
        vm, maps = self._vm()
        assert vm.run(udp_packet(size=64)).action == XdpAction.PASS
        assert vm.run(tcp_packet(size=64)).action == XdpAction.PASS
        stats = suricata.stats(maps)
        assert stats["udp"] == 1 and stats["tcp"] == 1

    def test_non_l4_counts_total(self):
        vm, maps = self._vm()
        frame = bytearray(udp_packet(size=64))
        frame[23] = 1  # ICMP
        # break the IP checksum deliberately? program does not validate it
        assert vm.run(bytes(frame)).action == XdpAction.PASS
        assert suricata.stats(maps)["total"] == 1


class TestLeakyBucket:
    def test_rate_limits_single_flow(self):
        prog = leaky_bucket.build()
        maps = MapSet(prog.maps)
        vm = Vm(prog, maps=maps)
        frame = udp_packet(src_ip="10.0.0.1", sport=1000, size=64)
        results = []
        for i in range(100):
            vm.time_ns = i * 100  # 10 Mpps offered, far above the rate
            results.append(vm.run(frame).action)
        dropped = sum(1 for a in results if a == XdpAction.DROP)
        assert dropped > 50  # heavily limited

    def test_slow_flow_unlimited(self):
        prog = leaky_bucket.build()
        maps = MapSet(prog.maps)
        vm = Vm(prog, maps=maps)
        frame = udp_packet(src_ip="10.0.0.2", sport=1000, size=64)
        results = []
        for i in range(50):
            vm.time_ns = i * 50_000  # 20 kpps: under the configured rate
            results.append(vm.run(frame).action)
        assert all(a == XdpAction.TX for a in results)

    def test_buckets_created_per_flow(self):
        prog = leaky_bucket.build()
        maps = MapSet(prog.maps)
        vm = Vm(prog, maps=maps)
        for i in range(5):
            vm.run(udp_packet(src_ip=f"10.0.1.{i+1}", sport=1000 + i, size=64))
        assert leaky_bucket.bucket_count(maps) == 5


class TestInventory:
    def test_five_evaluation_apps(self):
        assert set(EVALUATION_APPS) == {"firewall", "router", "tunnel",
                                        "dnat", "suricata"}

    def test_all_apps_compile(self):
        from repro.core import compile_program

        for mod in EVALUATION_APPS.values():
            pipe = compile_program(mod.build())
            assert pipe.n_stages > 5


class TestDnatBidirectional:
    """The forward + reverse NAT programs sharing pinned maps."""

    OUT = udp_packet(src_ip="172.16.0.5", dst_ip="8.8.8.8",
                     sport=5555, dport=53, size=64)

    def test_round_trip(self):
        from repro.core import compile_program
        from repro.hwsim import PipelineSimulator

        fwd = compile_program(dnat.build())
        rev = compile_program(dnat.build_reverse())
        maps = MapSet(dnat.build().maps)
        out = PipelineSimulator(fwd, maps=maps).run_packets([self.OUT])
        translated = parse_five_tuple(out.records[0].data)
        reply = udp_packet(src_ip="8.8.8.8", dst_ip=translated.src_ip,
                           sport=53, dport=translated.sport, size=64)
        back_rep = PipelineSimulator(rev, maps=maps).run_packets([reply])
        back = parse_five_tuple(back_rep.records[0].data)
        assert back.dst_ip == ipv4("172.16.0.5")
        assert back.dport == 5555
        assert back_rep.records[0].action == XdpAction.TX
        assert checksum16(back_rep.records[0].data[ETH_HLEN:ETH_HLEN + 20]) == 0

    def test_unknown_reply_passes(self):
        vm, _ = vm_for(dnat.build_reverse())
        stray = udp_packet(src_ip="8.8.8.8", dst_ip="100.64.0.1",
                           sport=53, dport=9999, size=64)
        assert vm.run(stray).action == XdpAction.PASS

    def test_reverse_matches_vm(self):
        from repro.ebpf.vm import Vm
        from repro.hwsim import run_differential

        def setup(maps):
            Vm(dnat.build(), maps=maps).run(self.OUT)

        reply = udp_packet(src_ip="8.8.8.8", dst_ip="100.64.0.1",
                           sport=53, dport=1024, size=64)
        run_differential(dnat.build_reverse(), [reply] * 8,
                         setup=setup).raise_on_mismatch()

    def test_same_map_layout_for_sharing(self):
        fwd, rev = dnat.build(), dnat.build_reverse()
        assert {fd: (s.name, s.key_size, s.value_size)
                for fd, s in fwd.maps.items()} == \
               {fd: (s.name, s.key_size, s.value_size)
                for fd, s in rev.maps.items()}


class TestIcmpEcho:
    def test_replies_to_ping(self):
        from repro.apps import icmp_echo

        vm, _ = vm_for(icmp_echo.build())
        req = icmp_echo.echo_request(ident=7, seq=3, payload=b"x" * 16)
        res = vm.run(req)
        assert res.action == XdpAction.TX
        assert icmp_echo.is_valid_reply(res.packet, req)

    def test_ignores_echo_reply(self):
        from repro.apps import icmp_echo

        vm, _ = vm_for(icmp_echo.build())
        req = bytearray(icmp_echo.echo_request())
        req[34] = 0  # already a reply
        assert vm.run(bytes(req)).action == XdpAction.PASS

    def test_ignores_non_icmp(self):
        from repro.apps import icmp_echo

        vm, _ = vm_for(icmp_echo.build())
        assert vm.run(udp_packet(size=64)).action == XdpAction.PASS

    def test_no_maps_no_hazards(self):
        from repro.apps import icmp_echo
        from repro.core import compile_program

        pipe = compile_program(icmp_echo.build())
        assert not pipe.map_hazards

    def test_pipeline_matches_vm(self):
        from repro.apps import icmp_echo
        from repro.hwsim import run_differential

        frames = [icmp_echo.echo_request(seq=i) for i in range(6)]
        frames.append(b"\x00" * 30)
        run_differential(icmp_echo.build(), frames).raise_on_mismatch()


class TestSuricataV6:
    SRC6 = bytes(15) + b"\x09"
    DST6 = bytes(15) + b"\x02"

    def _vm(self):
        vm, maps = vm_for(suricata.build_v6())
        suricata.add_bypass_v6(maps, self.SRC6, self.DST6, 666, 53)
        return vm, maps

    def test_bypassed_v6_flow_dropped(self):
        from repro.net.packet import udp6_packet

        vm, maps = self._vm()
        frame = udp6_packet(src_ip=self.SRC6, dst_ip=self.DST6,
                            sport=666, dport=53, size=80)
        assert vm.run(frame).action == XdpAction.DROP
        assert suricata.stats(maps)["dropped"] == 1

    def test_clean_v6_passes(self):
        from repro.net.packet import udp6_packet

        vm, maps = self._vm()
        frame = udp6_packet(src_ip=self.SRC6, dst_ip=self.DST6,
                            sport=777, dport=53, size=80)
        assert vm.run(frame).action == XdpAction.PASS
        assert suricata.stats(maps)["udp"] == 1

    def test_ipv4_ignored_by_v6_filter(self):
        vm, _ = self._vm()
        assert vm.run(udp_packet(size=64)).action == XdpAction.PASS

    def test_wide_key_layout(self):
        key = suricata.acl6_key(self.SRC6, self.DST6, 1, 2, 17)
        assert len(key) == 40

    def test_bad_address_length_rejected(self):
        with pytest.raises(ValueError):
            suricata.acl6_key(b"\x00" * 4, self.DST6, 1, 2, 17)

    def test_pipeline_matches_vm(self):
        from repro.hwsim import run_differential
        from repro.net.packet import udp6_packet

        def setup(maps):
            suricata.add_bypass_v6(maps, self.SRC6, self.DST6, 666, 53)

        frames = [
            udp6_packet(src_ip=self.SRC6, dst_ip=self.DST6, sport=666,
                        dport=53, size=80),
            udp6_packet(src_ip=self.SRC6, dst_ip=self.DST6, sport=70,
                        dport=53, size=80),
            udp_packet(size=64),
            b"\x00" * 30,
        ] * 5
        run_differential(suricata.build_v6(), frames,
                         setup=setup).raise_on_mismatch()

"""Bytecode transforms: rewriting, bounds-check elision, DCE."""

import pytest

from repro.core.transform import (
    TransformError,
    dead_code_elimination,
    delete_instructions,
    elide_bounds_checks,
    find_bounds_checks,
    rewrite_program,
)
from repro.ebpf import isa
from repro.ebpf.asm import assemble_program
from repro.ebpf.disasm import disassemble
from repro.ebpf.vm import run_program
from repro.ebpf.xdp import XdpAction

PKT = bytes(range(64))


class TestRewrite:
    def test_delete_retargets_forward_jump(self):
        prog = assemble_program(
            """
            r0 = 2
            if r0 == 9 goto out
            r3 = 7
            r4 = 8
        out:
            exit
            """
        )
        new = delete_instructions(prog, [2])  # delete r3 = 7
        # jump must still reach exit
        assert new.jump_target_index(1) == len(new.instructions) - 1
        assert run_program(new, PKT).action == XdpAction.PASS

    def test_delete_jump_target_moves_to_next(self):
        prog = assemble_program(
            """
            r0 = 1
            goto tgt
        tgt:
            r0 = 2
            exit
            """
        )
        new = delete_instructions(prog, [2])  # delete the r0 = 2 at target
        assert new.jump_target_index(1) == 2  # retargeted to exit
        assert run_program(new, PKT).action == XdpAction.DROP  # r0 stays 1

    def test_delete_across_wide_instruction(self):
        prog = assemble_program(
            """
            r0 = 2
            goto out
            r3 = 5 ll
        out:
            exit
            """
        )
        new = delete_instructions(prog, [2])
        assert run_program(new, PKT).action == XdpAction.PASS

    def test_delete_everything_rejected(self):
        prog = assemble_program("r0 = 1\nexit")
        with pytest.raises(TransformError):
            delete_instructions(prog, [0, 1])

    def test_behaviour_preserved_under_random_nop_deletion(self):
        # deleting dead mov leaves behaviour identical
        prog = assemble_program(
            """
            r5 = 123
            r0 = 2
            if r0 != 2 goto bad
            exit
        bad:
            r0 = 0
            exit
            """
        )
        new = delete_instructions(prog, [0])
        assert run_program(new, PKT).action == run_program(prog, PKT).action


class TestBoundsElision:
    SOURCE = """
        r2 = *(u32 *)(r1 + 4)
        r6 = *(u32 *)(r1 + 0)
        r3 = r6
        r3 += 14
        if r3 > r2 goto drop
        r0 = *(u8 *)(r6 + 12)
        r0 = 2
        exit
    drop:
        r0 = 1
        exit
    """

    def test_detection(self):
        prog = assemble_program(self.SOURCE)
        checks = find_bounds_checks(prog)
        assert len(checks) == 1
        index, taken_is_oob = checks[0]
        assert index == 4 and taken_is_oob

    def test_elision_removes_branch(self):
        prog = assemble_program(self.SOURCE)
        new, report = elide_bounds_checks(prog)
        assert len(report.elided_branches) == 1
        assert not find_bounds_checks(new)
        assert len(new.instructions) == len(prog.instructions) - 1

    def test_behaviour_for_valid_packets_unchanged(self):
        prog = assemble_program(self.SOURCE)
        new, _ = elide_bounds_checks(prog)
        assert run_program(new, PKT).action == run_program(prog, PKT).action

    def test_reversed_operands_detected(self):
        source = """
            r2 = *(u32 *)(r1 + 4)
            r6 = *(u32 *)(r1 + 0)
            r3 = r6
            r3 += 14
            if r2 < r3 goto drop
            r0 = 2
            exit
        drop:
            r0 = 1
            exit
        """
        prog = assemble_program(source)
        checks = find_bounds_checks(prog)
        assert checks and checks[0][1]  # taken edge is OOB

    def test_inbounds_taken_becomes_goto(self):
        source = """
            r2 = *(u32 *)(r1 + 4)
            r6 = *(u32 *)(r1 + 0)
            r3 = r6
            r3 += 14
            if r3 <= r2 goto ok
            r0 = 1
            exit
        ok:
            r0 = 2
            exit
        """
        prog = assemble_program(source)
        new, report = elide_bounds_checks(prog)
        assert len(report.elided_branches) == 1
        assert run_program(new, PKT).action == XdpAction.PASS

    def test_non_bounds_branches_untouched(self):
        source = "r0 = 2\nif r0 == 1 goto +1\nexit\nexit"
        prog = assemble_program(source)
        new, report = elide_bounds_checks(prog)
        assert report.elided_branches == []
        assert new.instructions == prog.instructions


class TestDce:
    def test_removes_dead_alu(self):
        prog = assemble_program("r5 = 99\nr0 = 2\nexit")
        new, removed = dead_code_elimination(prog)
        assert removed == 1
        assert len(new.instructions) == 2

    def test_keeps_live_values(self):
        prog = assemble_program("r0 = 2\nexit")
        new, removed = dead_code_elimination(prog)
        assert removed == 0

    def test_cascading_deadness(self):
        prog = assemble_program("r5 = 1\nr4 = r5\nr3 = r4\nr0 = 2\nexit")
        new, removed = dead_code_elimination(prog)
        assert removed == 3

    def test_keeps_stores_and_calls(self):
        source = """
            r2 = 0
            *(u32 *)(r10 - 4) = r2
            r0 = 2
            exit
        """
        prog = assemble_program(source)
        new, removed = dead_code_elimination(prog)
        assert removed == 0

    def test_liveness_across_branches(self):
        source = """
            r5 = 7
            if r1 == 0 goto use
            r0 = 2
            exit
        use:
            r0 = r5
            r0 = 2
            exit
        """
        prog = assemble_program(source)
        new, removed = dead_code_elimination(prog)
        # r0 = r5 is dead (overwritten before exit); once it is gone, the
        # r5 = 7 definition cascades to dead too.
        assert removed == 2
        texts = disassemble(new.instructions, numbered=False).splitlines()
        assert "r5 = 7" not in texts

    def test_dead_load_removed(self):
        source = """
            r6 = *(u32 *)(r1 + 0)
            r5 = *(u8 *)(r6 + 3)
            r0 = 2
            exit
        """
        prog = assemble_program(source)
        new, removed = dead_code_elimination(prog)
        assert removed == 2  # the load, then the now-dead pointer load

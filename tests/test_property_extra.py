"""Additional property-based tests: LRU maps, traces, flows, transforms,
loop unrolling, and the flush model."""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import (
    k_max,
    pipeline_throughput,
    uniform_flush_probability,
    zipf_flush_probability,
)
from repro.core.loops import LoopError, unroll_loops
from repro.core.transform import dead_code_elimination, delete_instructions
from repro.ebpf.asm import assemble_program
from repro.ebpf.builder import ProgramBuilder
from repro.ebpf.isa import MapSpec
from repro.ebpf.maps import LruHashMap, MapError
from repro.ebpf.vm import run_program
from repro.net.flows import TrafficGenerator, TrafficSpec, zipf_weights
from repro.net.traces import SyntheticTrace

PKT = bytes(range(64))

keys = st.binary(min_size=4, max_size=4)
values = st.binary(min_size=8, max_size=8)


class TestLruModel:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.sampled_from(["update", "lookup", "delete"]),
                              keys, values), max_size=60),
           st.integers(min_value=1, max_value=6))
    def test_matches_ordered_dict_model(self, ops, capacity):
        m = LruHashMap(MapSpec("l", "lru_hash", 4, 8, capacity))
        from collections import OrderedDict

        model: "OrderedDict[bytes, bytes]" = OrderedDict()
        for op, key, value in ops:
            if op == "update":
                if key not in model and len(model) >= capacity:
                    model.popitem(last=False)  # evict LRU
                model[key] = value
                model.move_to_end(key)
                m.update(key, value)
            elif op == "lookup":
                expected = model.get(key)
                if expected is not None:
                    model.move_to_end(key)
                assert m.lookup(key) == expected
            else:
                existed = key in model
                model.pop(key, None)
                assert m.delete(key) == existed
        assert dict(m.items()) == dict(model)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(keys, min_size=1, max_size=30))
    def test_never_exceeds_capacity(self, inserted):
        m = LruHashMap(MapSpec("l", "lru_hash", 4, 8, 4))
        for key in inserted:
            m.update(key, bytes(8))
        assert m.entry_count() <= 4


class TestTrafficProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=500))
    def test_zipf_weights_sorted_and_normalised(self, n):
        weights = zipf_weights(n)
        assert weights == sorted(weights, reverse=True)
        assert abs(sum(weights) - 1.0) < 1e-9

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=1, max_value=200),
           st.integers(min_value=0, max_value=2 ** 31))
    def test_generator_packets_parse(self, n_flows, seed):
        from repro.net.packet import parse_five_tuple

        gen = TrafficGenerator(TrafficSpec(n_flows=n_flows, seed=seed))
        for frame in gen.packets(5):
            assert parse_five_tuple(frame) is not None

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=100, max_value=2000),
           st.integers(min_value=100, max_value=900))
    def test_trace_mean_size_tracks_target(self, n_packets, mean):
        trace = SyntheticTrace("t", 50, float(mean), n_packets, seed=3)
        measured = trace.stats().mean_size
        assert abs(measured - mean) < 0.2 * mean + 40

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=50, max_value=500))
    def test_trace_timestamps_monotone(self, n_packets):
        trace = SyntheticTrace("t", 10, 400.0, n_packets, seed=5)
        times = [r.timestamp_ns for r in trace]
        assert all(b >= a for a, b in zip(times, times[1:]))


class TestFlushModelProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=2, max_value=60),
           st.integers(min_value=10, max_value=10 ** 6))
    def test_probabilities_valid(self, L, n):
        for p in (uniform_flush_probability(L, n), zipf_flush_probability(L, n, 4096)):
            assert 0.0 <= p <= 1.0

    @settings(max_examples=40, deadline=None)
    @given(st.floats(min_value=1e-4, max_value=0.9),
           st.integers(min_value=1, max_value=500))
    def test_throughput_bounds(self, p, K):
        tp = pipeline_throughput(K, p)
        assert 250.0 / max(K, 1) - 1e-6 <= tp <= 250.0

    @settings(max_examples=40, deadline=None)
    @given(st.floats(min_value=1e-3, max_value=0.9))
    def test_kmax_throughput_inverse(self, p):
        k = k_max(p, target_mpps=100.0)
        assert pipeline_throughput(k, p) == pytest.approx(100.0, rel=1e-6)


class TestTransformProperties:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(min_value=0, max_value=6))
    def test_delete_dead_mov_preserves_behaviour(self, which):
        b = ProgramBuilder()
        for i in range(7):
            b.mov_imm(2 + (i % 3), i)
        b.mov_imm(0, 2)
        b.exit()
        prog = b.build()
        new = delete_instructions(prog, [which])
        assert run_program(new, PKT).action == run_program(prog, PKT).action

    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(st.integers(min_value=-50, max_value=50),
                    min_size=1, max_size=10))
    def test_dce_preserves_result(self, constants):
        b = ProgramBuilder()
        total = 0
        b.mov_imm(0, 0)
        for i, c in enumerate(constants):
            b.mov_imm(3, c)  # repeatedly overwritten: mostly dead
            if i == len(constants) - 1:
                b.alu("+", 0, 3)
                total += c
        b.alu_imm("&", 0, 3)
        b.exit()
        prog = b.build()
        new, _removed = dead_code_elimination(prog)
        assert run_program(new, PKT).action == run_program(prog, PKT).action


class TestLoopProperties:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(min_value=1, max_value=40),
           st.integers(min_value=1, max_value=5))
    def test_counted_loop_sum(self, trips, step):
        bound = trips * step
        source = f"""
            r6 = *(u32 *)(r1 + 0)
            r9 = 0
            r8 = 0
        loop:
            r9 += 1
            r8 += {step}
            if r8 != {bound} goto loop
            *(u64 *)(r6 + 0) = r9
            r0 = 2
            exit
        """
        prog = assemble_program(source)
        unrolled, report = unroll_loops(prog)
        assert report.total_trip_count == trips
        res = run_program(unrolled, PKT)
        assert int.from_bytes(res.packet[:8], "little") == trips
        # and matches the looping original executed by the VM
        ref = run_program(prog, PKT)
        assert res.packet == ref.packet

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="regenerate golden snapshot files (tests/corpus/vhdl/, "
             "tests/corpus/codegen/) instead of comparing against them",
    )


@pytest.fixture(autouse=True)
def _isolated_compile_cache(tmp_path_factory, monkeypatch):
    """Keep the persistent compile cache out of the user's home directory
    and out of cross-test state: every test sees its own empty cache."""
    cache_dir = tmp_path_factory.mktemp("ehdl-cache")
    monkeypatch.setenv("EHDL_CACHE_DIR", str(cache_dir))

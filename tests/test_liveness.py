"""CFG-level liveness analysis tests (the substrate of pruning and DCE)."""

import pytest

from repro.core.labeling import label_program
from repro.core.liveness import (
    reg_liveness,
    regs_read,
    stack_liveness,
    successors,
)
from repro.ebpf import isa
from repro.ebpf.asm import assemble_program
from repro.ebpf.isa import MapSpec

MAPS = {"m": MapSpec("m", "array", 4, 8, 4)}


class TestSuccessors:
    def test_straight_line(self):
        prog = assemble_program("r0 = 1\nr0 += 1\nexit")
        succs = successors(prog)
        assert succs[0] == [1] and succs[1] == [2] and succs[2] == []

    def test_branch_has_two(self):
        prog = assemble_program("r0 = 1\nif r0 == 1 goto +1\nexit\nexit")
        assert sorted(successors(prog)[1]) == [2, 3]

    def test_goto_has_one(self):
        prog = assemble_program("r0 = 1\ngoto +1\nexit\nexit")
        assert successors(prog)[1] == [3]


class TestRegLiveness:
    def test_def_use_chain(self):
        prog = assemble_program("r2 = 1\nr0 = r2\nexit")
        live_in, live_out = reg_liveness(prog)
        assert isa.R2 in live_out[0]
        assert isa.R2 in live_in[1]
        assert isa.R2 not in live_out[1]

    def test_kill_ends_range(self):
        prog = assemble_program("r2 = 1\nr2 = 5\nr0 = r2\nexit")
        live_in, _ = reg_liveness(prog)
        assert isa.R2 not in live_in[1]  # first def is dead

    def test_branch_keeps_value_alive_on_one_path(self):
        prog = assemble_program(
            """
            r2 = 7
            if r1 == 0 goto use
            r0 = 2
            exit
        use:
            r0 = r2
            exit
            """
        )
        live_in, _ = reg_liveness(prog)
        assert isa.R2 in live_in[1]  # live across the branch

    def test_exit_needs_r0(self):
        prog = assemble_program("r0 = 2\nexit")
        live_in, _ = reg_liveness(prog)
        assert isa.R0 in live_in[1]

    def test_call_arity_refinement(self):
        # bpf_ktime_get_ns takes no args: r1-r5 are NOT read
        assert regs_read(isa.call(5)) == ()
        # bpf_map_lookup_elem reads r1, r2
        assert regs_read(isa.call(1)) == (isa.R1, isa.R2)


class TestStackLiveness:
    def test_store_then_load(self):
        prog = assemble_program(
            "r2 = 1\n*(u32 *)(r10 - 4) = r2\nr0 = *(u32 *)(r10 - 4)\nexit"
        )
        labels = label_program(prog)
        live = stack_liveness(prog, labels)
        # between store and load, bytes -4..-1 are live
        assert set(range(-4, 0)) <= live[2]
        assert not live[0] & set(range(-4, 0))

    def test_overwrite_kills(self):
        prog = assemble_program(
            """
            r2 = 1
            *(u32 *)(r10 - 4) = r2
            *(u32 *)(r10 - 4) = r2
            r0 = *(u32 *)(r10 - 4)
            exit
            """
        )
        labels = label_program(prog)
        live = stack_liveness(prog, labels)
        assert not live[1] & set(range(-4, 0))  # first store's bytes dead

    def test_key_read_by_helper(self):
        source = """
            r2 = 0
            *(u32 *)(r10 - 8) = r2
            r1 = map[m]
            r2 = r10
            r2 += -8
            call 1
            r0 = 2
            exit
        """
        prog = assemble_program(source, maps=MAPS)
        labels = label_program(prog)
        live = stack_liveness(prog, labels)
        call_index = next(
            i for i, insn in enumerate(prog.instructions) if insn.is_call
        )
        assert set(range(-8, -4)) <= live[call_index]

    def test_partial_overlap_stays_live(self):
        prog = assemble_program(
            """
            r2 = 1
            *(u64 *)(r10 - 8) = r2
            *(u32 *)(r10 - 8) = r2
            r0 = *(u64 *)(r10 - 8)
            exit
            """
        )
        labels = label_program(prog)
        live = stack_liveness(prog, labels)
        # the high half (-4..-1) written at insn 1 is still live at insn 2
        assert set(range(-4, 0)) <= live[2]

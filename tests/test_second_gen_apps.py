"""Second-generation application suite: behaviour, engine differentials
on Zipfian million-flow traces, and LRU eviction-order invariance."""

import dataclasses
from functools import lru_cache

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import (
    APP_WORKLOADS,
    SECOND_GEN_APPS,
    ct_firewall,
    maglev,
    nat64,
    syn_cookie,
    vxlan_term,
)
from repro.core.compiler import compile_program
from repro.ebpf.asm import assemble_program
from repro.ebpf.isa import MapSpec
from repro.ebpf.maps import MapSet
from repro.ebpf.verifier import VerifierError, verify
from repro.ebpf.vm import Vm
from repro.ebpf.xdp import XdpAction
from repro.hwsim.diff import run_differential
from repro.hwsim.engines import pipeline_engine_names, run_engine
from repro.hwsim.sim import SimOptions
from repro.net.packet import (
    FiveTuple,
    checksum16,
    ipv4,
    parse_five_tuple,
    tcp_packet,
    udp6_packet,
    udp_packet,
)
from repro.rtl.diff import run_three_way
from repro.workloads import make_workload, parse_workload_spec


def vm_for(prog, setup=None):
    maps = MapSet(prog.maps)
    if setup is not None:
        setup(maps)
    return Vm(prog, maps=maps), maps


@lru_cache(maxsize=None)
def app_frames(name: str, packets: int):
    """The app's natural workload trace (Zipfian, million-flow where the
    registered spec says so), truncated to ``packets``."""
    spec = dataclasses.replace(
        parse_workload_spec(APP_WORKLOADS[name]), packets=packets
    )
    return tuple(make_workload(spec).materialize())


def app_setup(name: str):
    return getattr(SECOND_GEN_APPS[name], "default_setup", None)


# ---------------------------------------------------------------------------
# Conntrack firewall
# ---------------------------------------------------------------------------


class TestCtFirewall:
    OUT = FiveTuple(ipv4("10.1.2.3"), ipv4("93.184.216.34"), 17, 4242, 53)

    def _pkt(self, flow):
        return udp_packet(flow.src_ip, flow.dst_ip,
                          sport=flow.sport, dport=flow.dport)

    def test_outbound_learns_and_forwards(self):
        vm, maps = vm_for(ct_firewall.build())
        assert vm.run(self._pkt(self.OUT)).action == XdpAction.TX
        assert ct_firewall.tracked_count(maps) == 1
        assert ct_firewall.flow_packets(maps, self.OUT) == 1
        assert vm.run(self._pkt(self.OUT)).action == XdpAction.TX
        assert ct_firewall.flow_packets(maps, self.OUT) == 2

    def test_inbound_established_passes(self):
        vm, maps = vm_for(ct_firewall.build())
        vm.run(self._pkt(self.OUT))
        reply = self._pkt(self.OUT.reversed())
        res = vm.run(reply)
        assert res.action == XdpAction.PASS
        # the reply refreshed the same entry's counter
        assert ct_firewall.flow_packets(maps, self.OUT) == 2

    def test_inbound_unknown_dropped(self):
        vm, maps = vm_for(ct_firewall.build())
        stray = FiveTuple(ipv4("8.8.8.8"), ipv4("10.1.2.3"), 17, 53, 4242)
        assert vm.run(self._pkt(stray)).action == XdpAction.DROP
        assert ct_firewall.tracked_count(maps) == 0

    def test_non_ip_passes_untracked(self):
        vm, maps = vm_for(ct_firewall.build())
        frame = bytearray(udp_packet())
        frame[12:14] = b"\x86\xdd"  # not IPv4
        assert vm.run(bytes(frame)).action == XdpAction.PASS
        assert ct_firewall.tracked_count(maps) == 0

    def test_lru_pressure_evicts_oldest(self):
        vm, maps = vm_for(ct_firewall.build())
        cap = ct_firewall.CONNTRACK_MAP.max_entries
        flows = [
            FiveTuple(ipv4("10.0.0.1"), ipv4("1.1.1.1"), 17, 1000 + (i >> 8),
                      1000 + (i & 0xFF))
            for i in range(cap + 50)
        ]
        for flow in flows:
            vm.run(self._pkt(flow))
        assert ct_firewall.tracked_count(maps) == cap
        assert ct_firewall.eviction_count(maps) == 50
        # oldest-first recency order matches arrival order (read it
        # before any host lookup: lookups refresh recency)
        order = ct_firewall.lru_order(maps)
        assert order == [ct_firewall.conntrack_key(f) for f in flows[50:]]
        # the 50 oldest connections are gone, the rest remain
        for flow in flows[:50]:
            assert ct_firewall.flow_packets(maps, flow) is None
        assert ct_firewall.flow_packets(maps, flows[50]) == 1
        # ...and that very host read made flows[50] most-recently-used
        assert ct_firewall.lru_order(maps)[-1] == ct_firewall.conntrack_key(
            flows[50])

    def test_pipeline_has_serialization_window(self):
        # lookup + miss-path update on one lru_hash span stages: the
        # compiler must interlock them or recency order is a hazard.
        pipeline = compile_program(ct_firewall.build())
        assert pipeline.serial_windows


# ---------------------------------------------------------------------------
# Maglev load balancer
# ---------------------------------------------------------------------------


class TestMaglev:
    def test_table_shares_near_equal(self):
        table = maglev.maglev_table(4)
        shares = [table.count(i) for i in range(4)]
        assert sum(shares) == maglev.TABLE_SIZE
        assert max(shares) - min(shares) <= 1

    def test_minimal_disruption_on_backend_removal(self):
        t4 = maglev.maglev_table(4)
        t3 = maglev.maglev_table(3)
        stable = sum(1 for a, b in zip(t4, t3) if a == b)
        # Far more than the surviving backends' fair share of a naive
        # mod-N rehash (which would keep ~1/4 of slots) stays put.
        assert stable > maglev.TABLE_SIZE // 2

    def test_rejects_degenerate_pools(self):
        with pytest.raises(ValueError):
            maglev.maglev_table(0)
        with pytest.raises(ValueError):
            maglev.maglev_table(252, table_size=251)

    def test_redirects_match_host_mirror(self):
        prog = maglev.build()
        vm, maps = vm_for(prog, maglev.default_setup)
        table = maglev.maglev_table(len(maglev.DEFAULT_BACKENDS))
        flows = [
            FiveTuple(ipv4("172.16.0.1") + i, ipv4("198.51.100.7"), 17,
                      20000 + i, 443)
            for i in range(64)
        ]
        for flow in flows:
            frame = udp_packet(flow.src_ip, flow.dst_ip,
                               sport=flow.sport, dport=flow.dport)
            assert vm.run(frame).action == XdpAction.REDIRECT
        counters = maglev.backend_counters(
            maps, len(maglev.DEFAULT_BACKENDS))
        assert sum(counters.values()) == len(flows)
        expected = {i: 0 for i in counters}
        for flow in flows:
            expected[maglev.backend_for(table, flow)] += 1
        assert counters == expected

    def test_flow_affinity(self):
        # same 5-tuple, same backend — every time
        flow = FiveTuple(ipv4("203.0.113.9"), ipv4("198.51.100.7"),
                         6, 55555, 80)
        table = maglev.maglev_table(4)
        assert len({maglev.backend_for(table, flow) for _ in range(5)}) == 1

    def test_unpopulated_table_redirects_to_zero(self):
        # Array lookups never miss: an unpopulated table reads as
        # backend 0 / ifindex 0, so population is part of bring-up.
        vm, _ = vm_for(maglev.build())
        res = vm.run(udp_packet())
        assert res.action == XdpAction.REDIRECT
        assert res.redirect_ifindex == 0


# ---------------------------------------------------------------------------
# SYN-cookie scrubber
# ---------------------------------------------------------------------------


class TestSynCookie:
    FLOW = FiveTuple(ipv4("203.0.113.50"), ipv4("10.9.9.9"), 6, 39999, 443)

    def _tcp(self, flags, seq=0, ack=0):
        return tcp_packet(self.FLOW.src_ip, self.FLOW.dst_ip,
                          sport=self.FLOW.sport, dport=self.FLOW.dport,
                          flags=flags, seq=seq, ack=ack)

    def test_syn_reflected_as_cookie_synack(self):
        vm, maps = vm_for(syn_cookie.build(), syn_cookie.default_setup)
        isn = 0x1234ABCD
        res = vm.run(self._tcp(0x02, seq=isn))
        assert res.action == XdpAction.TX
        out = res.packet
        # reflected: MACs, addresses and ports all swapped
        assert out[0:6] == b"\x02\x00\x00\x00\x00\x02"
        assert int.from_bytes(out[26:30], "big") == self.FLOW.dst_ip
        assert int.from_bytes(out[30:34], "big") == self.FLOW.src_ip
        assert int.from_bytes(out[34:36], "big") == self.FLOW.dport
        assert int.from_bytes(out[36:38], "big") == self.FLOW.sport
        assert out[47] == 0x12  # SYN|ACK
        assert int.from_bytes(out[42:46], "big") == isn + 1
        cookie = syn_cookie.syn_cookie(self.FLOW, syn_cookie.DEFAULT_SECRET)
        assert int.from_bytes(out[38:42], "big") == cookie
        # no state was allocated for the half-open connection
        assert syn_cookie.admitted(maps, self.FLOW) is None
        assert syn_cookie.stat(maps, syn_cookie.STAT_SYNACK) == 1

    def test_cookie_ack_admits_connection(self):
        vm, maps = vm_for(syn_cookie.build(), syn_cookie.default_setup)
        cookie = syn_cookie.syn_cookie(self.FLOW, syn_cookie.DEFAULT_SECRET)
        res = vm.run(self._tcp(0x10, ack=(cookie + 1) & 0xFFFFFFFF))
        assert res.action == XdpAction.PASS
        assert syn_cookie.admitted(maps, self.FLOW) == 1
        assert syn_cookie.stat(maps, syn_cookie.STAT_ADMITTED) == 1
        # subsequent data packets ride the established path
        res = vm.run(self._tcp(0x18))
        assert res.action == XdpAction.PASS
        assert syn_cookie.admitted(maps, self.FLOW) == 2

    def test_bogus_ack_dropped(self):
        vm, maps = vm_for(syn_cookie.build(), syn_cookie.default_setup)
        assert vm.run(self._tcp(0x10, ack=12345)).action == XdpAction.DROP
        assert syn_cookie.admitted(maps, self.FLOW) is None
        assert syn_cookie.stat(maps, syn_cookie.STAT_DROPPED) == 1

    def test_unadmitted_data_dropped(self):
        vm, maps = vm_for(syn_cookie.build(), syn_cookie.default_setup)
        assert vm.run(self._tcp(0x18)).action == XdpAction.DROP
        assert syn_cookie.stat(maps, syn_cookie.STAT_DROPPED) == 1

    def test_unarmed_scrubber_bypasses(self):
        vm, maps = vm_for(syn_cookie.build())  # secret never set
        assert vm.run(self._tcp(0x02)).action == XdpAction.PASS
        assert syn_cookie.stat(maps, syn_cookie.STAT_SYNACK) == 0

    def test_cookie_binds_tuple_and_secret(self):
        c = syn_cookie.syn_cookie(self.FLOW, 1)
        assert c != syn_cookie.syn_cookie(self.FLOW, 2)
        other = dataclasses.replace(self.FLOW, sport=40000)
        assert c != syn_cookie.syn_cookie(other, 1)
        assert 0 <= c <= 0xFFFFFFFF

    def test_pipeline_has_serialization_window(self):
        pipeline = compile_program(syn_cookie.build())
        assert pipeline.serial_windows


# ---------------------------------------------------------------------------
# NAT64
# ---------------------------------------------------------------------------


class TestNat64:
    V6_SRC = bytes.fromhex("fd00") + bytes(8) + bytes.fromhex("c0a80001aabb")
    V4_DST = ipv4("192.0.2.99")

    def _frame(self, payload=b"hello-nat64"):
        return udp6_packet(src_ip=self.V6_SRC,
                           dst_ip=nat64.nat64_dst(self.V4_DST),
                           sport=5353, dport=53, payload=payload)

    def test_translates_to_valid_ipv4(self):
        vm, maps = vm_for(nat64.build())
        frame = self._frame()
        res = vm.run(frame)
        assert res.action == XdpAction.TX
        out = res.packet
        assert len(out) == len(frame) - 20  # 40B IPv6 -> 20B IPv4
        assert out[12:14] == b"\x08\x00"
        assert out[14] == 0x45 and out[22] == 64 and out[23] == 17
        assert out[26:30] == nat64.translated_src(self.V6_SRC)
        assert out[30:34] == self.V4_DST.to_bytes(4, "big")
        total_len = int.from_bytes(out[16:18], "big")
        assert total_len == len(frame) - 14 - 40 + 20 - max(
            0, 60 - len(frame))  # padding never counted in v6 payload len
        assert checksum16(out[14:34]) == 0  # valid header checksum
        # UDP header shifted intact, checksum cleared, payload untouched
        assert out[34:38] == frame[54:58]
        assert out[40:42] == bytes(2)
        assert out[42:] == frame[62:]
        assert nat64.translated_count(maps) == 1
        # the result parses as the flow a v4 stack would see
        tup = parse_five_tuple(out)
        assert tup.sport == 5353 and tup.dport == 53

    def test_out_of_prefix_passes(self):
        vm, maps = vm_for(nat64.build())
        frame = udp6_packet(src_ip=self.V6_SRC,
                            dst_ip=bytes.fromhex("20010db8") + bytes(12))
        res = vm.run(frame)
        assert res.action == XdpAction.PASS
        assert res.packet == frame
        assert nat64.translated_count(maps) == 0

    def test_ipv4_traffic_passes(self):
        vm, _ = vm_for(nat64.build())
        frame = udp_packet()
        res = vm.run(frame)
        assert res.action == XdpAction.PASS
        assert res.packet == frame

    def test_non_udp_ipv6_passes(self):
        vm, _ = vm_for(nat64.build())
        frame = bytearray(self._frame())
        frame[20] = 58  # ICMPv6: only the UDP fast path is expressible
        assert vm.run(bytes(frame)).action == XdpAction.PASS


# ---------------------------------------------------------------------------
# VXLAN termination
# ---------------------------------------------------------------------------


class TestVxlanTerm:
    def _tunnel_frames(self, n=40, vnis=16):
        spec = parse_workload_spec(
            f"tunnel-encap:packets={n},flows=500,vnis={vnis}")
        return make_workload(spec).materialize()

    def test_registered_vni_decapsulates(self):
        vm, maps = vm_for(vxlan_term.build())
        for vni in range(16):
            vxlan_term.register_vni(maps, vni)
        for frame in self._tunnel_frames():
            res = vm.run(frame)
            assert res.action == XdpAction.PASS
            # the decapsulated frame is exactly the inner frame
            assert res.packet == frame[vxlan_term.DECAP_BYTES:]
        assert sum(
            vxlan_term.vni_count(maps, v) for v in range(16)) == 40

    def test_unknown_vni_dropped(self):
        vm, maps = vm_for(vxlan_term.build(), vxlan_term.default_setup)
        seen = {"pass": 0, "drop": 0}
        for frame in self._tunnel_frames(n=200):
            vni = int.from_bytes(frame[46:49], "big")
            res = vm.run(frame)
            if vni in vxlan_term.DEFAULT_VNIS:
                assert res.action == XdpAction.PASS
                seen["pass"] += 1
            else:
                assert res.action == XdpAction.DROP
                assert res.packet == frame  # dropped before decap
                seen["drop"] += 1
        assert seen["pass"] and seen["drop"]

    def test_non_vxlan_udp_passes(self):
        vm, _ = vm_for(vxlan_term.build(), vxlan_term.default_setup)
        frame = udp_packet(dport=53, size=80)
        res = vm.run(frame)
        assert res.action == XdpAction.PASS
        assert res.packet == frame


# ---------------------------------------------------------------------------
# Differential equivalence on the apps' natural (Zipfian million-flow)
# workloads: all pipeline engines at gap=1, then the full three-way
# vm == hwsim == rtl check.
# ---------------------------------------------------------------------------


SECOND_GEN = sorted(SECOND_GEN_APPS)


class TestEngineDifferentials:
    @pytest.mark.parametrize("engine", pipeline_engine_names())
    @pytest.mark.parametrize("name", SECOND_GEN)
    def test_engine_matches_vm_at_line_rate(self, name, engine):
        result = run_differential(
            SECOND_GEN_APPS[name].build(),
            app_frames(name, 400),
            setup=app_setup(name),
            engine=engine,
            gap=1,
        )
        result.raise_on_mismatch()

    @pytest.mark.parametrize("name", SECOND_GEN)
    def test_pipeline_engines_cycle_exact(self, name):
        # interpreted/fast/codegen are one model: identical cycles too,
        # including the LRU serialization-window stalls.
        prog = SECOND_GEN_APPS[name].build()
        pipeline = compile_program(prog)
        runs = [
            run_engine(e, prog, app_frames(name, 200), pipeline=pipeline,
                       gap=1, setup=app_setup(name))
            for e in pipeline_engine_names()
        ]
        assert len({r.total_cycles for r in runs}) == 1
        assert len({tuple(r.packet_cycles) for r in runs}) == 1


class TestThreeWay:
    @pytest.mark.parametrize("name", SECOND_GEN)
    def test_vm_hwsim_rtl_agree(self, name):
        result = run_three_way(
            SECOND_GEN_APPS[name].build(),
            app_frames(name, 60),
            setup=app_setup(name),
        )
        result.raise_on_mismatch()


# ---------------------------------------------------------------------------
# LRU eviction order must be engine-invariant
# ---------------------------------------------------------------------------


_TINY_LRU_MAPS = {
    "t": MapSpec("t", "lru_hash", key_size=4, value_size=8, max_entries=4)
}

# lookup-then-update on one lru_hash — the minimal program whose recency
# behaviour covers both the touch (hit) and insert/evict (miss) paths.
_TINY_LRU_SRC = """
    r7 = *(u32 *)(r1 + 4)
    r6 = *(u32 *)(r1 + 0)
    r2 = r6
    r2 += 18
    if r2 > r7 goto pass
    r2 = *(u32 *)(r6 + 14)
    *(u32 *)(r10 - 4) = r2
    r1 = map[t]
    r2 = r10
    r2 += -4
    call 1
    if r0 == 0 goto insert
    r1 = 1
    lock *(u64 *)(r0 + 0) += r1
    r0 = 2
    exit
insert:
    r1 = 1
    *(u64 *)(r10 - 16) = r1
    r1 = map[t]
    r2 = r10
    r2 += -4
    r3 = r10
    r3 += -16
    r4 = 0
    call 2
    r0 = 2
    exit
pass:
    r0 = 1
    exit
"""


def _tiny_lru_program():
    return assemble_program(_TINY_LRU_SRC, maps=_TINY_LRU_MAPS,
                            name="tiny_lru")


def _key_frames(keys):
    return [k.to_bytes(4, "little").ljust(46, b"\x00").rjust(60, b"\xee")
            for k in keys]


def _lru_orders(run):
    # EngineRun.map_items dicts preserve LruHashMap.items() order:
    # oldest-first recency.
    return {fd: list(items) for fd, items in run.map_items.items()}


class TestLruEngineInvariance:
    PROGRAM = _tiny_lru_program()
    PIPELINE = compile_program(PROGRAM)

    def test_tiny_program_is_windowed(self):
        assert self.PIPELINE.serial_windows

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=9),
                    min_size=1, max_size=50))
    def test_eviction_order_matches_vm(self, keys):
        frames = _key_frames(keys)
        ref = run_engine("vm", self.PROGRAM, frames)
        for engine in pipeline_engine_names():
            run = run_engine(engine, self.PROGRAM, frames,
                             pipeline=self.PIPELINE, gap=1)
            assert run.actions == ref.actions
            assert _lru_orders(run) == _lru_orders(ref), engine

    def test_rtl_eviction_order_matches_vm(self):
        # 9 distinct keys through a 4-entry table with interleaved
        # touches: every packet either evicts or reorders.
        keys = [1, 2, 3, 4, 1, 5, 6, 2, 7, 8, 9, 5, 1, 1, 3]
        frames = _key_frames(keys)
        ref = run_engine("vm", self.PROGRAM, frames)
        for engine in ("rtl", "rtl-interp"):
            run = run_engine(engine, self.PROGRAM, frames,
                             pipeline=self.PIPELINE)
            assert run.actions == ref.actions
            assert _lru_orders(run) == _lru_orders(ref), engine

    def test_ct_firewall_churn_eviction_parity(self):
        # Full app under flow churn: enough distinct flows to overflow
        # the 4096-entry conntrack table, at line rate, on the fastest
        # engine — final recency order must still match the VM exactly.
        prog = ct_firewall.build()
        spec = parse_workload_spec(
            "flow-churn:packets=12000,flows=1000,churn=1.0")
        frames = tuple(make_workload(spec).materialize())
        ref = run_engine("vm", prog, frames)
        # gap=1 outruns injection across the serialization window, so
        # give the input queue room for the whole trace
        run = run_engine("codegen", prog, frames, gap=1,
                         sim_options=SimOptions(input_queue_capacity=16384))
        assert run.actions == ref.actions
        assert _lru_orders(run) == _lru_orders(ref)
        # and the run genuinely exercised eviction
        vm, maps = vm_for(prog)
        for f in frames:
            vm.run(f)
        assert ct_firewall.eviction_count(maps) > 0


# ---------------------------------------------------------------------------
# Expressiveness boundary (docs/apps.md findings, kept honest by tests)
# ---------------------------------------------------------------------------


class TestExpressivenessFindings:
    def test_unbounded_checksum_loop_rejected(self):
        # The NAT64 ICMPv6/TCP translation needs a checksum over the
        # whole payload: a data-dependent loop, which the verifier (and
        # hence the hardware mapping) rejects.
        source = """
            r7 = *(u32 *)(r1 + 4)
            r6 = *(u32 *)(r1 + 0)
            r0 = 0
            r2 = r6
        csum:
            r3 = r2
            r3 += 2
            if r3 > r7 goto done
            r4 = *(u16 *)(r2 + 0)
            r0 += r4
            r2 += 2
            goto csum
        done:
            exit
        """
        with pytest.raises(VerifierError, match="backward"):
            verify(assemble_program(source))

    def test_all_second_gen_apps_verify_and_compile(self):
        for name, module in SECOND_GEN_APPS.items():
            prog = module.build()
            verify(prog)
            pipeline = compile_program(prog)
            assert pipeline.n_stages > 0, name

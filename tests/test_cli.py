"""Command-line interface tests."""

import pathlib

import pytest

from repro.cli import load_program, main
from repro.ebpf.asm import AsmError, assemble_program

EXAMPLE = (
    pathlib.Path(__file__).parent.parent
    / "examples" / "programs" / "port_filter.ebpf"
)

SIMPLE = """
.map counters array key=4 value=8 entries=1

    r0 = 2
    exit
"""


@pytest.fixture()
def prog_file(tmp_path):
    path = tmp_path / "simple.ebpf"
    path.write_text(SIMPLE)
    return str(path)


class TestLoadProgram:
    def test_text_with_map_directive(self, prog_file):
        program = load_program(prog_file)
        assert len(program.instructions) == 2
        assert program.maps[1].name == "counters"

    def test_binary_roundtrip(self, tmp_path):
        program = assemble_program("r0 = 2\nexit")
        path = tmp_path / "prog.bin"
        path.write_bytes(program.encode())
        again = load_program(str(path))
        assert again.instructions == program.instructions

    def test_example_file_loads(self):
        program = load_program(str(EXAMPLE))
        assert len(program.maps) == 1


class TestMapDirectives:
    def test_directive_and_maps_arg_conflict(self):
        from repro.ebpf.isa import MapSpec

        with pytest.raises(AsmError, match="not both"):
            assemble_program(
                SIMPLE, maps={"x": MapSpec("x", "array", 4, 8, 1)}
            )

    def test_bad_directive_rejected(self):
        with pytest.raises(AsmError, match="directive"):
            assemble_program(".map broken\nr0 = 2\nexit")

    def test_duplicate_map_rejected(self):
        source = (
            ".map a array key=4 value=8 entries=1\n"
            ".map a array key=4 value=8 entries=1\n"
            "r0 = 2\nexit"
        )
        with pytest.raises(AsmError, match="duplicate"):
            assemble_program(source)


class TestCommands:
    def test_stats(self, capsys, prog_file):
        assert main(["stats", prog_file]) == 0
        out = capsys.readouterr().out
        assert "stage" in out and "resources" in out

    def test_disasm(self, capsys, prog_file):
        assert main(["disasm", prog_file]) == 0
        assert "exit" in capsys.readouterr().out

    def test_compile_to_file(self, capsys, tmp_path, prog_file):
        out_path = tmp_path / "out.vhd"
        assert main(["compile", prog_file, "-o", str(out_path)]) == 0
        assert "entity" in out_path.read_text()

    def test_compile_to_directory(self, capsys, tmp_path, prog_file):
        out_dir = tmp_path / "build"
        out_dir.mkdir()
        assert main(["compile", prog_file, "-o", str(out_dir)]) == 0
        assert (out_dir / "simple.vhd").exists()
        assert "entity" in (out_dir / "simple.vhd").read_text()

    def test_compile_to_new_directory_with_slash(self, tmp_path, prog_file):
        out_dir = tmp_path / "gen"
        assert main(["compile", prog_file, "-o", str(out_dir) + "/"]) == 0
        assert (out_dir / "simple.vhd").exists()

    def test_compile_to_stdout(self, capsys, prog_file):
        assert main(["compile", prog_file]) == 0
        assert "architecture" in capsys.readouterr().out

    def test_simulate(self, capsys, prog_file):
        assert main(["simulate", prog_file, "--packets", "50",
                     "--flows", "5"]) == 0
        out = capsys.readouterr().out
        assert "throughput" in out and "latency" in out

    def test_simulate_rate_limited(self, capsys, prog_file):
        assert main(["simulate", prog_file, "--packets", "50",
                     "--rate-mpps", "10"]) == 0
        assert "throughput" in capsys.readouterr().out

    def test_ablation_flags(self, capsys, prog_file):
        assert main(["stats", prog_file, "--no-pruning", "--no-ilp",
                     "--keep-bounds-checks"]) == 0

    def test_example_program_end_to_end(self, capsys):
        assert main(["simulate", str(EXAMPLE), "--packets", "100"]) == 0
        assert "PASS" in capsys.readouterr().out


class TestModelAndTrace:
    def test_model_no_hazard(self, capsys, prog_file):
        assert main(["model", prog_file]) == 0
        assert "no hazard" in capsys.readouterr().out

    def test_model_with_hazard(self, capsys, tmp_path):
        path = tmp_path / "rmw.ebpf"
        path.write_text(
            """
.map m array key=4 value=8 entries=1

    r2 = 0
    *(u32 *)(r10 - 4) = r2
    r1 = map[m]
    r2 = r10
    r2 += -4
    call 1
    if r0 == 0 goto out
    r2 = *(u64 *)(r0 + 0)
    r2 += 1
    *(u64 *)(r0 + 0) = r2
out:
    r0 = 2
    exit
"""
        )
        assert main(["model", str(path)]) == 0
        out = capsys.readouterr().out
        assert "flush block" in out and "P_f" in out

    def test_trace(self, capsys, prog_file):
        assert main(["trace", prog_file, "--packets", "5",
                     "--cycles", "12"]) == 0
        out = capsys.readouterr().out
        assert "cycle" in out and "p0" in out


class TestRunAndBench:
    def test_run_fast_default(self, capsys, prog_file):
        assert main(["run", prog_file, "--packets", "60", "--flows", "4"]) == 0
        out = capsys.readouterr().out
        assert "engine: fast" in out and "packets/s" in out

    def test_run_interpreted(self, capsys, prog_file):
        assert main(["run", prog_file, "--packets", "40", "--no-fast"]) == 0
        assert "engine: interpreted" in capsys.readouterr().out

    def test_run_profile_prints_top_functions(self, capsys, prog_file):
        assert main(["run", prog_file, "--packets", "30", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "cumulative" in out and "ncalls" in out

    def test_bench_reports_speedup_and_parity(self, capsys, prog_file):
        assert main(["bench", prog_file, "--packets", "80",
                     "--flows", "4"]) == 0
        out = capsys.readouterr().out
        assert "fast" in out and "interpreted" in out
        assert "speedup" in out and "parity OK" in out

    def test_run_with_workers(self, capsys, prog_file):
        assert main(["run", prog_file, "--packets", "60", "--flows", "4",
                     "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "2 workers" in out and "packets/s" in out

    def test_bench_with_workers_reports_scaling(self, capsys, prog_file):
        assert main(["bench", prog_file, "--packets", "80", "--flows", "4",
                     "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "fast x2" in out and "parallel scaling" in out


class TestRtlCommands:
    def test_rtl_sim(self, capsys, prog_file):
        assert main(["rtl-sim", prog_file, "--packets", "6",
                     "--flows", "2"]) == 0
        out = capsys.readouterr().out
        # the banner names the engine that actually ran — the compiled
        # schedule, with no silent interpreter fallback
        assert "rtl[rtl]:" in out and "per-packet cycles" in out

    def test_rtl_sim_interp_engine(self, capsys, prog_file):
        assert main(["rtl-sim", prog_file, "--packets", "6",
                     "--flows", "2", "--engine", "rtl-interp"]) == 0
        out = capsys.readouterr().out
        assert "rtl[rtl-interp]:" in out

    def test_verify_ok(self, capsys, prog_file):
        assert main(["verify", prog_file, "--packets", "6",
                     "--flows", "2"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "vm/hwsim/rtl" in out

    def test_verify_example_program(self, capsys):
        assert main(["verify", str(EXAMPLE), "--packets", "8",
                     "--flows", "3"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_verify_fails_on_divergence(self, capsys, tmp_path, monkeypatch):
        # sabotage the RTL leg: feed the harness a corrupted design
        path = tmp_path / "tx.ebpf"
        path.write_text("r0 = 3\nexit\n")
        from repro.core.vhdl import emit_vhdl as real_emit

        def corrupted(pipeline, *a, **kw):
            text = real_emit(pipeline, *a, **kw)
            return text.replace('x"0000000000000003"',
                                'x"0000000000000002"')

        monkeypatch.setattr("repro.rtl.sim.emit_vhdl", corrupted)
        assert main(["verify", str(path), "--packets", "4"]) == 1
        err = capsys.readouterr().err
        assert "FAIL" in err and "rtl" in err


class TestCacheCommand:
    def test_compile_populates_cache(self, capsys, prog_file):
        assert main(["compile", prog_file]) == 0
        capsys.readouterr()
        assert main(["cache"]) == 0
        out = capsys.readouterr().out
        assert "disk_entries: 1" in out

    def test_no_cache_flag_bypasses(self, capsys, prog_file):
        assert main(["compile", prog_file, "--no-cache"]) == 0
        capsys.readouterr()
        assert main(["cache"]) == 0
        assert "disk_entries: 0" in capsys.readouterr().out

    def test_cache_hit_skips_recompile(self, capsys, prog_file, monkeypatch):
        assert main(["stats", prog_file]) == 0
        capsys.readouterr()
        from repro.core import compiler as compiler_mod

        def boom(*args, **kwargs):
            raise AssertionError("recompiled despite warm cache")

        monkeypatch.setattr(compiler_mod, "compile_program", boom)
        assert main(["stats", prog_file]) == 0
        assert "stage" in capsys.readouterr().out

    def test_cache_clear(self, capsys, prog_file):
        assert main(["compile", prog_file]) == 0
        capsys.readouterr()
        assert main(["cache", "--clear"]) == 0
        assert "removed 1" in capsys.readouterr().out


class TestAppsAndWorkloads:
    def test_apps_lists_both_suites(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        for name in ("firewall", "router", "tunnel", "dnat", "suricata"):
            assert name in out
        for name in ("ct_firewall", "maglev", "syn_cookie", "nat64",
                     "vxlan_term"):
            assert name in out
            assert "2nd-gen" in out
        assert "conntrack(lru_hash)" in out
        assert "flow-churn:" in out

    def test_apps_verbose_shows_docstrings(self, capsys):
        assert main(["apps", "-v"]) == 0
        out = capsys.readouterr().out
        assert "Maglev" in out

    def test_unknown_app_error_enumerates_names(self):
        with pytest.raises(SystemExit) as err:
            main(["stats", "app:nosuch"])
        message = str(err.value)
        for name in ("ct_firewall", "maglev", "nat64", "syn_cookie",
                     "vxlan_term", "firewall", "toy_counter"):
            assert name in message

    def test_run_with_workload(self, capsys):
        assert main(["run", "app:ct_firewall", "--workload",
                     "flow-churn:packets=40,flows=50,churn=0.2"]) == 0
        out = capsys.readouterr().out
        assert "40 packets" in out or "packets: 40" in out or "40" in out

    def test_simulate_with_workload(self, capsys, prog_file):
        assert main(["simulate", prog_file, "--workload",
                     "udp-zipf:packets=30,flows=10"]) == 0
        capsys.readouterr()

    def test_bad_workload_kind_enumerates(self, capsys):
        with pytest.raises(SystemExit) as err:
            main(["run", "app:maglev", "--workload", "bogus:packets=5"])
        assert "tcp-handshake" in str(err.value)

    def test_bad_workload_option_rejected(self, prog_file):
        with pytest.raises(SystemExit) as err:
            main(["run", prog_file, "--workload", "udp-zipf:dist=pareto"])
        assert "distribution" in str(err.value)

    def test_verify_app_with_workload(self, capsys):
        assert main(["verify", "app:vxlan_term", "--workload",
                     "tunnel-encap:packets=25,flows=40,vnis=4"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out

    def test_workload_auto_uses_registered_spec(self, capsys):
        assert main(["verify", "app:nat64", "--workload", "auto",
                     "--packets", "12"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_workload_auto_needs_registered_app(self, prog_file):
        with pytest.raises(SystemExit) as err:
            main(["run", prog_file, "--workload", "auto"])
        assert "registered workload" in str(err.value)

"""Generated execution module for pipeline 'router_rmw' (30 stages).

Emitted by repro.hwsim.codegen (CODEGEN_VERSION = 3); flush machinery included, position/commit tracking included. Do not edit.
"""

import struct

from repro.ebpf.helpers import helper_impl
from repro.ebpf.xdp import XdpAction
from repro.hwsim.sim import _HelperContext as _HC

_u1 = struct.Struct("<B").unpack_from
_u2 = struct.Struct("<H").unpack_from
_u4 = struct.Struct("<I").unpack_from
_u8 = struct.Struct("<Q").unpack_from
_p1 = struct.Struct("<B").pack_into
_p2 = struct.Struct("<H").pack_into
_p4 = struct.Struct("<I").pack_into
_p8 = struct.Struct("<Q").pack_into
_ACTIONS = {int(_a): _a for _a in XdpAction}
_ABORTED = XdpAction.ABORTED
_h23 = helper_impl(23)

def _s1(sim, pkt, slots, barrier_queues, input_queue, report, _u2=_u2):
    if pkt.done:
        return False
    regs = pkt.regs
    enabled = pkt.enabled
    if 0 in enabled:
        regs[2] = _u2(pkt.ctx.packet, 12)[0]
    return False

def _s2(sim, pkt, slots, barrier_queues, input_queue, report):
    if pkt.done:
        return False
    regs = pkt.regs
    enabled = pkt.enabled
    if 0 in enabled:
        enabled.update((6,) if (regs[2] & 0xffffffffffffffff) != 0x8 else (1,))
    return False

def _s3(sim, pkt, slots, barrier_queues, input_queue, report, _u1=_u1):
    if pkt.done:
        return False
    regs = pkt.regs
    enabled = pkt.enabled
    if 1 in enabled:
        regs[2] = _u1(pkt.ctx.packet, 22)[0]
    return False

def _s4(sim, pkt, slots, barrier_queues, input_queue, report):
    if pkt.done:
        return False
    regs = pkt.regs
    enabled = pkt.enabled
    if 1 in enabled:
        enabled.update((6,) if (regs[2] & 0xffffffffffffffff) <= 0x1 else (2,))
    return False

def _s5(sim, pkt, slots, barrier_queues, input_queue, report, _u4=_u4):
    if pkt.done:
        return False
    regs = pkt.regs
    enabled = pkt.enabled
    if 2 in enabled:
        regs[2] = _u4(pkt.ctx.packet, 30)[0]
    if 2 in enabled:
        regs[1] = 0x30000001
    return False

def _s6(sim, pkt, slots, barrier_queues, input_queue, report):
    if pkt.done:
        return False
    regs = pkt.regs
    enabled = pkt.enabled
    if 2 in enabled:
        regs[2] = regs[2] & 0xffffff
    return False

def _s7(sim, pkt, slots, barrier_queues, input_queue, report, _p4=_p4):
    if pkt.done:
        return False
    regs = pkt.regs
    enabled = pkt.enabled
    flushed = False
    if 2 in enabled:
        _se = None
        _p4(pkt.stack, 508, regs[2] & 0xffffffff)
        if _se is not None:
            pkt.take_snapshot(7)
            if sim._flush_check(pkt, _se, slots, barrier_queues, input_queue, report):
                flushed = True
    if not pkt.done and 2 in enabled:
        regs[2] = regs[10] & 0xffffffffffffffff
    if not pkt.done and 2 in enabled:
        regs[2] = (regs[2] + 0xfffffffffffffffc) & 0xffffffffffffffff
    return flushed

def _s8(sim, pkt, slots, barrier_queues, input_queue, report):
    if pkt.done:
        return False
    regs = pkt.regs
    enabled = pkt.enabled
    if 2 in enabled:
        _fd = regs[1] - 0x30000000
        _e = sim._map_entry.get(_fd) or sim._map_entry_for(_fd)
        if _e is None:
            sim._drop(pkt)
        else:
            _m, _ks, _vs, _mb, _lk = _e
            _a = regs[2]
            if 0x200000 <= _a < 0x200200 and _a - 0x200000 + _ks <= 512:
                _o = _a - 0x200000
                _k = bytes(pkt.stack[_o:_o + _ks])
            else:
                _k = sim._read_plain(pkt, _a, _ks)
            if _k is not None:
                _sl = _lk(_k)
                _r = pkt.addr_reads.get(_fd)
                if _r is None:
                    _r = pkt.addr_reads[_fd] = []
                _r.append((_k, _sl))
                regs[0] = 0 if _sl is None else _mb + _sl * _vs
        regs[1] = regs[2] = regs[3] = regs[4] = regs[5] = 0
    return False

def _s10(sim, pkt, slots, barrier_queues, input_queue, report):
    if pkt.done:
        return False
    regs = pkt.regs
    enabled = pkt.enabled
    if 2 in enabled:
        enabled.update((6,) if (regs[0] & 0xffffffffffffffff) == 0x0 else (3,))
    return False

def _s11(sim, pkt, slots, barrier_queues, input_queue, report, _u2=_u2):
    if pkt.done:
        return False
    regs = pkt.regs
    enabled = pkt.enabled
    if 3 in enabled:
        regs[8] = regs[0] & 0xffffffffffffffff
    if 3 in enabled:
        regs[3] = _u2(pkt.ctx.packet, 24)[0]
    if 3 in enabled:
        regs[1] = 0x30000002
    return False

def _s12(sim, pkt, slots, barrier_queues, input_queue, report, _u4=_u4):
    if pkt.done:
        return False
    regs = pkt.regs
    enabled = pkt.enabled
    if 3 in enabled:
        _a = regs[8] & 0xffffffffffffffff
        if _a >= 0x40000000:
            _sp = _a - 0x40000000
            _fd = _sp >> 24
            _o = _sp & 0xffffff
            _m = sim.maps[_fd]
            if _o + 4 > len(_m.storage):
                sim._drop(pkt)
            else:
                _d = sim._map_read_bytes(pkt, _fd, _o, 4)
                pkt.value_reads.setdefault(_fd, set()).add(_m.slot_of_addr(_o))
                regs[2] = int.from_bytes(_d, "little")
        elif 0x100000 <= _a < 0x200000:
            _c = pkt.ctx
            _o = _a - 0x100100 - _c.head_adjust
            _b = _c.packet
            if _o < 0 or _o + 4 > len(_b):
                sim._drop(pkt)
            else:
                regs[2] = _u4(_b, _o)[0]
        elif 0x200000 <= _a < 0x200200:
            _o = _a - 0x200000
            if _o + 4 > 512:
                sim._drop(pkt)
            else:
                regs[2] = _u4(pkt.stack, _o)[0]
        elif 0x1000 <= _a < 0x1018:
            _o = _a - 0x1000
            _c = pkt.ctx
            if _o == 0:
                regs[2] = 0x100100 + _c.head_adjust
            elif _o == 4:
                regs[2] = 0x100100 + _c.head_adjust + len(_c.packet)
            elif _o == 8:
                regs[2] = 0
            elif _o == 12:
                regs[2] = _c.ingress_ifindex
            elif _o == 16:
                regs[2] = _c.rx_queue_index
            elif _o == 20:
                regs[2] = _c.egress_ifindex
            else:
                _d = _c.ctx_bytes()
                if _o + 4 > len(_d):
                    sim._drop(pkt)
                else:
                    regs[2] = int.from_bytes(_d[_o:_o + 4], "little")
        else:
            sim._drop(pkt)
    if not pkt.done and 3 in enabled:
        _v = regs[3] & 0xffff
        regs[3] = int.from_bytes(_v.to_bytes(2, "little"), "big")
    return False

def _s13(sim, pkt, slots, barrier_queues, input_queue, report, _u2=_u2, _p4=_p4):
    if pkt.done:
        return False
    regs = pkt.regs
    enabled = pkt.enabled
    flushed = False
    if 3 in enabled:
        _se = None
        _p4(pkt.ctx.packet, 0, regs[2] & 0xffffffff)
        if _se is not None:
            pkt.take_snapshot(13)
            if sim._flush_check(pkt, _se, slots, barrier_queues, input_queue, report):
                flushed = True
    if not pkt.done and 3 in enabled:
        _a = (regs[8] + 4) & 0xffffffffffffffff
        if _a >= 0x40000000:
            _sp = _a - 0x40000000
            _fd = _sp >> 24
            _o = _sp & 0xffffff
            _m = sim.maps[_fd]
            if _o + 2 > len(_m.storage):
                sim._drop(pkt)
            else:
                _d = sim._map_read_bytes(pkt, _fd, _o, 2)
                pkt.value_reads.setdefault(_fd, set()).add(_m.slot_of_addr(_o))
                regs[2] = int.from_bytes(_d, "little")
        elif 0x100000 <= _a < 0x200000:
            _c = pkt.ctx
            _o = _a - 0x100100 - _c.head_adjust
            _b = _c.packet
            if _o < 0 or _o + 2 > len(_b):
                sim._drop(pkt)
            else:
                regs[2] = _u2(_b, _o)[0]
        elif 0x200000 <= _a < 0x200200:
            _o = _a - 0x200000
            if _o + 2 > 512:
                sim._drop(pkt)
            else:
                regs[2] = _u2(pkt.stack, _o)[0]
        elif 0x1000 <= _a < 0x1018:
            _o = _a - 0x1000
            _d = pkt.ctx.ctx_bytes()
            if _o + 2 > len(_d):
                sim._drop(pkt)
            else:
                regs[2] = int.from_bytes(_d[_o:_o + 2], "little")
        else:
            sim._drop(pkt)
    if not pkt.done and 3 in enabled:
        regs[3] = (regs[3] + 0x100) & 0xffffffffffffffff
    if not pkt.done and 3 in enabled:
        regs[4] = regs[3] & 0xffffffffffffffff
    if not pkt.done and 3 in enabled:
        regs[3] = regs[3] & 0xffff
    return flushed

def _s14(sim, pkt, slots, barrier_queues, input_queue, report, _u4=_u4, _p2=_p2):
    if pkt.done:
        return False
    regs = pkt.regs
    enabled = pkt.enabled
    flushed = False
    if 3 in enabled:
        _se = None
        _p2(pkt.ctx.packet, 4, regs[2] & 0xffff)
        if _se is not None:
            pkt.take_snapshot(14)
            if sim._flush_check(pkt, _se, slots, barrier_queues, input_queue, report):
                flushed = True
    if not pkt.done and 3 in enabled:
        _a = (regs[8] + 6) & 0xffffffffffffffff
        if _a >= 0x40000000:
            _sp = _a - 0x40000000
            _fd = _sp >> 24
            _o = _sp & 0xffffff
            _m = sim.maps[_fd]
            if _o + 4 > len(_m.storage):
                sim._drop(pkt)
            else:
                _d = sim._map_read_bytes(pkt, _fd, _o, 4)
                pkt.value_reads.setdefault(_fd, set()).add(_m.slot_of_addr(_o))
                regs[2] = int.from_bytes(_d, "little")
        elif 0x100000 <= _a < 0x200000:
            _c = pkt.ctx
            _o = _a - 0x100100 - _c.head_adjust
            _b = _c.packet
            if _o < 0 or _o + 4 > len(_b):
                sim._drop(pkt)
            else:
                regs[2] = _u4(_b, _o)[0]
        elif 0x200000 <= _a < 0x200200:
            _o = _a - 0x200000
            if _o + 4 > 512:
                sim._drop(pkt)
            else:
                regs[2] = _u4(pkt.stack, _o)[0]
        elif 0x1000 <= _a < 0x1018:
            _o = _a - 0x1000
            _c = pkt.ctx
            if _o == 0:
                regs[2] = 0x100100 + _c.head_adjust
            elif _o == 4:
                regs[2] = 0x100100 + _c.head_adjust + len(_c.packet)
            elif _o == 8:
                regs[2] = 0
            elif _o == 12:
                regs[2] = _c.ingress_ifindex
            elif _o == 16:
                regs[2] = _c.rx_queue_index
            elif _o == 20:
                regs[2] = _c.egress_ifindex
            else:
                _d = _c.ctx_bytes()
                if _o + 4 > len(_d):
                    sim._drop(pkt)
                else:
                    regs[2] = int.from_bytes(_d[_o:_o + 4], "little")
        else:
            sim._drop(pkt)
    if not pkt.done and 3 in enabled:
        regs[4] = (regs[4] & 0xffffffffffffffff) >> 16
    if not pkt.done and 3 in enabled:
        regs[3] = (regs[3] + regs[4]) & 0xffffffffffffffff
    return flushed

def _s15(sim, pkt, slots, barrier_queues, input_queue, report, _u2=_u2, _p4=_p4):
    if pkt.done:
        return False
    regs = pkt.regs
    enabled = pkt.enabled
    flushed = False
    if 3 in enabled:
        _se = None
        _p4(pkt.ctx.packet, 6, regs[2] & 0xffffffff)
        if _se is not None:
            pkt.take_snapshot(15)
            if sim._flush_check(pkt, _se, slots, barrier_queues, input_queue, report):
                flushed = True
    if not pkt.done and 3 in enabled:
        _a = (regs[8] + 10) & 0xffffffffffffffff
        if _a >= 0x40000000:
            _sp = _a - 0x40000000
            _fd = _sp >> 24
            _o = _sp & 0xffffff
            _m = sim.maps[_fd]
            if _o + 2 > len(_m.storage):
                sim._drop(pkt)
            else:
                _d = sim._map_read_bytes(pkt, _fd, _o, 2)
                pkt.value_reads.setdefault(_fd, set()).add(_m.slot_of_addr(_o))
                regs[2] = int.from_bytes(_d, "little")
        elif 0x100000 <= _a < 0x200000:
            _c = pkt.ctx
            _o = _a - 0x100100 - _c.head_adjust
            _b = _c.packet
            if _o < 0 or _o + 2 > len(_b):
                sim._drop(pkt)
            else:
                regs[2] = _u2(_b, _o)[0]
        elif 0x200000 <= _a < 0x200200:
            _o = _a - 0x200000
            if _o + 2 > 512:
                sim._drop(pkt)
            else:
                regs[2] = _u2(pkt.stack, _o)[0]
        elif 0x1000 <= _a < 0x1018:
            _o = _a - 0x1000
            _d = pkt.ctx.ctx_bytes()
            if _o + 2 > len(_d):
                sim._drop(pkt)
            else:
                regs[2] = int.from_bytes(_d[_o:_o + 2], "little")
        else:
            sim._drop(pkt)
    if not pkt.done and 3 in enabled:
        regs[4] = regs[3] & 0xffffffffffffffff
    if not pkt.done and 3 in enabled:
        regs[4] = (regs[4] & 0xffffffffffffffff) >> 16
    if not pkt.done and 3 in enabled:
        regs[3] = regs[3] & 0xffff
    return flushed

def _s16(sim, pkt, slots, barrier_queues, input_queue, report, _u1=_u1, _p2=_p2):
    if pkt.done:
        return False
    regs = pkt.regs
    enabled = pkt.enabled
    flushed = False
    if 3 in enabled:
        _se = None
        _p2(pkt.ctx.packet, 10, regs[2] & 0xffff)
        if _se is not None:
            pkt.take_snapshot(16)
            if sim._flush_check(pkt, _se, slots, barrier_queues, input_queue, report):
                flushed = True
    if not pkt.done and 3 in enabled:
        regs[2] = _u1(pkt.ctx.packet, 22)[0]
    if not pkt.done and 3 in enabled:
        regs[3] = (regs[3] + regs[4]) & 0xffffffffffffffff
    return flushed

def _s17(sim, pkt, slots, barrier_queues, input_queue, report):
    if pkt.done:
        return False
    regs = pkt.regs
    enabled = pkt.enabled
    if 3 in enabled:
        regs[2] = (regs[2] + 0xffffffffffffffff) & 0xffffffffffffffff
    if 3 in enabled:
        _v = regs[3] & 0xffff
        regs[3] = int.from_bytes(_v.to_bytes(2, "little"), "big")
    return False

def _s18(sim, pkt, slots, barrier_queues, input_queue, report, _p1=_p1, _p2=_p2):
    if pkt.done:
        return False
    regs = pkt.regs
    enabled = pkt.enabled
    flushed = False
    if 3 in enabled:
        _se = None
        _p1(pkt.ctx.packet, 22, regs[2] & 0xff)
        if _se is not None:
            pkt.take_snapshot(18)
            if sim._flush_check(pkt, _se, slots, barrier_queues, input_queue, report):
                flushed = True
    if not pkt.done and 3 in enabled:
        _se = None
        _p2(pkt.ctx.packet, 24, regs[3] & 0xffff)
        if _se is not None:
            pkt.take_snapshot(18)
            if sim._flush_check(pkt, _se, slots, barrier_queues, input_queue, report):
                flushed = True
    if not pkt.done and 3 in enabled:
        regs[2] = 0x0
    return flushed

def _s19(sim, pkt, slots, barrier_queues, input_queue, report, _p4=_p4):
    if pkt.done:
        return False
    regs = pkt.regs
    enabled = pkt.enabled
    flushed = False
    if 3 in enabled:
        _se = None
        _p4(pkt.stack, 504, regs[2] & 0xffffffff)
        if _se is not None:
            pkt.take_snapshot(19)
            if sim._flush_check(pkt, _se, slots, barrier_queues, input_queue, report):
                flushed = True
    if not pkt.done and 3 in enabled:
        regs[2] = regs[10] & 0xffffffffffffffff
    if not pkt.done and 3 in enabled:
        regs[2] = (regs[2] + 0xfffffffffffffff8) & 0xffffffffffffffff
    return flushed

def _s20(sim, pkt, slots, barrier_queues, input_queue, report):
    if pkt.done:
        return False
    regs = pkt.regs
    enabled = pkt.enabled
    if 3 in enabled:
        _fd = regs[1] - 0x30000000
        _e = sim._map_entry.get(_fd) or sim._map_entry_for(_fd)
        if _e is None:
            sim._drop(pkt)
        else:
            _m, _ks, _vs, _mb, _lk = _e
            _a = regs[2]
            if 0x200000 <= _a < 0x200200 and _a - 0x200000 + _ks <= 512:
                _o = _a - 0x200000
                _k = bytes(pkt.stack[_o:_o + _ks])
            else:
                _k = sim._read_plain(pkt, _a, _ks)
            if _k is not None:
                _sl = _lk(_k)
                _r = pkt.addr_reads.get(_fd)
                if _r is None:
                    _r = pkt.addr_reads[_fd] = []
                _r.append((_k, _sl))
                regs[0] = 0 if _sl is None else _mb + _sl * _vs
        regs[1] = regs[2] = regs[3] = regs[4] = regs[5] = 0
    return False

def _s22(sim, pkt, slots, barrier_queues, input_queue, report):
    if pkt.done:
        return False
    regs = pkt.regs
    enabled = pkt.enabled
    if 3 in enabled:
        enabled.update((5,) if (regs[0] & 0xffffffffffffffff) == 0x0 else (4,))
    return False

def _s23(sim, pkt, slots, barrier_queues, input_queue, report, _u8=_u8):
    if pkt.done:
        return False
    regs = pkt.regs
    enabled = pkt.enabled
    if 4 in enabled:
        _a = regs[0] & 0xffffffffffffffff
        if _a >= 0x40000000:
            _sp = _a - 0x40000000
            _fd = _sp >> 24
            _o = _sp & 0xffffff
            _m = sim.maps[_fd]
            if _o + 8 > len(_m.storage):
                sim._drop(pkt)
            else:
                _d = sim._map_read_bytes(pkt, _fd, _o, 8)
                pkt.value_reads.setdefault(_fd, set()).add(_m.slot_of_addr(_o))
                regs[2] = int.from_bytes(_d, "little")
        elif 0x100000 <= _a < 0x200000:
            _c = pkt.ctx
            _o = _a - 0x100100 - _c.head_adjust
            _b = _c.packet
            if _o < 0 or _o + 8 > len(_b):
                sim._drop(pkt)
            else:
                regs[2] = _u8(_b, _o)[0]
        elif 0x200000 <= _a < 0x200200:
            _o = _a - 0x200000
            if _o + 8 > 512:
                sim._drop(pkt)
            else:
                regs[2] = _u8(pkt.stack, _o)[0]
        elif 0x1000 <= _a < 0x1018:
            _o = _a - 0x1000
            _d = pkt.ctx.ctx_bytes()
            if _o + 8 > len(_d):
                sim._drop(pkt)
            else:
                regs[2] = int.from_bytes(_d[_o:_o + 8], "little")
        else:
            sim._drop(pkt)
    return False

def _s24(sim, pkt, slots, barrier_queues, input_queue, report):
    if pkt.done:
        return False
    regs = pkt.regs
    enabled = pkt.enabled
    if 4 in enabled:
        regs[2] = (regs[2] + 0x1) & 0xffffffffffffffff
    return False

def _s25(sim, pkt, slots, barrier_queues, input_queue, report, _p8=_p8):
    if pkt.done:
        return False
    regs = pkt.regs
    enabled = pkt.enabled
    flushed = False
    if 4 in enabled:
        _a = regs[0] & 0xffffffffffffffff
        _v = regs[2]
        _se = None
        if 0x200000 <= _a < 0x200200:
            _o = _a - 0x200000
            if _o + 8 > 512:
                sim._drop(pkt)
            else:
                _p8(pkt.stack, _o, _v & 0xffffffffffffffff)
        elif 0x100000 <= _a < 0x200000:
            _c = pkt.ctx
            _o = _a - 0x100100 - _c.head_adjust
            if _o < 0 or _o + 8 > len(_c.packet):
                sim._drop(pkt)
            else:
                _p8(_c.packet, _o, _v & 0xffffffffffffffff)
        else:
            _se = sim._mem_store(pkt, _a, 8, _v, None)
        if not pkt.done:
            enabled.add(5)
        if _se is not None:
            pkt.take_snapshot(25)
            if sim._flush_check(pkt, _se, slots, barrier_queues, input_queue, report):
                flushed = True
    return flushed

def _s26(sim, pkt, slots, barrier_queues, input_queue, report, _u4=_u4):
    if pkt.done:
        return False
    regs = pkt.regs
    enabled = pkt.enabled
    if 5 in enabled:
        _a = (regs[8] + 12) & 0xffffffffffffffff
        if _a >= 0x40000000:
            _sp = _a - 0x40000000
            _fd = _sp >> 24
            _o = _sp & 0xffffff
            _m = sim.maps[_fd]
            if _o + 4 > len(_m.storage):
                sim._drop(pkt)
            else:
                _d = sim._map_read_bytes(pkt, _fd, _o, 4)
                pkt.value_reads.setdefault(_fd, set()).add(_m.slot_of_addr(_o))
                regs[1] = int.from_bytes(_d, "little")
        elif 0x100000 <= _a < 0x200000:
            _c = pkt.ctx
            _o = _a - 0x100100 - _c.head_adjust
            _b = _c.packet
            if _o < 0 or _o + 4 > len(_b):
                sim._drop(pkt)
            else:
                regs[1] = _u4(_b, _o)[0]
        elif 0x200000 <= _a < 0x200200:
            _o = _a - 0x200000
            if _o + 4 > 512:
                sim._drop(pkt)
            else:
                regs[1] = _u4(pkt.stack, _o)[0]
        elif 0x1000 <= _a < 0x1018:
            _o = _a - 0x1000
            _c = pkt.ctx
            if _o == 0:
                regs[1] = 0x100100 + _c.head_adjust
            elif _o == 4:
                regs[1] = 0x100100 + _c.head_adjust + len(_c.packet)
            elif _o == 8:
                regs[1] = 0
            elif _o == 12:
                regs[1] = _c.ingress_ifindex
            elif _o == 16:
                regs[1] = _c.rx_queue_index
            elif _o == 20:
                regs[1] = _c.egress_ifindex
            else:
                _d = _c.ctx_bytes()
                if _o + 4 > len(_d):
                    sim._drop(pkt)
                else:
                    regs[1] = int.from_bytes(_d[_o:_o + 4], "little")
        else:
            sim._drop(pkt)
    if not pkt.done and 5 in enabled:
        regs[2] = 0x0
    return False

def _s27(sim, pkt, slots, barrier_queues, input_queue, report, _HC=_HC, _h23=_h23):
    if pkt.done:
        return False
    regs = pkt.regs
    enabled = pkt.enabled
    if 5 in enabled:
        regs[0] = _h23(_HC(sim, pkt), regs[1], regs[2], regs[3], regs[4], regs[5]) & 0xffffffffffffffff
        regs[1] = regs[2] = regs[3] = regs[4] = regs[5] = 0
    return False

def _s28(sim, pkt, slots, barrier_queues, input_queue, report, _ACTIONS=_ACTIONS, _ABORTED=_ABORTED):
    if pkt.done:
        return False
    regs = pkt.regs
    enabled = pkt.enabled
    if 5 in enabled:
        pkt.done = True
        pkt.action = _ACTIONS.get(regs[0] & 0xffffffff, _ABORTED)
    return False

def _s29(sim, pkt, slots, barrier_queues, input_queue, report):
    if pkt.done:
        return False
    regs = pkt.regs
    enabled = pkt.enabled
    if 6 in enabled:
        regs[0] = 0x2
    return False

def _s30(sim, pkt, slots, barrier_queues, input_queue, report, _ACTIONS=_ACTIONS, _ABORTED=_ABORTED):
    if pkt.done:
        return False
    regs = pkt.regs
    enabled = pkt.enabled
    if 6 in enabled:
        pkt.done = True
        pkt.action = _ACTIONS.get(regs[0] & 0xffffffff, _ABORTED)
    return False

def _entry(sim, pkt):
    regs = pkt.regs
    regs[6] = 0x100100 + pkt.ctx.head_adjust

def _advance(sim, slots, barrier_queues, input_queue, report, _HC=_HC, _u1=_u1, _u2=_u2, _u4=_u4, _u8=_u8, _p1=_p1, _p2=_p2, _p4=_p4, _p8=_p8, _ACTIONS=_ACTIONS, _ABORTED=_ABORTED, _h23=_h23):
    flushed = False
    pkt = slots[29]
    if pkt is not None:
        slots[29] = None
        slots[30] = pkt
        pkt.position = 30
        if pkt.pending_writes:
            sim._commit_pending(pkt, 30)
        if not pkt.done:
            regs = pkt.regs
            enabled = pkt.enabled
            if 6 in enabled:
                pkt.done = True
                pkt.action = _ACTIONS.get(regs[0] & 0xffffffff, _ABORTED)
    pkt = slots[28]
    if pkt is not None:
        slots[28] = None
        slots[29] = pkt
        pkt.position = 29
        if pkt.pending_writes:
            sim._commit_pending(pkt, 29)
        if not pkt.done:
            regs = pkt.regs
            enabled = pkt.enabled
            if 6 in enabled:
                regs[0] = 0x2
    pkt = slots[27]
    if pkt is not None:
        slots[27] = None
        slots[28] = pkt
        pkt.position = 28
        if pkt.pending_writes:
            sim._commit_pending(pkt, 28)
        if not pkt.done:
            regs = pkt.regs
            enabled = pkt.enabled
            if 5 in enabled:
                pkt.done = True
                pkt.action = _ACTIONS.get(regs[0] & 0xffffffff, _ABORTED)
    pkt = slots[26]
    if pkt is not None:
        slots[26] = None
        slots[27] = pkt
        pkt.position = 27
        if pkt.pending_writes:
            sim._commit_pending(pkt, 27)
        if not pkt.done:
            regs = pkt.regs
            enabled = pkt.enabled
            if 5 in enabled:
                regs[0] = _h23(_HC(sim, pkt), regs[1], regs[2], regs[3], regs[4], regs[5]) & 0xffffffffffffffff
                regs[1] = regs[2] = regs[3] = regs[4] = regs[5] = 0
    pkt = slots[25]
    if pkt is not None:
        slots[25] = None
        slots[26] = pkt
        pkt.position = 26
        if pkt.pending_writes:
            sim._commit_pending(pkt, 26)
        if not pkt.done:
            regs = pkt.regs
            enabled = pkt.enabled
            if 5 in enabled:
                _a = (regs[8] + 12) & 0xffffffffffffffff
                if _a >= 0x40000000:
                    _sp = _a - 0x40000000
                    _fd = _sp >> 24
                    _o = _sp & 0xffffff
                    _m = sim.maps[_fd]
                    if _o + 4 > len(_m.storage):
                        sim._drop(pkt)
                    else:
                        _d = sim._map_read_bytes(pkt, _fd, _o, 4)
                        pkt.value_reads.setdefault(_fd, set()).add(_m.slot_of_addr(_o))
                        regs[1] = int.from_bytes(_d, "little")
                elif 0x100000 <= _a < 0x200000:
                    _c = pkt.ctx
                    _o = _a - 0x100100 - _c.head_adjust
                    _b = _c.packet
                    if _o < 0 or _o + 4 > len(_b):
                        sim._drop(pkt)
                    else:
                        regs[1] = _u4(_b, _o)[0]
                elif 0x200000 <= _a < 0x200200:
                    _o = _a - 0x200000
                    if _o + 4 > 512:
                        sim._drop(pkt)
                    else:
                        regs[1] = _u4(pkt.stack, _o)[0]
                elif 0x1000 <= _a < 0x1018:
                    _o = _a - 0x1000
                    _c = pkt.ctx
                    if _o == 0:
                        regs[1] = 0x100100 + _c.head_adjust
                    elif _o == 4:
                        regs[1] = 0x100100 + _c.head_adjust + len(_c.packet)
                    elif _o == 8:
                        regs[1] = 0
                    elif _o == 12:
                        regs[1] = _c.ingress_ifindex
                    elif _o == 16:
                        regs[1] = _c.rx_queue_index
                    elif _o == 20:
                        regs[1] = _c.egress_ifindex
                    else:
                        _d = _c.ctx_bytes()
                        if _o + 4 > len(_d):
                            sim._drop(pkt)
                        else:
                            regs[1] = int.from_bytes(_d[_o:_o + 4], "little")
                else:
                    sim._drop(pkt)
            if not pkt.done and 5 in enabled:
                regs[2] = 0x0
    pkt = slots[24]
    if pkt is not None:
        slots[24] = None
        slots[25] = pkt
        pkt.position = 25
        if pkt.pending_writes:
            sim._commit_pending(pkt, 25)
        if not pkt.done:
            regs = pkt.regs
            enabled = pkt.enabled
            if 4 in enabled:
                _a = regs[0] & 0xffffffffffffffff
                _v = regs[2]
                _se = None
                if 0x200000 <= _a < 0x200200:
                    _o = _a - 0x200000
                    if _o + 8 > 512:
                        sim._drop(pkt)
                    else:
                        _p8(pkt.stack, _o, _v & 0xffffffffffffffff)
                elif 0x100000 <= _a < 0x200000:
                    _c = pkt.ctx
                    _o = _a - 0x100100 - _c.head_adjust
                    if _o < 0 or _o + 8 > len(_c.packet):
                        sim._drop(pkt)
                    else:
                        _p8(_c.packet, _o, _v & 0xffffffffffffffff)
                else:
                    _se = sim._mem_store(pkt, _a, 8, _v, None)
                if not pkt.done:
                    enabled.add(5)
                if _se is not None:
                    pkt.take_snapshot(25)
                    if sim._flush_check(pkt, _se, slots, barrier_queues, input_queue, report):
                        flushed = True
    pkt = slots[23]
    if pkt is not None:
        slots[23] = None
        slots[24] = pkt
        pkt.position = 24
        if pkt.pending_writes:
            sim._commit_pending(pkt, 24)
        if not pkt.done:
            regs = pkt.regs
            enabled = pkt.enabled
            if 4 in enabled:
                regs[2] = (regs[2] + 0x1) & 0xffffffffffffffff
    pkt = slots[22]
    if pkt is not None:
        slots[22] = None
        slots[23] = pkt
        pkt.position = 23
        if pkt.pending_writes:
            sim._commit_pending(pkt, 23)
        if not pkt.done:
            regs = pkt.regs
            enabled = pkt.enabled
            if 4 in enabled:
                _a = regs[0] & 0xffffffffffffffff
                if _a >= 0x40000000:
                    _sp = _a - 0x40000000
                    _fd = _sp >> 24
                    _o = _sp & 0xffffff
                    _m = sim.maps[_fd]
                    if _o + 8 > len(_m.storage):
                        sim._drop(pkt)
                    else:
                        _d = sim._map_read_bytes(pkt, _fd, _o, 8)
                        pkt.value_reads.setdefault(_fd, set()).add(_m.slot_of_addr(_o))
                        regs[2] = int.from_bytes(_d, "little")
                elif 0x100000 <= _a < 0x200000:
                    _c = pkt.ctx
                    _o = _a - 0x100100 - _c.head_adjust
                    _b = _c.packet
                    if _o < 0 or _o + 8 > len(_b):
                        sim._drop(pkt)
                    else:
                        regs[2] = _u8(_b, _o)[0]
                elif 0x200000 <= _a < 0x200200:
                    _o = _a - 0x200000
                    if _o + 8 > 512:
                        sim._drop(pkt)
                    else:
                        regs[2] = _u8(pkt.stack, _o)[0]
                elif 0x1000 <= _a < 0x1018:
                    _o = _a - 0x1000
                    _d = pkt.ctx.ctx_bytes()
                    if _o + 8 > len(_d):
                        sim._drop(pkt)
                    else:
                        regs[2] = int.from_bytes(_d[_o:_o + 8], "little")
                else:
                    sim._drop(pkt)
    pkt = slots[21]
    if pkt is not None:
        slots[21] = None
        slots[22] = pkt
        pkt.position = 22
        if pkt.pending_writes:
            sim._commit_pending(pkt, 22)
        if not pkt.done:
            regs = pkt.regs
            enabled = pkt.enabled
            if 3 in enabled:
                enabled.update((5,) if (regs[0] & 0xffffffffffffffff) == 0x0 else (4,))
    pkt = slots[20]
    if pkt is not None:
        slots[20] = None
        slots[21] = pkt
        pkt.position = 21
        if pkt.pending_writes:
            sim._commit_pending(pkt, 21)
    pkt = slots[19]
    if pkt is not None:
        slots[19] = None
        slots[20] = pkt
        pkt.position = 20
        if pkt.pending_writes:
            sim._commit_pending(pkt, 20)
        if not pkt.done:
            regs = pkt.regs
            enabled = pkt.enabled
            if 3 in enabled:
                _fd = regs[1] - 0x30000000
                _e = sim._map_entry.get(_fd) or sim._map_entry_for(_fd)
                if _e is None:
                    sim._drop(pkt)
                else:
                    _m, _ks, _vs, _mb, _lk = _e
                    _a = regs[2]
                    if 0x200000 <= _a < 0x200200 and _a - 0x200000 + _ks <= 512:
                        _o = _a - 0x200000
                        _k = bytes(pkt.stack[_o:_o + _ks])
                    else:
                        _k = sim._read_plain(pkt, _a, _ks)
                    if _k is not None:
                        _sl = _lk(_k)
                        _r = pkt.addr_reads.get(_fd)
                        if _r is None:
                            _r = pkt.addr_reads[_fd] = []
                        _r.append((_k, _sl))
                        regs[0] = 0 if _sl is None else _mb + _sl * _vs
                regs[1] = regs[2] = regs[3] = regs[4] = regs[5] = 0
    pkt = slots[18]
    if pkt is not None:
        slots[18] = None
        slots[19] = pkt
        pkt.position = 19
        if pkt.pending_writes:
            sim._commit_pending(pkt, 19)
        if not pkt.done:
            regs = pkt.regs
            enabled = pkt.enabled
            if 3 in enabled:
                _se = None
                _p4(pkt.stack, 504, regs[2] & 0xffffffff)
                if _se is not None:
                    pkt.take_snapshot(19)
                    if sim._flush_check(pkt, _se, slots, barrier_queues, input_queue, report):
                        flushed = True
            if not pkt.done and 3 in enabled:
                regs[2] = regs[10] & 0xffffffffffffffff
            if not pkt.done and 3 in enabled:
                regs[2] = (regs[2] + 0xfffffffffffffff8) & 0xffffffffffffffff
    pkt = slots[17]
    if pkt is not None:
        slots[17] = None
        slots[18] = pkt
        pkt.position = 18
        if pkt.pending_writes:
            sim._commit_pending(pkt, 18)
        if not pkt.done:
            regs = pkt.regs
            enabled = pkt.enabled
            if 3 in enabled:
                _se = None
                _p1(pkt.ctx.packet, 22, regs[2] & 0xff)
                if _se is not None:
                    pkt.take_snapshot(18)
                    if sim._flush_check(pkt, _se, slots, barrier_queues, input_queue, report):
                        flushed = True
            if not pkt.done and 3 in enabled:
                _se = None
                _p2(pkt.ctx.packet, 24, regs[3] & 0xffff)
                if _se is not None:
                    pkt.take_snapshot(18)
                    if sim._flush_check(pkt, _se, slots, barrier_queues, input_queue, report):
                        flushed = True
            if not pkt.done and 3 in enabled:
                regs[2] = 0x0
    pkt = slots[16]
    if pkt is not None:
        slots[16] = None
        slots[17] = pkt
        pkt.position = 17
        if pkt.pending_writes:
            sim._commit_pending(pkt, 17)
        if not pkt.done:
            regs = pkt.regs
            enabled = pkt.enabled
            if 3 in enabled:
                regs[2] = (regs[2] + 0xffffffffffffffff) & 0xffffffffffffffff
            if 3 in enabled:
                _v = regs[3] & 0xffff
                regs[3] = int.from_bytes(_v.to_bytes(2, "little"), "big")
    pkt = slots[15]
    if pkt is not None:
        slots[15] = None
        slots[16] = pkt
        pkt.position = 16
        if pkt.pending_writes:
            sim._commit_pending(pkt, 16)
        if not pkt.done:
            regs = pkt.regs
            enabled = pkt.enabled
            if 3 in enabled:
                _se = None
                _p2(pkt.ctx.packet, 10, regs[2] & 0xffff)
                if _se is not None:
                    pkt.take_snapshot(16)
                    if sim._flush_check(pkt, _se, slots, barrier_queues, input_queue, report):
                        flushed = True
            if not pkt.done and 3 in enabled:
                regs[2] = _u1(pkt.ctx.packet, 22)[0]
            if not pkt.done and 3 in enabled:
                regs[3] = (regs[3] + regs[4]) & 0xffffffffffffffff
    pkt = slots[14]
    if pkt is not None:
        slots[14] = None
        slots[15] = pkt
        pkt.position = 15
        if pkt.pending_writes:
            sim._commit_pending(pkt, 15)
        if not pkt.done:
            regs = pkt.regs
            enabled = pkt.enabled
            if 3 in enabled:
                _se = None
                _p4(pkt.ctx.packet, 6, regs[2] & 0xffffffff)
                if _se is not None:
                    pkt.take_snapshot(15)
                    if sim._flush_check(pkt, _se, slots, barrier_queues, input_queue, report):
                        flushed = True
            if not pkt.done and 3 in enabled:
                _a = (regs[8] + 10) & 0xffffffffffffffff
                if _a >= 0x40000000:
                    _sp = _a - 0x40000000
                    _fd = _sp >> 24
                    _o = _sp & 0xffffff
                    _m = sim.maps[_fd]
                    if _o + 2 > len(_m.storage):
                        sim._drop(pkt)
                    else:
                        _d = sim._map_read_bytes(pkt, _fd, _o, 2)
                        pkt.value_reads.setdefault(_fd, set()).add(_m.slot_of_addr(_o))
                        regs[2] = int.from_bytes(_d, "little")
                elif 0x100000 <= _a < 0x200000:
                    _c = pkt.ctx
                    _o = _a - 0x100100 - _c.head_adjust
                    _b = _c.packet
                    if _o < 0 or _o + 2 > len(_b):
                        sim._drop(pkt)
                    else:
                        regs[2] = _u2(_b, _o)[0]
                elif 0x200000 <= _a < 0x200200:
                    _o = _a - 0x200000
                    if _o + 2 > 512:
                        sim._drop(pkt)
                    else:
                        regs[2] = _u2(pkt.stack, _o)[0]
                elif 0x1000 <= _a < 0x1018:
                    _o = _a - 0x1000
                    _d = pkt.ctx.ctx_bytes()
                    if _o + 2 > len(_d):
                        sim._drop(pkt)
                    else:
                        regs[2] = int.from_bytes(_d[_o:_o + 2], "little")
                else:
                    sim._drop(pkt)
            if not pkt.done and 3 in enabled:
                regs[4] = regs[3] & 0xffffffffffffffff
            if not pkt.done and 3 in enabled:
                regs[4] = (regs[4] & 0xffffffffffffffff) >> 16
            if not pkt.done and 3 in enabled:
                regs[3] = regs[3] & 0xffff
    pkt = slots[13]
    if pkt is not None:
        slots[13] = None
        slots[14] = pkt
        pkt.position = 14
        if pkt.pending_writes:
            sim._commit_pending(pkt, 14)
        if not pkt.done:
            regs = pkt.regs
            enabled = pkt.enabled
            if 3 in enabled:
                _se = None
                _p2(pkt.ctx.packet, 4, regs[2] & 0xffff)
                if _se is not None:
                    pkt.take_snapshot(14)
                    if sim._flush_check(pkt, _se, slots, barrier_queues, input_queue, report):
                        flushed = True
            if not pkt.done and 3 in enabled:
                _a = (regs[8] + 6) & 0xffffffffffffffff
                if _a >= 0x40000000:
                    _sp = _a - 0x40000000
                    _fd = _sp >> 24
                    _o = _sp & 0xffffff
                    _m = sim.maps[_fd]
                    if _o + 4 > len(_m.storage):
                        sim._drop(pkt)
                    else:
                        _d = sim._map_read_bytes(pkt, _fd, _o, 4)
                        pkt.value_reads.setdefault(_fd, set()).add(_m.slot_of_addr(_o))
                        regs[2] = int.from_bytes(_d, "little")
                elif 0x100000 <= _a < 0x200000:
                    _c = pkt.ctx
                    _o = _a - 0x100100 - _c.head_adjust
                    _b = _c.packet
                    if _o < 0 or _o + 4 > len(_b):
                        sim._drop(pkt)
                    else:
                        regs[2] = _u4(_b, _o)[0]
                elif 0x200000 <= _a < 0x200200:
                    _o = _a - 0x200000
                    if _o + 4 > 512:
                        sim._drop(pkt)
                    else:
                        regs[2] = _u4(pkt.stack, _o)[0]
                elif 0x1000 <= _a < 0x1018:
                    _o = _a - 0x1000
                    _c = pkt.ctx
                    if _o == 0:
                        regs[2] = 0x100100 + _c.head_adjust
                    elif _o == 4:
                        regs[2] = 0x100100 + _c.head_adjust + len(_c.packet)
                    elif _o == 8:
                        regs[2] = 0
                    elif _o == 12:
                        regs[2] = _c.ingress_ifindex
                    elif _o == 16:
                        regs[2] = _c.rx_queue_index
                    elif _o == 20:
                        regs[2] = _c.egress_ifindex
                    else:
                        _d = _c.ctx_bytes()
                        if _o + 4 > len(_d):
                            sim._drop(pkt)
                        else:
                            regs[2] = int.from_bytes(_d[_o:_o + 4], "little")
                else:
                    sim._drop(pkt)
            if not pkt.done and 3 in enabled:
                regs[4] = (regs[4] & 0xffffffffffffffff) >> 16
            if not pkt.done and 3 in enabled:
                regs[3] = (regs[3] + regs[4]) & 0xffffffffffffffff
    pkt = slots[12]
    if pkt is not None:
        slots[12] = None
        slots[13] = pkt
        pkt.position = 13
        if pkt.pending_writes:
            sim._commit_pending(pkt, 13)
        if not pkt.done:
            regs = pkt.regs
            enabled = pkt.enabled
            if 3 in enabled:
                _se = None
                _p4(pkt.ctx.packet, 0, regs[2] & 0xffffffff)
                if _se is not None:
                    pkt.take_snapshot(13)
                    if sim._flush_check(pkt, _se, slots, barrier_queues, input_queue, report):
                        flushed = True
            if not pkt.done and 3 in enabled:
                _a = (regs[8] + 4) & 0xffffffffffffffff
                if _a >= 0x40000000:
                    _sp = _a - 0x40000000
                    _fd = _sp >> 24
                    _o = _sp & 0xffffff
                    _m = sim.maps[_fd]
                    if _o + 2 > len(_m.storage):
                        sim._drop(pkt)
                    else:
                        _d = sim._map_read_bytes(pkt, _fd, _o, 2)
                        pkt.value_reads.setdefault(_fd, set()).add(_m.slot_of_addr(_o))
                        regs[2] = int.from_bytes(_d, "little")
                elif 0x100000 <= _a < 0x200000:
                    _c = pkt.ctx
                    _o = _a - 0x100100 - _c.head_adjust
                    _b = _c.packet
                    if _o < 0 or _o + 2 > len(_b):
                        sim._drop(pkt)
                    else:
                        regs[2] = _u2(_b, _o)[0]
                elif 0x200000 <= _a < 0x200200:
                    _o = _a - 0x200000
                    if _o + 2 > 512:
                        sim._drop(pkt)
                    else:
                        regs[2] = _u2(pkt.stack, _o)[0]
                elif 0x1000 <= _a < 0x1018:
                    _o = _a - 0x1000
                    _d = pkt.ctx.ctx_bytes()
                    if _o + 2 > len(_d):
                        sim._drop(pkt)
                    else:
                        regs[2] = int.from_bytes(_d[_o:_o + 2], "little")
                else:
                    sim._drop(pkt)
            if not pkt.done and 3 in enabled:
                regs[3] = (regs[3] + 0x100) & 0xffffffffffffffff
            if not pkt.done and 3 in enabled:
                regs[4] = regs[3] & 0xffffffffffffffff
            if not pkt.done and 3 in enabled:
                regs[3] = regs[3] & 0xffff
    pkt = slots[11]
    if pkt is not None:
        slots[11] = None
        slots[12] = pkt
        pkt.position = 12
        if pkt.pending_writes:
            sim._commit_pending(pkt, 12)
        if not pkt.done:
            regs = pkt.regs
            enabled = pkt.enabled
            if 3 in enabled:
                _a = regs[8] & 0xffffffffffffffff
                if _a >= 0x40000000:
                    _sp = _a - 0x40000000
                    _fd = _sp >> 24
                    _o = _sp & 0xffffff
                    _m = sim.maps[_fd]
                    if _o + 4 > len(_m.storage):
                        sim._drop(pkt)
                    else:
                        _d = sim._map_read_bytes(pkt, _fd, _o, 4)
                        pkt.value_reads.setdefault(_fd, set()).add(_m.slot_of_addr(_o))
                        regs[2] = int.from_bytes(_d, "little")
                elif 0x100000 <= _a < 0x200000:
                    _c = pkt.ctx
                    _o = _a - 0x100100 - _c.head_adjust
                    _b = _c.packet
                    if _o < 0 or _o + 4 > len(_b):
                        sim._drop(pkt)
                    else:
                        regs[2] = _u4(_b, _o)[0]
                elif 0x200000 <= _a < 0x200200:
                    _o = _a - 0x200000
                    if _o + 4 > 512:
                        sim._drop(pkt)
                    else:
                        regs[2] = _u4(pkt.stack, _o)[0]
                elif 0x1000 <= _a < 0x1018:
                    _o = _a - 0x1000
                    _c = pkt.ctx
                    if _o == 0:
                        regs[2] = 0x100100 + _c.head_adjust
                    elif _o == 4:
                        regs[2] = 0x100100 + _c.head_adjust + len(_c.packet)
                    elif _o == 8:
                        regs[2] = 0
                    elif _o == 12:
                        regs[2] = _c.ingress_ifindex
                    elif _o == 16:
                        regs[2] = _c.rx_queue_index
                    elif _o == 20:
                        regs[2] = _c.egress_ifindex
                    else:
                        _d = _c.ctx_bytes()
                        if _o + 4 > len(_d):
                            sim._drop(pkt)
                        else:
                            regs[2] = int.from_bytes(_d[_o:_o + 4], "little")
                else:
                    sim._drop(pkt)
            if not pkt.done and 3 in enabled:
                _v = regs[3] & 0xffff
                regs[3] = int.from_bytes(_v.to_bytes(2, "little"), "big")
    pkt = slots[10]
    if pkt is not None:
        slots[10] = None
        slots[11] = pkt
        pkt.position = 11
        if pkt.pending_writes:
            sim._commit_pending(pkt, 11)
        if not pkt.done:
            regs = pkt.regs
            enabled = pkt.enabled
            if 3 in enabled:
                regs[8] = regs[0] & 0xffffffffffffffff
            if 3 in enabled:
                regs[3] = _u2(pkt.ctx.packet, 24)[0]
            if 3 in enabled:
                regs[1] = 0x30000002
    pkt = slots[9]
    if pkt is not None:
        slots[9] = None
        slots[10] = pkt
        pkt.position = 10
        if pkt.pending_writes:
            sim._commit_pending(pkt, 10)
        if not pkt.done:
            regs = pkt.regs
            enabled = pkt.enabled
            if 2 in enabled:
                enabled.update((6,) if (regs[0] & 0xffffffffffffffff) == 0x0 else (3,))
    pkt = slots[8]
    if pkt is not None:
        slots[8] = None
        slots[9] = pkt
        pkt.position = 9
        if pkt.pending_writes:
            sim._commit_pending(pkt, 9)
    pkt = slots[7]
    if pkt is not None:
        slots[7] = None
        slots[8] = pkt
        pkt.position = 8
        if pkt.pending_writes:
            sim._commit_pending(pkt, 8)
        if not pkt.done:
            regs = pkt.regs
            enabled = pkt.enabled
            if 2 in enabled:
                _fd = regs[1] - 0x30000000
                _e = sim._map_entry.get(_fd) or sim._map_entry_for(_fd)
                if _e is None:
                    sim._drop(pkt)
                else:
                    _m, _ks, _vs, _mb, _lk = _e
                    _a = regs[2]
                    if 0x200000 <= _a < 0x200200 and _a - 0x200000 + _ks <= 512:
                        _o = _a - 0x200000
                        _k = bytes(pkt.stack[_o:_o + _ks])
                    else:
                        _k = sim._read_plain(pkt, _a, _ks)
                    if _k is not None:
                        _sl = _lk(_k)
                        _r = pkt.addr_reads.get(_fd)
                        if _r is None:
                            _r = pkt.addr_reads[_fd] = []
                        _r.append((_k, _sl))
                        regs[0] = 0 if _sl is None else _mb + _sl * _vs
                regs[1] = regs[2] = regs[3] = regs[4] = regs[5] = 0
    pkt = slots[6]
    if pkt is not None:
        slots[6] = None
        slots[7] = pkt
        pkt.position = 7
        if pkt.pending_writes:
            sim._commit_pending(pkt, 7)
        if not pkt.done:
            regs = pkt.regs
            enabled = pkt.enabled
            if 2 in enabled:
                _se = None
                _p4(pkt.stack, 508, regs[2] & 0xffffffff)
                if _se is not None:
                    pkt.take_snapshot(7)
                    if sim._flush_check(pkt, _se, slots, barrier_queues, input_queue, report):
                        flushed = True
            if not pkt.done and 2 in enabled:
                regs[2] = regs[10] & 0xffffffffffffffff
            if not pkt.done and 2 in enabled:
                regs[2] = (regs[2] + 0xfffffffffffffffc) & 0xffffffffffffffff
    pkt = slots[5]
    if pkt is not None:
        slots[5] = None
        slots[6] = pkt
        pkt.position = 6
        if pkt.pending_writes:
            sim._commit_pending(pkt, 6)
        if not pkt.done:
            regs = pkt.regs
            enabled = pkt.enabled
            if 2 in enabled:
                regs[2] = regs[2] & 0xffffff
    pkt = slots[4]
    if pkt is not None:
        slots[4] = None
        slots[5] = pkt
        pkt.position = 5
        if pkt.pending_writes:
            sim._commit_pending(pkt, 5)
        if not pkt.done:
            regs = pkt.regs
            enabled = pkt.enabled
            if 2 in enabled:
                regs[2] = _u4(pkt.ctx.packet, 30)[0]
            if 2 in enabled:
                regs[1] = 0x30000001
    pkt = slots[3]
    if pkt is not None:
        slots[3] = None
        slots[4] = pkt
        pkt.position = 4
        if pkt.pending_writes:
            sim._commit_pending(pkt, 4)
        if not pkt.done:
            regs = pkt.regs
            enabled = pkt.enabled
            if 1 in enabled:
                enabled.update((6,) if (regs[2] & 0xffffffffffffffff) <= 0x1 else (2,))
    pkt = slots[2]
    if pkt is not None:
        slots[2] = None
        slots[3] = pkt
        pkt.position = 3
        if pkt.pending_writes:
            sim._commit_pending(pkt, 3)
        if not pkt.done:
            regs = pkt.regs
            enabled = pkt.enabled
            if 1 in enabled:
                regs[2] = _u1(pkt.ctx.packet, 22)[0]
    pkt = slots[1]
    if pkt is not None:
        slots[1] = None
        slots[2] = pkt
        pkt.position = 2
        if pkt.pending_writes:
            sim._commit_pending(pkt, 2)
        if not pkt.done:
            regs = pkt.regs
            enabled = pkt.enabled
            if 0 in enabled:
                enabled.update((6,) if (regs[2] & 0xffffffffffffffff) != 0x8 else (1,))
    return flushed

def _observe(metrics, slots, barrier_queues):
    metrics.observed_cycles += 1
    _b = metrics.stage_busy_cycles
    if slots[1] is not None:
        _b[0] += 1
    if slots[2] is not None:
        _b[1] += 1
    if slots[3] is not None:
        _b[2] += 1
    if slots[4] is not None:
        _b[3] += 1
    if slots[5] is not None:
        _b[4] += 1
    if slots[6] is not None:
        _b[5] += 1
    if slots[7] is not None:
        _b[6] += 1
    if slots[8] is not None:
        _b[7] += 1
    if slots[9] is not None:
        _b[8] += 1
    if slots[10] is not None:
        _b[9] += 1
    if slots[11] is not None:
        _b[10] += 1
    if slots[12] is not None:
        _b[11] += 1
    if slots[13] is not None:
        _b[12] += 1
    if slots[14] is not None:
        _b[13] += 1
    if slots[15] is not None:
        _b[14] += 1
    if slots[16] is not None:
        _b[15] += 1
    if slots[17] is not None:
        _b[16] += 1
    if slots[18] is not None:
        _b[17] += 1
    if slots[19] is not None:
        _b[18] += 1
    if slots[20] is not None:
        _b[19] += 1
    if slots[21] is not None:
        _b[20] += 1
    if slots[22] is not None:
        _b[21] += 1
    if slots[23] is not None:
        _b[22] += 1
    if slots[24] is not None:
        _b[23] += 1
    if slots[25] is not None:
        _b[24] += 1
    if slots[26] is not None:
        _b[25] += 1
    if slots[27] is not None:
        _b[26] += 1
    if slots[28] is not None:
        _b[27] += 1
    if slots[29] is not None:
        _b[28] += 1
    if slots[30] is not None:
        _b[29] += 1
    if barrier_queues:
        _w = 0
        for _q in barrier_queues.values():
            _w += len(_q)
        metrics.barrier_wait_cycles += _w

_STAGE_FNS = (_s1, _s2, _s3, _s4, _s5, _s6, _s7, _s8, None, _s10, _s11, _s12, _s13, _s14, _s15, _s16, _s17, _s18, _s19, _s20, None, _s22, _s23, _s24, _s25, _s26, _s27, _s28, _s29, _s30,)
_ENTRY = _entry
_ADVANCE = _advance
_OBSERVE = _observe
_STREAM = None


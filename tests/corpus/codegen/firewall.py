"""Generated execution module for pipeline 'firewall' (22 stages).

Emitted by repro.hwsim.codegen (CODEGEN_VERSION = 3); flush machinery elided, position/commit tracking elided. Do not edit.
"""

import struct

from repro.ebpf.isa import Instruction
from repro.ebpf.xdp import XdpAction
from repro.hwsim.sim import SimError, _InFlight as _IF
from repro.hwsim.stats import PacketRecord as _PR

_u1 = struct.Struct("<B").unpack_from
_u2 = struct.Struct("<H").unpack_from
_u4 = struct.Struct("<I").unpack_from
_u8 = struct.Struct("<Q").unpack_from
_p2 = struct.Struct("<H").pack_into
_p4 = struct.Struct("<I").pack_into
_p8 = struct.Struct("<Q").pack_into
_ACTIONS = {int(_a): _a for _a in XdpAction}
_ABORTED = XdpAction.ABORTED
_PASS = XdpAction.PASS
_i0 = Instruction(opcode=219, dst=0, src=1, off=0, imm=0, imm64=None)
_i1 = Instruction(opcode=219, dst=0, src=1, off=0, imm=0, imm64=None)
_RINIT = [0, 4096, 0, 0, 0, 0, 0, 0, 0, 0, 2097664]
_ZSTACK = bytes(512)

def _s1(sim, pkt, slots, barrier_queues, input_queue, report, _u2=_u2):
    if pkt.done:
        return False
    regs = pkt.regs
    enabled = pkt.enabled
    if 0 in enabled:
        regs[2] = _u2(pkt.ctx.packet, 12)[0]
    return False

def _s2(sim, pkt, slots, barrier_queues, input_queue, report):
    if pkt.done:
        return False
    regs = pkt.regs
    enabled = pkt.enabled
    if 0 in enabled:
        enabled.update((6,) if (regs[2] & 0xffffffffffffffff) != 0x8 else (1,))
    return False

def _s3(sim, pkt, slots, barrier_queues, input_queue, report, _u1=_u1):
    if pkt.done:
        return False
    regs = pkt.regs
    enabled = pkt.enabled
    if 1 in enabled:
        regs[2] = _u1(pkt.ctx.packet, 23)[0]
    return False

def _s4(sim, pkt, slots, barrier_queues, input_queue, report):
    if pkt.done:
        return False
    regs = pkt.regs
    enabled = pkt.enabled
    if 1 in enabled:
        enabled.update((6,) if (regs[2] & 0xffffffffffffffff) != 0x11 else (2,))
    return False

def _s5(sim, pkt, slots, barrier_queues, input_queue, report, _u2=_u2, _u4=_u4):
    if pkt.done:
        return False
    regs = pkt.regs
    enabled = pkt.enabled
    if 2 in enabled:
        regs[2] = _u4(pkt.ctx.packet, 26)[0]
    if 2 in enabled:
        regs[3] = _u4(pkt.ctx.packet, 30)[0]
    if 2 in enabled:
        regs[4] = _u2(pkt.ctx.packet, 34)[0]
    if 2 in enabled:
        regs[5] = _u2(pkt.ctx.packet, 36)[0]
    if 2 in enabled:
        regs[8] = 0x0
    if 2 in enabled:
        regs[1] = 0x30000001
    return False

def _s6(sim, pkt, slots, barrier_queues, input_queue, report, _p2=_p2, _p4=_p4):
    if pkt.done:
        return False
    regs = pkt.regs
    enabled = pkt.enabled
    if 2 in enabled:
        _p4(pkt.stack, 496, regs[2] & 0xffffffff)
    if 2 in enabled:
        _p4(pkt.stack, 500, regs[3] & 0xffffffff)
    if 2 in enabled:
        _p2(pkt.stack, 504, regs[4] & 0xffff)
    if 2 in enabled:
        _p2(pkt.stack, 506, regs[5] & 0xffff)
    if 2 in enabled:
        _p4(pkt.stack, 508, regs[8] & 0xffffffff)
    if 2 in enabled:
        regs[2] = regs[10] & 0xffffffffffffffff
    if 2 in enabled:
        regs[2] = (regs[2] + 0xfffffffffffffff0) & 0xffffffffffffffff
    return False

def _s7(sim, pkt, slots, barrier_queues, input_queue, report):
    if pkt.done:
        return False
    regs = pkt.regs
    enabled = pkt.enabled
    if 2 in enabled:
        _fd = regs[1] - 0x30000000
        _e = sim._map_entry.get(_fd) or sim._map_entry_for(_fd)
        if _e is None:
            sim._drop(pkt)
        else:
            _m, _ks, _vs, _mb, _lk = _e
            _a = regs[2]
            if 0x200000 <= _a < 0x200200 and _a - 0x200000 + _ks <= 512:
                _o = _a - 0x200000
                _k = bytes(pkt.stack[_o:_o + _ks])
            else:
                _k = sim._read_plain(pkt, _a, _ks)
            if _k is not None:
                _sl = _lk(_k)
                regs[0] = 0 if _sl is None else _mb + _sl * _vs
        regs[1] = regs[2] = regs[3] = regs[4] = regs[5] = 0
    return False

def _s9(sim, pkt, slots, barrier_queues, input_queue, report):
    if pkt.done:
        return False
    regs = pkt.regs
    enabled = pkt.enabled
    if 2 in enabled:
        enabled.update((5,) if (regs[0] & 0xffffffffffffffff) != 0x0 else (3,))
    return False

def _s10(sim, pkt, slots, barrier_queues, input_queue, report, _u2=_u2, _u4=_u4):
    if pkt.done:
        return False
    regs = pkt.regs
    enabled = pkt.enabled
    if 3 in enabled:
        regs[2] = _u4(pkt.ctx.packet, 30)[0]
    if 3 in enabled:
        regs[3] = _u4(pkt.ctx.packet, 26)[0]
    if 3 in enabled:
        regs[4] = _u2(pkt.ctx.packet, 36)[0]
    if 3 in enabled:
        regs[5] = _u2(pkt.ctx.packet, 34)[0]
    if 3 in enabled:
        regs[1] = 0x30000001
    return False

def _s11(sim, pkt, slots, barrier_queues, input_queue, report, _p2=_p2, _p4=_p4):
    if pkt.done:
        return False
    regs = pkt.regs
    enabled = pkt.enabled
    if 3 in enabled:
        _p4(pkt.stack, 496, regs[2] & 0xffffffff)
    if 3 in enabled:
        _p4(pkt.stack, 500, regs[3] & 0xffffffff)
    if 3 in enabled:
        _p2(pkt.stack, 504, regs[4] & 0xffff)
    if 3 in enabled:
        _p2(pkt.stack, 506, regs[5] & 0xffff)
    if 3 in enabled:
        regs[2] = regs[10] & 0xffffffffffffffff
    if 3 in enabled:
        regs[2] = (regs[2] + 0xfffffffffffffff0) & 0xffffffffffffffff
    return False

def _s12(sim, pkt, slots, barrier_queues, input_queue, report):
    if pkt.done:
        return False
    regs = pkt.regs
    enabled = pkt.enabled
    if 3 in enabled:
        _fd = regs[1] - 0x30000000
        _e = sim._map_entry.get(_fd) or sim._map_entry_for(_fd)
        if _e is None:
            sim._drop(pkt)
        else:
            _m, _ks, _vs, _mb, _lk = _e
            _a = regs[2]
            if 0x200000 <= _a < 0x200200 and _a - 0x200000 + _ks <= 512:
                _o = _a - 0x200000
                _k = bytes(pkt.stack[_o:_o + _ks])
            else:
                _k = sim._read_plain(pkt, _a, _ks)
            if _k is not None:
                _sl = _lk(_k)
                regs[0] = 0 if _sl is None else _mb + _sl * _vs
        regs[1] = regs[2] = regs[3] = regs[4] = regs[5] = 0
    return False

def _s14(sim, pkt, slots, barrier_queues, input_queue, report):
    if pkt.done:
        return False
    regs = pkt.regs
    enabled = pkt.enabled
    if 3 in enabled:
        enabled.update((5,) if (regs[0] & 0xffffffffffffffff) != 0x0 else (4,))
    return False

def _s15(sim, pkt, slots, barrier_queues, input_queue, report):
    if pkt.done:
        return False
    regs = pkt.regs
    enabled = pkt.enabled
    if 4 in enabled:
        regs[0] = 0x1
    return False

def _s16(sim, pkt, slots, barrier_queues, input_queue, report, _ACTIONS=_ACTIONS, _ABORTED=_ABORTED):
    if pkt.done:
        return False
    regs = pkt.regs
    enabled = pkt.enabled
    if 4 in enabled:
        pkt.done = True
        pkt.action = _ACTIONS.get(regs[0] & 0xffffffff, _ABORTED)
    return False

def _s17(sim, pkt, slots, barrier_queues, input_queue, report):
    if pkt.done:
        return False
    regs = pkt.regs
    enabled = pkt.enabled
    if 5 in enabled:
        regs[1] = 0x1
    return False

def _s18(sim, pkt, slots, barrier_queues, input_queue, report, _u8=_u8, _p8=_p8, _i0=_i0):
    if pkt.done:
        return False
    regs = pkt.regs
    enabled = pkt.enabled
    if 5 in enabled:
        _a = regs[0] & 0xffffffffffffffff
        if _a < 0x40000000 or pkt.pending_writes:
            sim._atomic(pkt, _i0, _a)
        else:
            _sp = _a - 0x40000000
            _fd = _sp >> 24
            _o = _sp & 0xffffff
            _st = sim.maps[_fd].storage
            if _o + 8 > len(_st):
                sim._drop(pkt)
            else:
                _old = _u8(_st, _o)[0]
                _sv = regs[1] & 0xffffffffffffffff
                _new = (_old + _sv) & 0xffffffffffffffff
                _p8(_st, _o, _new)
    return False

def _s19(sim, pkt, slots, barrier_queues, input_queue, report):
    if pkt.done:
        return False
    regs = pkt.regs
    enabled = pkt.enabled
    if 5 in enabled:
        regs[0] = 0x3
    return False

def _s20(sim, pkt, slots, barrier_queues, input_queue, report, _ACTIONS=_ACTIONS, _ABORTED=_ABORTED):
    if pkt.done:
        return False
    regs = pkt.regs
    enabled = pkt.enabled
    if 5 in enabled:
        pkt.done = True
        pkt.action = _ACTIONS.get(regs[0] & 0xffffffff, _ABORTED)
    return False

def _s21(sim, pkt, slots, barrier_queues, input_queue, report):
    if pkt.done:
        return False
    regs = pkt.regs
    enabled = pkt.enabled
    if 6 in enabled:
        regs[0] = 0x2
    return False

def _s22(sim, pkt, slots, barrier_queues, input_queue, report, _ACTIONS=_ACTIONS, _ABORTED=_ABORTED):
    if pkt.done:
        return False
    regs = pkt.regs
    enabled = pkt.enabled
    if 6 in enabled:
        pkt.done = True
        pkt.action = _ACTIONS.get(regs[0] & 0xffffffff, _ABORTED)
    return False

def _entry(sim, pkt):
    regs = pkt.regs
    regs[6] = 0x100100 + pkt.ctx.head_adjust

def _advance(sim, slots, barrier_queues, input_queue, report, _u1=_u1, _u2=_u2, _u4=_u4, _u8=_u8, _p2=_p2, _p4=_p4, _p8=_p8, _ACTIONS=_ACTIONS, _ABORTED=_ABORTED, _i0=_i0):
    pkt = slots[21]
    if pkt is not None:
        slots[21] = None
        slots[22] = pkt
        if not pkt.done:
            regs = pkt.regs
            enabled = pkt.enabled
            if 6 in enabled:
                pkt.done = True
                pkt.action = _ACTIONS.get(regs[0] & 0xffffffff, _ABORTED)
    pkt = slots[20]
    if pkt is not None:
        slots[20] = None
        slots[21] = pkt
        if not pkt.done:
            regs = pkt.regs
            enabled = pkt.enabled
            if 6 in enabled:
                regs[0] = 0x2
    pkt = slots[19]
    if pkt is not None:
        slots[19] = None
        slots[20] = pkt
        if not pkt.done:
            regs = pkt.regs
            enabled = pkt.enabled
            if 5 in enabled:
                pkt.done = True
                pkt.action = _ACTIONS.get(regs[0] & 0xffffffff, _ABORTED)
    pkt = slots[18]
    if pkt is not None:
        slots[18] = None
        slots[19] = pkt
        if not pkt.done:
            regs = pkt.regs
            enabled = pkt.enabled
            if 5 in enabled:
                regs[0] = 0x3
    pkt = slots[17]
    if pkt is not None:
        slots[17] = None
        slots[18] = pkt
        if not pkt.done:
            regs = pkt.regs
            enabled = pkt.enabled
            if 5 in enabled:
                _a = regs[0] & 0xffffffffffffffff
                if _a < 0x40000000 or pkt.pending_writes:
                    sim._atomic(pkt, _i0, _a)
                else:
                    _sp = _a - 0x40000000
                    _fd = _sp >> 24
                    _o = _sp & 0xffffff
                    _st = sim.maps[_fd].storage
                    if _o + 8 > len(_st):
                        sim._drop(pkt)
                    else:
                        _old = _u8(_st, _o)[0]
                        _sv = regs[1] & 0xffffffffffffffff
                        _new = (_old + _sv) & 0xffffffffffffffff
                        _p8(_st, _o, _new)
    pkt = slots[16]
    if pkt is not None:
        slots[16] = None
        slots[17] = pkt
        if not pkt.done:
            regs = pkt.regs
            enabled = pkt.enabled
            if 5 in enabled:
                regs[1] = 0x1
    pkt = slots[15]
    if pkt is not None:
        slots[15] = None
        slots[16] = pkt
        if not pkt.done:
            regs = pkt.regs
            enabled = pkt.enabled
            if 4 in enabled:
                pkt.done = True
                pkt.action = _ACTIONS.get(regs[0] & 0xffffffff, _ABORTED)
    pkt = slots[14]
    if pkt is not None:
        slots[14] = None
        slots[15] = pkt
        if not pkt.done:
            regs = pkt.regs
            enabled = pkt.enabled
            if 4 in enabled:
                regs[0] = 0x1
    pkt = slots[13]
    if pkt is not None:
        slots[13] = None
        slots[14] = pkt
        if not pkt.done:
            regs = pkt.regs
            enabled = pkt.enabled
            if 3 in enabled:
                enabled.update((5,) if (regs[0] & 0xffffffffffffffff) != 0x0 else (4,))
    pkt = slots[12]
    if pkt is not None:
        slots[12] = None
        slots[13] = pkt
    pkt = slots[11]
    if pkt is not None:
        slots[11] = None
        slots[12] = pkt
        if not pkt.done:
            regs = pkt.regs
            enabled = pkt.enabled
            if 3 in enabled:
                _fd = regs[1] - 0x30000000
                _e = sim._map_entry.get(_fd) or sim._map_entry_for(_fd)
                if _e is None:
                    sim._drop(pkt)
                else:
                    _m, _ks, _vs, _mb, _lk = _e
                    _a = regs[2]
                    if 0x200000 <= _a < 0x200200 and _a - 0x200000 + _ks <= 512:
                        _o = _a - 0x200000
                        _k = bytes(pkt.stack[_o:_o + _ks])
                    else:
                        _k = sim._read_plain(pkt, _a, _ks)
                    if _k is not None:
                        _sl = _lk(_k)
                        regs[0] = 0 if _sl is None else _mb + _sl * _vs
                regs[1] = regs[2] = regs[3] = regs[4] = regs[5] = 0
    pkt = slots[10]
    if pkt is not None:
        slots[10] = None
        slots[11] = pkt
        if not pkt.done:
            regs = pkt.regs
            enabled = pkt.enabled
            if 3 in enabled:
                _p4(pkt.stack, 496, regs[2] & 0xffffffff)
            if 3 in enabled:
                _p4(pkt.stack, 500, regs[3] & 0xffffffff)
            if 3 in enabled:
                _p2(pkt.stack, 504, regs[4] & 0xffff)
            if 3 in enabled:
                _p2(pkt.stack, 506, regs[5] & 0xffff)
            if 3 in enabled:
                regs[2] = regs[10] & 0xffffffffffffffff
            if 3 in enabled:
                regs[2] = (regs[2] + 0xfffffffffffffff0) & 0xffffffffffffffff
    pkt = slots[9]
    if pkt is not None:
        slots[9] = None
        slots[10] = pkt
        if not pkt.done:
            regs = pkt.regs
            enabled = pkt.enabled
            if 3 in enabled:
                regs[2] = _u4(pkt.ctx.packet, 30)[0]
            if 3 in enabled:
                regs[3] = _u4(pkt.ctx.packet, 26)[0]
            if 3 in enabled:
                regs[4] = _u2(pkt.ctx.packet, 36)[0]
            if 3 in enabled:
                regs[5] = _u2(pkt.ctx.packet, 34)[0]
            if 3 in enabled:
                regs[1] = 0x30000001
    pkt = slots[8]
    if pkt is not None:
        slots[8] = None
        slots[9] = pkt
        if not pkt.done:
            regs = pkt.regs
            enabled = pkt.enabled
            if 2 in enabled:
                enabled.update((5,) if (regs[0] & 0xffffffffffffffff) != 0x0 else (3,))
    pkt = slots[7]
    if pkt is not None:
        slots[7] = None
        slots[8] = pkt
    pkt = slots[6]
    if pkt is not None:
        slots[6] = None
        slots[7] = pkt
        if not pkt.done:
            regs = pkt.regs
            enabled = pkt.enabled
            if 2 in enabled:
                _fd = regs[1] - 0x30000000
                _e = sim._map_entry.get(_fd) or sim._map_entry_for(_fd)
                if _e is None:
                    sim._drop(pkt)
                else:
                    _m, _ks, _vs, _mb, _lk = _e
                    _a = regs[2]
                    if 0x200000 <= _a < 0x200200 and _a - 0x200000 + _ks <= 512:
                        _o = _a - 0x200000
                        _k = bytes(pkt.stack[_o:_o + _ks])
                    else:
                        _k = sim._read_plain(pkt, _a, _ks)
                    if _k is not None:
                        _sl = _lk(_k)
                        regs[0] = 0 if _sl is None else _mb + _sl * _vs
                regs[1] = regs[2] = regs[3] = regs[4] = regs[5] = 0
    pkt = slots[5]
    if pkt is not None:
        slots[5] = None
        slots[6] = pkt
        if not pkt.done:
            regs = pkt.regs
            enabled = pkt.enabled
            if 2 in enabled:
                _p4(pkt.stack, 496, regs[2] & 0xffffffff)
            if 2 in enabled:
                _p4(pkt.stack, 500, regs[3] & 0xffffffff)
            if 2 in enabled:
                _p2(pkt.stack, 504, regs[4] & 0xffff)
            if 2 in enabled:
                _p2(pkt.stack, 506, regs[5] & 0xffff)
            if 2 in enabled:
                _p4(pkt.stack, 508, regs[8] & 0xffffffff)
            if 2 in enabled:
                regs[2] = regs[10] & 0xffffffffffffffff
            if 2 in enabled:
                regs[2] = (regs[2] + 0xfffffffffffffff0) & 0xffffffffffffffff
    pkt = slots[4]
    if pkt is not None:
        slots[4] = None
        slots[5] = pkt
        if not pkt.done:
            regs = pkt.regs
            enabled = pkt.enabled
            if 2 in enabled:
                regs[2] = _u4(pkt.ctx.packet, 26)[0]
            if 2 in enabled:
                regs[3] = _u4(pkt.ctx.packet, 30)[0]
            if 2 in enabled:
                regs[4] = _u2(pkt.ctx.packet, 34)[0]
            if 2 in enabled:
                regs[5] = _u2(pkt.ctx.packet, 36)[0]
            if 2 in enabled:
                regs[8] = 0x0
            if 2 in enabled:
                regs[1] = 0x30000001
    pkt = slots[3]
    if pkt is not None:
        slots[3] = None
        slots[4] = pkt
        if not pkt.done:
            regs = pkt.regs
            enabled = pkt.enabled
            if 1 in enabled:
                enabled.update((6,) if (regs[2] & 0xffffffffffffffff) != 0x11 else (2,))
    pkt = slots[2]
    if pkt is not None:
        slots[2] = None
        slots[3] = pkt
        if not pkt.done:
            regs = pkt.regs
            enabled = pkt.enabled
            if 1 in enabled:
                regs[2] = _u1(pkt.ctx.packet, 23)[0]
    pkt = slots[1]
    if pkt is not None:
        slots[1] = None
        slots[2] = pkt
        if not pkt.done:
            regs = pkt.regs
            enabled = pkt.enabled
            if 0 in enabled:
                enabled.update((6,) if (regs[2] & 0xffffffffffffffff) != 0x8 else (1,))
    return False

def _observe(metrics, slots, barrier_queues):
    metrics.observed_cycles += 1
    _b = metrics.stage_busy_cycles
    if slots[1] is not None:
        _b[0] += 1
    if slots[2] is not None:
        _b[1] += 1
    if slots[3] is not None:
        _b[2] += 1
    if slots[4] is not None:
        _b[3] += 1
    if slots[5] is not None:
        _b[4] += 1
    if slots[6] is not None:
        _b[5] += 1
    if slots[7] is not None:
        _b[6] += 1
    if slots[8] is not None:
        _b[7] += 1
    if slots[9] is not None:
        _b[8] += 1
    if slots[10] is not None:
        _b[9] += 1
    if slots[11] is not None:
        _b[10] += 1
    if slots[12] is not None:
        _b[11] += 1
    if slots[13] is not None:
        _b[12] += 1
    if slots[14] is not None:
        _b[13] += 1
    if slots[15] is not None:
        _b[14] += 1
    if slots[16] is not None:
        _b[15] += 1
    if slots[17] is not None:
        _b[16] += 1
    if slots[18] is not None:
        _b[17] += 1
    if slots[19] is not None:
        _b[18] += 1
    if slots[20] is not None:
        _b[19] += 1
    if slots[21] is not None:
        _b[20] += 1
    if slots[22] is not None:
        _b[21] += 1

def _stream(sim, frames, gap, report, keep_records, SimError=SimError, _IF=_IF, _PR=_PR, _u1=_u1, _u2=_u2, _u4=_u4, _u8=_u8, _p2=_p2, _p4=_p4, _p8=_p8, _ACTIONS=_ACTIONS, _ABORTED=_ABORTED, _PASS=_PASS, _i1=_i1, _RINIT=_RINIT, _ZSTACK=_ZSTACK):
    pid = 0
    cycle = 0
    _max = sim.options.max_cycles
    pkt = _IF(0, b"", 0)
    _c = pkt.ctx
    regs = pkt.regs
    _cnt = {}
    _recs = report.records
    for frame in frames:
        if cycle + 22 >= _max:
            raise SimError("simulation exceeded %d cycles" % _max)
        _c.packet = frame
        pkt.done = False
        pkt.action = None
        regs[:] = _RINIT
        pkt.stack[:] = _ZSTACK
        _pl = len(_c.packet)
        if _pl < 42:
            pkt.done = True
            pkt.action = _ACTIONS.get(2, _ABORTED)
        if not pkt.done:
            _e0 = True
            _e1 = False
            _e2 = False
            _e3 = False
            _e4 = False
            _e5 = False
            _e6 = False
            regs[6] = 0x100100 + pkt.ctx.head_adjust
            if _e0:
                regs[2] = _u2(pkt.ctx.packet, 12)[0]
            if not pkt.done:
                if _e0:
                    if (regs[2] & 0xffffffffffffffff) != 0x8:
                        _e6 = True
                    else:
                        _e1 = True
                if not pkt.done:
                    if _e1:
                        regs[2] = _u1(pkt.ctx.packet, 23)[0]
                    if not pkt.done:
                        if _e1:
                            if (regs[2] & 0xffffffffffffffff) != 0x11:
                                _e6 = True
                            else:
                                _e2 = True
                        if not pkt.done:
                            if _e2:
                                regs[2] = _u4(pkt.ctx.packet, 26)[0]
                            if _e2:
                                regs[3] = _u4(pkt.ctx.packet, 30)[0]
                            if _e2:
                                regs[4] = _u2(pkt.ctx.packet, 34)[0]
                            if _e2:
                                regs[5] = _u2(pkt.ctx.packet, 36)[0]
                            if _e2:
                                regs[8] = 0x0
                            if _e2:
                                regs[1] = 0x30000001
                            if not pkt.done:
                                if _e2:
                                    _p4(pkt.stack, 496, regs[2] & 0xffffffff)
                                if _e2:
                                    _p4(pkt.stack, 500, regs[3] & 0xffffffff)
                                if _e2:
                                    _p2(pkt.stack, 504, regs[4] & 0xffff)
                                if _e2:
                                    _p2(pkt.stack, 506, regs[5] & 0xffff)
                                if _e2:
                                    _p4(pkt.stack, 508, regs[8] & 0xffffffff)
                                if _e2:
                                    regs[2] = regs[10] & 0xffffffffffffffff
                                if _e2:
                                    regs[2] = (regs[2] + 0xfffffffffffffff0) & 0xffffffffffffffff
                                if not pkt.done:
                                    if _e2:
                                        _fd = regs[1] - 0x30000000
                                        _e = sim._map_entry.get(_fd) or sim._map_entry_for(_fd)
                                        if _e is None:
                                            sim._drop(pkt)
                                        else:
                                            _m, _ks, _vs, _mb, _lk = _e
                                            _a = regs[2]
                                            if 0x200000 <= _a < 0x200200 and _a - 0x200000 + _ks <= 512:
                                                _o = _a - 0x200000
                                                _k = bytes(pkt.stack[_o:_o + _ks])
                                            else:
                                                _k = sim._read_plain(pkt, _a, _ks)
                                            if _k is not None:
                                                _sl = _lk(_k)
                                                regs[0] = 0 if _sl is None else _mb + _sl * _vs
                                        regs[1] = regs[2] = regs[3] = regs[4] = regs[5] = 0
                                    if not pkt.done:
                                        if _e2:
                                            if (regs[0] & 0xffffffffffffffff) != 0x0:
                                                _e5 = True
                                            else:
                                                _e3 = True
                                        if not pkt.done:
                                            if _e3:
                                                regs[2] = _u4(pkt.ctx.packet, 30)[0]
                                            if _e3:
                                                regs[3] = _u4(pkt.ctx.packet, 26)[0]
                                            if _e3:
                                                regs[4] = _u2(pkt.ctx.packet, 36)[0]
                                            if _e3:
                                                regs[5] = _u2(pkt.ctx.packet, 34)[0]
                                            if _e3:
                                                regs[1] = 0x30000001
                                            if not pkt.done:
                                                if _e3:
                                                    _p4(pkt.stack, 496, regs[2] & 0xffffffff)
                                                if _e3:
                                                    _p4(pkt.stack, 500, regs[3] & 0xffffffff)
                                                if _e3:
                                                    _p2(pkt.stack, 504, regs[4] & 0xffff)
                                                if _e3:
                                                    _p2(pkt.stack, 506, regs[5] & 0xffff)
                                                if _e3:
                                                    regs[2] = regs[10] & 0xffffffffffffffff
                                                if _e3:
                                                    regs[2] = (regs[2] + 0xfffffffffffffff0) & 0xffffffffffffffff
                                                if not pkt.done:
                                                    if _e3:
                                                        _fd = regs[1] - 0x30000000
                                                        _e = sim._map_entry.get(_fd) or sim._map_entry_for(_fd)
                                                        if _e is None:
                                                            sim._drop(pkt)
                                                        else:
                                                            _m, _ks, _vs, _mb, _lk = _e
                                                            _a = regs[2]
                                                            if 0x200000 <= _a < 0x200200 and _a - 0x200000 + _ks <= 512:
                                                                _o = _a - 0x200000
                                                                _k = bytes(pkt.stack[_o:_o + _ks])
                                                            else:
                                                                _k = sim._read_plain(pkt, _a, _ks)
                                                            if _k is not None:
                                                                _sl = _lk(_k)
                                                                regs[0] = 0 if _sl is None else _mb + _sl * _vs
                                                        regs[1] = regs[2] = regs[3] = regs[4] = regs[5] = 0
                                                    if not pkt.done:
                                                        if _e3:
                                                            if (regs[0] & 0xffffffffffffffff) != 0x0:
                                                                _e5 = True
                                                            else:
                                                                _e4 = True
                                                        if not pkt.done:
                                                            if _e4:
                                                                regs[0] = 0x1
                                                            if not pkt.done:
                                                                if _e4:
                                                                    pkt.done = True
                                                                    pkt.action = _ACTIONS.get(regs[0] & 0xffffffff, _ABORTED)
                                                                if not pkt.done:
                                                                    if _e5:
                                                                        regs[1] = 0x1
                                                                    if not pkt.done:
                                                                        if _e5:
                                                                            _a = regs[0] & 0xffffffffffffffff
                                                                            if _a < 0x40000000 or pkt.pending_writes:
                                                                                sim._atomic(pkt, _i1, _a)
                                                                            else:
                                                                                _sp = _a - 0x40000000
                                                                                _fd = _sp >> 24
                                                                                _o = _sp & 0xffffff
                                                                                _st = sim.maps[_fd].storage
                                                                                if _o + 8 > len(_st):
                                                                                    sim._drop(pkt)
                                                                                else:
                                                                                    _old = _u8(_st, _o)[0]
                                                                                    _sv = regs[1] & 0xffffffffffffffff
                                                                                    _new = (_old + _sv) & 0xffffffffffffffff
                                                                                    _p8(_st, _o, _new)
                                                                        if not pkt.done:
                                                                            if _e5:
                                                                                regs[0] = 0x3
                                                                            if not pkt.done:
                                                                                if _e5:
                                                                                    pkt.done = True
                                                                                    pkt.action = _ACTIONS.get(regs[0] & 0xffffffff, _ABORTED)
                                                                                if not pkt.done:
                                                                                    if _e6:
                                                                                        regs[0] = 0x2
                                                                                    if not pkt.done:
                                                                                        if _e6:
                                                                                            pkt.done = True
                                                                                            pkt.action = _ACTIONS.get(regs[0] & 0xffffffff, _ABORTED)
        if pkt.pending_writes:
            sim._finalize(pkt)
        elif not pkt.done:
            pkt.action = _ABORTED
        _act = pkt.action
        if _act is None:
            _act = _PASS
        _cnt[_act] = _cnt.get(_act, 0) + 1
        if keep_records:
            _recs.append(_PR(pid=pid, action=_act, data=bytes(_c.packet), arrival_cycle=cycle, inject_cycle=cycle, exit_cycle=cycle + 22, restarts=0))
        pid += 1
        cycle += gap
    if pid:
        report.cycles = (pid - 1) * gap + 23
    report.packets_in += pid
    report.packets_out += pid
    _ac = report.action_counts
    for _k, _v in _cnt.items():
        _ac[_k] = _ac.get(_k, 0) + _v
    report.sum_total_cycles += pid * 22
    report.sum_pipeline_cycles += pid * 22
    return pid

_STAGE_FNS = (_s1, _s2, _s3, _s4, _s5, _s6, _s7, None, _s9, _s10, _s11, _s12, None, _s14, _s15, _s16, _s17, _s18, _s19, _s20, _s21, _s22,)
_ENTRY = _entry
_ADVANCE = _advance
_OBSERVE = _observe
_STREAM = _stream


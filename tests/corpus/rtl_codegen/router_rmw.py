"""Generated RTL evaluation schedule for 'router_rmw'.

RTL_CODEGEN_VERSION = 3; regenerated whenever the netlist or the
generator changes (repro.rtl.codegen). Event-driven: the dirty bytearray NQ
doubles as the queue — levelized indices mean marks always land ahead of the
scan, so settle is a single NQ.find(1) sweep; gated primitives stay live
while requested by re-marking their own slot.
nodes=95 procs=31 nets=195 ranks=5 fused=40->15
"""

def _bswap16(v):
    return int.from_bytes((v & 0xffff).to_bytes(2, 'little'), 'big')

def _e0(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_router_rmw:2074
    V[14] = (1) & 1

def _e1(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_router_rmw:2075
    V[15] = 0

def _e2(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_router_rmw:2076
    V[16] = 0

def _e3(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_router_rmw:2077
    V[7] = (1) & 1

def _e4(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_router_rmw:2078
    _o1 = V[17]
    _v2 = _o1 & 0x1ffffffffffff000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000 | ((((V[3] << 16) | V[4])) & 0xffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff)
    if _v2 != _o1:
        V[17] = _v2
        NQ[64] = 1

def _e5(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_router_rmw:2079
    _o3 = V[17]
    _v4 = _o3 & 0xffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff
    if _v4 != _o3:
        V[17] = _v4
        NQ[64] = 1

def _e6(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_router_rmw:2090
    _v5 = (1) & 0xffffffff
    if V[27] != _v5:
        V[27] = _v5
        if not PQ[1]:
            PQ[1] = 1
            PEND.append(1)

def _e7(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_router_rmw:2093
    _o6 = V[28]
    _v7 = _o6 & 0x1ffffffffffffffffffffffff0000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff
    if _v7 != _o6:
        V[28] = _v7
        if not PQ[1]:
            PQ[1] = 1
            PEND.append(1)

def _e8(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_router_rmw:2096
    _o8 = V[28]
    _v9 = _o8 & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (((0x100100) & 0xffffffffffffffff) << 577)
    if _v9 != _o8:
        V[28] = _v9
        if not PQ[1]:
            PQ[1] = 1
            PEND.append(1)

def _e9(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_router_rmw:2105
    V[172] = 0

def _e10(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_router_rmw:2106
    V[182] = 0

def _e11(V, NQ, PEND, PQ, PRIMS, ACT):
    pass  # fused into _e14

def _e12(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_router_rmw/s008:531
    _v10 = (1) & 0xff
    if V[121] != _v10:
        V[121] = _v10
        NQ[70] = 1

def _e13(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_router_rmw/s008:532
    if V[122]:
        V[122] = 0
        NQ[70] = 1

def _e14(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_router_rmw/s008:530
    _v11 = ((1 if ((V[47] == 1) and ((V[48] >> 2 & 1) == 1)) and ((V[49] >> 544 & 1) == 0) else 0)) & 1
    if V[120] != _v11:
        V[120] = _v11
        NQ[70] = 1
    # [conc r0] ehdl_router_rmw/s008:533
    _v12 = (V[49] >> 769 & 0xffffffff)
    if V[123] != _v12:
        V[123] = _v12
        NQ[70] = 1

def _e15(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_router_rmw/s008:534
    if V[124]:
        V[124] = 0
        NQ[70] = 1

def _e16(V, NQ, PEND, PQ, PRIMS, ACT):
    pass  # fused into _e18

def _e17(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_router_rmw/s012:747
    _v13 = (0x44) & 0xff
    if V[126] != _v13:
        V[126] = _v13
        NQ[70] = 1

def _e18(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_router_rmw/s012:746
    _v14 = ((1 if ((V[59] == 1) and ((V[60] >> 3 & 1) == 1)) and ((V[61] >> 544 & 1) == 0) else 0)) & 1
    if V[125] != _v14:
        V[125] = _v14
        NQ[70] = 1
    # [conc r0] ehdl_router_rmw/s012:748
    _v15 = (((V[61] >> 769 & 0xffffffffffffffff) + 0) & 0xffffffffffffffff)
    if V[127] != _v15:
        V[127] = _v15
        NQ[70] = 1

def _e19(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_router_rmw/s012:749
    if V[128]:
        V[128] = 0
        NQ[70] = 1

def _e20(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_router_rmw/s012:750
    if V[129]:
        V[129] = 0
        NQ[70] = 1

def _e21(V, NQ, PEND, PQ, PRIMS, ACT):
    pass  # fused into _e23

def _e22(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_router_rmw/s013:817
    _v16 = (0x24) & 0xff
    if V[131] != _v16:
        V[131] = _v16
        NQ[70] = 1

def _e23(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_router_rmw/s013:816
    _v17 = ((1 if (((V[62] == 1) and ((V[63] >> 3 & 1) == 1)) and ((V[64] >> 544 & 1) == 0)) and ((0 if (V[64] >> 512 & 0xffff) < 4 else 1)) else 0)) & 1
    if V[130] != _v17:
        V[130] = _v17
        NQ[70] = 1
    # [conc r0] ehdl_router_rmw/s013:818
    _v18 = (((V[64] >> 833 & 0xffffffffffffffff) + 4) & 0xffffffffffffffff)
    if V[132] != _v18:
        V[132] = _v18
        NQ[70] = 1

def _e24(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_router_rmw/s013:819
    if V[133]:
        V[133] = 0
        NQ[70] = 1

def _e25(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_router_rmw/s013:820
    if V[134]:
        V[134] = 0
        NQ[70] = 1

def _e26(V, NQ, PEND, PQ, PRIMS, ACT):
    pass  # fused into _e28

def _e27(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_router_rmw/s014:905
    _v19 = (0x44) & 0xff
    if V[136] != _v19:
        V[136] = _v19
        NQ[70] = 1

def _e28(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_router_rmw/s014:904
    _v20 = ((1 if (((V[65] == 1) and ((V[66] >> 3 & 1) == 1)) and ((V[67] >> 544 & 1) == 0)) and ((0 if (V[67] >> 512 & 0xffff) < 6 else 1)) else 0)) & 1
    if V[135] != _v20:
        V[135] = _v20
        NQ[70] = 1
    # [conc r0] ehdl_router_rmw/s014:906
    _v21 = (((V[67] >> 897 & 0xffffffffffffffff) + 6) & 0xffffffffffffffff)
    if V[137] != _v21:
        V[137] = _v21
        NQ[70] = 1

def _e29(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_router_rmw/s014:907
    if V[138]:
        V[138] = 0
        NQ[70] = 1

def _e30(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_router_rmw/s014:908
    if V[139]:
        V[139] = 0
        NQ[70] = 1

def _e31(V, NQ, PEND, PQ, PRIMS, ACT):
    pass  # fused into _e33

def _e32(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_router_rmw/s015:985
    _v22 = (0x24) & 0xff
    if V[141] != _v22:
        V[141] = _v22
        NQ[70] = 1

def _e33(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_router_rmw/s015:984
    _v23 = ((1 if (((V[68] == 1) and ((V[69] >> 3 & 1) == 1)) and ((V[70] >> 544 & 1) == 0)) and ((0 if (V[70] >> 512 & 0xffff) < 0xa else 1)) else 0)) & 1
    if V[140] != _v23:
        V[140] = _v23
        NQ[70] = 1
    # [conc r0] ehdl_router_rmw/s015:986
    _v24 = (((V[70] >> 833 & 0xffffffffffffffff) + 0xa) & 0xffffffffffffffff)
    if V[142] != _v24:
        V[142] = _v24
        NQ[70] = 1

def _e34(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_router_rmw/s015:987
    if V[143]:
        V[143] = 0
        NQ[70] = 1

def _e35(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_router_rmw/s015:988
    if V[144]:
        V[144] = 0
        NQ[70] = 1

def _e36(V, NQ, PEND, PQ, PRIMS, ACT):
    pass  # fused into _e39

def _e37(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_router_rmw/s020:1314
    _v25 = (1) & 0xff
    if V[146] != _v25:
        V[146] = _v25
        NQ[75] = 1

def _e38(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_router_rmw/s020:1315
    if V[147]:
        V[147] = 0
        NQ[75] = 1

def _e39(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_router_rmw/s020:1313
    _v26 = ((1 if ((V[83] == 1) and ((V[84] >> 3 & 1) == 1)) and ((V[85] >> 544 & 1) == 0) else 0)) & 1
    if V[145] != _v26:
        V[145] = _v26
        NQ[75] = 1
    # [conc r0] ehdl_router_rmw/s020:1316
    _v27 = (V[85] >> 769 & 0xffffffff)
    if V[148] != _v27:
        V[148] = _v27
        NQ[75] = 1

def _e40(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_router_rmw/s020:1317
    if V[149]:
        V[149] = 0
        NQ[75] = 1

def _e41(V, NQ, PEND, PQ, PRIMS, ACT):
    pass  # fused into _e43

def _e42(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_router_rmw/s023:1469
    _v28 = (0x84) & 0xff
    if V[151] != _v28:
        V[151] = _v28
        NQ[75] = 1

def _e43(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_router_rmw/s023:1468
    _v29 = ((1 if ((V[92] == 1) and ((V[93] >> 4 & 1) == 1)) and ((V[94] >> 544 & 1) == 0) else 0)) & 1
    if V[150] != _v29:
        V[150] = _v29
        NQ[75] = 1
    # [conc r0] ehdl_router_rmw/s023:1470
    _v30 = (((V[94] >> 577 & 0xffffffffffffffff) + 0) & 0xffffffffffffffff)
    if V[152] != _v30:
        V[152] = _v30
        NQ[75] = 1

def _e44(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_router_rmw/s023:1471
    if V[153]:
        V[153] = 0
        NQ[75] = 1

def _e45(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_router_rmw/s023:1472
    if V[154]:
        V[154] = 0
        NQ[75] = 1

def _e46(V, NQ, PEND, PQ, PRIMS, ACT):
    pass  # fused into _e50

def _e47(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_router_rmw/s025:1580
    _v31 = (0x85) & 0xff
    if V[156] != _v31:
        V[156] = _v31
        NQ[75] = 1

def _e48(V, NQ, PEND, PQ, PRIMS, ACT):
    pass  # fused into _e50

def _e49(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_router_rmw/s025:1582
    if V[158]:
        V[158] = 0
        NQ[75] = 1

def _e50(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_router_rmw/s025:1579
    _v32 = ((1 if ((V[98] == 1) and ((V[99] >> 4 & 1) == 1)) and ((V[100] >> 544 & 1) == 0) else 0)) & 1
    if V[155] != _v32:
        V[155] = _v32
        NQ[75] = 1
    # [conc r0] ehdl_router_rmw/s025:1581
    _v33 = (((V[100] >> 577 & 0xffffffffffffffff) + 0) & 0xffffffffffffffff)
    if V[157] != _v33:
        V[157] = _v33
        NQ[75] = 1
    # [conc r0] ehdl_router_rmw/s025:1583
    _v34 = (V[100] >> 641 & 0xffffffffffffffff)
    if V[159] != _v34:
        V[159] = _v34
        NQ[75] = 1

def _e51(V, NQ, PEND, PQ, PRIMS, ACT):
    pass  # fused into _e53

def _e52(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_router_rmw/s026:1642
    _v35 = (0x44) & 0xff
    if V[161] != _v35:
        V[161] = _v35
        NQ[70] = 1

def _e53(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_router_rmw/s026:1641
    _v36 = ((1 if ((V[101] == 1) and ((V[102] >> 5 & 1) == 1)) and ((V[103] >> 544 & 1) == 0) else 0)) & 1
    if V[160] != _v36:
        V[160] = _v36
        NQ[70] = 1
    # [conc r0] ehdl_router_rmw/s026:1643
    _v37 = (((V[103] >> 577 & 0xffffffffffffffff) + 0xc) & 0xffffffffffffffff)
    if V[162] != _v37:
        V[162] = _v37
        NQ[70] = 1

def _e54(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_router_rmw/s026:1644
    if V[163]:
        V[163] = 0
        NQ[70] = 1

def _e55(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_router_rmw/s026:1645
    if V[164]:
        V[164] = 0
        NQ[70] = 1

def _e56(V, NQ, PEND, PQ, PRIMS, ACT):
    pass  # fused into _e58

def _e57(V, NQ, PEND, PQ, PRIMS, ACT):
    pass  # fused into _e58

def _e58(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_router_rmw/s027:1708
    _v38 = ((1 if ((V[104] == 1) and ((V[105] >> 5 & 1) == 1)) and ((V[106] >> 544 & 1) == 0) else 0)) & 1
    if V[188] != _v38:
        V[188] = _v38
        NQ[65] = 1
    # [conc r0] ehdl_router_rmw/s027:1709
    _v39 = (V[106] >> 577 & 0xffffffffffffffff)
    if V[189] != _v39:
        V[189] = _v39
        NQ[65] = 1
    # [conc r0] ehdl_router_rmw/s027:1710
    _v40 = (V[106] >> 641 & 0xffffffffffffffff)
    if V[190] != _v40:
        V[190] = _v40
        NQ[65] = 1

def _e59(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_router_rmw/s027:1711
    if V[191]:
        V[191] = 0
        NQ[65] = 1

def _e60(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_router_rmw/s027:1712
    if V[192]:
        V[192] = 0
        NQ[65] = 1

def _e61(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_router_rmw/s027:1713
    if V[193]:
        V[193] = 0
        NQ[65] = 1

def _e62(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_router_rmw:2512
    _v41 = V[118]
    if V[184] != _v41:
        V[184] = _v41
        NQ[76] = 1

def _e63(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_router_rmw:2521
    V[12] = (1) & 1

def _e64(V, NQ, PEND, PQ, PRIMS, ACT):
    # [fifo r1] ehdl_async_fifo
    _v42 = V[17]
    if V[18] != _v42:
        V[18] = _v42
        NQ[78] = 1
    _v43 = ((0 if V[5] else 1)) & 1
    if V[19] != _v43:
        V[19] = _v43
        NQ[79] = 1
    V[20] = 0

def _e65(V, NQ, PEND, PQ, PRIMS, ACT):
    # [prim r1] ehdl_helper_23
    if V[188]:
        ACT[0] += 1
        _s44 = V[194]
        PRIMS[0](V)
        if V[194] != _s44:
            if not PQ[27]:
                PQ[27] = 1
                PEND.append(27)
        NQ[65] = 1
    else:
        if V[194]:
            V[194] = 0
            if not PQ[27]:
                PQ[27] = 1
                PEND.append(27)

def _e66(V, NQ, PEND, PQ, PRIMS, ACT):
    pass  # fused into _e70

def _e67(V, NQ, PEND, PQ, PRIMS, ACT):
    pass  # fused into _e70

def _e68(V, NQ, PEND, PQ, PRIMS, ACT):
    pass  # fused into _e70

def _e69(V, NQ, PEND, PQ, PRIMS, ACT):
    pass  # fused into _e70

def _e70(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r1] ehdl_router_rmw:2470
    _v45 = ((((((V[120] | V[125]) | V[130]) | V[135]) | V[140]) | V[160])) & 1
    if V[165] != _v45:
        V[165] = _v45
        NQ[80] = 1
    # [conc r1] ehdl_router_rmw:2471
    _v46 = ((V[121] if V[120] == 1 else (V[126] if V[125] == 1 else (V[131] if V[130] == 1 else (V[136] if V[135] == 1 else (V[141] if V[140] == 1 else (V[161] if V[160] == 1 else 0))))))) & 0xff
    if V[166] != _v46:
        V[166] = _v46
        NQ[80] = 1
    # [conc r1] ehdl_router_rmw:2472
    _v47 = ((V[122] if V[120] == 1 else (V[127] if V[125] == 1 else (V[132] if V[130] == 1 else (V[137] if V[135] == 1 else (V[142] if V[140] == 1 else (V[162] if V[160] == 1 else 0))))))) & 0xffffffffffffffff
    if V[167] != _v47:
        V[167] = _v47
        NQ[80] = 1
    # [conc r1] ehdl_router_rmw:2473
    _v48 = ((V[123] if V[120] == 1 else (V[128] if V[125] == 1 else (V[133] if V[130] == 1 else (V[138] if V[135] == 1 else (V[143] if V[140] == 1 else (V[163] if V[160] == 1 else 0))))))) & 0xffffffff
    if V[168] != _v48:
        V[168] = _v48
        NQ[80] = 1
    # [conc r1] ehdl_router_rmw:2474
    _v49 = ((V[124] if V[120] == 1 else (V[129] if V[125] == 1 else (V[134] if V[130] == 1 else (V[139] if V[135] == 1 else (V[144] if V[140] == 1 else (V[164] if V[160] == 1 else 0))))))) & 0xffffffffffffffffffffffffffffffff
    if V[169] != _v49:
        V[169] = _v49
        NQ[80] = 1

def _e71(V, NQ, PEND, PQ, PRIMS, ACT):
    pass  # fused into _e75

def _e72(V, NQ, PEND, PQ, PRIMS, ACT):
    pass  # fused into _e75

def _e73(V, NQ, PEND, PQ, PRIMS, ACT):
    pass  # fused into _e75

def _e74(V, NQ, PEND, PQ, PRIMS, ACT):
    pass  # fused into _e75

def _e75(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r1] ehdl_router_rmw:2490
    _v50 = (((V[145] | V[150]) | V[155])) & 1
    if V[174] != _v50:
        V[174] = _v50
        NQ[81] = 1
    # [conc r1] ehdl_router_rmw:2491
    _v51 = ((V[146] if V[145] == 1 else (V[151] if V[150] == 1 else (V[156] if V[155] == 1 else 0)))) & 0xff
    if V[175] != _v51:
        V[175] = _v51
        NQ[81] = 1
    # [conc r1] ehdl_router_rmw:2492
    _v52 = ((V[147] if V[145] == 1 else (V[152] if V[150] == 1 else (V[157] if V[155] == 1 else 0)))) & 0xffffffffffffffff
    if V[176] != _v52:
        V[176] = _v52
        NQ[81] = 1
    # [conc r1] ehdl_router_rmw:2493
    _v53 = ((V[148] if V[145] == 1 else (V[153] if V[150] == 1 else (V[158] if V[155] == 1 else 0)))) & 0xffffffff
    if V[177] != _v53:
        V[177] = _v53
        NQ[81] = 1
    # [conc r1] ehdl_router_rmw:2494
    _v54 = ((V[149] if V[145] == 1 else (V[154] if V[150] == 1 else (V[159] if V[155] == 1 else 0)))) & 0xffffffffffffffff
    if V[178] != _v54:
        V[178] = _v54
        NQ[81] = 1

def _e76(V, NQ, PEND, PQ, PRIMS, ACT):
    # [fifo r1] ehdl_async_fifo
    _v55 = V[184]
    if V[185] != _v55:
        V[185] = _v55
        NQ[85] = 1
    _v56 = ((0 if V[116] else 1)) & 1
    if V[186] != _v56:
        V[186] = _v56
        NQ[82] = 1
    V[187] = 0

def _e77(V, NQ, PEND, PQ, PRIMS, ACT):
    pass  # fused into _e78

def _e78(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r2] ehdl_router_rmw:2085
    _v57 = (V[18] >> 16 & 0xffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff)
    if V[21] != _v57:
        V[21] = _v57
        NQ[88] = 1
        if not PQ[0]:
            PQ[0] = 1
            PEND.append(0)
    # [conc r2] ehdl_router_rmw:2086
    _v58 = (V[18] & 0xffff)
    if V[22] != _v58:
        V[22] = _v58
        NQ[89] = 1

def _e79(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r2] ehdl_router_rmw:2089
    _v59 = (~V[19] & 1)
    if V[26] != _v59:
        V[26] = _v59
        if not PQ[0]:
            PQ[0] = 1
            PEND.append(0)
        if not PQ[1]:
            PQ[1] = 1
            PEND.append(1)

def _e80(V, NQ, PEND, PQ, PRIMS, ACT):
    # [prim r2] router_rmw_map_1.ch0
    if V[165]:
        ACT[1] += 1
        _s60 = V[170]
        _s61 = V[171]
        PRIMS[1](V)
        if V[170] != _s60:
            if not PQ[8]:
                PQ[8] = 1
                PEND.append(8)
            if not PQ[12]:
                PQ[12] = 1
                PEND.append(12)
            if not PQ[13]:
                PQ[13] = 1
                PEND.append(13)
            if not PQ[14]:
                PQ[14] = 1
                PEND.append(14)
            if not PQ[15]:
                PQ[15] = 1
                PEND.append(15)
            if not PQ[26]:
                PQ[26] = 1
                PEND.append(26)
        if V[171] != _s61:
            if not PQ[8]:
                PQ[8] = 1
                PEND.append(8)
            if not PQ[12]:
                PQ[12] = 1
                PEND.append(12)
            if not PQ[13]:
                PQ[13] = 1
                PEND.append(13)
            if not PQ[14]:
                PQ[14] = 1
                PEND.append(14)
            if not PQ[15]:
                PQ[15] = 1
                PEND.append(15)
            if not PQ[26]:
                PQ[26] = 1
                PEND.append(26)
        NQ[80] = 1
    else:
        if V[170]:
            V[170] = 0
            if not PQ[8]:
                PQ[8] = 1
                PEND.append(8)
            if not PQ[12]:
                PQ[12] = 1
                PEND.append(12)
            if not PQ[13]:
                PQ[13] = 1
                PEND.append(13)
            if not PQ[14]:
                PQ[14] = 1
                PEND.append(14)
            if not PQ[15]:
                PQ[15] = 1
                PEND.append(15)
            if not PQ[26]:
                PQ[26] = 1
                PEND.append(26)
        if V[171]:
            V[171] = 0
            if not PQ[8]:
                PQ[8] = 1
                PEND.append(8)
            if not PQ[12]:
                PQ[12] = 1
                PEND.append(12)
            if not PQ[13]:
                PQ[13] = 1
                PEND.append(13)
            if not PQ[14]:
                PQ[14] = 1
                PEND.append(14)
            if not PQ[15]:
                PQ[15] = 1
                PEND.append(15)
            if not PQ[26]:
                PQ[26] = 1
                PEND.append(26)

def _e81(V, NQ, PEND, PQ, PRIMS, ACT):
    # [prim r2] router_rmw_map_2.ch0
    if V[174]:
        ACT[2] += 1
        _s62 = V[179]
        _s63 = V[180]
        PRIMS[2](V)
        if V[179] != _s62:
            if not PQ[20]:
                PQ[20] = 1
                PEND.append(20)
            if not PQ[23]:
                PQ[23] = 1
                PEND.append(23)
        if V[180] != _s63:
            if not PQ[20]:
                PQ[20] = 1
                PEND.append(20)
            if not PQ[23]:
                PQ[23] = 1
                PEND.append(23)
            if not PQ[25]:
                PQ[25] = 1
                PEND.append(25)
        NQ[81] = 1
    else:
        if V[179]:
            V[179] = 0
            if not PQ[20]:
                PQ[20] = 1
                PEND.append(20)
            if not PQ[23]:
                PQ[23] = 1
                PEND.append(23)
        if V[180]:
            V[180] = 0
            if not PQ[20]:
                PQ[20] = 1
                PEND.append(20)
            if not PQ[23]:
                PQ[23] = 1
                PEND.append(23)
            if not PQ[25]:
                PQ[25] = 1
                PEND.append(25)

def _e82(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r2] ehdl_router_rmw:2518
    V[11] = (~V[186] & 1)

def _e83(V, NQ, PEND, PQ, PRIMS, ACT):
    pass  # fused into _e85

def _e84(V, NQ, PEND, PQ, PRIMS, ACT):
    pass  # fused into _e85

def _e85(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r2] ehdl_router_rmw:2519
    V[8] = (V[185] & 0xffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff)
    # [conc r2] ehdl_router_rmw:2520
    V[9] = (V[185] >> 512 & 0xffff)
    # [conc r2] ehdl_router_rmw:2522
    V[10] = (((V[185] >> 545 & 0xffffffff) if (V[185] >> 544 & 1) == 1 else 0)) & 0xffffffff

def _e86(V, NQ, PEND, PQ, PRIMS, ACT):
    pass  # fused into _e89

def _e87(V, NQ, PEND, PQ, PRIMS, ACT):
    pass  # fused into _e89

def _e88(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r3] ehdl_router_rmw:2091
    _o64 = V[28]
    _v65 = _o64 & 0x1ffffffffffffffffffffffffffffffff00000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000 | ((V[21]) & 0xffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff)
    if _v65 != _o64:
        V[28] = _v65
        if not PQ[1]:
            PQ[1] = 1
            PEND.append(1)

def _e89(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r3] ehdl_router_rmw:2087
    _v66 = ((1 if V[22] < 0x22 else 0)) & 1
    if V[23] != _v66:
        V[23] = _v66
        NQ[92] = 1
    # [conc r3] ehdl_router_rmw:2088
    _v67 = ((2 if V[22] < 0x22 else 0)) & 0xffffffff
    if V[24] != _v67:
        V[24] = _v67
        NQ[93] = 1
    # [conc r3] ehdl_router_rmw:2092
    _o68 = V[28]
    _v69 = _o68 & 0x1ffffffffffffffffffffffffffff0000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (((V[22]) & 0xffff) << 512)
    if _v69 != _o68:
        V[28] = _v69
        if not PQ[1]:
            PQ[1] = 1
            PEND.append(1)

def _e90(V, NQ, PEND, PQ, PRIMS, ACT):
    # [tie r3] router_rmw_map_1.tie
    V[173] = 0

def _e91(V, NQ, PEND, PQ, PRIMS, ACT):
    # [tie r3] router_rmw_map_2.tie
    if V[181]:
        V[181] = 0
        NQ[94] = 1
    V[183] = 0

def _e92(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r4] ehdl_router_rmw:2094
    _o70 = V[28]
    _v71 = _o70 & 0x1fffffffffffffffffffffffeffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (((V[23]) & 1) << 544)
    if _v71 != _o70:
        V[28] = _v71
        if not PQ[1]:
            PQ[1] = 1
            PEND.append(1)

def _e93(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r4] ehdl_router_rmw:2095
    _o72 = V[28]
    _v73 = _o72 & 0x1fffffffffffffffe00000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (((V[24]) & 0xffffffff) << 545)
    if _v73 != _o72:
        V[28] = _v73
        if not PQ[1]:
            PQ[1] = 1
            PEND.append(1)

def _e94(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r4] ehdl_router_rmw:2511
    _v74 = V[181]
    if V[119] != _v74:
        V[119] = _v74
        if not PQ[1]:
            PQ[1] = 1
            PEND.append(1)
        if not PQ[2]:
            PQ[2] = 1
            PEND.append(2)
        if not PQ[3]:
            PQ[3] = 1
            PEND.append(3)
        if not PQ[4]:
            PQ[4] = 1
            PEND.append(4)
        if not PQ[5]:
            PQ[5] = 1
            PEND.append(5)
        if not PQ[6]:
            PQ[6] = 1
            PEND.append(6)
        if not PQ[7]:
            PQ[7] = 1
            PEND.append(7)
        if not PQ[8]:
            PQ[8] = 1
            PEND.append(8)
        if not PQ[9]:
            PQ[9] = 1
            PEND.append(9)
        if not PQ[10]:
            PQ[10] = 1
            PEND.append(10)
        if not PQ[11]:
            PQ[11] = 1
            PEND.append(11)
        if not PQ[12]:
            PQ[12] = 1
            PEND.append(12)
        if not PQ[13]:
            PQ[13] = 1
            PEND.append(13)
        if not PQ[14]:
            PQ[14] = 1
            PEND.append(14)
        if not PQ[15]:
            PQ[15] = 1
            PEND.append(15)
        if not PQ[16]:
            PQ[16] = 1
            PEND.append(16)
        if not PQ[17]:
            PQ[17] = 1
            PEND.append(17)
        if not PQ[18]:
            PQ[18] = 1
            PEND.append(18)
        if not PQ[19]:
            PQ[19] = 1
            PEND.append(19)
        if not PQ[20]:
            PQ[20] = 1
            PEND.append(20)
        if not PQ[21]:
            PQ[21] = 1
            PEND.append(21)
        if not PQ[22]:
            PQ[22] = 1
            PEND.append(22)
        if not PQ[23]:
            PQ[23] = 1
            PEND.append(23)
        if not PQ[24]:
            PQ[24] = 1
            PEND.append(24)
        if not PQ[25]:
            PQ[25] = 1
            PEND.append(25)
        if not PQ[26]:
            PQ[26] = 1
            PEND.append(26)
        if not PQ[27]:
            PQ[27] = 1
            PEND.append(27)
        if not PQ[28]:
            PQ[28] = 1
            PEND.append(28)
        if not PQ[29]:
            PQ[29] = 1
            PEND.append(29)
        if not PQ[30]:
            PQ[30] = 1
            PEND.append(30)

def _p0(V):
    # ehdl_router_rmw:process@2097
    t25 = V[25]
    if V[26] == 1:
        t25 = V[21]
    return (t25,)

def _c0(V, t, NQ, PEND, PQ):
    V[25] = t[0]

def _f0(V, NQ, PEND, PQ):
    t25 = V[25]
    if V[26] == 1:
        t25 = V[21]
    V[25] = t25

def _p1(V):
    # ehdl_router_rmw/s001:process@164
    t29 = V[29]
    t30 = V[30]
    t31 = V[31]
    if (V[2] == 1) or (V[119] == 1):
        t29 = 0
    else:
        t29 = V[26]
        t30 = V[27]
        t31 = V[28] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[28] << 64) & 0x1fffffffffffffffe0000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if ((V[26] == 1) and ((V[27] & 1) == 1)) and ((V[28] >> 544 & 1) == 0):
            if (V[28] >> 512 & 0xffff) < 0xe:
                t31 = t31 & 0x1fffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t31 = t31 & 0x1fffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((V[28] >> 96 & 0xffff) << 577)
    return (t29, t30, t31)

def _c1(V, t, NQ, PEND, PQ):
    if V[29] != t[0] or V[30] != t[1] or V[31] != t[2]:
        V[29] = t[0]
        V[30] = t[1]
        V[31] = t[2]
        if not PQ[2]:
            PQ[2] = 1
            PEND.append(2)

def _f1(V, NQ, PEND, PQ):
    t29 = V[29]
    t30 = V[30]
    t31 = V[31]
    if (V[2] == 1) or (V[119] == 1):
        t29 = 0
    else:
        t29 = V[26]
        t30 = V[27]
        t31 = V[28] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[28] << 64) & 0x1fffffffffffffffe0000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if ((V[26] == 1) and ((V[27] & 1) == 1)) and ((V[28] >> 544 & 1) == 0):
            if (V[28] >> 512 & 0xffff) < 0xe:
                t31 = t31 & 0x1fffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t31 = t31 & 0x1fffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((V[28] >> 96 & 0xffff) << 577)
    if V[29] != t29 or V[30] != t30 or V[31] != t31:
        V[29] = t29
        V[30] = t30
        V[31] = t31
        if not PQ[2]:
            PQ[2] = 1
            PEND.append(2)

def _p2(V):
    # ehdl_router_rmw/s002:process@215
    t32 = V[32]
    t33 = V[33]
    t34 = V[34]
    if (V[2] == 1) or (V[119] == 1):
        t32 = 0
    else:
        t32 = V[29]
        t33 = V[30]
        t34 = V[31] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[31] >> 64) & 0x1fffffffffffffffe000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if ((V[29] == 1) and ((V[30] & 1) == 1)) and ((V[31] >> 544 & 1) == 0):
            if (V[31] >> 577 & 0xffffffffffffffff) != 8:
                t33 = t33 & 0xffffffbf | 0x40
            else:
                t33 = t33 & 0xfffffffd | 2
    return (t32, t33, t34)

def _c2(V, t, NQ, PEND, PQ):
    if V[32] != t[0] or V[33] != t[1] or V[34] != t[2]:
        V[32] = t[0]
        V[33] = t[1]
        V[34] = t[2]
        if not PQ[3]:
            PQ[3] = 1
            PEND.append(3)

def _f2(V, NQ, PEND, PQ):
    t32 = V[32]
    t33 = V[33]
    t34 = V[34]
    if (V[2] == 1) or (V[119] == 1):
        t32 = 0
    else:
        t32 = V[29]
        t33 = V[30]
        t34 = V[31] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[31] >> 64) & 0x1fffffffffffffffe000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if ((V[29] == 1) and ((V[30] & 1) == 1)) and ((V[31] >> 544 & 1) == 0):
            if (V[31] >> 577 & 0xffffffffffffffff) != 8:
                t33 = t33 & 0xffffffbf | 0x40
            else:
                t33 = t33 & 0xfffffffd | 2
    if V[32] != t32 or V[33] != t33 or V[34] != t34:
        V[32] = t32
        V[33] = t33
        V[34] = t34
        if not PQ[3]:
            PQ[3] = 1
            PEND.append(3)

def _p3(V):
    # ehdl_router_rmw/s003:process@264
    t35 = V[35]
    t36 = V[36]
    t37 = V[37]
    if (V[2] == 1) or (V[119] == 1):
        t35 = 0
    else:
        t35 = V[32]
        t36 = V[33]
        t37 = V[34] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[34] << 64) & 0x1fffffffffffffffe0000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if ((V[32] == 1) and ((V[33] >> 1 & 1) == 1)) and ((V[34] >> 544 & 1) == 0):
            if (V[34] >> 512 & 0xffff) < 0x17:
                t37 = t37 & 0x1fffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t37 = t37 & 0x1fffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((V[34] >> 176 & 0xff) << 577)
    return (t35, t36, t37)

def _c3(V, t, NQ, PEND, PQ):
    if V[35] != t[0] or V[36] != t[1] or V[37] != t[2]:
        V[35] = t[0]
        V[36] = t[1]
        V[37] = t[2]
        if not PQ[4]:
            PQ[4] = 1
            PEND.append(4)

def _f3(V, NQ, PEND, PQ):
    t35 = V[35]
    t36 = V[36]
    t37 = V[37]
    if (V[2] == 1) or (V[119] == 1):
        t35 = 0
    else:
        t35 = V[32]
        t36 = V[33]
        t37 = V[34] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[34] << 64) & 0x1fffffffffffffffe0000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if ((V[32] == 1) and ((V[33] >> 1 & 1) == 1)) and ((V[34] >> 544 & 1) == 0):
            if (V[34] >> 512 & 0xffff) < 0x17:
                t37 = t37 & 0x1fffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t37 = t37 & 0x1fffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((V[34] >> 176 & 0xff) << 577)
    if V[35] != t35 or V[36] != t36 or V[37] != t37:
        V[35] = t35
        V[36] = t36
        V[37] = t37
        if not PQ[4]:
            PQ[4] = 1
            PEND.append(4)

def _p4(V):
    # ehdl_router_rmw/s004:process@315
    t38 = V[38]
    t39 = V[39]
    t40 = V[40]
    if (V[2] == 1) or (V[119] == 1):
        t38 = 0
    else:
        t38 = V[35]
        t39 = V[36]
        t40 = V[37] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[37] >> 64) & 0x1fffffffffffffffe000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if ((V[35] == 1) and ((V[36] >> 1 & 1) == 1)) and ((V[37] >> 544 & 1) == 0):
            if (V[37] >> 577 & 0xffffffffffffffff) <= 1:
                t39 = t39 & 0xffffffbf | 0x40
            else:
                t39 = t39 & 0xfffffffb | 4
    return (t38, t39, t40)

def _c4(V, t, NQ, PEND, PQ):
    if V[38] != t[0] or V[39] != t[1] or V[40] != t[2]:
        V[38] = t[0]
        V[39] = t[1]
        V[40] = t[2]
        if not PQ[5]:
            PQ[5] = 1
            PEND.append(5)

def _f4(V, NQ, PEND, PQ):
    t38 = V[38]
    t39 = V[39]
    t40 = V[40]
    if (V[2] == 1) or (V[119] == 1):
        t38 = 0
    else:
        t38 = V[35]
        t39 = V[36]
        t40 = V[37] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[37] >> 64) & 0x1fffffffffffffffe000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if ((V[35] == 1) and ((V[36] >> 1 & 1) == 1)) and ((V[37] >> 544 & 1) == 0):
            if (V[37] >> 577 & 0xffffffffffffffff) <= 1:
                t39 = t39 & 0xffffffbf | 0x40
            else:
                t39 = t39 & 0xfffffffb | 4
    if V[38] != t38 or V[39] != t39 or V[40] != t40:
        V[38] = t38
        V[39] = t39
        V[40] = t40
        if not PQ[5]:
            PQ[5] = 1
            PEND.append(5)

def _p5(V):
    # ehdl_router_rmw/s005:process@364
    t41 = V[41]
    t42 = V[42]
    t43 = V[43]
    _x2 = (V[40] >> 512 & 0xffff)
    _x1 = ((V[40] >> 544 & 1) == 0)
    _x0 = ((V[38] == 1) and ((V[39] >> 2 & 1) == 1))
    if (V[2] == 1) or (V[119] == 1):
        t41 = 0
    else:
        t41 = V[38]
        t42 = V[39]
        t43 = V[40] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[40] << 128) & 0x1fffffffffffffffe00000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if _x0 and _x1:
            if _x2 < 0x22:
                t43 = t43 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t43 = t43 & 0x1fffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((V[40] >> 240 & 0xffffffff) << 641)
        if (_x0 and _x1) and ((0 if _x2 < 0x22 else 1)):
            t43 = t43 & 0x1fffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x60000002000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
    return (t41, t42, t43)

def _c5(V, t, NQ, PEND, PQ):
    if V[41] != t[0] or V[42] != t[1] or V[43] != t[2]:
        V[41] = t[0]
        V[42] = t[1]
        V[43] = t[2]
        if not PQ[6]:
            PQ[6] = 1
            PEND.append(6)

def _f5(V, NQ, PEND, PQ):
    t41 = V[41]
    t42 = V[42]
    t43 = V[43]
    _x2 = (V[40] >> 512 & 0xffff)
    _x1 = ((V[40] >> 544 & 1) == 0)
    _x0 = ((V[38] == 1) and ((V[39] >> 2 & 1) == 1))
    if (V[2] == 1) or (V[119] == 1):
        t41 = 0
    else:
        t41 = V[38]
        t42 = V[39]
        t43 = V[40] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[40] << 128) & 0x1fffffffffffffffe00000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if _x0 and _x1:
            if _x2 < 0x22:
                t43 = t43 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t43 = t43 & 0x1fffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((V[40] >> 240 & 0xffffffff) << 641)
        if (_x0 and _x1) and ((0 if _x2 < 0x22 else 1)):
            t43 = t43 & 0x1fffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x60000002000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
    if V[41] != t41 or V[42] != t42 or V[43] != t43:
        V[41] = t41
        V[42] = t42
        V[43] = t43
        if not PQ[6]:
            PQ[6] = 1
            PEND.append(6)

def _p6(V):
    # ehdl_router_rmw/s006:process@420
    t44 = V[44]
    t45 = V[45]
    t46 = V[46]
    if (V[2] == 1) or (V[119] == 1):
        t44 = 0
    else:
        t44 = V[41]
        t45 = V[42]
        t46 = V[43]
        if ((V[41] == 1) and ((V[42] >> 2 & 1) == 1)) and ((V[43] >> 544 & 1) == 0):
            t46 = t46 & 0x1fffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (((V[43] >> 641 & 0xffffffffffffffff) & 0xffffff) << 641)
    return (t44, t45, t46)

def _c6(V, t, NQ, PEND, PQ):
    if V[44] != t[0] or V[45] != t[1] or V[46] != t[2]:
        V[44] = t[0]
        V[45] = t[1]
        V[46] = t[2]
        if not PQ[7]:
            PQ[7] = 1
            PEND.append(7)

def _f6(V, NQ, PEND, PQ):
    t44 = V[44]
    t45 = V[45]
    t46 = V[46]
    if (V[2] == 1) or (V[119] == 1):
        t44 = 0
    else:
        t44 = V[41]
        t45 = V[42]
        t46 = V[43]
        if ((V[41] == 1) and ((V[42] >> 2 & 1) == 1)) and ((V[43] >> 544 & 1) == 0):
            t46 = t46 & 0x1fffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (((V[43] >> 641 & 0xffffffffffffffff) & 0xffffff) << 641)
    if V[44] != t44 or V[45] != t45 or V[46] != t46:
        V[44] = t44
        V[45] = t45
        V[46] = t46
        if not PQ[7]:
            PQ[7] = 1
            PEND.append(7)

def _p7(V):
    # ehdl_router_rmw/s007:process@467
    t47 = V[47]
    t48 = V[48]
    t49 = V[49]
    _x1 = ((V[46] >> 544 & 1) == 0)
    _x0 = ((V[44] == 1) and ((V[45] >> 2 & 1) == 1))
    if (V[2] == 1) or (V[119] == 1):
        t47 = 0
    else:
        t47 = V[44]
        t48 = V[45]
        t49 = V[46] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff
        if _x0 and _x1:
            t49 = t49 & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((((V[46] >> 641 & 0xffffffffffffffff)) & 0xffffffff) << 769)
            t49 = t49 & 0x1fffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x4004000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            t49 = t49 & 0x1fffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (((0x2001fc) & 0xffffffffffffffff) << 641)
    return (t47, t48, t49)

def _c7(V, t, NQ, PEND, PQ):
    if V[47] != t[0] or V[48] != t[1] or V[49] != t[2]:
        V[47] = t[0]
        V[48] = t[1]
        V[49] = t[2]
        NQ[14] = 1
        if not PQ[8]:
            PQ[8] = 1
            PEND.append(8)

def _f7(V, NQ, PEND, PQ):
    t47 = V[47]
    t48 = V[48]
    t49 = V[49]
    _x1 = ((V[46] >> 544 & 1) == 0)
    _x0 = ((V[44] == 1) and ((V[45] >> 2 & 1) == 1))
    if (V[2] == 1) or (V[119] == 1):
        t47 = 0
    else:
        t47 = V[44]
        t48 = V[45]
        t49 = V[46] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff
        if _x0 and _x1:
            t49 = t49 & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((((V[46] >> 641 & 0xffffffffffffffff)) & 0xffffffff) << 769)
            t49 = t49 & 0x1fffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x4004000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            t49 = t49 & 0x1fffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (((0x2001fc) & 0xffffffffffffffff) << 641)
    if V[47] != t47 or V[48] != t48 or V[49] != t49:
        V[47] = t47
        V[48] = t48
        V[49] = t49
        NQ[14] = 1
        if not PQ[8]:
            PQ[8] = 1
            PEND.append(8)

def _p8(V):
    # ehdl_router_rmw/s008:process@535
    t50 = V[50]
    t51 = V[51]
    t52 = V[52]
    if (V[2] == 1) or (V[119] == 1):
        t50 = 0
    else:
        t50 = V[47]
        t51 = V[48]
        t52 = V[49] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[49] >> 64) & 0x1fffffffffffffffe0000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if ((V[47] == 1) and ((V[48] >> 2 & 1) == 1)) and ((V[49] >> 544 & 1) == 0):
            if V[171] == 1:
                t52 = t52 & 0x1fffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t52 = t52 & 0x1fffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[170] << 577) & 0x1fffffffffffffffe000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
    return (t50, t51, t52)

def _c8(V, t, NQ, PEND, PQ):
    if V[50] != t[0] or V[51] != t[1] or V[52] != t[2]:
        V[50] = t[0]
        V[51] = t[1]
        V[52] = t[2]
        if not PQ[9]:
            PQ[9] = 1
            PEND.append(9)

def _f8(V, NQ, PEND, PQ):
    t50 = V[50]
    t51 = V[51]
    t52 = V[52]
    if (V[2] == 1) or (V[119] == 1):
        t50 = 0
    else:
        t50 = V[47]
        t51 = V[48]
        t52 = V[49] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[49] >> 64) & 0x1fffffffffffffffe0000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if ((V[47] == 1) and ((V[48] >> 2 & 1) == 1)) and ((V[49] >> 544 & 1) == 0):
            if V[171] == 1:
                t52 = t52 & 0x1fffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t52 = t52 & 0x1fffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[170] << 577) & 0x1fffffffffffffffe000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
    if V[50] != t50 or V[51] != t51 or V[52] != t52:
        V[50] = t50
        V[51] = t51
        V[52] = t52
        if not PQ[9]:
            PQ[9] = 1
            PEND.append(9)

def _p9(V):
    # ehdl_router_rmw/s009:process@586
    t53 = V[53]
    t54 = V[54]
    t55 = V[55]
    if (V[2] == 1) or (V[119] == 1):
        t53 = 0
    else:
        t53 = V[50]
        t54 = V[51]
        t55 = V[52]
    return (t53, t54, t55)

def _c9(V, t, NQ, PEND, PQ):
    if V[53] != t[0] or V[54] != t[1] or V[55] != t[2]:
        V[53] = t[0]
        V[54] = t[1]
        V[55] = t[2]
        if not PQ[10]:
            PQ[10] = 1
            PEND.append(10)

def _f9(V, NQ, PEND, PQ):
    t53 = V[53]
    t54 = V[54]
    t55 = V[55]
    if (V[2] == 1) or (V[119] == 1):
        t53 = 0
    else:
        t53 = V[50]
        t54 = V[51]
        t55 = V[52]
    if V[53] != t53 or V[54] != t54 or V[55] != t55:
        V[53] = t53
        V[54] = t54
        V[55] = t55
        if not PQ[10]:
            PQ[10] = 1
            PEND.append(10)

def _p10(V):
    # ehdl_router_rmw/s010:process@628
    t56 = V[56]
    t57 = V[57]
    t58 = V[58]
    if (V[2] == 1) or (V[119] == 1):
        t56 = 0
    else:
        t56 = V[53]
        t57 = V[54]
        t58 = V[55]
        if ((V[53] == 1) and ((V[54] >> 2 & 1) == 1)) and ((V[55] >> 544 & 1) == 0):
            if (V[55] >> 577 & 0xffffffffffffffff) == 0:
                t57 = t57 & 0xffffffbf | 0x40
            else:
                t57 = t57 & 0xfffffff7 | 8
    return (t56, t57, t58)

def _c10(V, t, NQ, PEND, PQ):
    if V[56] != t[0] or V[57] != t[1] or V[58] != t[2]:
        V[56] = t[0]
        V[57] = t[1]
        V[58] = t[2]
        if not PQ[11]:
            PQ[11] = 1
            PEND.append(11)

def _f10(V, NQ, PEND, PQ):
    t56 = V[56]
    t57 = V[57]
    t58 = V[58]
    if (V[2] == 1) or (V[119] == 1):
        t56 = 0
    else:
        t56 = V[53]
        t57 = V[54]
        t58 = V[55]
        if ((V[53] == 1) and ((V[54] >> 2 & 1) == 1)) and ((V[55] >> 544 & 1) == 0):
            if (V[55] >> 577 & 0xffffffffffffffff) == 0:
                t57 = t57 & 0xffffffbf | 0x40
            else:
                t57 = t57 & 0xfffffff7 | 8
    if V[56] != t56 or V[57] != t57 or V[58] != t58:
        V[56] = t56
        V[57] = t57
        V[58] = t58
        if not PQ[11]:
            PQ[11] = 1
            PEND.append(11)

def _p11(V):
    # ehdl_router_rmw/s011:process@678
    t59 = V[59]
    t60 = V[60]
    t61 = V[61]
    _x2 = (V[58] >> 512 & 0xffff)
    _x1 = ((V[58] >> 544 & 1) == 0)
    _x0 = ((V[56] == 1) and ((V[57] >> 3 & 1) == 1))
    if (V[2] == 1) or (V[119] == 1):
        t59 = 0
    else:
        t59 = V[56]
        t60 = V[57]
        t61 = V[58] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[58] << 64) & 0x1fffffffffffffffe00000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if _x0 and _x1:
            t61 = t61 & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[58] << 192) & 0x1fffffffffffffffe000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            if _x2 < 0x1a:
                t61 = t61 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t61 = t61 & 0x1fffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((V[58] >> 192 & 0xffff) << 641)
        if (_x0 and _x1) and ((0 if _x2 < 0x1a else 1)):
            t61 = t61 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x60000004000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
    return (t59, t60, t61)

def _c11(V, t, NQ, PEND, PQ):
    if V[59] != t[0] or V[60] != t[1] or V[61] != t[2]:
        V[59] = t[0]
        V[60] = t[1]
        V[61] = t[2]
        NQ[18] = 1
        if not PQ[12]:
            PQ[12] = 1
            PEND.append(12)

def _f11(V, NQ, PEND, PQ):
    t59 = V[59]
    t60 = V[60]
    t61 = V[61]
    _x2 = (V[58] >> 512 & 0xffff)
    _x1 = ((V[58] >> 544 & 1) == 0)
    _x0 = ((V[56] == 1) and ((V[57] >> 3 & 1) == 1))
    if (V[2] == 1) or (V[119] == 1):
        t59 = 0
    else:
        t59 = V[56]
        t60 = V[57]
        t61 = V[58] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[58] << 64) & 0x1fffffffffffffffe00000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if _x0 and _x1:
            t61 = t61 & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[58] << 192) & 0x1fffffffffffffffe000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            if _x2 < 0x1a:
                t61 = t61 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t61 = t61 & 0x1fffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((V[58] >> 192 & 0xffff) << 641)
        if (_x0 and _x1) and ((0 if _x2 < 0x1a else 1)):
            t61 = t61 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x60000004000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
    if V[59] != t59 or V[60] != t60 or V[61] != t61:
        V[59] = t59
        V[60] = t60
        V[61] = t61
        NQ[18] = 1
        if not PQ[12]:
            PQ[12] = 1
            PEND.append(12)

def _p12(V):
    # ehdl_router_rmw/s012:process@751
    t62 = V[62]
    t63 = V[63]
    t64 = V[64]
    _x1 = ((V[61] >> 544 & 1) == 0)
    _x0 = ((V[59] == 1) and ((V[60] >> 3 & 1) == 1))
    if (V[2] == 1) or (V[119] == 1):
        t62 = 0
    else:
        t62 = V[59]
        t63 = V[60]
        t64 = V[61] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[61] << 64) & 0x1fffffffffffffffffffffffffffffffffffffffffffffffe00000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if _x0 and _x1:
            if V[171] == 1:
                t64 = t64 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t64 = t64 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[170] << 641) & 0x1fffffffffffffffe0000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if (_x0 and _x1) and ((0 if V[171] == 1 else 1)):
            t64 = t64 & 0x1fffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (((_bswap16((V[61] >> 641 & 0xffffffffffffffff))) & 0xffffffffffffffff) << 705)
    return (t62, t63, t64)

def _c12(V, t, NQ, PEND, PQ):
    if V[62] != t[0] or V[63] != t[1] or V[64] != t[2]:
        V[62] = t[0]
        V[63] = t[1]
        V[64] = t[2]
        NQ[23] = 1
        if not PQ[13]:
            PQ[13] = 1
            PEND.append(13)

def _f12(V, NQ, PEND, PQ):
    t62 = V[62]
    t63 = V[63]
    t64 = V[64]
    _x1 = ((V[61] >> 544 & 1) == 0)
    _x0 = ((V[59] == 1) and ((V[60] >> 3 & 1) == 1))
    if (V[2] == 1) or (V[119] == 1):
        t62 = 0
    else:
        t62 = V[59]
        t63 = V[60]
        t64 = V[61] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[61] << 64) & 0x1fffffffffffffffffffffffffffffffffffffffffffffffe00000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if _x0 and _x1:
            if V[171] == 1:
                t64 = t64 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t64 = t64 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[170] << 641) & 0x1fffffffffffffffe0000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if (_x0 and _x1) and ((0 if V[171] == 1 else 1)):
            t64 = t64 & 0x1fffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (((_bswap16((V[61] >> 641 & 0xffffffffffffffff))) & 0xffffffffffffffff) << 705)
    if V[62] != t62 or V[63] != t63 or V[64] != t64:
        V[62] = t62
        V[63] = t63
        V[64] = t64
        NQ[23] = 1
        if not PQ[13]:
            PQ[13] = 1
            PEND.append(13)

def _p13(V):
    # ehdl_router_rmw/s013:process@821
    t65 = V[65]
    t66 = V[66]
    t67 = V[67]
    _x7 = (V[64] >> 512 & 0xffff)
    _x6 = ((V[64] >> 544 & 1) == 0)
    _x5 = ((0 if V[171] == 1 else 1))
    _x4 = ((V[62] == 1) and ((V[63] >> 3 & 1) == 1))
    _x3 = ((0 if _x7 < 4 else 1))
    _x2 = (((V[64] >> 705 & 0xffffffffffffffff) + 0x100) & 0xffffffffffffffff)
    _x1 = (_x4 and _x6)
    _x0 = (_x1 and _x3)
    if (V[2] == 1) or (V[119] == 1):
        t65 = 0
    else:
        t65 = V[62]
        t66 = V[63]
        t67 = V[64] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[64] << 64) & 0x1fffffffffffffffffffffffffffffffe0000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if _x4 and _x6:
            if _x7 < 4:
                t67 = t67 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t67 = t67 & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff00000000 | (((V[64] >> 641 & 0xffffffffffffffff)) & 0xffffffff)
        if _x1 and _x3:
            if V[171] == 1:
                t67 = t67 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t67 = t67 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[170] << 641) & 0x1fffffffffffffffe0000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if _x0 and _x5:
            t67 = t67 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (_x2 << 705)
            t67 = t67 & 0x1fffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (_x2 << 769)
            t67 = t67 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((_x2 & 0xffff) << 705)
    return (t65, t66, t67)

def _c13(V, t, NQ, PEND, PQ):
    if V[65] != t[0] or V[66] != t[1] or V[67] != t[2]:
        V[65] = t[0]
        V[66] = t[1]
        V[67] = t[2]
        NQ[28] = 1
        if not PQ[14]:
            PQ[14] = 1
            PEND.append(14)

def _f13(V, NQ, PEND, PQ):
    t65 = V[65]
    t66 = V[66]
    t67 = V[67]
    _x7 = (V[64] >> 512 & 0xffff)
    _x6 = ((V[64] >> 544 & 1) == 0)
    _x5 = ((0 if V[171] == 1 else 1))
    _x4 = ((V[62] == 1) and ((V[63] >> 3 & 1) == 1))
    _x3 = ((0 if _x7 < 4 else 1))
    _x2 = (((V[64] >> 705 & 0xffffffffffffffff) + 0x100) & 0xffffffffffffffff)
    _x1 = (_x4 and _x6)
    _x0 = (_x1 and _x3)
    if (V[2] == 1) or (V[119] == 1):
        t65 = 0
    else:
        t65 = V[62]
        t66 = V[63]
        t67 = V[64] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[64] << 64) & 0x1fffffffffffffffffffffffffffffffe0000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if _x4 and _x6:
            if _x7 < 4:
                t67 = t67 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t67 = t67 & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff00000000 | (((V[64] >> 641 & 0xffffffffffffffff)) & 0xffffffff)
        if _x1 and _x3:
            if V[171] == 1:
                t67 = t67 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t67 = t67 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[170] << 641) & 0x1fffffffffffffffe0000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if _x0 and _x5:
            t67 = t67 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (_x2 << 705)
            t67 = t67 & 0x1fffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (_x2 << 769)
            t67 = t67 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((_x2 & 0xffff) << 705)
    if V[65] != t65 or V[66] != t66 or V[67] != t67:
        V[65] = t65
        V[66] = t66
        V[67] = t67
        NQ[28] = 1
        if not PQ[14]:
            PQ[14] = 1
            PEND.append(14)

def _p14(V):
    # ehdl_router_rmw/s014:process@909
    t68 = V[68]
    t69 = V[69]
    t70 = V[70]
    _x4 = (V[67] >> 512 & 0xffff)
    _x3 = ((V[67] >> 544 & 1) == 0)
    _x2 = ((V[65] == 1) and ((V[66] >> 3 & 1) == 1))
    _x1 = ((0 if _x4 < 6 else 1))
    _x0 = (_x2 and _x3)
    if (V[2] == 1) or (V[119] == 1):
        t68 = 0
    else:
        t68 = V[65]
        t69 = V[66]
        t70 = V[67] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[67] >> 64) & 0x1fffffffffffffffffffffffffffffffe000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if _x2 and _x3:
            if _x4 < 6:
                t70 = t70 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t70 = t70 & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff0000ffffffff | ((((V[67] >> 641 & 0xffffffffffffffff)) & 0xffff) << 32)
        if _x0 and _x1:
            if V[171] == 1:
                t70 = t70 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t70 = t70 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[170] << 641) & 0x1fffffffffffffffe0000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if (_x0 and _x1) and ((0 if V[171] == 1 else 1)):
            t70 = t70 & 0x1fffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((((V[67] >> 705 & 0xffffffffffffffff) + ((V[67] >> 769 & 0xffffffffffffffff) >> 0x10)) & 0xffffffffffffffff) << 705)
    return (t68, t69, t70)

def _c14(V, t, NQ, PEND, PQ):
    if V[68] != t[0] or V[69] != t[1] or V[70] != t[2]:
        V[68] = t[0]
        V[69] = t[1]
        V[70] = t[2]
        NQ[33] = 1
        if not PQ[15]:
            PQ[15] = 1
            PEND.append(15)

def _f14(V, NQ, PEND, PQ):
    t68 = V[68]
    t69 = V[69]
    t70 = V[70]
    _x4 = (V[67] >> 512 & 0xffff)
    _x3 = ((V[67] >> 544 & 1) == 0)
    _x2 = ((V[65] == 1) and ((V[66] >> 3 & 1) == 1))
    _x1 = ((0 if _x4 < 6 else 1))
    _x0 = (_x2 and _x3)
    if (V[2] == 1) or (V[119] == 1):
        t68 = 0
    else:
        t68 = V[65]
        t69 = V[66]
        t70 = V[67] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[67] >> 64) & 0x1fffffffffffffffffffffffffffffffe000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if _x2 and _x3:
            if _x4 < 6:
                t70 = t70 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t70 = t70 & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff0000ffffffff | ((((V[67] >> 641 & 0xffffffffffffffff)) & 0xffff) << 32)
        if _x0 and _x1:
            if V[171] == 1:
                t70 = t70 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t70 = t70 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[170] << 641) & 0x1fffffffffffffffe0000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if (_x0 and _x1) and ((0 if V[171] == 1 else 1)):
            t70 = t70 & 0x1fffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((((V[67] >> 705 & 0xffffffffffffffff) + ((V[67] >> 769 & 0xffffffffffffffff) >> 0x10)) & 0xffffffffffffffff) << 705)
    if V[68] != t68 or V[69] != t69 or V[70] != t70:
        V[68] = t68
        V[69] = t69
        V[70] = t70
        NQ[33] = 1
        if not PQ[15]:
            PQ[15] = 1
            PEND.append(15)

def _p15(V):
    # ehdl_router_rmw/s015:process@989
    t71 = V[71]
    t72 = V[72]
    t73 = V[73]
    _x7 = (V[70] >> 512 & 0xffff)
    _x6 = ((V[70] >> 544 & 1) == 0)
    _x5 = ((0 if V[171] == 1 else 1))
    _x4 = (V[70] >> 705 & 0xffffffffffffffff)
    _x3 = ((V[68] == 1) and ((V[69] >> 3 & 1) == 1))
    _x2 = ((0 if _x7 < 0xa else 1))
    _x1 = (_x3 and _x6)
    _x0 = (_x1 and _x2)
    if (V[2] == 1) or (V[119] == 1):
        t71 = 0
    else:
        t71 = V[68]
        t72 = V[69]
        t73 = V[70] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[70] << 64) & 0x1fffffffffffffffffffffffffffffffe0000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if _x3 and _x6:
            if _x7 < 0xa:
                t73 = t73 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t73 = t73 & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff00000000ffffffffffff | ((((V[70] >> 641 & 0xffffffffffffffff)) & 0xffffffff) << 48)
        if _x1 and _x2:
            if V[171] == 1:
                t73 = t73 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t73 = t73 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[170] << 641) & 0x1fffffffffffffffe0000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if _x0 and _x5:
            t73 = t73 & 0x1fffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[70] << 64) & 0x1fffffffffffffffe000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            t73 = t73 & 0x1fffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((((_x4 >> 0x10)) & 0xffffffffffffffff) << 769)
            t73 = t73 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((_x4 & 0xffff) << 705)
    return (t71, t72, t73)

def _c15(V, t, NQ, PEND, PQ):
    if V[71] != t[0] or V[72] != t[1] or V[73] != t[2]:
        V[71] = t[0]
        V[72] = t[1]
        V[73] = t[2]
        if not PQ[16]:
            PQ[16] = 1
            PEND.append(16)

def _f15(V, NQ, PEND, PQ):
    t71 = V[71]
    t72 = V[72]
    t73 = V[73]
    _x7 = (V[70] >> 512 & 0xffff)
    _x6 = ((V[70] >> 544 & 1) == 0)
    _x5 = ((0 if V[171] == 1 else 1))
    _x4 = (V[70] >> 705 & 0xffffffffffffffff)
    _x3 = ((V[68] == 1) and ((V[69] >> 3 & 1) == 1))
    _x2 = ((0 if _x7 < 0xa else 1))
    _x1 = (_x3 and _x6)
    _x0 = (_x1 and _x2)
    if (V[2] == 1) or (V[119] == 1):
        t71 = 0
    else:
        t71 = V[68]
        t72 = V[69]
        t73 = V[70] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[70] << 64) & 0x1fffffffffffffffffffffffffffffffe0000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if _x3 and _x6:
            if _x7 < 0xa:
                t73 = t73 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t73 = t73 & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff00000000ffffffffffff | ((((V[70] >> 641 & 0xffffffffffffffff)) & 0xffffffff) << 48)
        if _x1 and _x2:
            if V[171] == 1:
                t73 = t73 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t73 = t73 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[170] << 641) & 0x1fffffffffffffffe0000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if _x0 and _x5:
            t73 = t73 & 0x1fffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[70] << 64) & 0x1fffffffffffffffe000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            t73 = t73 & 0x1fffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((((_x4 >> 0x10)) & 0xffffffffffffffff) << 769)
            t73 = t73 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((_x4 & 0xffff) << 705)
    if V[71] != t71 or V[72] != t72 or V[73] != t73:
        V[71] = t71
        V[72] = t72
        V[73] = t73
        if not PQ[16]:
            PQ[16] = 1
            PEND.append(16)

def _p16(V):
    # ehdl_router_rmw/s016:process@1065
    t74 = V[74]
    t75 = V[75]
    t76 = V[76]
    _x4 = (V[73] >> 512 & 0xffff)
    _x3 = ((V[73] >> 544 & 1) == 0)
    _x2 = ((V[71] == 1) and ((V[72] >> 3 & 1) == 1))
    _x1 = ((0 if _x4 < 0xc else 1))
    _x0 = (_x2 and _x3)
    if (V[2] == 1) or (V[119] == 1):
        t74 = 0
    else:
        t74 = V[71]
        t75 = V[72]
        t76 = V[73] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[73] >> 64) & 0x1fffffffffffffffffffffffffffffffe000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if _x2 and _x3:
            if _x4 < 0xc:
                t76 = t76 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t76 = t76 & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff0000ffffffffffffffffffff | ((((V[73] >> 641 & 0xffffffffffffffff)) & 0xffff) << 80)
        if _x0 and _x1:
            if _x4 < 0x17:
                t76 = t76 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t76 = t76 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((V[73] >> 176 & 0xff) << 641)
        if (_x0 and _x1) and ((0 if _x4 < 0x17 else 1)):
            t76 = t76 & 0x1fffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((((V[73] >> 705 & 0xffffffffffffffff) + (V[73] >> 769 & 0xffffffffffffffff)) & 0xffffffffffffffff) << 705)
    return (t74, t75, t76)

def _c16(V, t, NQ, PEND, PQ):
    if V[74] != t[0] or V[75] != t[1] or V[76] != t[2]:
        V[74] = t[0]
        V[75] = t[1]
        V[76] = t[2]
        if not PQ[17]:
            PQ[17] = 1
            PEND.append(17)

def _f16(V, NQ, PEND, PQ):
    t74 = V[74]
    t75 = V[75]
    t76 = V[76]
    _x4 = (V[73] >> 512 & 0xffff)
    _x3 = ((V[73] >> 544 & 1) == 0)
    _x2 = ((V[71] == 1) and ((V[72] >> 3 & 1) == 1))
    _x1 = ((0 if _x4 < 0xc else 1))
    _x0 = (_x2 and _x3)
    if (V[2] == 1) or (V[119] == 1):
        t74 = 0
    else:
        t74 = V[71]
        t75 = V[72]
        t76 = V[73] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[73] >> 64) & 0x1fffffffffffffffffffffffffffffffe000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if _x2 and _x3:
            if _x4 < 0xc:
                t76 = t76 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t76 = t76 & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff0000ffffffffffffffffffff | ((((V[73] >> 641 & 0xffffffffffffffff)) & 0xffff) << 80)
        if _x0 and _x1:
            if _x4 < 0x17:
                t76 = t76 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t76 = t76 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((V[73] >> 176 & 0xff) << 641)
        if (_x0 and _x1) and ((0 if _x4 < 0x17 else 1)):
            t76 = t76 & 0x1fffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((((V[73] >> 705 & 0xffffffffffffffff) + (V[73] >> 769 & 0xffffffffffffffff)) & 0xffffffffffffffff) << 705)
    if V[74] != t74 or V[75] != t75 or V[76] != t76:
        V[74] = t74
        V[75] = t75
        V[76] = t76
        if not PQ[17]:
            PQ[17] = 1
            PEND.append(17)

def _p17(V):
    # ehdl_router_rmw/s017:process@1132
    t77 = V[77]
    t78 = V[78]
    t79 = V[79]
    _x1 = ((V[76] >> 544 & 1) == 0)
    _x0 = ((V[74] == 1) and ((V[75] >> 3 & 1) == 1))
    if (V[2] == 1) or (V[119] == 1):
        t77 = 0
    else:
        t77 = V[74]
        t78 = V[75]
        t79 = V[76]
        if _x0 and _x1:
            t79 = t79 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((((V[76] >> 641 & 0xffffffffffffffff) + 0xffffffffffffffff) & 0xffffffffffffffff) << 641)
            t79 = t79 & 0x1fffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (((_bswap16((V[76] >> 705 & 0xffffffffffffffff))) & 0xffffffffffffffff) << 705)
    return (t77, t78, t79)

def _c17(V, t, NQ, PEND, PQ):
    if V[77] != t[0] or V[78] != t[1] or V[79] != t[2]:
        V[77] = t[0]
        V[78] = t[1]
        V[79] = t[2]
        if not PQ[18]:
            PQ[18] = 1
            PEND.append(18)

def _f17(V, NQ, PEND, PQ):
    t77 = V[77]
    t78 = V[78]
    t79 = V[79]
    _x1 = ((V[76] >> 544 & 1) == 0)
    _x0 = ((V[74] == 1) and ((V[75] >> 3 & 1) == 1))
    if (V[2] == 1) or (V[119] == 1):
        t77 = 0
    else:
        t77 = V[74]
        t78 = V[75]
        t79 = V[76]
        if _x0 and _x1:
            t79 = t79 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((((V[76] >> 641 & 0xffffffffffffffff) + 0xffffffffffffffff) & 0xffffffffffffffff) << 641)
            t79 = t79 & 0x1fffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (((_bswap16((V[76] >> 705 & 0xffffffffffffffff))) & 0xffffffffffffffff) << 705)
    if V[77] != t77 or V[78] != t78 or V[79] != t79:
        V[77] = t77
        V[78] = t78
        V[79] = t79
        if not PQ[18]:
            PQ[18] = 1
            PEND.append(18)

def _p18(V):
    # ehdl_router_rmw/s018:process@1185
    t80 = V[80]
    t81 = V[81]
    t82 = V[82]
    _x4 = (V[79] >> 512 & 0xffff)
    _x3 = ((V[79] >> 544 & 1) == 0)
    _x2 = ((V[77] == 1) and ((V[78] >> 3 & 1) == 1))
    _x1 = ((0 if _x4 < 0x17 else 1))
    _x0 = (_x2 and _x3)
    if (V[2] == 1) or (V[119] == 1):
        t80 = 0
    else:
        t80 = V[77]
        t81 = V[78]
        t82 = V[79] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[79] >> 128) & 0x1fffffffffffffffe00000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if _x2 and _x3:
            if _x4 < 0x17:
                t82 = t82 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t82 = t82 & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff00ffffffffffffffffffffffffffffffffffffffffffff | ((((V[79] >> 641 & 0xffffffffffffffff)) & 0xff) << 176)
        if _x0 and _x1:
            if _x4 < 0x1a:
                t82 = t82 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t82 = t82 & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff0000ffffffffffffffffffffffffffffffffffffffffffffffff | ((((V[79] >> 705 & 0xffffffffffffffff)) & 0xffff) << 192)
        if (_x0 and _x1) and ((0 if _x4 < 0x1a else 1)):
            t82 = t82 & 0x1fffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff
    return (t80, t81, t82)

def _c18(V, t, NQ, PEND, PQ):
    if V[80] != t[0] or V[81] != t[1] or V[82] != t[2]:
        V[80] = t[0]
        V[81] = t[1]
        V[82] = t[2]
        if not PQ[19]:
            PQ[19] = 1
            PEND.append(19)

def _f18(V, NQ, PEND, PQ):
    t80 = V[80]
    t81 = V[81]
    t82 = V[82]
    _x4 = (V[79] >> 512 & 0xffff)
    _x3 = ((V[79] >> 544 & 1) == 0)
    _x2 = ((V[77] == 1) and ((V[78] >> 3 & 1) == 1))
    _x1 = ((0 if _x4 < 0x17 else 1))
    _x0 = (_x2 and _x3)
    if (V[2] == 1) or (V[119] == 1):
        t80 = 0
    else:
        t80 = V[77]
        t81 = V[78]
        t82 = V[79] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[79] >> 128) & 0x1fffffffffffffffe00000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if _x2 and _x3:
            if _x4 < 0x17:
                t82 = t82 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t82 = t82 & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff00ffffffffffffffffffffffffffffffffffffffffffff | ((((V[79] >> 641 & 0xffffffffffffffff)) & 0xff) << 176)
        if _x0 and _x1:
            if _x4 < 0x1a:
                t82 = t82 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t82 = t82 & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff0000ffffffffffffffffffffffffffffffffffffffffffffffff | ((((V[79] >> 705 & 0xffffffffffffffff)) & 0xffff) << 192)
        if (_x0 and _x1) and ((0 if _x4 < 0x1a else 1)):
            t82 = t82 & 0x1fffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff
    if V[80] != t80 or V[81] != t81 or V[82] != t82:
        V[80] = t80
        V[81] = t81
        V[82] = t82
        if not PQ[19]:
            PQ[19] = 1
            PEND.append(19)

def _p19(V):
    # ehdl_router_rmw/s019:process@1250
    t83 = V[83]
    t84 = V[84]
    t85 = V[85]
    _x1 = ((V[82] >> 544 & 1) == 0)
    _x0 = ((V[80] == 1) and ((V[81] >> 3 & 1) == 1))
    if (V[2] == 1) or (V[119] == 1):
        t83 = 0
    else:
        t83 = V[80]
        t84 = V[81]
        t85 = V[82] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff
        if _x0 and _x1:
            t85 = t85 & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((((V[82] >> 641 & 0xffffffffffffffff)) & 0xffffffff) << 769)
            t85 = t85 & 0x1fffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x4004000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            t85 = t85 & 0x1fffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (((0x2001f8) & 0xffffffffffffffff) << 641)
    return (t83, t84, t85)

def _c19(V, t, NQ, PEND, PQ):
    if V[83] != t[0] or V[84] != t[1] or V[85] != t[2]:
        V[83] = t[0]
        V[84] = t[1]
        V[85] = t[2]
        NQ[39] = 1
        if not PQ[20]:
            PQ[20] = 1
            PEND.append(20)

def _f19(V, NQ, PEND, PQ):
    t83 = V[83]
    t84 = V[84]
    t85 = V[85]
    _x1 = ((V[82] >> 544 & 1) == 0)
    _x0 = ((V[80] == 1) and ((V[81] >> 3 & 1) == 1))
    if (V[2] == 1) or (V[119] == 1):
        t83 = 0
    else:
        t83 = V[80]
        t84 = V[81]
        t85 = V[82] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff
        if _x0 and _x1:
            t85 = t85 & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((((V[82] >> 641 & 0xffffffffffffffff)) & 0xffffffff) << 769)
            t85 = t85 & 0x1fffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x4004000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            t85 = t85 & 0x1fffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (((0x2001f8) & 0xffffffffffffffff) << 641)
    if V[83] != t83 or V[84] != t84 or V[85] != t85:
        V[83] = t83
        V[84] = t84
        V[85] = t85
        NQ[39] = 1
        if not PQ[20]:
            PQ[20] = 1
            PEND.append(20)

def _p20(V):
    # ehdl_router_rmw/s020:process@1318
    t86 = V[86]
    t87 = V[87]
    t88 = V[88]
    if (V[2] == 1) or (V[119] == 1):
        t86 = 0
    else:
        t86 = V[83]
        t87 = V[84]
        t88 = V[85] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[85] >> 64) & 0x1fffffffffffffffe0000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if ((V[83] == 1) and ((V[84] >> 3 & 1) == 1)) and ((V[85] >> 544 & 1) == 0):
            if V[180] == 1:
                t88 = t88 & 0x1fffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t88 = t88 & 0x1fffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[179] << 577) & 0x1fffffffffffffffe000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
    return (t86, t87, t88)

def _c20(V, t, NQ, PEND, PQ):
    if V[86] != t[0] or V[87] != t[1] or V[88] != t[2]:
        V[86] = t[0]
        V[87] = t[1]
        V[88] = t[2]
        if not PQ[21]:
            PQ[21] = 1
            PEND.append(21)

def _f20(V, NQ, PEND, PQ):
    t86 = V[86]
    t87 = V[87]
    t88 = V[88]
    if (V[2] == 1) or (V[119] == 1):
        t86 = 0
    else:
        t86 = V[83]
        t87 = V[84]
        t88 = V[85] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[85] >> 64) & 0x1fffffffffffffffe0000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if ((V[83] == 1) and ((V[84] >> 3 & 1) == 1)) and ((V[85] >> 544 & 1) == 0):
            if V[180] == 1:
                t88 = t88 & 0x1fffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t88 = t88 & 0x1fffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[179] << 577) & 0x1fffffffffffffffe000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
    if V[86] != t86 or V[87] != t87 or V[88] != t88:
        V[86] = t86
        V[87] = t87
        V[88] = t88
        if not PQ[21]:
            PQ[21] = 1
            PEND.append(21)

def _p21(V):
    # ehdl_router_rmw/s021:process@1369
    t89 = V[89]
    t90 = V[90]
    t91 = V[91]
    if (V[2] == 1) or (V[119] == 1):
        t89 = 0
    else:
        t89 = V[86]
        t90 = V[87]
        t91 = V[88]
    return (t89, t90, t91)

def _c21(V, t, NQ, PEND, PQ):
    if V[89] != t[0] or V[90] != t[1] or V[91] != t[2]:
        V[89] = t[0]
        V[90] = t[1]
        V[91] = t[2]
        if not PQ[22]:
            PQ[22] = 1
            PEND.append(22)

def _f21(V, NQ, PEND, PQ):
    t89 = V[89]
    t90 = V[90]
    t91 = V[91]
    if (V[2] == 1) or (V[119] == 1):
        t89 = 0
    else:
        t89 = V[86]
        t90 = V[87]
        t91 = V[88]
    if V[89] != t89 or V[90] != t90 or V[91] != t91:
        V[89] = t89
        V[90] = t90
        V[91] = t91
        if not PQ[22]:
            PQ[22] = 1
            PEND.append(22)

def _p22(V):
    # ehdl_router_rmw/s022:process@1411
    t92 = V[92]
    t93 = V[93]
    t94 = V[94]
    if (V[2] == 1) or (V[119] == 1):
        t92 = 0
    else:
        t92 = V[89]
        t93 = V[90]
        t94 = V[91]
        if ((V[89] == 1) and ((V[90] >> 3 & 1) == 1)) and ((V[91] >> 544 & 1) == 0):
            if (V[91] >> 577 & 0xffffffffffffffff) == 0:
                t93 = t93 & 0xffffffdf | 0x20
            else:
                t93 = t93 & 0xffffffef | 0x10
    return (t92, t93, t94)

def _c22(V, t, NQ, PEND, PQ):
    if V[92] != t[0] or V[93] != t[1] or V[94] != t[2]:
        V[92] = t[0]
        V[93] = t[1]
        V[94] = t[2]
        NQ[43] = 1
        if not PQ[23]:
            PQ[23] = 1
            PEND.append(23)

def _f22(V, NQ, PEND, PQ):
    t92 = V[92]
    t93 = V[93]
    t94 = V[94]
    if (V[2] == 1) or (V[119] == 1):
        t92 = 0
    else:
        t92 = V[89]
        t93 = V[90]
        t94 = V[91]
        if ((V[89] == 1) and ((V[90] >> 3 & 1) == 1)) and ((V[91] >> 544 & 1) == 0):
            if (V[91] >> 577 & 0xffffffffffffffff) == 0:
                t93 = t93 & 0xffffffdf | 0x20
            else:
                t93 = t93 & 0xffffffef | 0x10
    if V[92] != t92 or V[93] != t93 or V[94] != t94:
        V[92] = t92
        V[93] = t93
        V[94] = t94
        NQ[43] = 1
        if not PQ[23]:
            PQ[23] = 1
            PEND.append(23)

def _p23(V):
    # ehdl_router_rmw/s023:process@1473
    t95 = V[95]
    t96 = V[96]
    t97 = V[97]
    if (V[2] == 1) or (V[119] == 1):
        t95 = 0
    else:
        t95 = V[92]
        t96 = V[93]
        t97 = V[94] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[94] << 64) & 0x1fffffffffffffffe00000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if ((V[92] == 1) and ((V[93] >> 4 & 1) == 1)) and ((V[94] >> 544 & 1) == 0):
            if V[180] == 1:
                t97 = t97 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t97 = t97 & 0x1fffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[179] << 641) & 0x1fffffffffffffffe0000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
    return (t95, t96, t97)

def _c23(V, t, NQ, PEND, PQ):
    if V[95] != t[0] or V[96] != t[1] or V[97] != t[2]:
        V[95] = t[0]
        V[96] = t[1]
        V[97] = t[2]
        if not PQ[24]:
            PQ[24] = 1
            PEND.append(24)

def _f23(V, NQ, PEND, PQ):
    t95 = V[95]
    t96 = V[96]
    t97 = V[97]
    if (V[2] == 1) or (V[119] == 1):
        t95 = 0
    else:
        t95 = V[92]
        t96 = V[93]
        t97 = V[94] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[94] << 64) & 0x1fffffffffffffffe00000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if ((V[92] == 1) and ((V[93] >> 4 & 1) == 1)) and ((V[94] >> 544 & 1) == 0):
            if V[180] == 1:
                t97 = t97 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t97 = t97 & 0x1fffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[179] << 641) & 0x1fffffffffffffffe0000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
    if V[95] != t95 or V[96] != t96 or V[97] != t97:
        V[95] = t95
        V[96] = t96
        V[97] = t97
        if not PQ[24]:
            PQ[24] = 1
            PEND.append(24)

def _p24(V):
    # ehdl_router_rmw/s024:process@1525
    t98 = V[98]
    t99 = V[99]
    t100 = V[100]
    if (V[2] == 1) or (V[119] == 1):
        t98 = 0
    else:
        t98 = V[95]
        t99 = V[96]
        t100 = V[97]
        if ((V[95] == 1) and ((V[96] >> 4 & 1) == 1)) and ((V[97] >> 544 & 1) == 0):
            t100 = t100 & 0x1fffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((((V[97] >> 641 & 0xffffffffffffffff) + 1) & 0xffffffffffffffff) << 641)
    return (t98, t99, t100)

def _c24(V, t, NQ, PEND, PQ):
    if V[98] != t[0] or V[99] != t[1] or V[100] != t[2]:
        V[98] = t[0]
        V[99] = t[1]
        V[100] = t[2]
        NQ[50] = 1
        if not PQ[25]:
            PQ[25] = 1
            PEND.append(25)

def _f24(V, NQ, PEND, PQ):
    t98 = V[98]
    t99 = V[99]
    t100 = V[100]
    if (V[2] == 1) or (V[119] == 1):
        t98 = 0
    else:
        t98 = V[95]
        t99 = V[96]
        t100 = V[97]
        if ((V[95] == 1) and ((V[96] >> 4 & 1) == 1)) and ((V[97] >> 544 & 1) == 0):
            t100 = t100 & 0x1fffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((((V[97] >> 641 & 0xffffffffffffffff) + 1) & 0xffffffffffffffff) << 641)
    if V[98] != t98 or V[99] != t99 or V[100] != t100:
        V[98] = t98
        V[99] = t99
        V[100] = t100
        NQ[50] = 1
        if not PQ[25]:
            PQ[25] = 1
            PEND.append(25)

def _p25(V):
    # ehdl_router_rmw/s025:process@1584
    t101 = V[101]
    t102 = V[102]
    t103 = V[103]
    if (V[2] == 1) or (V[119] == 1):
        t101 = 0
    else:
        t101 = V[98]
        t102 = V[99]
        t103 = V[100] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[100] >> 128) & 0x1fffffffffffffffe000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if ((V[98] == 1) and ((V[99] >> 4 & 1) == 1)) and ((V[100] >> 544 & 1) == 0):
            if V[180] == 1:
                t103 = t103 & 0x1fffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t102 = t102 & 0xffffffdf | 0x20
    return (t101, t102, t103)

def _c25(V, t, NQ, PEND, PQ):
    if V[101] != t[0] or V[102] != t[1] or V[103] != t[2]:
        V[101] = t[0]
        V[102] = t[1]
        V[103] = t[2]
        NQ[53] = 1
        if not PQ[26]:
            PQ[26] = 1
            PEND.append(26)

def _f25(V, NQ, PEND, PQ):
    t101 = V[101]
    t102 = V[102]
    t103 = V[103]
    if (V[2] == 1) or (V[119] == 1):
        t101 = 0
    else:
        t101 = V[98]
        t102 = V[99]
        t103 = V[100] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[100] >> 128) & 0x1fffffffffffffffe000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if ((V[98] == 1) and ((V[99] >> 4 & 1) == 1)) and ((V[100] >> 544 & 1) == 0):
            if V[180] == 1:
                t103 = t103 & 0x1fffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t102 = t102 & 0xffffffdf | 0x20
    if V[101] != t101 or V[102] != t102 or V[103] != t103:
        V[101] = t101
        V[102] = t102
        V[103] = t103
        NQ[53] = 1
        if not PQ[26]:
            PQ[26] = 1
            PEND.append(26)

def _p26(V):
    # ehdl_router_rmw/s026:process@1646
    t104 = V[104]
    t105 = V[105]
    t106 = V[106]
    _x1 = ((V[103] >> 544 & 1) == 0)
    _x0 = ((V[101] == 1) and ((V[102] >> 5 & 1) == 1))
    if (V[2] == 1) or (V[119] == 1):
        t104 = 0
    else:
        t104 = V[101]
        t105 = V[102]
        t106 = V[103] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff
        if _x0 and _x1:
            if V[171] == 1:
                t106 = t106 & 0x1fffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t106 = t106 & 0x1fffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[170] << 577) & 0x1fffffffffffffffe000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if (_x0 and _x1) and ((0 if V[171] == 1 else 1)):
            t106 = t106 & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff
    return (t104, t105, t106)

def _c26(V, t, NQ, PEND, PQ):
    if V[104] != t[0] or V[105] != t[1] or V[106] != t[2]:
        V[104] = t[0]
        V[105] = t[1]
        V[106] = t[2]
        NQ[58] = 1
        if not PQ[27]:
            PQ[27] = 1
            PEND.append(27)

def _f26(V, NQ, PEND, PQ):
    t104 = V[104]
    t105 = V[105]
    t106 = V[106]
    _x1 = ((V[103] >> 544 & 1) == 0)
    _x0 = ((V[101] == 1) and ((V[102] >> 5 & 1) == 1))
    if (V[2] == 1) or (V[119] == 1):
        t104 = 0
    else:
        t104 = V[101]
        t105 = V[102]
        t106 = V[103] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff
        if _x0 and _x1:
            if V[171] == 1:
                t106 = t106 & 0x1fffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t106 = t106 & 0x1fffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[170] << 577) & 0x1fffffffffffffffe000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if (_x0 and _x1) and ((0 if V[171] == 1 else 1)):
            t106 = t106 & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff
    if V[104] != t104 or V[105] != t105 or V[106] != t106:
        V[104] = t104
        V[105] = t105
        V[106] = t106
        NQ[58] = 1
        if not PQ[27]:
            PQ[27] = 1
            PEND.append(27)

def _p27(V):
    # ehdl_router_rmw/s027:process@1715
    t107 = V[107]
    t108 = V[108]
    t109 = V[109]
    if (V[2] == 1) or (V[119] == 1):
        t107 = 0
    else:
        t107 = V[104]
        t108 = V[105]
        t109 = V[106] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff
        if ((V[104] == 1) and ((V[105] >> 5 & 1) == 1)) and ((V[106] >> 544 & 1) == 0):
            t109 = t109 & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[194] << 577) & 0x1fffffffffffffffe000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
    return (t107, t108, t109)

def _c27(V, t, NQ, PEND, PQ):
    if V[107] != t[0] or V[108] != t[1] or V[109] != t[2]:
        V[107] = t[0]
        V[108] = t[1]
        V[109] = t[2]
        if not PQ[28]:
            PQ[28] = 1
            PEND.append(28)

def _f27(V, NQ, PEND, PQ):
    t107 = V[107]
    t108 = V[108]
    t109 = V[109]
    if (V[2] == 1) or (V[119] == 1):
        t107 = 0
    else:
        t107 = V[104]
        t108 = V[105]
        t109 = V[106] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff
        if ((V[104] == 1) and ((V[105] >> 5 & 1) == 1)) and ((V[106] >> 544 & 1) == 0):
            t109 = t109 & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[194] << 577) & 0x1fffffffffffffffe000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
    if V[107] != t107 or V[108] != t108 or V[109] != t109:
        V[107] = t107
        V[108] = t108
        V[109] = t109
        if not PQ[28]:
            PQ[28] = 1
            PEND.append(28)

def _p28(V):
    # ehdl_router_rmw/s028:process@1760
    t110 = V[110]
    t111 = V[111]
    t112 = V[112]
    if (V[2] == 1) or (V[119] == 1):
        t110 = 0
    else:
        t110 = V[107]
        t111 = V[108]
        t112 = V[109] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff
        if ((V[107] == 1) and ((V[108] >> 5 & 1) == 1)) and ((V[109] >> 544 & 1) == 0):
            t112 = t112 & 0x1fffffffeffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x10000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            t112 = t112 & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((((V[109] >> 577 & 0xffffffffffffffff)) & 0xffffffff) << 545)
    return (t110, t111, t112)

def _c28(V, t, NQ, PEND, PQ):
    if V[110] != t[0] or V[111] != t[1] or V[112] != t[2]:
        V[110] = t[0]
        V[111] = t[1]
        V[112] = t[2]
        if not PQ[29]:
            PQ[29] = 1
            PEND.append(29)

def _f28(V, NQ, PEND, PQ):
    t110 = V[110]
    t111 = V[111]
    t112 = V[112]
    if (V[2] == 1) or (V[119] == 1):
        t110 = 0
    else:
        t110 = V[107]
        t111 = V[108]
        t112 = V[109] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff
        if ((V[107] == 1) and ((V[108] >> 5 & 1) == 1)) and ((V[109] >> 544 & 1) == 0):
            t112 = t112 & 0x1fffffffeffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x10000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            t112 = t112 & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((((V[109] >> 577 & 0xffffffffffffffff)) & 0xffffffff) << 545)
    if V[110] != t110 or V[111] != t111 or V[112] != t112:
        V[110] = t110
        V[111] = t111
        V[112] = t112
        if not PQ[29]:
            PQ[29] = 1
            PEND.append(29)

def _p29(V):
    # ehdl_router_rmw/s029:process@1805
    t113 = V[113]
    t114 = V[114]
    t115 = V[115]
    if (V[2] == 1) or (V[119] == 1):
        t113 = 0
    else:
        t113 = V[110]
        t114 = V[111]
        t115 = V[112] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff
        if ((V[110] == 1) and ((V[111] >> 6 & 1) == 1)) and ((V[112] >> 544 & 1) == 0):
            t115 = t115 & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x4000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
    return (t113, t114, t115)

def _c29(V, t, NQ, PEND, PQ):
    if V[113] != t[0] or V[114] != t[1] or V[115] != t[2]:
        V[113] = t[0]
        V[114] = t[1]
        V[115] = t[2]
        if not PQ[30]:
            PQ[30] = 1
            PEND.append(30)

def _f29(V, NQ, PEND, PQ):
    t113 = V[113]
    t114 = V[114]
    t115 = V[115]
    if (V[2] == 1) or (V[119] == 1):
        t113 = 0
    else:
        t113 = V[110]
        t114 = V[111]
        t115 = V[112] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff
        if ((V[110] == 1) and ((V[111] >> 6 & 1) == 1)) and ((V[112] >> 544 & 1) == 0):
            t115 = t115 & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x4000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
    if V[113] != t113 or V[114] != t114 or V[115] != t115:
        V[113] = t113
        V[114] = t114
        V[115] = t115
        if not PQ[30]:
            PQ[30] = 1
            PEND.append(30)

def _p30(V):
    # ehdl_router_rmw/s030:process@1850
    t116 = V[116]
    t117 = V[117]
    t118 = V[118]
    if (V[2] == 1) or (V[119] == 1):
        t116 = 0
    else:
        t116 = V[113]
        t117 = V[114]
        t118 = V[115] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff
        if ((V[113] == 1) and ((V[114] >> 6 & 1) == 1)) and ((V[115] >> 544 & 1) == 0):
            t118 = t118 & 0x1fffffffeffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x10000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            t118 = t118 & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((((V[115] >> 577 & 0xffffffffffffffff)) & 0xffffffff) << 545)
    return (t116, t117, t118)

def _c30(V, t, NQ, PEND, PQ):
    if V[116] != t[0]:
        V[116] = t[0]
        NQ[76] = 1
    V[117] = t[1]
    if V[118] != t[2]:
        V[118] = t[2]
        NQ[62] = 1

def _f30(V, NQ, PEND, PQ):
    t116 = V[116]
    t117 = V[117]
    t118 = V[118]
    if (V[2] == 1) or (V[119] == 1):
        t116 = 0
    else:
        t116 = V[113]
        t117 = V[114]
        t118 = V[115] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff
        if ((V[113] == 1) and ((V[114] >> 6 & 1) == 1)) and ((V[115] >> 544 & 1) == 0):
            t118 = t118 & 0x1fffffffeffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x10000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            t118 = t118 & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((((V[115] >> 577 & 0xffffffffffffffff)) & 0xffffffff) << 545)
    if V[116] != t116:
        V[116] = t116
        NQ[76] = 1
    V[117] = t117
    if V[118] != t118:
        V[118] = t118
        NQ[62] = 1

_EVAL = (_e0, _e1, _e2, _e3, _e4, _e5, _e6, _e7, _e8, _e9, _e10, _e11, _e12, _e13, _e14, _e15, _e16, _e17, _e18, _e19, _e20, _e21, _e22, _e23, _e24, _e25, _e26, _e27, _e28, _e29, _e30, _e31, _e32, _e33, _e34, _e35, _e36, _e37, _e38, _e39, _e40, _e41, _e42, _e43, _e44, _e45, _e46, _e47, _e48, _e49, _e50, _e51, _e52, _e53, _e54, _e55, _e56, _e57, _e58, _e59, _e60, _e61, _e62, _e63, _e64, _e65, _e66, _e67, _e68, _e69, _e70, _e71, _e72, _e73, _e74, _e75, _e76, _e77, _e78, _e79, _e80, _e81, _e82, _e83, _e84, _e85, _e86, _e87, _e88, _e89, _e90, _e91, _e92, _e93, _e94)
_PFNS = (_p0, _p1, _p2, _p3, _p4, _p5, _p6, _p7, _p8, _p9, _p10, _p11, _p12, _p13, _p14, _p15, _p16, _p17, _p18, _p19, _p20, _p21, _p22, _p23, _p24, _p25, _p26, _p27, _p28, _p29, _p30)
_PCOMMITS = (_c0, _c1, _c2, _c3, _c4, _c5, _c6, _c7, _c8, _c9, _c10, _c11, _c12, _c13, _c14, _c15, _c16, _c17, _c18, _c19, _c20, _c21, _c22, _c23, _c24, _c25, _c26, _c27, _c28, _c29, _c30)
_PFUSED = (_f0, _f1, _f2, _f3, _f4, _f5, _f6, _f7, _f8, _f9, _f10, _f11, _f12, _f13, _f14, _f15, _f16, _f17, _f18, _f19, _f20, _f21, _f22, _f23, _f24, _f25, _f26, _f27, _f28, _f29, _f30)
_READERS = {
    2: ((), (1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30)),
    3: ((4,), ()),
    4: ((4,), ()),
    5: ((64,), ()),
    17: ((64,), ()),
    18: ((78,), ()),
    19: ((79,), ()),
    21: ((88,), (0,)),
    22: ((89,), ()),
    23: ((92,), ()),
    24: ((93,), ()),
    26: ((), (0, 1)),
    27: ((), (1,)),
    28: ((), (1,)),
    29: ((), (2,)),
    30: ((), (2,)),
    31: ((), (2,)),
    32: ((), (3,)),
    33: ((), (3,)),
    34: ((), (3,)),
    35: ((), (4,)),
    36: ((), (4,)),
    37: ((), (4,)),
    38: ((), (5,)),
    39: ((), (5,)),
    40: ((), (5,)),
    41: ((), (6,)),
    42: ((), (6,)),
    43: ((), (6,)),
    44: ((), (7,)),
    45: ((), (7,)),
    46: ((), (7,)),
    47: ((14,), (8,)),
    48: ((14,), (8,)),
    49: ((14,), (8,)),
    50: ((), (9,)),
    51: ((), (9,)),
    52: ((), (9,)),
    53: ((), (10,)),
    54: ((), (10,)),
    55: ((), (10,)),
    56: ((), (11,)),
    57: ((), (11,)),
    58: ((), (11,)),
    59: ((18,), (12,)),
    60: ((18,), (12,)),
    61: ((18,), (12,)),
    62: ((23,), (13,)),
    63: ((23,), (13,)),
    64: ((23,), (13,)),
    65: ((28,), (14,)),
    66: ((28,), (14,)),
    67: ((28,), (14,)),
    68: ((33,), (15,)),
    69: ((33,), (15,)),
    70: ((33,), (15,)),
    71: ((), (16,)),
    72: ((), (16,)),
    73: ((), (16,)),
    74: ((), (17,)),
    75: ((), (17,)),
    76: ((), (17,)),
    77: ((), (18,)),
    78: ((), (18,)),
    79: ((), (18,)),
    80: ((), (19,)),
    81: ((), (19,)),
    82: ((), (19,)),
    83: ((39,), (20,)),
    84: ((39,), (20,)),
    85: ((39,), (20,)),
    86: ((), (21,)),
    87: ((), (21,)),
    88: ((), (21,)),
    89: ((), (22,)),
    90: ((), (22,)),
    91: ((), (22,)),
    92: ((43,), (23,)),
    93: ((43,), (23,)),
    94: ((43,), (23,)),
    95: ((), (24,)),
    96: ((), (24,)),
    97: ((), (24,)),
    98: ((50,), (25,)),
    99: ((50,), (25,)),
    100: ((50,), (25,)),
    101: ((53,), (26,)),
    102: ((53,), (26,)),
    103: ((53,), (26,)),
    104: ((58,), (27,)),
    105: ((58,), (27,)),
    106: ((58,), (27,)),
    107: ((), (28,)),
    108: ((), (28,)),
    109: ((), (28,)),
    110: ((), (29,)),
    111: ((), (29,)),
    112: ((), (29,)),
    113: ((), (30,)),
    114: ((), (30,)),
    115: ((), (30,)),
    116: ((76,), ()),
    118: ((62,), ()),
    119: ((), (1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30)),
    120: ((70,), ()),
    121: ((70,), ()),
    122: ((70,), ()),
    123: ((70,), ()),
    124: ((70,), ()),
    125: ((70,), ()),
    126: ((70,), ()),
    127: ((70,), ()),
    128: ((70,), ()),
    129: ((70,), ()),
    130: ((70,), ()),
    131: ((70,), ()),
    132: ((70,), ()),
    133: ((70,), ()),
    134: ((70,), ()),
    135: ((70,), ()),
    136: ((70,), ()),
    137: ((70,), ()),
    138: ((70,), ()),
    139: ((70,), ()),
    140: ((70,), ()),
    141: ((70,), ()),
    142: ((70,), ()),
    143: ((70,), ()),
    144: ((70,), ()),
    145: ((75,), ()),
    146: ((75,), ()),
    147: ((75,), ()),
    148: ((75,), ()),
    149: ((75,), ()),
    150: ((75,), ()),
    151: ((75,), ()),
    152: ((75,), ()),
    153: ((75,), ()),
    154: ((75,), ()),
    155: ((75,), ()),
    156: ((75,), ()),
    157: ((75,), ()),
    158: ((75,), ()),
    159: ((75,), ()),
    160: ((70,), ()),
    161: ((70,), ()),
    162: ((70,), ()),
    163: ((70,), ()),
    164: ((70,), ()),
    165: ((80,), ()),
    166: ((80,), ()),
    167: ((80,), ()),
    168: ((80,), ()),
    169: ((80,), ()),
    170: ((), (8, 12, 13, 14, 15, 26)),
    171: ((), (8, 12, 13, 14, 15, 26)),
    174: ((81,), ()),
    175: ((81,), ()),
    176: ((81,), ()),
    177: ((81,), ()),
    178: ((81,), ()),
    179: ((), (20, 23)),
    180: ((), (20, 23, 25)),
    181: ((94,), ()),
    184: ((76,), ()),
    185: ((85,), ()),
    186: ((82,), ()),
    188: ((65,), ()),
    189: ((65,), ()),
    190: ((65,), ()),
    191: ((65,), ()),
    192: ((65,), ()),
    193: ((65,), ()),
    194: ((), (27,)),
}
_PRIO = (0, 30, 29, 28, 27, 26, 25, 24, 23, 22, 21, 20, 19, 18, 17, 16, 15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1)

def _mark(net, NQ, PEND, PQ):
    e = _READERS.get(net)
    if e is None:
        return
    for k in e[0]:
        NQ[k] = 1
    for p in e[1]:
        if not PQ[p]:
            PQ[p] = 1
            PEND.append(p)

def _settle(V, NQ, PEND, PQ, PRIMS, ACT, ev=_EVAL):
    n = 0
    find = NQ.find
    pos = find(1)
    while pos >= 0:
        NQ[pos] = 0
        ev[pos](V, NQ, PEND, PQ, PRIMS, ACT)
        n += 1
        pos = find(1, pos + 1)
    return n

def _edge(V, NQ, PEND, PQ, pu=_PFUSED, prio=_PRIO):
    n = len(PEND)
    if not n:
        return 0
    if n == 1:
        k = PEND[0]
        PQ[k] = 0
        del PEND[:]
        pu[k](V, NQ, PEND, PQ)
        return 1
    if n == 2:
        a = PEND[0]
        b = PEND[1]
        if prio[a] > prio[b]:
            a, b = b, a
        PQ[a] = 0
        PQ[b] = 0
        del PEND[:]
        pu[a](V, NQ, PEND, PQ)
        pu[b](V, NQ, PEND, PQ)
        return 2
    cur = sorted(PEND, key=prio.__getitem__)
    for k in cur:
        PQ[k] = 0
    del PEND[:]
    for k in cur:
        pu[k](V, NQ, PEND, PQ)
    return n

def _run(V, NQ, PEND, PQ, PRIMS, ACT, limit,
         ev=_EVAL, pf=_PFNS, pc=_PCOMMITS, pu=_PFUSED, prio=_PRIO):
    # Fused cycles: settle, stop on m_axis_tvalid (edge
    # still pending for that cycle), else clock edge.
    nc = 0
    pr = 0
    find = NQ.find
    for done in range(limit):
        pos = find(1)
        while pos >= 0:
            NQ[pos] = 0
            ev[pos](V, NQ, PEND, PQ, PRIMS, ACT)
            nc += 1
            pos = find(1, pos + 1)
        if V[11]:
            return (done, 1, nc, pr)
        n = len(PEND)
        if n == 1:
            pr += 1
            k = PEND.pop()
            PQ[k] = 0
            pu[k](V, NQ, PEND, PQ)
        elif n == 2:
            pr += 2
            b = PEND.pop()
            a = PEND.pop()
            if prio[a] > prio[b]:
                a, b = b, a
            PQ[a] = 0
            PQ[b] = 0
            pu[a](V, NQ, PEND, PQ)
            pu[b](V, NQ, PEND, PQ)
        elif n:
            pr += n
            cur = sorted(PEND, key=prio.__getitem__)
            for k in cur:
                PQ[k] = 0
            del PEND[:]
            for k in cur:
                pu[k](V, NQ, PEND, PQ)
    return (limit, 0, nc, pr)

_RUN = _run

def _frame(V, NQ, PEND, PQ, PRIMS, ACT, span, data, tlen,
           ev=_EVAL, pf=_PFNS, pc=_PCOMMITS, pu=_PFUSED, prio=_PRIO):
    # Inject one s_axis beat (marks inlined per port),
    # then run the window: settle, stop on
    # m_axis_tvalid (edge deferred to the caller), else
    # edge; tvalid drops after the first edge.
    _v75 = (1) & 1
    if V[5] != _v75:
        V[5] = _v75
        NQ[64] = 1
    V[6] = (1) & 1
    _v76 = (data) & 0xffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff
    if V[3] != _v76:
        V[3] = _v76
        NQ[4] = 1
    _v77 = (tlen) & 0xffff
    if V[4] != _v77:
        V[4] = _v77
        NQ[4] = 1
    nc = 0
    pr = 0
    find = NQ.find
    for done in range(span):
        pos = find(1)
        while pos >= 0:
            NQ[pos] = 0
            ev[pos](V, NQ, PEND, PQ, PRIMS, ACT)
            nc += 1
            pos = find(1, pos + 1)
        if V[11]:
            return (done, 1, nc, pr)
        n = len(PEND)
        if n == 1:
            pr += 1
            k = PEND.pop()
            PQ[k] = 0
            pu[k](V, NQ, PEND, PQ)
        elif n == 2:
            pr += 2
            b = PEND.pop()
            a = PEND.pop()
            if prio[a] > prio[b]:
                a, b = b, a
            PQ[a] = 0
            PQ[b] = 0
            pu[a](V, NQ, PEND, PQ)
            pu[b](V, NQ, PEND, PQ)
        elif n:
            pr += n
            cur = sorted(PEND, key=prio.__getitem__)
            for k in cur:
                PQ[k] = 0
            del PEND[:]
            for k in cur:
                pu[k](V, NQ, PEND, PQ)
        if not done:
            if V[5]:
                V[5] = 0
                NQ[64] = 1
    return (span, 0, nc, pr)

_FRAME = _frame

_GEN_VERSION = 3
_N_NODES = 95
_N_PROCS = 31
_PRIM_NODE_IDS = (65, 80, 81)
_PRIM_LABELS = ('ehdl_helper_23', 'router_rmw_map_1.ch0', 'router_rmw_map_2.ch0')
_SETTLE = _settle
_EDGE = _edge
_MARK_NET = _mark


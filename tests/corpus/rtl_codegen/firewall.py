"""Generated RTL evaluation schedule for 'firewall'.

RTL_CODEGEN_VERSION = 3; regenerated whenever the netlist or the
generator changes (repro.rtl.codegen). Event-driven: the dirty bytearray NQ
doubles as the queue — levelized indices mean marks always land ahead of the
scan, so settle is a single NQ.find(1) sweep; gated primitives stay live
while requested by re-marking their own slot.
nodes=58 procs=23 nets=133 ranks=5 fused=26->8
"""

def _e0(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_firewall:1445
    V[14] = (1) & 1

def _e1(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_firewall:1446
    V[15] = 0

def _e2(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_firewall:1447
    V[16] = 0

def _e3(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_firewall:1448
    V[7] = (1) & 1

def _e4(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_firewall:1449
    _o1 = V[17]
    _v2 = _o1 & 0x1ffffffffffff000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000 | ((((V[3] << 16) | V[4])) & 0xffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff)
    if _v2 != _o1:
        V[17] = _v2
        NQ[29] = 1

def _e5(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_firewall:1450
    _o3 = V[17]
    _v4 = _o3 & 0xffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff
    if _v4 != _o3:
        V[17] = _v4
        NQ[29] = 1

def _e6(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_firewall:1461
    _v5 = (1) & 0xffffffff
    if V[27] != _v5:
        V[27] = _v5
        if not PQ[1]:
            PQ[1] = 1
            PEND.append(1)

def _e7(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_firewall:1464
    _o6 = V[28]
    _v7 = _o6 & 0x1ffffffffffffffffffffffff0000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff
    if _v7 != _o6:
        V[28] = _v7
        if not PQ[1]:
            PQ[1] = 1
            PEND.append(1)

def _e8(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_firewall:1467
    _o8 = V[28]
    _v9 = _o8 & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (((0x100100) & 0xffffffffffffffff) << 577)
    if _v9 != _o8:
        V[28] = _v9
        if not PQ[1]:
            PQ[1] = 1
            PEND.append(1)

def _e9(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_firewall:1476
    V[127] = 0

def _e10(V, NQ, PEND, PQ, PRIMS, ACT):
    pass  # fused into _e13

def _e11(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_firewall/s007:483
    _v10 = (1) & 0xff
    if V[97] != _v10:
        V[97] = _v10
        NQ[34] = 1

def _e12(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_firewall/s007:484
    if V[98]:
        V[98] = 0
        NQ[34] = 1

def _e13(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_firewall/s007:482
    _v11 = ((1 if ((V[44] == 1) and ((V[45] >> 2 & 1) == 1)) and ((V[46] >> 544 & 1) == 0) else 0)) & 1
    if V[96] != _v11:
        V[96] = _v11
        NQ[34] = 1
    # [conc r0] ehdl_firewall/s007:485
    _v12 = (V[46] >> 769 & 0xffffffffffffffffffffffffffffffff)
    if V[99] != _v12:
        V[99] = _v12
        NQ[34] = 1

def _e14(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_firewall/s007:486
    if V[100]:
        V[100] = 0
        NQ[34] = 1

def _e15(V, NQ, PEND, PQ, PRIMS, ACT):
    pass  # fused into _e18

def _e16(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_firewall/s012:798
    _v13 = (1) & 0xff
    if V[102] != _v13:
        V[102] = _v13
        NQ[34] = 1

def _e17(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_firewall/s012:799
    if V[103]:
        V[103] = 0
        NQ[34] = 1

def _e18(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_firewall/s012:797
    _v14 = ((1 if ((V[59] == 1) and ((V[60] >> 3 & 1) == 1)) and ((V[61] >> 544 & 1) == 0) else 0)) & 1
    if V[101] != _v14:
        V[101] = _v14
        NQ[34] = 1
    # [conc r0] ehdl_firewall/s012:800
    _v15 = (V[61] >> 769 & 0xffffffffffffffffffffffffffffffff)
    if V[104] != _v15:
        V[104] = _v15
        NQ[34] = 1

def _e19(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_firewall/s012:801
    if V[105]:
        V[105] = 0
        NQ[34] = 1

def _e20(V, NQ, PEND, PQ, PRIMS, ACT):
    pass  # fused into _e24

def _e21(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_firewall/s018:1088
    if V[107]:
        V[107] = 0
        NQ[40] = 1

def _e22(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_firewall/s018:1089
    _v16 = (8) & 0xf
    if V[108] != _v16:
        V[108] = _v16
        NQ[40] = 1

def _e23(V, NQ, PEND, PQ, PRIMS, ACT):
    pass  # fused into _e24

def _e24(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_firewall/s018:1087
    _v17 = ((1 if ((V[77] == 1) and ((V[78] >> 5 & 1) == 1)) and ((V[79] >> 544 & 1) == 0) else 0)) & 1
    if V[106] != _v17:
        V[106] = _v17
        NQ[40] = 1
    # [conc r0] ehdl_firewall/s018:1090
    _v18 = (((V[79] >> 577 & 0xffffffffffffffff) + 0) & 0xffffffffffffffff)
    if V[109] != _v18:
        V[109] = _v18
        NQ[40] = 1
    # [conc r0] ehdl_firewall/s018:1091
    _v19 = (V[79] >> 641 & 0xffffffffffffffff)
    if V[110] != _v19:
        V[110] = _v19
        NQ[40] = 1

def _e25(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_firewall/s018:1092
    if V[111]:
        V[111] = 0
        NQ[40] = 1

def _e26(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_firewall:1753
    if V[95]:
        V[95] = 0
        if not PQ[1]:
            PQ[1] = 1
            PEND.append(1)
        if not PQ[2]:
            PQ[2] = 1
            PEND.append(2)
        if not PQ[3]:
            PQ[3] = 1
            PEND.append(3)
        if not PQ[4]:
            PQ[4] = 1
            PEND.append(4)
        if not PQ[5]:
            PQ[5] = 1
            PEND.append(5)
        if not PQ[6]:
            PQ[6] = 1
            PEND.append(6)
        if not PQ[7]:
            PQ[7] = 1
            PEND.append(7)
        if not PQ[8]:
            PQ[8] = 1
            PEND.append(8)
        if not PQ[9]:
            PQ[9] = 1
            PEND.append(9)
        if not PQ[10]:
            PQ[10] = 1
            PEND.append(10)
        if not PQ[11]:
            PQ[11] = 1
            PEND.append(11)
        if not PQ[12]:
            PQ[12] = 1
            PEND.append(12)
        if not PQ[13]:
            PQ[13] = 1
            PEND.append(13)
        if not PQ[14]:
            PQ[14] = 1
            PEND.append(14)
        if not PQ[15]:
            PQ[15] = 1
            PEND.append(15)
        if not PQ[16]:
            PQ[16] = 1
            PEND.append(16)
        if not PQ[17]:
            PQ[17] = 1
            PEND.append(17)
        if not PQ[18]:
            PQ[18] = 1
            PEND.append(18)
        if not PQ[19]:
            PQ[19] = 1
            PEND.append(19)
        if not PQ[20]:
            PQ[20] = 1
            PEND.append(20)
        if not PQ[21]:
            PQ[21] = 1
            PEND.append(21)
        if not PQ[22]:
            PQ[22] = 1
            PEND.append(22)

def _e27(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_firewall:1754
    _v20 = V[94]
    if V[129] != _v20:
        V[129] = _v20
        NQ[41] = 1

def _e28(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r0] ehdl_firewall:1763
    V[12] = (1) & 1

def _e29(V, NQ, PEND, PQ, PRIMS, ACT):
    # [fifo r1] ehdl_async_fifo
    _v21 = V[17]
    if V[18] != _v21:
        V[18] = _v21
        NQ[43] = 1
    _v22 = ((0 if V[5] else 1)) & 1
    if V[19] != _v22:
        V[19] = _v22
        NQ[44] = 1
    V[20] = 0

def _e30(V, NQ, PEND, PQ, PRIMS, ACT):
    pass  # fused into _e34

def _e31(V, NQ, PEND, PQ, PRIMS, ACT):
    pass  # fused into _e34

def _e32(V, NQ, PEND, PQ, PRIMS, ACT):
    pass  # fused into _e34

def _e33(V, NQ, PEND, PQ, PRIMS, ACT):
    pass  # fused into _e34

def _e34(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r1] ehdl_firewall:1719
    _v23 = ((V[96] | V[101])) & 1
    if V[112] != _v23:
        V[112] = _v23
        NQ[45] = 1
    # [conc r1] ehdl_firewall:1720
    _v24 = ((V[97] if V[96] == 1 else (V[102] if V[101] == 1 else 0))) & 0xff
    if V[113] != _v24:
        V[113] = _v24
        NQ[45] = 1
    # [conc r1] ehdl_firewall:1721
    _v25 = ((V[98] if V[96] == 1 else (V[103] if V[101] == 1 else 0))) & 0xffffffffffffffff
    if V[114] != _v25:
        V[114] = _v25
        NQ[45] = 1
    # [conc r1] ehdl_firewall:1722
    _v26 = ((V[99] if V[96] == 1 else (V[104] if V[101] == 1 else 0))) & 0xffffffffffffffffffffffffffffffff
    if V[115] != _v26:
        V[115] = _v26
        NQ[45] = 1
    # [conc r1] ehdl_firewall:1723
    _v27 = ((V[100] if V[96] == 1 else (V[105] if V[101] == 1 else 0))) & 0xffffffffffffffff
    if V[116] != _v27:
        V[116] = _v27
        NQ[45] = 1

def _e35(V, NQ, PEND, PQ, PRIMS, ACT):
    pass  # fused into _e40

def _e36(V, NQ, PEND, PQ, PRIMS, ACT):
    pass  # fused into _e40

def _e37(V, NQ, PEND, PQ, PRIMS, ACT):
    pass  # fused into _e40

def _e38(V, NQ, PEND, PQ, PRIMS, ACT):
    pass  # fused into _e40

def _e39(V, NQ, PEND, PQ, PRIMS, ACT):
    pass  # fused into _e40

def _e40(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r1] ehdl_firewall:1724
    _v28 = V[106]
    if V[119] != _v28:
        V[119] = _v28
        NQ[54] = 1
    # [conc r1] ehdl_firewall:1725
    _v29 = ((V[107] if V[106] == 1 else 0)) & 0xff
    if V[120] != _v29:
        V[120] = _v29
        NQ[54] = 1
    # [conc r1] ehdl_firewall:1726
    _v30 = ((V[108] if V[106] == 1 else 0)) & 0xf
    if V[121] != _v30:
        V[121] = _v30
        NQ[54] = 1
    # [conc r1] ehdl_firewall:1727
    _v31 = ((V[109] if V[106] == 1 else 0)) & 0xffffffffffffffff
    if V[122] != _v31:
        V[122] = _v31
        NQ[54] = 1
    # [conc r1] ehdl_firewall:1728
    _v32 = ((V[110] if V[106] == 1 else 0)) & 0xffffffffffffffff
    if V[123] != _v32:
        V[123] = _v32
        NQ[54] = 1
    # [conc r1] ehdl_firewall:1729
    _v33 = ((V[111] if V[106] == 1 else 0)) & 0xffffffffffffffff
    if V[124] != _v33:
        V[124] = _v33
        NQ[54] = 1

def _e41(V, NQ, PEND, PQ, PRIMS, ACT):
    # [fifo r1] ehdl_async_fifo
    _v34 = V[129]
    if V[130] != _v34:
        V[130] = _v34
        NQ[49] = 1
    _v35 = ((0 if V[92] else 1)) & 1
    if V[131] != _v35:
        V[131] = _v35
        NQ[46] = 1
    V[132] = 0

def _e42(V, NQ, PEND, PQ, PRIMS, ACT):
    pass  # fused into _e43

def _e43(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r2] ehdl_firewall:1456
    _v36 = (V[18] >> 16 & 0xffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff)
    if V[21] != _v36:
        V[21] = _v36
        NQ[52] = 1
        if not PQ[0]:
            PQ[0] = 1
            PEND.append(0)
    # [conc r2] ehdl_firewall:1457
    _v37 = (V[18] & 0xffff)
    if V[22] != _v37:
        V[22] = _v37
        NQ[53] = 1

def _e44(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r2] ehdl_firewall:1460
    _v38 = (~V[19] & 1)
    if V[26] != _v38:
        V[26] = _v38
        if not PQ[0]:
            PQ[0] = 1
            PEND.append(0)
        if not PQ[1]:
            PQ[1] = 1
            PEND.append(1)

def _e45(V, NQ, PEND, PQ, PRIMS, ACT):
    # [prim r2] firewall_map_1.ch0
    if V[112]:
        ACT[0] += 1
        _s39 = V[117]
        _s40 = V[118]
        PRIMS[0](V)
        if V[117] != _s39:
            if not PQ[7]:
                PQ[7] = 1
                PEND.append(7)
            if not PQ[12]:
                PQ[12] = 1
                PEND.append(12)
        if V[118] != _s40:
            if not PQ[7]:
                PQ[7] = 1
                PEND.append(7)
            if not PQ[12]:
                PQ[12] = 1
                PEND.append(12)
        NQ[45] = 1
    else:
        if V[117]:
            V[117] = 0
            if not PQ[7]:
                PQ[7] = 1
                PEND.append(7)
            if not PQ[12]:
                PQ[12] = 1
                PEND.append(12)
        if V[118]:
            V[118] = 0
            if not PQ[7]:
                PQ[7] = 1
                PEND.append(7)
            if not PQ[12]:
                PQ[12] = 1
                PEND.append(12)

def _e46(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r2] ehdl_firewall:1760
    V[11] = (~V[131] & 1)

def _e47(V, NQ, PEND, PQ, PRIMS, ACT):
    pass  # fused into _e49

def _e48(V, NQ, PEND, PQ, PRIMS, ACT):
    pass  # fused into _e49

def _e49(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r2] ehdl_firewall:1761
    V[8] = (V[130] & 0xffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff)
    # [conc r2] ehdl_firewall:1762
    V[9] = (V[130] >> 512 & 0xffff)
    # [conc r2] ehdl_firewall:1764
    V[10] = (((V[130] >> 545 & 0xffffffff) if (V[130] >> 544 & 1) == 1 else 0)) & 0xffffffff

def _e50(V, NQ, PEND, PQ, PRIMS, ACT):
    pass  # fused into _e53

def _e51(V, NQ, PEND, PQ, PRIMS, ACT):
    pass  # fused into _e53

def _e52(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r3] ehdl_firewall:1462
    _o41 = V[28]
    _v42 = _o41 & 0x1ffffffffffffffffffffffffffffffff00000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000 | ((V[21]) & 0xffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff)
    if _v42 != _o41:
        V[28] = _v42
        if not PQ[1]:
            PQ[1] = 1
            PEND.append(1)

def _e53(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r3] ehdl_firewall:1458
    _v43 = ((1 if V[22] < 0x2a else 0)) & 1
    if V[23] != _v43:
        V[23] = _v43
        NQ[55] = 1
    # [conc r3] ehdl_firewall:1459
    _v44 = ((2 if V[22] < 0x2a else 0)) & 0xffffffff
    if V[24] != _v44:
        V[24] = _v44
        NQ[56] = 1
    # [conc r3] ehdl_firewall:1463
    _o45 = V[28]
    _v46 = _o45 & 0x1ffffffffffffffffffffffffffff0000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (((V[22]) & 0xffff) << 512)
    if _v46 != _o45:
        V[28] = _v46
        if not PQ[1]:
            PQ[1] = 1
            PEND.append(1)

def _e54(V, NQ, PEND, PQ, PRIMS, ACT):
    # [prim r3] firewall_map_1.atomic
    if V[119]:
        ACT[1] += 1
        _s47 = V[126]
        PRIMS[1](V)
        if V[126] != _s47:
            if not PQ[18]:
                PQ[18] = 1
                PEND.append(18)
        NQ[54] = 1
    else:
        V[125] = 0
        if V[126]:
            V[126] = 0
            if not PQ[18]:
                PQ[18] = 1
                PEND.append(18)

def _e55(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r4] ehdl_firewall:1465
    _o48 = V[28]
    _v49 = _o48 & 0x1fffffffffffffffffffffffeffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (((V[23]) & 1) << 544)
    if _v49 != _o48:
        V[28] = _v49
        if not PQ[1]:
            PQ[1] = 1
            PEND.append(1)

def _e56(V, NQ, PEND, PQ, PRIMS, ACT):
    # [conc r4] ehdl_firewall:1466
    _o50 = V[28]
    _v51 = _o50 & 0x1fffffffffffffffe00000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (((V[24]) & 0xffffffff) << 545)
    if _v51 != _o50:
        V[28] = _v51
        if not PQ[1]:
            PQ[1] = 1
            PEND.append(1)

def _e57(V, NQ, PEND, PQ, PRIMS, ACT):
    # [tie r4] firewall_map_1.tie
    V[128] = 0

def _p0(V):
    # ehdl_firewall:process@1468
    t25 = V[25]
    if V[26] == 1:
        t25 = V[21]
    return (t25,)

def _c0(V, t, NQ, PEND, PQ):
    V[25] = t[0]

def _f0(V, NQ, PEND, PQ):
    t25 = V[25]
    if V[26] == 1:
        t25 = V[21]
    V[25] = t25

def _p1(V):
    # ehdl_firewall/s001:process@112
    t29 = V[29]
    t30 = V[30]
    t31 = V[31]
    if (V[2] == 1) or (V[95] == 1):
        t29 = 0
    else:
        t29 = V[26]
        t30 = V[27]
        t31 = V[28] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[28] << 64) & 0x1fffffffffffffffe0000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if ((V[26] == 1) and ((V[27] & 1) == 1)) and ((V[28] >> 544 & 1) == 0):
            if (V[28] >> 512 & 0xffff) < 0xe:
                t31 = t31 & 0x1fffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t31 = t31 & 0x1fffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((V[28] >> 96 & 0xffff) << 577)
    return (t29, t30, t31)

def _c1(V, t, NQ, PEND, PQ):
    if V[29] != t[0] or V[30] != t[1] or V[31] != t[2]:
        V[29] = t[0]
        V[30] = t[1]
        V[31] = t[2]
        if not PQ[2]:
            PQ[2] = 1
            PEND.append(2)

def _f1(V, NQ, PEND, PQ):
    t29 = V[29]
    t30 = V[30]
    t31 = V[31]
    if (V[2] == 1) or (V[95] == 1):
        t29 = 0
    else:
        t29 = V[26]
        t30 = V[27]
        t31 = V[28] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[28] << 64) & 0x1fffffffffffffffe0000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if ((V[26] == 1) and ((V[27] & 1) == 1)) and ((V[28] >> 544 & 1) == 0):
            if (V[28] >> 512 & 0xffff) < 0xe:
                t31 = t31 & 0x1fffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t31 = t31 & 0x1fffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((V[28] >> 96 & 0xffff) << 577)
    if V[29] != t29 or V[30] != t30 or V[31] != t31:
        V[29] = t29
        V[30] = t30
        V[31] = t31
        if not PQ[2]:
            PQ[2] = 1
            PEND.append(2)

def _p2(V):
    # ehdl_firewall/s002:process@163
    t32 = V[32]
    t33 = V[33]
    t34 = V[34]
    if (V[2] == 1) or (V[95] == 1):
        t32 = 0
    else:
        t32 = V[29]
        t33 = V[30]
        t34 = V[31] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[31] >> 64) & 0x1fffffffffffffffe000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if ((V[29] == 1) and ((V[30] & 1) == 1)) and ((V[31] >> 544 & 1) == 0):
            if (V[31] >> 577 & 0xffffffffffffffff) != 8:
                t33 = t33 & 0xffffffbf | 0x40
            else:
                t33 = t33 & 0xfffffffd | 2
    return (t32, t33, t34)

def _c2(V, t, NQ, PEND, PQ):
    if V[32] != t[0] or V[33] != t[1] or V[34] != t[2]:
        V[32] = t[0]
        V[33] = t[1]
        V[34] = t[2]
        if not PQ[3]:
            PQ[3] = 1
            PEND.append(3)

def _f2(V, NQ, PEND, PQ):
    t32 = V[32]
    t33 = V[33]
    t34 = V[34]
    if (V[2] == 1) or (V[95] == 1):
        t32 = 0
    else:
        t32 = V[29]
        t33 = V[30]
        t34 = V[31] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[31] >> 64) & 0x1fffffffffffffffe000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if ((V[29] == 1) and ((V[30] & 1) == 1)) and ((V[31] >> 544 & 1) == 0):
            if (V[31] >> 577 & 0xffffffffffffffff) != 8:
                t33 = t33 & 0xffffffbf | 0x40
            else:
                t33 = t33 & 0xfffffffd | 2
    if V[32] != t32 or V[33] != t33 or V[34] != t34:
        V[32] = t32
        V[33] = t33
        V[34] = t34
        if not PQ[3]:
            PQ[3] = 1
            PEND.append(3)

def _p3(V):
    # ehdl_firewall/s003:process@212
    t35 = V[35]
    t36 = V[36]
    t37 = V[37]
    if (V[2] == 1) or (V[95] == 1):
        t35 = 0
    else:
        t35 = V[32]
        t36 = V[33]
        t37 = V[34] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[34] << 64) & 0x1fffffffffffffffe0000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if ((V[32] == 1) and ((V[33] >> 1 & 1) == 1)) and ((V[34] >> 544 & 1) == 0):
            if (V[34] >> 512 & 0xffff) < 0x18:
                t37 = t37 & 0x1fffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t37 = t37 & 0x1fffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((V[34] >> 184 & 0xff) << 577)
    return (t35, t36, t37)

def _c3(V, t, NQ, PEND, PQ):
    if V[35] != t[0] or V[36] != t[1] or V[37] != t[2]:
        V[35] = t[0]
        V[36] = t[1]
        V[37] = t[2]
        if not PQ[4]:
            PQ[4] = 1
            PEND.append(4)

def _f3(V, NQ, PEND, PQ):
    t35 = V[35]
    t36 = V[36]
    t37 = V[37]
    if (V[2] == 1) or (V[95] == 1):
        t35 = 0
    else:
        t35 = V[32]
        t36 = V[33]
        t37 = V[34] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[34] << 64) & 0x1fffffffffffffffe0000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if ((V[32] == 1) and ((V[33] >> 1 & 1) == 1)) and ((V[34] >> 544 & 1) == 0):
            if (V[34] >> 512 & 0xffff) < 0x18:
                t37 = t37 & 0x1fffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t37 = t37 & 0x1fffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((V[34] >> 184 & 0xff) << 577)
    if V[35] != t35 or V[36] != t36 or V[37] != t37:
        V[35] = t35
        V[36] = t36
        V[37] = t37
        if not PQ[4]:
            PQ[4] = 1
            PEND.append(4)

def _p4(V):
    # ehdl_firewall/s004:process@263
    t38 = V[38]
    t39 = V[39]
    t40 = V[40]
    if (V[2] == 1) or (V[95] == 1):
        t38 = 0
    else:
        t38 = V[35]
        t39 = V[36]
        t40 = V[37] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[37] >> 64) & 0x1fffffffffffffffe000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if ((V[35] == 1) and ((V[36] >> 1 & 1) == 1)) and ((V[37] >> 544 & 1) == 0):
            if (V[37] >> 577 & 0xffffffffffffffff) != 0x11:
                t39 = t39 & 0xffffffbf | 0x40
            else:
                t39 = t39 & 0xfffffffb | 4
    return (t38, t39, t40)

def _c4(V, t, NQ, PEND, PQ):
    if V[38] != t[0] or V[39] != t[1] or V[40] != t[2]:
        V[38] = t[0]
        V[39] = t[1]
        V[40] = t[2]
        if not PQ[5]:
            PQ[5] = 1
            PEND.append(5)

def _f4(V, NQ, PEND, PQ):
    t38 = V[38]
    t39 = V[39]
    t40 = V[40]
    if (V[2] == 1) or (V[95] == 1):
        t38 = 0
    else:
        t38 = V[35]
        t39 = V[36]
        t40 = V[37] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[37] >> 64) & 0x1fffffffffffffffe000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if ((V[35] == 1) and ((V[36] >> 1 & 1) == 1)) and ((V[37] >> 544 & 1) == 0):
            if (V[37] >> 577 & 0xffffffffffffffff) != 0x11:
                t39 = t39 & 0xffffffbf | 0x40
            else:
                t39 = t39 & 0xfffffffb | 4
    if V[38] != t38 or V[39] != t39 or V[40] != t40:
        V[38] = t38
        V[39] = t39
        V[40] = t40
        if not PQ[5]:
            PQ[5] = 1
            PEND.append(5)

def _p5(V):
    # ehdl_firewall/s005:process@312
    t41 = V[41]
    t42 = V[42]
    t43 = V[43]
    _x10 = (V[40] >> 512 & 0xffff)
    _x9 = ((V[40] >> 544 & 1) == 0)
    _x8 = ((V[38] == 1) and ((V[39] >> 2 & 1) == 1))
    _x7 = ((0 if _x10 < 0x26 else 1))
    _x6 = ((0 if _x10 < 0x24 else 1))
    _x5 = ((0 if _x10 < 0x22 else 1))
    _x4 = ((0 if _x10 < 0x1e else 1))
    _x3 = (_x8 and _x9)
    _x2 = (_x3 and _x4)
    _x1 = (_x2 and _x5)
    _x0 = (_x1 and _x6)
    if (V[2] == 1) or (V[95] == 1):
        t41 = 0
    else:
        t41 = V[38]
        t42 = V[39]
        t43 = V[40] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[40] << 320) & 0x1fffffffffffffffe00000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if _x8 and _x9:
            if _x10 < 0x1e:
                t43 = t43 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t43 = t43 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((V[40] >> 208 & 0xffffffff) << 641)
        if _x3 and _x4:
            if _x10 < 0x22:
                t43 = t43 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t43 = t43 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((V[40] >> 240 & 0xffffffff) << 705)
        if _x2 and _x5:
            if _x10 < 0x24:
                t43 = t43 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t43 = t43 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((V[40] >> 272 & 0xffff) << 769)
        if _x1 and _x6:
            if _x10 < 0x26:
                t43 = t43 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t43 = t43 & 0x1fffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((V[40] >> 288 & 0xffff) << 833)
        if _x0 and _x7:
            t43 = t43 & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff
            t43 = t43 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x60000002000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
    return (t41, t42, t43)

def _c5(V, t, NQ, PEND, PQ):
    if V[41] != t[0] or V[42] != t[1] or V[43] != t[2]:
        V[41] = t[0]
        V[42] = t[1]
        V[43] = t[2]
        if not PQ[6]:
            PQ[6] = 1
            PEND.append(6)

def _f5(V, NQ, PEND, PQ):
    t41 = V[41]
    t42 = V[42]
    t43 = V[43]
    _x10 = (V[40] >> 512 & 0xffff)
    _x9 = ((V[40] >> 544 & 1) == 0)
    _x8 = ((V[38] == 1) and ((V[39] >> 2 & 1) == 1))
    _x7 = ((0 if _x10 < 0x26 else 1))
    _x6 = ((0 if _x10 < 0x24 else 1))
    _x5 = ((0 if _x10 < 0x22 else 1))
    _x4 = ((0 if _x10 < 0x1e else 1))
    _x3 = (_x8 and _x9)
    _x2 = (_x3 and _x4)
    _x1 = (_x2 and _x5)
    _x0 = (_x1 and _x6)
    if (V[2] == 1) or (V[95] == 1):
        t41 = 0
    else:
        t41 = V[38]
        t42 = V[39]
        t43 = V[40] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[40] << 320) & 0x1fffffffffffffffe00000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if _x8 and _x9:
            if _x10 < 0x1e:
                t43 = t43 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t43 = t43 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((V[40] >> 208 & 0xffffffff) << 641)
        if _x3 and _x4:
            if _x10 < 0x22:
                t43 = t43 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t43 = t43 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((V[40] >> 240 & 0xffffffff) << 705)
        if _x2 and _x5:
            if _x10 < 0x24:
                t43 = t43 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t43 = t43 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((V[40] >> 272 & 0xffff) << 769)
        if _x1 and _x6:
            if _x10 < 0x26:
                t43 = t43 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t43 = t43 & 0x1fffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((V[40] >> 288 & 0xffff) << 833)
        if _x0 and _x7:
            t43 = t43 & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff
            t43 = t43 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x60000002000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
    if V[41] != t41 or V[42] != t42 or V[43] != t43:
        V[41] = t41
        V[42] = t42
        V[43] = t43
        if not PQ[6]:
            PQ[6] = 1
            PEND.append(6)

def _p6(V):
    # ehdl_firewall/s006:process@403
    t44 = V[44]
    t45 = V[45]
    t46 = V[46]
    _x1 = ((V[43] >> 544 & 1) == 0)
    _x0 = ((V[41] == 1) and ((V[42] >> 2 & 1) == 1))
    if (V[2] == 1) or (V[95] == 1):
        t44 = 0
    else:
        t44 = V[41]
        t45 = V[42]
        t46 = V[43] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[43] >> 192) & 0x1fffffffffffffffe00000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if _x0 and _x1:
            t46 = t46 & 0x1fffffffffffffffffffffffe00000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((((V[43] >> 641 & 0xffffffffffffffff)) & 0xffffffff) << 769)
            t46 = t46 & 0x1fffffffffffffffe00000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((((V[43] >> 705 & 0xffffffffffffffff)) & 0xffffffff) << 801)
            t46 = t46 & 0x1fffffffffffe0001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((((V[43] >> 769 & 0xffffffffffffffff)) & 0xffff) << 833)
            t46 = t46 & 0x1fffffffe0001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((((V[43] >> 833 & 0xffffffffffffffff)) & 0xffff) << 849)
            t46 = t46 & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((((V[43] >> 961 & 0xffffffffffffffff)) & 0xffffffff) << 865)
            t46 = t46 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x4004000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            t46 = t46 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (((0x2001f0) & 0xffffffffffffffff) << 641)
    return (t44, t45, t46)

def _c6(V, t, NQ, PEND, PQ):
    if V[44] != t[0] or V[45] != t[1] or V[46] != t[2]:
        V[44] = t[0]
        V[45] = t[1]
        V[46] = t[2]
        NQ[13] = 1
        if not PQ[7]:
            PQ[7] = 1
            PEND.append(7)

def _f6(V, NQ, PEND, PQ):
    t44 = V[44]
    t45 = V[45]
    t46 = V[46]
    _x1 = ((V[43] >> 544 & 1) == 0)
    _x0 = ((V[41] == 1) and ((V[42] >> 2 & 1) == 1))
    if (V[2] == 1) or (V[95] == 1):
        t44 = 0
    else:
        t44 = V[41]
        t45 = V[42]
        t46 = V[43] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[43] >> 192) & 0x1fffffffffffffffe00000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if _x0 and _x1:
            t46 = t46 & 0x1fffffffffffffffffffffffe00000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((((V[43] >> 641 & 0xffffffffffffffff)) & 0xffffffff) << 769)
            t46 = t46 & 0x1fffffffffffffffe00000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((((V[43] >> 705 & 0xffffffffffffffff)) & 0xffffffff) << 801)
            t46 = t46 & 0x1fffffffffffe0001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((((V[43] >> 769 & 0xffffffffffffffff)) & 0xffff) << 833)
            t46 = t46 & 0x1fffffffe0001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((((V[43] >> 833 & 0xffffffffffffffff)) & 0xffff) << 849)
            t46 = t46 & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((((V[43] >> 961 & 0xffffffffffffffff)) & 0xffffffff) << 865)
            t46 = t46 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x4004000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            t46 = t46 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (((0x2001f0) & 0xffffffffffffffff) << 641)
    if V[44] != t44 or V[45] != t45 or V[46] != t46:
        V[44] = t44
        V[45] = t45
        V[46] = t46
        NQ[13] = 1
        if not PQ[7]:
            PQ[7] = 1
            PEND.append(7)

def _p7(V):
    # ehdl_firewall/s007:process@487
    t47 = V[47]
    t48 = V[48]
    t49 = V[49]
    if (V[2] == 1) or (V[95] == 1):
        t47 = 0
    else:
        t47 = V[44]
        t48 = V[45]
        t49 = V[46] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[46] >> 64) & 0x1fffffffffffffffe0000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000 | (V[46] >> 160) & 0x1fffffffe00000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if ((V[44] == 1) and ((V[45] >> 2 & 1) == 1)) and ((V[46] >> 544 & 1) == 0):
            if V[118] == 1:
                t49 = t49 & 0x1fffffffffffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t49 = t49 & 0x1fffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[117] << 577) & 0x1fffffffffffffffe000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
    return (t47, t48, t49)

def _c7(V, t, NQ, PEND, PQ):
    if V[47] != t[0] or V[48] != t[1] or V[49] != t[2]:
        V[47] = t[0]
        V[48] = t[1]
        V[49] = t[2]
        if not PQ[8]:
            PQ[8] = 1
            PEND.append(8)

def _f7(V, NQ, PEND, PQ):
    t47 = V[47]
    t48 = V[48]
    t49 = V[49]
    if (V[2] == 1) or (V[95] == 1):
        t47 = 0
    else:
        t47 = V[44]
        t48 = V[45]
        t49 = V[46] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[46] >> 64) & 0x1fffffffffffffffe0000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000 | (V[46] >> 160) & 0x1fffffffe00000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if ((V[44] == 1) and ((V[45] >> 2 & 1) == 1)) and ((V[46] >> 544 & 1) == 0):
            if V[118] == 1:
                t49 = t49 & 0x1fffffffffffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t49 = t49 & 0x1fffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[117] << 577) & 0x1fffffffffffffffe000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
    if V[47] != t47 or V[48] != t48 or V[49] != t49:
        V[47] = t47
        V[48] = t48
        V[49] = t49
        if not PQ[8]:
            PQ[8] = 1
            PEND.append(8)

def _p8(V):
    # ehdl_firewall/s008:process@539
    t50 = V[50]
    t51 = V[51]
    t52 = V[52]
    if (V[2] == 1) or (V[95] == 1):
        t50 = 0
    else:
        t50 = V[47]
        t51 = V[48]
        t52 = V[49]
    return (t50, t51, t52)

def _c8(V, t, NQ, PEND, PQ):
    if V[50] != t[0] or V[51] != t[1] or V[52] != t[2]:
        V[50] = t[0]
        V[51] = t[1]
        V[52] = t[2]
        if not PQ[9]:
            PQ[9] = 1
            PEND.append(9)

def _f8(V, NQ, PEND, PQ):
    t50 = V[50]
    t51 = V[51]
    t52 = V[52]
    if (V[2] == 1) or (V[95] == 1):
        t50 = 0
    else:
        t50 = V[47]
        t51 = V[48]
        t52 = V[49]
    if V[50] != t50 or V[51] != t51 or V[52] != t52:
        V[50] = t50
        V[51] = t51
        V[52] = t52
        if not PQ[9]:
            PQ[9] = 1
            PEND.append(9)

def _p9(V):
    # ehdl_firewall/s009:process@582
    t53 = V[53]
    t54 = V[54]
    t55 = V[55]
    if (V[2] == 1) or (V[95] == 1):
        t53 = 0
    else:
        t53 = V[50]
        t54 = V[51]
        t55 = V[52]
        if ((V[50] == 1) and ((V[51] >> 2 & 1) == 1)) and ((V[52] >> 544 & 1) == 0):
            if (V[52] >> 577 & 0xffffffffffffffff) != 0:
                t54 = t54 & 0xffffffdf | 0x20
            else:
                t54 = t54 & 0xfffffff7 | 8
    return (t53, t54, t55)

def _c9(V, t, NQ, PEND, PQ):
    if V[53] != t[0] or V[54] != t[1] or V[55] != t[2]:
        V[53] = t[0]
        V[54] = t[1]
        V[55] = t[2]
        if not PQ[10]:
            PQ[10] = 1
            PEND.append(10)

def _f9(V, NQ, PEND, PQ):
    t53 = V[53]
    t54 = V[54]
    t55 = V[55]
    if (V[2] == 1) or (V[95] == 1):
        t53 = 0
    else:
        t53 = V[50]
        t54 = V[51]
        t55 = V[52]
        if ((V[50] == 1) and ((V[51] >> 2 & 1) == 1)) and ((V[52] >> 544 & 1) == 0):
            if (V[52] >> 577 & 0xffffffffffffffff) != 0:
                t54 = t54 & 0xffffffdf | 0x20
            else:
                t54 = t54 & 0xfffffff7 | 8
    if V[53] != t53 or V[54] != t54 or V[55] != t55:
        V[53] = t53
        V[54] = t54
        V[55] = t55
        if not PQ[10]:
            PQ[10] = 1
            PEND.append(10)

def _p10(V):
    # ehdl_firewall/s010:process@633
    t56 = V[56]
    t57 = V[57]
    t58 = V[58]
    _x8 = (V[55] >> 512 & 0xffff)
    _x7 = ((V[55] >> 544 & 1) == 0)
    _x6 = ((V[53] == 1) and ((V[54] >> 3 & 1) == 1))
    _x5 = ((0 if _x8 < 0x26 else 1))
    _x4 = ((0 if _x8 < 0x1e else 1))
    _x3 = ((0 if _x8 < 0x22 else 1))
    _x2 = (_x6 and _x7)
    _x1 = (_x2 and _x3)
    _x0 = (_x1 and _x4)
    if (V[2] == 1) or (V[95] == 1):
        t56 = 0
    else:
        t56 = V[53]
        t57 = V[54]
        t58 = V[55] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[55] << 320) & 0x1fffffffffffffffe000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000 | (V[55] << 416) & 0x1fffffffe0000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if _x6 and _x7:
            if _x8 < 0x22:
                t58 = t58 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t58 = t58 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((V[55] >> 240 & 0xffffffff) << 705)
        if _x2 and _x3:
            if _x8 < 0x1e:
                t58 = t58 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t58 = t58 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((V[55] >> 208 & 0xffffffff) << 769)
        if _x1 and _x4:
            if _x8 < 0x26:
                t58 = t58 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t58 = t58 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((V[55] >> 288 & 0xffff) << 833)
        if _x0 and _x5:
            if _x8 < 0x24:
                t58 = t58 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t58 = t58 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((V[55] >> 272 & 0xffff) << 897)
        if (_x0 and _x5) and ((0 if _x8 < 0x24 else 1)):
            t58 = t58 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x600000020000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
    return (t56, t57, t58)

def _c10(V, t, NQ, PEND, PQ):
    if V[56] != t[0] or V[57] != t[1] or V[58] != t[2]:
        V[56] = t[0]
        V[57] = t[1]
        V[58] = t[2]
        if not PQ[11]:
            PQ[11] = 1
            PEND.append(11)

def _f10(V, NQ, PEND, PQ):
    t56 = V[56]
    t57 = V[57]
    t58 = V[58]
    _x8 = (V[55] >> 512 & 0xffff)
    _x7 = ((V[55] >> 544 & 1) == 0)
    _x6 = ((V[53] == 1) and ((V[54] >> 3 & 1) == 1))
    _x5 = ((0 if _x8 < 0x26 else 1))
    _x4 = ((0 if _x8 < 0x1e else 1))
    _x3 = ((0 if _x8 < 0x22 else 1))
    _x2 = (_x6 and _x7)
    _x1 = (_x2 and _x3)
    _x0 = (_x1 and _x4)
    if (V[2] == 1) or (V[95] == 1):
        t56 = 0
    else:
        t56 = V[53]
        t57 = V[54]
        t58 = V[55] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[55] << 320) & 0x1fffffffffffffffe000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000 | (V[55] << 416) & 0x1fffffffe0000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if _x6 and _x7:
            if _x8 < 0x22:
                t58 = t58 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t58 = t58 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((V[55] >> 240 & 0xffffffff) << 705)
        if _x2 and _x3:
            if _x8 < 0x1e:
                t58 = t58 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t58 = t58 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((V[55] >> 208 & 0xffffffff) << 769)
        if _x1 and _x4:
            if _x8 < 0x26:
                t58 = t58 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t58 = t58 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((V[55] >> 288 & 0xffff) << 833)
        if _x0 and _x5:
            if _x8 < 0x24:
                t58 = t58 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t58 = t58 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((V[55] >> 272 & 0xffff) << 897)
        if (_x0 and _x5) and ((0 if _x8 < 0x24 else 1)):
            t58 = t58 & 0x1fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x600000020000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
    if V[56] != t56 or V[57] != t57 or V[58] != t58:
        V[56] = t56
        V[57] = t57
        V[58] = t58
        if not PQ[11]:
            PQ[11] = 1
            PEND.append(11)

def _p11(V):
    # ehdl_firewall/s011:process@722
    t59 = V[59]
    t60 = V[60]
    t61 = V[61]
    _x1 = ((V[58] >> 544 & 1) == 0)
    _x0 = ((V[56] == 1) and ((V[57] >> 3 & 1) == 1))
    if (V[2] == 1) or (V[95] == 1):
        t59 = 0
    else:
        t59 = V[56]
        t60 = V[57]
        t61 = V[58] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[58] >> 256) & 0x1fffffffffffffffffffffffffffffffe000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if _x0 and _x1:
            t61 = t61 & 0x1fffffffffffffffffffffffe00000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((((V[58] >> 705 & 0xffffffffffffffff)) & 0xffffffff) << 769)
            t61 = t61 & 0x1fffffffffffffffe00000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((((V[58] >> 769 & 0xffffffffffffffff)) & 0xffffffff) << 801)
            t61 = t61 & 0x1fffffffffffe0001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((((V[58] >> 833 & 0xffffffffffffffff)) & 0xffff) << 833)
            t61 = t61 & 0x1fffffffe0001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((((V[58] >> 897 & 0xffffffffffffffff)) & 0xffff) << 849)
            t61 = t61 & 0x1fffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x40040000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            t61 = t61 & 0x1fffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (((0x2001f0) & 0xffffffffffffffff) << 705)
    return (t59, t60, t61)

def _c11(V, t, NQ, PEND, PQ):
    if V[59] != t[0] or V[60] != t[1] or V[61] != t[2]:
        V[59] = t[0]
        V[60] = t[1]
        V[61] = t[2]
        NQ[18] = 1
        if not PQ[12]:
            PQ[12] = 1
            PEND.append(12)

def _f11(V, NQ, PEND, PQ):
    t59 = V[59]
    t60 = V[60]
    t61 = V[61]
    _x1 = ((V[58] >> 544 & 1) == 0)
    _x0 = ((V[56] == 1) and ((V[57] >> 3 & 1) == 1))
    if (V[2] == 1) or (V[95] == 1):
        t59 = 0
    else:
        t59 = V[56]
        t60 = V[57]
        t61 = V[58] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[58] >> 256) & 0x1fffffffffffffffffffffffffffffffe000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
        if _x0 and _x1:
            t61 = t61 & 0x1fffffffffffffffffffffffe00000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((((V[58] >> 705 & 0xffffffffffffffff)) & 0xffffffff) << 769)
            t61 = t61 & 0x1fffffffffffffffe00000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((((V[58] >> 769 & 0xffffffffffffffff)) & 0xffffffff) << 801)
            t61 = t61 & 0x1fffffffffffe0001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((((V[58] >> 833 & 0xffffffffffffffff)) & 0xffff) << 833)
            t61 = t61 & 0x1fffffffe0001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((((V[58] >> 897 & 0xffffffffffffffff)) & 0xffff) << 849)
            t61 = t61 & 0x1fffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x40040000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            t61 = t61 & 0x1fffffffffffffffffffffffffffffffe0000000000000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (((0x2001f0) & 0xffffffffffffffff) << 705)
    if V[59] != t59 or V[60] != t60 or V[61] != t61:
        V[59] = t59
        V[60] = t60
        V[61] = t61
        NQ[18] = 1
        if not PQ[12]:
            PQ[12] = 1
            PEND.append(12)

def _p12(V):
    # ehdl_firewall/s012:process@802
    t62 = V[62]
    t63 = V[63]
    t64 = V[64]
    if (V[2] == 1) or (V[95] == 1):
        t62 = 0
    else:
        t62 = V[59]
        t63 = V[60]
        t64 = V[61] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff
        if ((V[59] == 1) and ((V[60] >> 3 & 1) == 1)) and ((V[61] >> 544 & 1) == 0):
            if V[118] == 1:
                t64 = t64 & 0x1fffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t64 = t64 & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[117] << 577) & 0x1fffffffffffffffe000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
    return (t62, t63, t64)

def _c12(V, t, NQ, PEND, PQ):
    if V[62] != t[0] or V[63] != t[1] or V[64] != t[2]:
        V[62] = t[0]
        V[63] = t[1]
        V[64] = t[2]
        if not PQ[13]:
            PQ[13] = 1
            PEND.append(13)

def _f12(V, NQ, PEND, PQ):
    t62 = V[62]
    t63 = V[63]
    t64 = V[64]
    if (V[2] == 1) or (V[95] == 1):
        t62 = 0
    else:
        t62 = V[59]
        t63 = V[60]
        t64 = V[61] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff
        if ((V[59] == 1) and ((V[60] >> 3 & 1) == 1)) and ((V[61] >> 544 & 1) == 0):
            if V[118] == 1:
                t64 = t64 & 0x1fffffffffffffffe00000000ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            else:
                t64 = t64 & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | (V[117] << 577) & 0x1fffffffffffffffe000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
    if V[62] != t62 or V[63] != t63 or V[64] != t64:
        V[62] = t62
        V[63] = t63
        V[64] = t64
        if not PQ[13]:
            PQ[13] = 1
            PEND.append(13)

def _p13(V):
    # ehdl_firewall/s013:process@852
    t65 = V[65]
    t66 = V[66]
    t67 = V[67]
    if (V[2] == 1) or (V[95] == 1):
        t65 = 0
    else:
        t65 = V[62]
        t66 = V[63]
        t67 = V[64]
    return (t65, t66, t67)

def _c13(V, t, NQ, PEND, PQ):
    if V[65] != t[0] or V[66] != t[1] or V[67] != t[2]:
        V[65] = t[0]
        V[66] = t[1]
        V[67] = t[2]
        if not PQ[14]:
            PQ[14] = 1
            PEND.append(14)

def _f13(V, NQ, PEND, PQ):
    t65 = V[65]
    t66 = V[66]
    t67 = V[67]
    if (V[2] == 1) or (V[95] == 1):
        t65 = 0
    else:
        t65 = V[62]
        t66 = V[63]
        t67 = V[64]
    if V[65] != t65 or V[66] != t66 or V[67] != t67:
        V[65] = t65
        V[66] = t66
        V[67] = t67
        if not PQ[14]:
            PQ[14] = 1
            PEND.append(14)

def _p14(V):
    # ehdl_firewall/s014:process@893
    t68 = V[68]
    t69 = V[69]
    t70 = V[70]
    if (V[2] == 1) or (V[95] == 1):
        t68 = 0
    else:
        t68 = V[65]
        t69 = V[66]
        t70 = V[67]
        if ((V[65] == 1) and ((V[66] >> 3 & 1) == 1)) and ((V[67] >> 544 & 1) == 0):
            if (V[67] >> 577 & 0xffffffffffffffff) != 0:
                t69 = t69 & 0xffffffdf | 0x20
            else:
                t69 = t69 & 0xffffffef | 0x10
    return (t68, t69, t70)

def _c14(V, t, NQ, PEND, PQ):
    if V[68] != t[0] or V[69] != t[1] or V[70] != t[2]:
        V[68] = t[0]
        V[69] = t[1]
        V[70] = t[2]
        if not PQ[15]:
            PQ[15] = 1
            PEND.append(15)

def _f14(V, NQ, PEND, PQ):
    t68 = V[68]
    t69 = V[69]
    t70 = V[70]
    if (V[2] == 1) or (V[95] == 1):
        t68 = 0
    else:
        t68 = V[65]
        t69 = V[66]
        t70 = V[67]
        if ((V[65] == 1) and ((V[66] >> 3 & 1) == 1)) and ((V[67] >> 544 & 1) == 0):
            if (V[67] >> 577 & 0xffffffffffffffff) != 0:
                t69 = t69 & 0xffffffdf | 0x20
            else:
                t69 = t69 & 0xffffffef | 0x10
    if V[68] != t68 or V[69] != t69 or V[70] != t70:
        V[68] = t68
        V[69] = t69
        V[70] = t70
        if not PQ[15]:
            PQ[15] = 1
            PEND.append(15)

def _p15(V):
    # ehdl_firewall/s015:process@942
    t71 = V[71]
    t72 = V[72]
    t73 = V[73]
    if (V[2] == 1) or (V[95] == 1):
        t71 = 0
    else:
        t71 = V[68]
        t72 = V[69]
        t73 = V[70]
        if ((V[68] == 1) and ((V[69] >> 4 & 1) == 1)) and ((V[70] >> 544 & 1) == 0):
            t73 = t73 & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x2000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
    return (t71, t72, t73)

def _c15(V, t, NQ, PEND, PQ):
    if V[71] != t[0] or V[72] != t[1] or V[73] != t[2]:
        V[71] = t[0]
        V[72] = t[1]
        V[73] = t[2]
        if not PQ[16]:
            PQ[16] = 1
            PEND.append(16)

def _f15(V, NQ, PEND, PQ):
    t71 = V[71]
    t72 = V[72]
    t73 = V[73]
    if (V[2] == 1) or (V[95] == 1):
        t71 = 0
    else:
        t71 = V[68]
        t72 = V[69]
        t73 = V[70]
        if ((V[68] == 1) and ((V[69] >> 4 & 1) == 1)) and ((V[70] >> 544 & 1) == 0):
            t73 = t73 & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x2000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
    if V[71] != t71 or V[72] != t72 or V[73] != t73:
        V[71] = t71
        V[72] = t72
        V[73] = t73
        if not PQ[16]:
            PQ[16] = 1
            PEND.append(16)

def _p16(V):
    # ehdl_firewall/s016:process@987
    t74 = V[74]
    t75 = V[75]
    t76 = V[76]
    if (V[2] == 1) or (V[95] == 1):
        t74 = 0
    else:
        t74 = V[71]
        t75 = V[72]
        t76 = V[73]
        if ((V[71] == 1) and ((V[72] >> 4 & 1) == 1)) and ((V[73] >> 544 & 1) == 0):
            t76 = t76 & 0x1fffffffffffffffffffffffeffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x10000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            t76 = t76 & 0x1fffffffffffffffe00000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((((V[73] >> 577 & 0xffffffffffffffff)) & 0xffffffff) << 545)
    return (t74, t75, t76)

def _c16(V, t, NQ, PEND, PQ):
    if V[74] != t[0] or V[75] != t[1] or V[76] != t[2]:
        V[74] = t[0]
        V[75] = t[1]
        V[76] = t[2]
        if not PQ[17]:
            PQ[17] = 1
            PEND.append(17)

def _f16(V, NQ, PEND, PQ):
    t74 = V[74]
    t75 = V[75]
    t76 = V[76]
    if (V[2] == 1) or (V[95] == 1):
        t74 = 0
    else:
        t74 = V[71]
        t75 = V[72]
        t76 = V[73]
        if ((V[71] == 1) and ((V[72] >> 4 & 1) == 1)) and ((V[73] >> 544 & 1) == 0):
            t76 = t76 & 0x1fffffffffffffffffffffffeffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x10000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            t76 = t76 & 0x1fffffffffffffffe00000001ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((((V[73] >> 577 & 0xffffffffffffffff)) & 0xffffffff) << 545)
    if V[74] != t74 or V[75] != t75 or V[76] != t76:
        V[74] = t74
        V[75] = t75
        V[76] = t76
        if not PQ[17]:
            PQ[17] = 1
            PEND.append(17)

def _p17(V):
    # ehdl_firewall/s017:process@1033
    t77 = V[77]
    t78 = V[78]
    t79 = V[79]
    if (V[2] == 1) or (V[95] == 1):
        t77 = 0
    else:
        t77 = V[74]
        t78 = V[75]
        t79 = V[76] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff
        if ((V[74] == 1) and ((V[75] >> 5 & 1) == 1)) and ((V[76] >> 544 & 1) == 0):
            t79 = t79 & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x20000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
    return (t77, t78, t79)

def _c17(V, t, NQ, PEND, PQ):
    if V[77] != t[0] or V[78] != t[1] or V[79] != t[2]:
        V[77] = t[0]
        V[78] = t[1]
        V[79] = t[2]
        NQ[24] = 1
        if not PQ[18]:
            PQ[18] = 1
            PEND.append(18)

def _f17(V, NQ, PEND, PQ):
    t77 = V[77]
    t78 = V[78]
    t79 = V[79]
    if (V[2] == 1) or (V[95] == 1):
        t77 = 0
    else:
        t77 = V[74]
        t78 = V[75]
        t79 = V[76] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff
        if ((V[74] == 1) and ((V[75] >> 5 & 1) == 1)) and ((V[76] >> 544 & 1) == 0):
            t79 = t79 & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x20000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
    if V[77] != t77 or V[78] != t78 or V[79] != t79:
        V[77] = t77
        V[78] = t78
        V[79] = t79
        NQ[24] = 1
        if not PQ[18]:
            PQ[18] = 1
            PEND.append(18)

def _p18(V):
    # ehdl_firewall/s018:process@1093
    t80 = V[80]
    t81 = V[81]
    t82 = V[82]
    if (V[2] == 1) or (V[95] == 1):
        t80 = 0
    else:
        t80 = V[77]
        t81 = V[78]
        t82 = V[79] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff
        if ((V[77] == 1) and ((V[78] >> 5 & 1) == 1)) and ((V[79] >> 544 & 1) == 0):
            if V[126] == 1:
                t82 = t82 & 0xffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
    return (t80, t81, t82)

def _c18(V, t, NQ, PEND, PQ):
    if V[80] != t[0] or V[81] != t[1] or V[82] != t[2]:
        V[80] = t[0]
        V[81] = t[1]
        V[82] = t[2]
        if not PQ[19]:
            PQ[19] = 1
            PEND.append(19)

def _f18(V, NQ, PEND, PQ):
    t80 = V[80]
    t81 = V[81]
    t82 = V[82]
    if (V[2] == 1) or (V[95] == 1):
        t80 = 0
    else:
        t80 = V[77]
        t81 = V[78]
        t82 = V[79] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff
        if ((V[77] == 1) and ((V[78] >> 5 & 1) == 1)) and ((V[79] >> 544 & 1) == 0):
            if V[126] == 1:
                t82 = t82 & 0xffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x30000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
    if V[80] != t80 or V[81] != t81 or V[82] != t82:
        V[80] = t80
        V[81] = t81
        V[82] = t82
        if not PQ[19]:
            PQ[19] = 1
            PEND.append(19)

def _p19(V):
    # ehdl_firewall/s019:process@1141
    t83 = V[83]
    t84 = V[84]
    t85 = V[85]
    if (V[2] == 1) or (V[95] == 1):
        t83 = 0
    else:
        t83 = V[80]
        t84 = V[81]
        t85 = V[82] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff
        if ((V[80] == 1) and ((V[81] >> 5 & 1) == 1)) and ((V[82] >> 544 & 1) == 0):
            t85 = t85 & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x6000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
    return (t83, t84, t85)

def _c19(V, t, NQ, PEND, PQ):
    if V[83] != t[0] or V[84] != t[1] or V[85] != t[2]:
        V[83] = t[0]
        V[84] = t[1]
        V[85] = t[2]
        if not PQ[20]:
            PQ[20] = 1
            PEND.append(20)

def _f19(V, NQ, PEND, PQ):
    t83 = V[83]
    t84 = V[84]
    t85 = V[85]
    if (V[2] == 1) or (V[95] == 1):
        t83 = 0
    else:
        t83 = V[80]
        t84 = V[81]
        t85 = V[82] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff
        if ((V[80] == 1) and ((V[81] >> 5 & 1) == 1)) and ((V[82] >> 544 & 1) == 0):
            t85 = t85 & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x6000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
    if V[83] != t83 or V[84] != t84 or V[85] != t85:
        V[83] = t83
        V[84] = t84
        V[85] = t85
        if not PQ[20]:
            PQ[20] = 1
            PEND.append(20)

def _p20(V):
    # ehdl_firewall/s020:process@1186
    t86 = V[86]
    t87 = V[87]
    t88 = V[88]
    if (V[2] == 1) or (V[95] == 1):
        t86 = 0
    else:
        t86 = V[83]
        t87 = V[84]
        t88 = V[85] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff
        if ((V[83] == 1) and ((V[84] >> 5 & 1) == 1)) and ((V[85] >> 544 & 1) == 0):
            t88 = t88 & 0x1fffffffeffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x10000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            t88 = t88 & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((((V[85] >> 577 & 0xffffffffffffffff)) & 0xffffffff) << 545)
    return (t86, t87, t88)

def _c20(V, t, NQ, PEND, PQ):
    if V[86] != t[0] or V[87] != t[1] or V[88] != t[2]:
        V[86] = t[0]
        V[87] = t[1]
        V[88] = t[2]
        if not PQ[21]:
            PQ[21] = 1
            PEND.append(21)

def _f20(V, NQ, PEND, PQ):
    t86 = V[86]
    t87 = V[87]
    t88 = V[88]
    if (V[2] == 1) or (V[95] == 1):
        t86 = 0
    else:
        t86 = V[83]
        t87 = V[84]
        t88 = V[85] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff
        if ((V[83] == 1) and ((V[84] >> 5 & 1) == 1)) and ((V[85] >> 544 & 1) == 0):
            t88 = t88 & 0x1fffffffeffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x10000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            t88 = t88 & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((((V[85] >> 577 & 0xffffffffffffffff)) & 0xffffffff) << 545)
    if V[86] != t86 or V[87] != t87 or V[88] != t88:
        V[86] = t86
        V[87] = t87
        V[88] = t88
        if not PQ[21]:
            PQ[21] = 1
            PEND.append(21)

def _p21(V):
    # ehdl_firewall/s021:process@1231
    t89 = V[89]
    t90 = V[90]
    t91 = V[91]
    if (V[2] == 1) or (V[95] == 1):
        t89 = 0
    else:
        t89 = V[86]
        t90 = V[87]
        t91 = V[88] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff
        if ((V[86] == 1) and ((V[87] >> 6 & 1) == 1)) and ((V[88] >> 544 & 1) == 0):
            t91 = t91 & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x4000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
    return (t89, t90, t91)

def _c21(V, t, NQ, PEND, PQ):
    if V[89] != t[0] or V[90] != t[1] or V[91] != t[2]:
        V[89] = t[0]
        V[90] = t[1]
        V[91] = t[2]
        if not PQ[22]:
            PQ[22] = 1
            PEND.append(22)

def _f21(V, NQ, PEND, PQ):
    t89 = V[89]
    t90 = V[90]
    t91 = V[91]
    if (V[2] == 1) or (V[95] == 1):
        t89 = 0
    else:
        t89 = V[86]
        t90 = V[87]
        t91 = V[88] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff
        if ((V[86] == 1) and ((V[87] >> 6 & 1) == 1)) and ((V[88] >> 544 & 1) == 0):
            t91 = t91 & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x4000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
    if V[89] != t89 or V[90] != t90 or V[91] != t91:
        V[89] = t89
        V[90] = t90
        V[91] = t91
        if not PQ[22]:
            PQ[22] = 1
            PEND.append(22)

def _p22(V):
    # ehdl_firewall/s022:process@1276
    t92 = V[92]
    t93 = V[93]
    t94 = V[94]
    if (V[2] == 1) or (V[95] == 1):
        t92 = 0
    else:
        t92 = V[89]
        t93 = V[90]
        t94 = V[91] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff
        if ((V[89] == 1) and ((V[90] >> 6 & 1) == 1)) and ((V[91] >> 544 & 1) == 0):
            t94 = t94 & 0x1fffffffeffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x10000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            t94 = t94 & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((((V[91] >> 577 & 0xffffffffffffffff)) & 0xffffffff) << 545)
    return (t92, t93, t94)

def _c22(V, t, NQ, PEND, PQ):
    if V[92] != t[0]:
        V[92] = t[0]
        NQ[41] = 1
    V[93] = t[1]
    if V[94] != t[2]:
        V[94] = t[2]
        NQ[27] = 1

def _f22(V, NQ, PEND, PQ):
    t92 = V[92]
    t93 = V[93]
    t94 = V[94]
    if (V[2] == 1) or (V[95] == 1):
        t92 = 0
    else:
        t92 = V[89]
        t93 = V[90]
        t94 = V[91] & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff
        if ((V[89] == 1) and ((V[90] >> 6 & 1) == 1)) and ((V[91] >> 544 & 1) == 0):
            t94 = t94 & 0x1fffffffeffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | 0x10000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000
            t94 = t94 & 0x1ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff | ((((V[91] >> 577 & 0xffffffffffffffff)) & 0xffffffff) << 545)
    if V[92] != t92:
        V[92] = t92
        NQ[41] = 1
    V[93] = t93
    if V[94] != t94:
        V[94] = t94
        NQ[27] = 1

_EVAL = (_e0, _e1, _e2, _e3, _e4, _e5, _e6, _e7, _e8, _e9, _e10, _e11, _e12, _e13, _e14, _e15, _e16, _e17, _e18, _e19, _e20, _e21, _e22, _e23, _e24, _e25, _e26, _e27, _e28, _e29, _e30, _e31, _e32, _e33, _e34, _e35, _e36, _e37, _e38, _e39, _e40, _e41, _e42, _e43, _e44, _e45, _e46, _e47, _e48, _e49, _e50, _e51, _e52, _e53, _e54, _e55, _e56, _e57)
_PFNS = (_p0, _p1, _p2, _p3, _p4, _p5, _p6, _p7, _p8, _p9, _p10, _p11, _p12, _p13, _p14, _p15, _p16, _p17, _p18, _p19, _p20, _p21, _p22)
_PCOMMITS = (_c0, _c1, _c2, _c3, _c4, _c5, _c6, _c7, _c8, _c9, _c10, _c11, _c12, _c13, _c14, _c15, _c16, _c17, _c18, _c19, _c20, _c21, _c22)
_PFUSED = (_f0, _f1, _f2, _f3, _f4, _f5, _f6, _f7, _f8, _f9, _f10, _f11, _f12, _f13, _f14, _f15, _f16, _f17, _f18, _f19, _f20, _f21, _f22)
_READERS = {
    2: ((), (1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22)),
    3: ((4,), ()),
    4: ((4,), ()),
    5: ((29,), ()),
    17: ((29,), ()),
    18: ((43,), ()),
    19: ((44,), ()),
    21: ((52,), (0,)),
    22: ((53,), ()),
    23: ((55,), ()),
    24: ((56,), ()),
    26: ((), (0, 1)),
    27: ((), (1,)),
    28: ((), (1,)),
    29: ((), (2,)),
    30: ((), (2,)),
    31: ((), (2,)),
    32: ((), (3,)),
    33: ((), (3,)),
    34: ((), (3,)),
    35: ((), (4,)),
    36: ((), (4,)),
    37: ((), (4,)),
    38: ((), (5,)),
    39: ((), (5,)),
    40: ((), (5,)),
    41: ((), (6,)),
    42: ((), (6,)),
    43: ((), (6,)),
    44: ((13,), (7,)),
    45: ((13,), (7,)),
    46: ((13,), (7,)),
    47: ((), (8,)),
    48: ((), (8,)),
    49: ((), (8,)),
    50: ((), (9,)),
    51: ((), (9,)),
    52: ((), (9,)),
    53: ((), (10,)),
    54: ((), (10,)),
    55: ((), (10,)),
    56: ((), (11,)),
    57: ((), (11,)),
    58: ((), (11,)),
    59: ((18,), (12,)),
    60: ((18,), (12,)),
    61: ((18,), (12,)),
    62: ((), (13,)),
    63: ((), (13,)),
    64: ((), (13,)),
    65: ((), (14,)),
    66: ((), (14,)),
    67: ((), (14,)),
    68: ((), (15,)),
    69: ((), (15,)),
    70: ((), (15,)),
    71: ((), (16,)),
    72: ((), (16,)),
    73: ((), (16,)),
    74: ((), (17,)),
    75: ((), (17,)),
    76: ((), (17,)),
    77: ((24,), (18,)),
    78: ((24,), (18,)),
    79: ((24,), (18,)),
    80: ((), (19,)),
    81: ((), (19,)),
    82: ((), (19,)),
    83: ((), (20,)),
    84: ((), (20,)),
    85: ((), (20,)),
    86: ((), (21,)),
    87: ((), (21,)),
    88: ((), (21,)),
    89: ((), (22,)),
    90: ((), (22,)),
    91: ((), (22,)),
    92: ((41,), ()),
    94: ((27,), ()),
    95: ((), (1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22)),
    96: ((34,), ()),
    97: ((34,), ()),
    98: ((34,), ()),
    99: ((34,), ()),
    100: ((34,), ()),
    101: ((34,), ()),
    102: ((34,), ()),
    103: ((34,), ()),
    104: ((34,), ()),
    105: ((34,), ()),
    106: ((40,), ()),
    107: ((40,), ()),
    108: ((40,), ()),
    109: ((40,), ()),
    110: ((40,), ()),
    111: ((40,), ()),
    112: ((45,), ()),
    113: ((45,), ()),
    114: ((45,), ()),
    115: ((45,), ()),
    116: ((45,), ()),
    117: ((), (7, 12)),
    118: ((), (7, 12)),
    119: ((54,), ()),
    120: ((54,), ()),
    121: ((54,), ()),
    122: ((54,), ()),
    123: ((54,), ()),
    124: ((54,), ()),
    126: ((), (18,)),
    129: ((41,), ()),
    130: ((49,), ()),
    131: ((46,), ()),
}
_PRIO = (0, 22, 21, 20, 19, 18, 17, 16, 15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1)

def _mark(net, NQ, PEND, PQ):
    e = _READERS.get(net)
    if e is None:
        return
    for k in e[0]:
        NQ[k] = 1
    for p in e[1]:
        if not PQ[p]:
            PQ[p] = 1
            PEND.append(p)

def _settle(V, NQ, PEND, PQ, PRIMS, ACT, ev=_EVAL):
    n = 0
    find = NQ.find
    pos = find(1)
    while pos >= 0:
        NQ[pos] = 0
        ev[pos](V, NQ, PEND, PQ, PRIMS, ACT)
        n += 1
        pos = find(1, pos + 1)
    return n

def _edge(V, NQ, PEND, PQ, pu=_PFUSED, prio=_PRIO):
    n = len(PEND)
    if not n:
        return 0
    if n == 1:
        k = PEND[0]
        PQ[k] = 0
        del PEND[:]
        pu[k](V, NQ, PEND, PQ)
        return 1
    if n == 2:
        a = PEND[0]
        b = PEND[1]
        if prio[a] > prio[b]:
            a, b = b, a
        PQ[a] = 0
        PQ[b] = 0
        del PEND[:]
        pu[a](V, NQ, PEND, PQ)
        pu[b](V, NQ, PEND, PQ)
        return 2
    cur = sorted(PEND, key=prio.__getitem__)
    for k in cur:
        PQ[k] = 0
    del PEND[:]
    for k in cur:
        pu[k](V, NQ, PEND, PQ)
    return n

def _run(V, NQ, PEND, PQ, PRIMS, ACT, limit,
         ev=_EVAL, pf=_PFNS, pc=_PCOMMITS, pu=_PFUSED, prio=_PRIO):
    # Fused cycles: settle, stop on m_axis_tvalid (edge
    # still pending for that cycle), else clock edge.
    nc = 0
    pr = 0
    find = NQ.find
    for done in range(limit):
        pos = find(1)
        while pos >= 0:
            NQ[pos] = 0
            ev[pos](V, NQ, PEND, PQ, PRIMS, ACT)
            nc += 1
            pos = find(1, pos + 1)
        if V[11]:
            return (done, 1, nc, pr)
        n = len(PEND)
        if n == 1:
            pr += 1
            k = PEND.pop()
            PQ[k] = 0
            pu[k](V, NQ, PEND, PQ)
        elif n == 2:
            pr += 2
            b = PEND.pop()
            a = PEND.pop()
            if prio[a] > prio[b]:
                a, b = b, a
            PQ[a] = 0
            PQ[b] = 0
            pu[a](V, NQ, PEND, PQ)
            pu[b](V, NQ, PEND, PQ)
        elif n:
            pr += n
            cur = sorted(PEND, key=prio.__getitem__)
            for k in cur:
                PQ[k] = 0
            del PEND[:]
            for k in cur:
                pu[k](V, NQ, PEND, PQ)
    return (limit, 0, nc, pr)

_RUN = _run

def _frame(V, NQ, PEND, PQ, PRIMS, ACT, span, data, tlen,
           ev=_EVAL, pf=_PFNS, pc=_PCOMMITS, pu=_PFUSED, prio=_PRIO):
    # Inject one s_axis beat (marks inlined per port),
    # then run the window: settle, stop on
    # m_axis_tvalid (edge deferred to the caller), else
    # edge; tvalid drops after the first edge.
    _v52 = (1) & 1
    if V[5] != _v52:
        V[5] = _v52
        NQ[29] = 1
    V[6] = (1) & 1
    _v53 = (data) & 0xffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff
    if V[3] != _v53:
        V[3] = _v53
        NQ[4] = 1
    _v54 = (tlen) & 0xffff
    if V[4] != _v54:
        V[4] = _v54
        NQ[4] = 1
    nc = 0
    pr = 0
    find = NQ.find
    for done in range(span):
        pos = find(1)
        while pos >= 0:
            NQ[pos] = 0
            ev[pos](V, NQ, PEND, PQ, PRIMS, ACT)
            nc += 1
            pos = find(1, pos + 1)
        if V[11]:
            return (done, 1, nc, pr)
        n = len(PEND)
        if n == 1:
            pr += 1
            k = PEND.pop()
            PQ[k] = 0
            pu[k](V, NQ, PEND, PQ)
        elif n == 2:
            pr += 2
            b = PEND.pop()
            a = PEND.pop()
            if prio[a] > prio[b]:
                a, b = b, a
            PQ[a] = 0
            PQ[b] = 0
            pu[a](V, NQ, PEND, PQ)
            pu[b](V, NQ, PEND, PQ)
        elif n:
            pr += n
            cur = sorted(PEND, key=prio.__getitem__)
            for k in cur:
                PQ[k] = 0
            del PEND[:]
            for k in cur:
                pu[k](V, NQ, PEND, PQ)
        if not done:
            if V[5]:
                V[5] = 0
                NQ[29] = 1
    return (span, 0, nc, pr)

_FRAME = _frame

_GEN_VERSION = 3
_N_NODES = 58
_N_PROCS = 23
_PRIM_NODE_IDS = (45, 54)
_PRIM_LABELS = ('firewall_map_1.ch0', 'firewall_map_1.atomic')
_SETTLE = _settle
_EDGE = _edge
_MARK_NET = _mark


-- firewall: eHDL-generated pipeline (22 stages, 7 blocks)
-- top: ehdl_firewall
-- window plan (bytes per link): 64 64 64 64 64 64 64 64 64 64 64 64 64 64 64 64 64 64 64 64 64 64 64
-- enable width: 32  frame size: 64

library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

package ehdl_pkg is
  -- byte-order and division blocks; the RTL simulator binds these
  -- declarations to behavioural builtins (div by zero yields 0,
  -- rem by zero yields the dividend, as the eBPF ISA requires).
  function ehdl_bswap16(v : std_logic_vector(63 downto 0)) return std_logic_vector;
  function ehdl_bswap32(v : std_logic_vector(63 downto 0)) return std_logic_vector;
  function ehdl_bswap64(v : std_logic_vector(63 downto 0)) return std_logic_vector;
  function ehdl_udiv(a : std_logic_vector; b : std_logic_vector) return std_logic_vector;
  function ehdl_urem(a : std_logic_vector; b : std_logic_vector) return std_logic_vector;
end package ehdl_pkg;

library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
use work.ehdl_pkg.all;

-- dual-clock FIFO decoupling the pipeline from the shell (§4.5);
-- the single-clock RTL model binds it to a pass-through primitive.
entity ehdl_async_fifo is
  generic (G_WIDTH : integer := 577);
  port (
    wr_clk  : in  std_logic;
    rd_clk  : in  std_logic;
    rst     : in  std_logic;
    wr_en   : in  std_logic;
    wr_data : in  std_logic_vector(576 downto 0);
    rd_en   : in  std_logic;
    rd_data : out std_logic_vector(576 downto 0);
    empty   : out std_logic;
    full    : out std_logic
  );
end entity ehdl_async_fifo;

architecture behavioral of ehdl_async_fifo is
begin
  -- vendor dual-clock FIFO macro (simulation primitive)
end architecture behavioral;

library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
use work.ehdl_pkg.all;

-- eHDL map block for fd 1 (flows, hash)
--   channels: 1  WAR buffer depth: 0  flush blocks: 0  atomic port: yes
entity firewall_map_1 is
  generic (G_FD : integer := 1; G_DEPTH : integer := 8192; G_KEY_BYTES : integer := 16; G_VALUE_BYTES : integer := 8; G_MAP_TYPE : string := "hash");
  port (
    clk : in  std_logic;
    rst : in  std_logic;
    ch0_req   : in  std_logic;
    ch0_op    : in  std_logic_vector(7 downto 0);
    ch0_addr  : in  std_logic_vector(63 downto 0);
    ch0_key   : in  std_logic_vector(127 downto 0);
    ch0_wdata : in  std_logic_vector(63 downto 0);
    ch0_rdata : out std_logic_vector(63 downto 0);
    ch0_oob   : out std_logic;
    at_req      : in  std_logic;
    at_op       : in  std_logic_vector(7 downto 0);
    at_size     : in  std_logic_vector(3 downto 0);
    at_addr     : in  std_logic_vector(63 downto 0);
    at_wdata    : in  std_logic_vector(63 downto 0);
    at_expected : in  std_logic_vector(63 downto 0);
    at_old      : out std_logic_vector(63 downto 0);
    at_oob      : out std_logic;
    host_req   : in  std_logic;  -- userspace eBPF map interface
    host_wr    : in  std_logic;
    host_addr  : in  std_logic_vector(31 downto 0);
    host_wdata : in  std_logic_vector(63 downto 0);
    host_rdata : out std_logic_vector(63 downto 0)
  );
end entity firewall_map_1;

architecture behavioral of firewall_map_1 is
begin
  -- BRAM + WAR delay chain (0 slots) + 0 Flush Evaluation Blocks (Figs. 6-7);
  -- bound to the repro.rtl simulation primitive backed by the
  -- shared MapSet.
end architecture behavioral;

-- stage 1: r2 = *(u16 *)(r6 + 12)
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
use work.ehdl_pkg.all;

entity firewall_stage_001 is
  port (
    clk        : in  std_logic;
    rst        : in  std_logic;
    flush      : in  std_logic;
    valid_in   : in  std_logic;
    valid_out  : out std_logic;
    enable_in  : in  std_logic_vector(31 downto 0);
    enable_out : out std_logic_vector(31 downto 0);
    state_in   : in  std_logic_vector(640 downto 0);
    state_out  : out std_logic_vector(704 downto 0)
  );
end entity firewall_stage_001;

architecture rtl of firewall_stage_001 is
begin
  process(clk)
  begin
    if rising_edge(clk) then
      if rst = '1' or flush = '1' then
        valid_out <= '0';
      else
        valid_out <= valid_in;
        enable_out <= enable_in;  -- predication fan-through
        state_out(511 downto 0) <= state_in(511 downto 0);
        state_out(527 downto 512) <= state_in(527 downto 512);
        state_out(543 downto 528) <= state_in(543 downto 528);
        state_out(544) <= state_in(544);
        state_out(576 downto 545) <= state_in(576 downto 545);
        state_out(640 downto 577) <= (others => '0');  -- r2 defined here
        state_out(704 downto 641) <= state_in(640 downto 577);  -- carry r6
        -- b0: r2 = *(u16 *)(r6 + 12)
        if valid_in = '1' and enable_in(0) = '1' and state_in(544) = '0' then
          if unsigned(state_in(527 downto 512)) < to_unsigned(14, 16) then
            state_out(544) <= '1';
            state_out(576 downto 545) <= x"00000001";
          else
            state_out(640 downto 577) <= std_logic_vector(resize(unsigned(state_in(111 downto 96)), 64));
          end if;
        end if;
      end if;
    end if;
  end process;
end architecture rtl;

-- stage 2: if r2 != 8 goto +38
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
use work.ehdl_pkg.all;

entity firewall_stage_002 is
  port (
    clk        : in  std_logic;
    rst        : in  std_logic;
    flush      : in  std_logic;
    valid_in   : in  std_logic;
    valid_out  : out std_logic;
    enable_in  : in  std_logic_vector(31 downto 0);
    enable_out : out std_logic_vector(31 downto 0);
    state_in   : in  std_logic_vector(704 downto 0);
    state_out  : out std_logic_vector(640 downto 0)
  );
end entity firewall_stage_002;

architecture rtl of firewall_stage_002 is
begin
  process(clk)
  begin
    if rising_edge(clk) then
      if rst = '1' or flush = '1' then
        valid_out <= '0';
      else
        valid_out <= valid_in;
        enable_out <= enable_in;  -- predication fan-through
        state_out(511 downto 0) <= state_in(511 downto 0);
        state_out(527 downto 512) <= state_in(527 downto 512);
        state_out(543 downto 528) <= state_in(543 downto 528);
        state_out(544) <= state_in(544);
        state_out(576 downto 545) <= state_in(576 downto 545);
        state_out(640 downto 577) <= state_in(704 downto 641);  -- carry r6
        -- b0: if r2 != 8 goto +38
        if valid_in = '1' and enable_in(0) = '1' and state_in(544) = '0' then
          if unsigned(state_in(640 downto 577)) /= unsigned(x"0000000000000008") then
            enable_out(6) <= '1';
          else
            enable_out(1) <= '1';
          end if;
        end if;
      end if;
    end if;
  end process;
end architecture rtl;

-- stage 3: r2 = *(u8 *)(r6 + 23)
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
use work.ehdl_pkg.all;

entity firewall_stage_003 is
  port (
    clk        : in  std_logic;
    rst        : in  std_logic;
    flush      : in  std_logic;
    valid_in   : in  std_logic;
    valid_out  : out std_logic;
    enable_in  : in  std_logic_vector(31 downto 0);
    enable_out : out std_logic_vector(31 downto 0);
    state_in   : in  std_logic_vector(640 downto 0);
    state_out  : out std_logic_vector(704 downto 0)
  );
end entity firewall_stage_003;

architecture rtl of firewall_stage_003 is
begin
  process(clk)
  begin
    if rising_edge(clk) then
      if rst = '1' or flush = '1' then
        valid_out <= '0';
      else
        valid_out <= valid_in;
        enable_out <= enable_in;  -- predication fan-through
        state_out(511 downto 0) <= state_in(511 downto 0);
        state_out(527 downto 512) <= state_in(527 downto 512);
        state_out(543 downto 528) <= state_in(543 downto 528);
        state_out(544) <= state_in(544);
        state_out(576 downto 545) <= state_in(576 downto 545);
        state_out(640 downto 577) <= (others => '0');  -- r2 defined here
        state_out(704 downto 641) <= state_in(640 downto 577);  -- carry r6
        -- b1: r2 = *(u8 *)(r6 + 23)
        if valid_in = '1' and enable_in(1) = '1' and state_in(544) = '0' then
          if unsigned(state_in(527 downto 512)) < to_unsigned(24, 16) then
            state_out(544) <= '1';
            state_out(576 downto 545) <= x"00000001";
          else
            state_out(640 downto 577) <= std_logic_vector(resize(unsigned(state_in(191 downto 184)), 64));
          end if;
        end if;
      end if;
    end if;
  end process;
end architecture rtl;

-- stage 4: if r2 != 17 goto +36
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
use work.ehdl_pkg.all;

entity firewall_stage_004 is
  port (
    clk        : in  std_logic;
    rst        : in  std_logic;
    flush      : in  std_logic;
    valid_in   : in  std_logic;
    valid_out  : out std_logic;
    enable_in  : in  std_logic_vector(31 downto 0);
    enable_out : out std_logic_vector(31 downto 0);
    state_in   : in  std_logic_vector(704 downto 0);
    state_out  : out std_logic_vector(640 downto 0)
  );
end entity firewall_stage_004;

architecture rtl of firewall_stage_004 is
begin
  process(clk)
  begin
    if rising_edge(clk) then
      if rst = '1' or flush = '1' then
        valid_out <= '0';
      else
        valid_out <= valid_in;
        enable_out <= enable_in;  -- predication fan-through
        state_out(511 downto 0) <= state_in(511 downto 0);
        state_out(527 downto 512) <= state_in(527 downto 512);
        state_out(543 downto 528) <= state_in(543 downto 528);
        state_out(544) <= state_in(544);
        state_out(576 downto 545) <= state_in(576 downto 545);
        state_out(640 downto 577) <= state_in(704 downto 641);  -- carry r6
        -- b1: if r2 != 17 goto +36
        if valid_in = '1' and enable_in(1) = '1' and state_in(544) = '0' then
          if unsigned(state_in(640 downto 577)) /= unsigned(x"0000000000000011") then
            enable_out(6) <= '1';
          else
            enable_out(2) <= '1';
          end if;
        end if;
      end if;
    end if;
  end process;
end architecture rtl;

-- stage 5: r2 = *(u32 *)(r6 + 26) | r3 = *(u32 *)(r6 + 30) | r4 = *(u16 *)(r6 + 34) | r5 = *(u16 *)(r6 + 36) | r8 = 0 | r1 = map[1]
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
use work.ehdl_pkg.all;

entity firewall_stage_005 is
  port (
    clk        : in  std_logic;
    rst        : in  std_logic;
    flush      : in  std_logic;
    valid_in   : in  std_logic;
    valid_out  : out std_logic;
    enable_in  : in  std_logic_vector(31 downto 0);
    enable_out : out std_logic_vector(31 downto 0);
    state_in   : in  std_logic_vector(640 downto 0);
    state_out  : out std_logic_vector(1024 downto 0)
  );
end entity firewall_stage_005;

architecture rtl of firewall_stage_005 is
begin
  process(clk)
  begin
    if rising_edge(clk) then
      if rst = '1' or flush = '1' then
        valid_out <= '0';
      else
        valid_out <= valid_in;
        enable_out <= enable_in;  -- predication fan-through
        state_out(511 downto 0) <= state_in(511 downto 0);
        state_out(527 downto 512) <= state_in(527 downto 512);
        state_out(543 downto 528) <= state_in(543 downto 528);
        state_out(544) <= state_in(544);
        state_out(576 downto 545) <= state_in(576 downto 545);
        state_out(640 downto 577) <= (others => '0');  -- r1 defined here
        state_out(704 downto 641) <= (others => '0');  -- r2 defined here
        state_out(768 downto 705) <= (others => '0');  -- r3 defined here
        state_out(832 downto 769) <= (others => '0');  -- r4 defined here
        state_out(896 downto 833) <= (others => '0');  -- r5 defined here
        state_out(960 downto 897) <= state_in(640 downto 577);  -- carry r6
        state_out(1024 downto 961) <= (others => '0');  -- r8 defined here
        -- b2: r2 = *(u32 *)(r6 + 26)
        if valid_in = '1' and enable_in(2) = '1' and state_in(544) = '0' then
          if unsigned(state_in(527 downto 512)) < to_unsigned(30, 16) then
            state_out(544) <= '1';
            state_out(576 downto 545) <= x"00000001";
          else
            state_out(704 downto 641) <= std_logic_vector(resize(unsigned(state_in(239 downto 208)), 64));
          end if;
        end if;
        -- b2: r3 = *(u32 *)(r6 + 30)
        if valid_in = '1' and enable_in(2) = '1' and state_in(544) = '0' and not (unsigned(state_in(527 downto 512)) < to_unsigned(30, 16)) then
          if unsigned(state_in(527 downto 512)) < to_unsigned(34, 16) then
            state_out(544) <= '1';
            state_out(576 downto 545) <= x"00000001";
          else
            state_out(768 downto 705) <= std_logic_vector(resize(unsigned(state_in(271 downto 240)), 64));
          end if;
        end if;
        -- b2: r4 = *(u16 *)(r6 + 34)
        if valid_in = '1' and enable_in(2) = '1' and state_in(544) = '0' and not (unsigned(state_in(527 downto 512)) < to_unsigned(30, 16)) and not (unsigned(state_in(527 downto 512)) < to_unsigned(34, 16)) then
          if unsigned(state_in(527 downto 512)) < to_unsigned(36, 16) then
            state_out(544) <= '1';
            state_out(576 downto 545) <= x"00000001";
          else
            state_out(832 downto 769) <= std_logic_vector(resize(unsigned(state_in(287 downto 272)), 64));
          end if;
        end if;
        -- b2: r5 = *(u16 *)(r6 + 36)
        if valid_in = '1' and enable_in(2) = '1' and state_in(544) = '0' and not (unsigned(state_in(527 downto 512)) < to_unsigned(30, 16)) and not (unsigned(state_in(527 downto 512)) < to_unsigned(34, 16)) and not (unsigned(state_in(527 downto 512)) < to_unsigned(36, 16)) then
          if unsigned(state_in(527 downto 512)) < to_unsigned(38, 16) then
            state_out(544) <= '1';
            state_out(576 downto 545) <= x"00000001";
          else
            state_out(896 downto 833) <= std_logic_vector(resize(unsigned(state_in(303 downto 288)), 64));
          end if;
        end if;
        -- b2: r8 = 0
        if valid_in = '1' and enable_in(2) = '1' and state_in(544) = '0' and not (unsigned(state_in(527 downto 512)) < to_unsigned(30, 16)) and not (unsigned(state_in(527 downto 512)) < to_unsigned(34, 16)) and not (unsigned(state_in(527 downto 512)) < to_unsigned(36, 16)) and not (unsigned(state_in(527 downto 512)) < to_unsigned(38, 16)) then
          state_out(1024 downto 961) <= x"0000000000000000";
        end if;
        -- b2: r1 = map[1]
        if valid_in = '1' and enable_in(2) = '1' and state_in(544) = '0' and not (unsigned(state_in(527 downto 512)) < to_unsigned(30, 16)) and not (unsigned(state_in(527 downto 512)) < to_unsigned(34, 16)) and not (unsigned(state_in(527 downto 512)) < to_unsigned(36, 16)) and not (unsigned(state_in(527 downto 512)) < to_unsigned(38, 16)) then
          state_out(640 downto 577) <= x"0000000030000001";
        end if;
      end if;
    end if;
  end process;
end architecture rtl;

-- stage 6: *(u32 *)(r10 - 16) = r2 | *(u32 *)(r10 - 12) = r3 | *(u16 *)(r10 - 8) = r4 | *(u16 *)(r10 - 6) = r5 | *(u32 *)(r10 - 4) = r8 | r2 = r10 | r2 += -16
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
use work.ehdl_pkg.all;

entity firewall_stage_006 is
  port (
    clk        : in  std_logic;
    rst        : in  std_logic;
    flush      : in  std_logic;
    valid_in   : in  std_logic;
    valid_out  : out std_logic;
    enable_in  : in  std_logic_vector(31 downto 0);
    enable_out : out std_logic_vector(31 downto 0);
    state_in   : in  std_logic_vector(1024 downto 0);
    state_out  : out std_logic_vector(896 downto 0)
  );
end entity firewall_stage_006;

architecture rtl of firewall_stage_006 is
begin
  process(clk)
  begin
    if rising_edge(clk) then
      if rst = '1' or flush = '1' then
        valid_out <= '0';
      else
        valid_out <= valid_in;
        enable_out <= enable_in;  -- predication fan-through
        state_out(511 downto 0) <= state_in(511 downto 0);
        state_out(527 downto 512) <= state_in(527 downto 512);
        state_out(543 downto 528) <= state_in(543 downto 528);
        state_out(544) <= state_in(544);
        state_out(576 downto 545) <= state_in(576 downto 545);
        state_out(640 downto 577) <= state_in(640 downto 577);  -- carry r1
        state_out(704 downto 641) <= state_in(704 downto 641);  -- carry r2
        state_out(768 downto 705) <= state_in(960 downto 897);  -- carry r6
        state_out(896 downto 769) <= (others => '0');
        -- b2: *(u32 *)(r10 - 16) = r2
        if valid_in = '1' and enable_in(2) = '1' and state_in(544) = '0' then
          state_out(800 downto 769) <= std_logic_vector(resize(unsigned(state_in(704 downto 641)), 32));
        end if;
        -- b2: *(u32 *)(r10 - 12) = r3
        if valid_in = '1' and enable_in(2) = '1' and state_in(544) = '0' then
          state_out(832 downto 801) <= std_logic_vector(resize(unsigned(state_in(768 downto 705)), 32));
        end if;
        -- b2: *(u16 *)(r10 - 8) = r4
        if valid_in = '1' and enable_in(2) = '1' and state_in(544) = '0' then
          state_out(848 downto 833) <= std_logic_vector(resize(unsigned(state_in(832 downto 769)), 16));
        end if;
        -- b2: *(u16 *)(r10 - 6) = r5
        if valid_in = '1' and enable_in(2) = '1' and state_in(544) = '0' then
          state_out(864 downto 849) <= std_logic_vector(resize(unsigned(state_in(896 downto 833)), 16));
        end if;
        -- b2: *(u32 *)(r10 - 4) = r8
        if valid_in = '1' and enable_in(2) = '1' and state_in(544) = '0' then
          state_out(896 downto 865) <= std_logic_vector(resize(unsigned(state_in(1024 downto 961)), 32));
        end if;
        -- b2: r2 = r10
        if valid_in = '1' and enable_in(2) = '1' and state_in(544) = '0' then
          state_out(704 downto 641) <= x"0000000000200200";
        end if;
        -- b2: r2 += -16
        if valid_in = '1' and enable_in(2) = '1' and state_in(544) = '0' then
          state_out(704 downto 641) <= std_logic_vector(unsigned((x"0000000000200200")) + unsigned(x"fffffffffffffff0"));
        end if;
      end if;
    end if;
  end process;
end architecture rtl;

-- stage 7: call 1
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
use work.ehdl_pkg.all;

entity firewall_stage_007 is
  port (
    clk        : in  std_logic;
    rst        : in  std_logic;
    flush      : in  std_logic;
    valid_in   : in  std_logic;
    valid_out  : out std_logic;
    enable_in  : in  std_logic_vector(31 downto 0);
    enable_out : out std_logic_vector(31 downto 0);
    state_in   : in  std_logic_vector(896 downto 0);
    state_out  : out std_logic_vector(736 downto 0);
    mp0_req   : out std_logic;
    mp0_op    : out std_logic_vector(7 downto 0);
    mp0_addr  : out std_logic_vector(63 downto 0);
    mp0_key   : out std_logic_vector(127 downto 0);
    mp0_wdata : out std_logic_vector(63 downto 0);
    mp0_rdata : in  std_logic_vector(63 downto 0);
    mp0_oob   : in  std_logic
  );
end entity firewall_stage_007;

architecture rtl of firewall_stage_007 is
begin
  mp0_req <= '1' when valid_in = '1' and enable_in(2) = '1' and state_in(544) = '0' else '0';
  mp0_op <= x"01";
  mp0_addr <= x"0000000000000000";
  mp0_key <= state_in(896 downto 769);
  mp0_wdata <= (others => '0');
  process(clk)
  begin
    if rising_edge(clk) then
      if rst = '1' or flush = '1' then
        valid_out <= '0';
      else
        valid_out <= valid_in;
        enable_out <= enable_in;  -- predication fan-through
        state_out(511 downto 0) <= state_in(511 downto 0);
        state_out(527 downto 512) <= state_in(527 downto 512);
        state_out(543 downto 528) <= state_in(543 downto 528);
        state_out(544) <= state_in(544);
        state_out(576 downto 545) <= state_in(576 downto 545);
        state_out(640 downto 577) <= (others => '0');  -- r0 defined here
        state_out(704 downto 641) <= state_in(768 downto 705);  -- carry r6
        state_out(736 downto 705) <= state_in(896 downto 865);
        -- b2: call 1
        if valid_in = '1' and enable_in(2) = '1' and state_in(544) = '0' then
          if mp0_oob = '1' then
            state_out(544) <= '1';
            state_out(576 downto 545) <= x"00000001";
          else
            state_out(640 downto 577) <= mp0_rdata;
          end if;
        end if;
      end if;
    end if;
  end process;
end architecture rtl;

-- stage 8: (helper_latency)
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
use work.ehdl_pkg.all;

entity firewall_stage_008 is
  port (
    clk        : in  std_logic;
    rst        : in  std_logic;
    flush      : in  std_logic;
    valid_in   : in  std_logic;
    valid_out  : out std_logic;
    enable_in  : in  std_logic_vector(31 downto 0);
    enable_out : out std_logic_vector(31 downto 0);
    state_in   : in  std_logic_vector(736 downto 0);
    state_out  : out std_logic_vector(736 downto 0)
  );
end entity firewall_stage_008;

architecture rtl of firewall_stage_008 is
begin
  process(clk)
  begin
    if rising_edge(clk) then
      if rst = '1' or flush = '1' then
        valid_out <= '0';
      else
        valid_out <= valid_in;
        enable_out <= enable_in;  -- predication fan-through
        state_out(511 downto 0) <= state_in(511 downto 0);
        state_out(527 downto 512) <= state_in(527 downto 512);
        state_out(543 downto 528) <= state_in(543 downto 528);
        state_out(544) <= state_in(544);
        state_out(576 downto 545) <= state_in(576 downto 545);
        state_out(640 downto 577) <= state_in(640 downto 577);  -- carry r0
        state_out(704 downto 641) <= state_in(704 downto 641);  -- carry r6
        state_out(736 downto 705) <= state_in(736 downto 705);
      end if;
    end if;
  end process;
end architecture rtl;

-- stage 9: if r0 != 0 goto +16
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
use work.ehdl_pkg.all;

entity firewall_stage_009 is
  port (
    clk        : in  std_logic;
    rst        : in  std_logic;
    flush      : in  std_logic;
    valid_in   : in  std_logic;
    valid_out  : out std_logic;
    enable_in  : in  std_logic_vector(31 downto 0);
    enable_out : out std_logic_vector(31 downto 0);
    state_in   : in  std_logic_vector(736 downto 0);
    state_out  : out std_logic_vector(736 downto 0)
  );
end entity firewall_stage_009;

architecture rtl of firewall_stage_009 is
begin
  process(clk)
  begin
    if rising_edge(clk) then
      if rst = '1' or flush = '1' then
        valid_out <= '0';
      else
        valid_out <= valid_in;
        enable_out <= enable_in;  -- predication fan-through
        state_out(511 downto 0) <= state_in(511 downto 0);
        state_out(527 downto 512) <= state_in(527 downto 512);
        state_out(543 downto 528) <= state_in(543 downto 528);
        state_out(544) <= state_in(544);
        state_out(576 downto 545) <= state_in(576 downto 545);
        state_out(640 downto 577) <= state_in(640 downto 577);  -- carry r0
        state_out(704 downto 641) <= state_in(704 downto 641);  -- carry r6
        state_out(736 downto 705) <= state_in(736 downto 705);
        -- b2: if r0 != 0 goto +16
        if valid_in = '1' and enable_in(2) = '1' and state_in(544) = '0' then
          if unsigned(state_in(640 downto 577)) /= unsigned(x"0000000000000000") then
            enable_out(5) <= '1';
          else
            enable_out(3) <= '1';
          end if;
        end if;
      end if;
    end if;
  end process;
end architecture rtl;

-- stage 10: r2 = *(u32 *)(r6 + 30) | r3 = *(u32 *)(r6 + 26) | r4 = *(u16 *)(r6 + 36) | r5 = *(u16 *)(r6 + 34) | r1 = map[1]
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
use work.ehdl_pkg.all;

entity firewall_stage_010 is
  port (
    clk        : in  std_logic;
    rst        : in  std_logic;
    flush      : in  std_logic;
    valid_in   : in  std_logic;
    valid_out  : out std_logic;
    enable_in  : in  std_logic_vector(31 downto 0);
    enable_out : out std_logic_vector(31 downto 0);
    state_in   : in  std_logic_vector(736 downto 0);
    state_out  : out std_logic_vector(1152 downto 0)
  );
end entity firewall_stage_010;

architecture rtl of firewall_stage_010 is
begin
  process(clk)
  begin
    if rising_edge(clk) then
      if rst = '1' or flush = '1' then
        valid_out <= '0';
      else
        valid_out <= valid_in;
        enable_out <= enable_in;  -- predication fan-through
        state_out(511 downto 0) <= state_in(511 downto 0);
        state_out(527 downto 512) <= state_in(527 downto 512);
        state_out(543 downto 528) <= state_in(543 downto 528);
        state_out(544) <= state_in(544);
        state_out(576 downto 545) <= state_in(576 downto 545);
        state_out(640 downto 577) <= state_in(640 downto 577);  -- carry r0
        state_out(704 downto 641) <= (others => '0');  -- r1 defined here
        state_out(768 downto 705) <= (others => '0');  -- r2 defined here
        state_out(832 downto 769) <= (others => '0');  -- r3 defined here
        state_out(896 downto 833) <= (others => '0');  -- r4 defined here
        state_out(960 downto 897) <= (others => '0');  -- r5 defined here
        state_out(1024 downto 961) <= state_in(704 downto 641);  -- carry r6
        state_out(1120 downto 1025) <= (others => '0');
        state_out(1152 downto 1121) <= state_in(736 downto 705);
        -- b3: r2 = *(u32 *)(r6 + 30)
        if valid_in = '1' and enable_in(3) = '1' and state_in(544) = '0' then
          if unsigned(state_in(527 downto 512)) < to_unsigned(34, 16) then
            state_out(544) <= '1';
            state_out(576 downto 545) <= x"00000001";
          else
            state_out(768 downto 705) <= std_logic_vector(resize(unsigned(state_in(271 downto 240)), 64));
          end if;
        end if;
        -- b3: r3 = *(u32 *)(r6 + 26)
        if valid_in = '1' and enable_in(3) = '1' and state_in(544) = '0' and not (unsigned(state_in(527 downto 512)) < to_unsigned(34, 16)) then
          if unsigned(state_in(527 downto 512)) < to_unsigned(30, 16) then
            state_out(544) <= '1';
            state_out(576 downto 545) <= x"00000001";
          else
            state_out(832 downto 769) <= std_logic_vector(resize(unsigned(state_in(239 downto 208)), 64));
          end if;
        end if;
        -- b3: r4 = *(u16 *)(r6 + 36)
        if valid_in = '1' and enable_in(3) = '1' and state_in(544) = '0' and not (unsigned(state_in(527 downto 512)) < to_unsigned(34, 16)) and not (unsigned(state_in(527 downto 512)) < to_unsigned(30, 16)) then
          if unsigned(state_in(527 downto 512)) < to_unsigned(38, 16) then
            state_out(544) <= '1';
            state_out(576 downto 545) <= x"00000001";
          else
            state_out(896 downto 833) <= std_logic_vector(resize(unsigned(state_in(303 downto 288)), 64));
          end if;
        end if;
        -- b3: r5 = *(u16 *)(r6 + 34)
        if valid_in = '1' and enable_in(3) = '1' and state_in(544) = '0' and not (unsigned(state_in(527 downto 512)) < to_unsigned(34, 16)) and not (unsigned(state_in(527 downto 512)) < to_unsigned(30, 16)) and not (unsigned(state_in(527 downto 512)) < to_unsigned(38, 16)) then
          if unsigned(state_in(527 downto 512)) < to_unsigned(36, 16) then
            state_out(544) <= '1';
            state_out(576 downto 545) <= x"00000001";
          else
            state_out(960 downto 897) <= std_logic_vector(resize(unsigned(state_in(287 downto 272)), 64));
          end if;
        end if;
        -- b3: r1 = map[1]
        if valid_in = '1' and enable_in(3) = '1' and state_in(544) = '0' and not (unsigned(state_in(527 downto 512)) < to_unsigned(34, 16)) and not (unsigned(state_in(527 downto 512)) < to_unsigned(30, 16)) and not (unsigned(state_in(527 downto 512)) < to_unsigned(38, 16)) and not (unsigned(state_in(527 downto 512)) < to_unsigned(36, 16)) then
          state_out(704 downto 641) <= x"0000000030000001";
        end if;
      end if;
    end if;
  end process;
end architecture rtl;

-- stage 11: *(u32 *)(r10 - 16) = r2 | *(u32 *)(r10 - 12) = r3 | *(u16 *)(r10 - 8) = r4 | *(u16 *)(r10 - 6) = r5 | r2 = r10 | r2 += -16
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
use work.ehdl_pkg.all;

entity firewall_stage_011 is
  port (
    clk        : in  std_logic;
    rst        : in  std_logic;
    flush      : in  std_logic;
    valid_in   : in  std_logic;
    valid_out  : out std_logic;
    enable_in  : in  std_logic_vector(31 downto 0);
    enable_out : out std_logic_vector(31 downto 0);
    state_in   : in  std_logic_vector(1152 downto 0);
    state_out  : out std_logic_vector(896 downto 0)
  );
end entity firewall_stage_011;

architecture rtl of firewall_stage_011 is
begin
  process(clk)
  begin
    if rising_edge(clk) then
      if rst = '1' or flush = '1' then
        valid_out <= '0';
      else
        valid_out <= valid_in;
        enable_out <= enable_in;  -- predication fan-through
        state_out(511 downto 0) <= state_in(511 downto 0);
        state_out(527 downto 512) <= state_in(527 downto 512);
        state_out(543 downto 528) <= state_in(543 downto 528);
        state_out(544) <= state_in(544);
        state_out(576 downto 545) <= state_in(576 downto 545);
        state_out(640 downto 577) <= state_in(640 downto 577);  -- carry r0
        state_out(704 downto 641) <= state_in(704 downto 641);  -- carry r1
        state_out(768 downto 705) <= state_in(768 downto 705);  -- carry r2
        state_out(896 downto 769) <= state_in(1152 downto 1025);
        -- b3: *(u32 *)(r10 - 16) = r2
        if valid_in = '1' and enable_in(3) = '1' and state_in(544) = '0' then
          state_out(800 downto 769) <= std_logic_vector(resize(unsigned(state_in(768 downto 705)), 32));
        end if;
        -- b3: *(u32 *)(r10 - 12) = r3
        if valid_in = '1' and enable_in(3) = '1' and state_in(544) = '0' then
          state_out(832 downto 801) <= std_logic_vector(resize(unsigned(state_in(832 downto 769)), 32));
        end if;
        -- b3: *(u16 *)(r10 - 8) = r4
        if valid_in = '1' and enable_in(3) = '1' and state_in(544) = '0' then
          state_out(848 downto 833) <= std_logic_vector(resize(unsigned(state_in(896 downto 833)), 16));
        end if;
        -- b3: *(u16 *)(r10 - 6) = r5
        if valid_in = '1' and enable_in(3) = '1' and state_in(544) = '0' then
          state_out(864 downto 849) <= std_logic_vector(resize(unsigned(state_in(960 downto 897)), 16));
        end if;
        -- b3: r2 = r10
        if valid_in = '1' and enable_in(3) = '1' and state_in(544) = '0' then
          state_out(768 downto 705) <= x"0000000000200200";
        end if;
        -- b3: r2 += -16
        if valid_in = '1' and enable_in(3) = '1' and state_in(544) = '0' then
          state_out(768 downto 705) <= std_logic_vector(unsigned((x"0000000000200200")) + unsigned(x"fffffffffffffff0"));
        end if;
      end if;
    end if;
  end process;
end architecture rtl;

-- stage 12: call 1
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
use work.ehdl_pkg.all;

entity firewall_stage_012 is
  port (
    clk        : in  std_logic;
    rst        : in  std_logic;
    flush      : in  std_logic;
    valid_in   : in  std_logic;
    valid_out  : out std_logic;
    enable_in  : in  std_logic_vector(31 downto 0);
    enable_out : out std_logic_vector(31 downto 0);
    state_in   : in  std_logic_vector(896 downto 0);
    state_out  : out std_logic_vector(640 downto 0);
    mp0_req   : out std_logic;
    mp0_op    : out std_logic_vector(7 downto 0);
    mp0_addr  : out std_logic_vector(63 downto 0);
    mp0_key   : out std_logic_vector(127 downto 0);
    mp0_wdata : out std_logic_vector(63 downto 0);
    mp0_rdata : in  std_logic_vector(63 downto 0);
    mp0_oob   : in  std_logic
  );
end entity firewall_stage_012;

architecture rtl of firewall_stage_012 is
begin
  mp0_req <= '1' when valid_in = '1' and enable_in(3) = '1' and state_in(544) = '0' else '0';
  mp0_op <= x"01";
  mp0_addr <= x"0000000000000000";
  mp0_key <= state_in(896 downto 769);
  mp0_wdata <= (others => '0');
  process(clk)
  begin
    if rising_edge(clk) then
      if rst = '1' or flush = '1' then
        valid_out <= '0';
      else
        valid_out <= valid_in;
        enable_out <= enable_in;  -- predication fan-through
        state_out(511 downto 0) <= state_in(511 downto 0);
        state_out(527 downto 512) <= state_in(527 downto 512);
        state_out(543 downto 528) <= state_in(543 downto 528);
        state_out(544) <= state_in(544);
        state_out(576 downto 545) <= state_in(576 downto 545);
        state_out(640 downto 577) <= state_in(640 downto 577);  -- carry r0
        -- b3: call 1
        if valid_in = '1' and enable_in(3) = '1' and state_in(544) = '0' then
          if mp0_oob = '1' then
            state_out(544) <= '1';
            state_out(576 downto 545) <= x"00000001";
          else
            state_out(640 downto 577) <= mp0_rdata;
          end if;
        end if;
      end if;
    end if;
  end process;
end architecture rtl;

-- stage 13: (helper_latency)
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
use work.ehdl_pkg.all;

entity firewall_stage_013 is
  port (
    clk        : in  std_logic;
    rst        : in  std_logic;
    flush      : in  std_logic;
    valid_in   : in  std_logic;
    valid_out  : out std_logic;
    enable_in  : in  std_logic_vector(31 downto 0);
    enable_out : out std_logic_vector(31 downto 0);
    state_in   : in  std_logic_vector(640 downto 0);
    state_out  : out std_logic_vector(640 downto 0)
  );
end entity firewall_stage_013;

architecture rtl of firewall_stage_013 is
begin
  process(clk)
  begin
    if rising_edge(clk) then
      if rst = '1' or flush = '1' then
        valid_out <= '0';
      else
        valid_out <= valid_in;
        enable_out <= enable_in;  -- predication fan-through
        state_out(511 downto 0) <= state_in(511 downto 0);
        state_out(527 downto 512) <= state_in(527 downto 512);
        state_out(543 downto 528) <= state_in(543 downto 528);
        state_out(544) <= state_in(544);
        state_out(576 downto 545) <= state_in(576 downto 545);
        state_out(640 downto 577) <= state_in(640 downto 577);  -- carry r0
      end if;
    end if;
  end process;
end architecture rtl;

-- stage 14: if r0 != 0 goto +2
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
use work.ehdl_pkg.all;

entity firewall_stage_014 is
  port (
    clk        : in  std_logic;
    rst        : in  std_logic;
    flush      : in  std_logic;
    valid_in   : in  std_logic;
    valid_out  : out std_logic;
    enable_in  : in  std_logic_vector(31 downto 0);
    enable_out : out std_logic_vector(31 downto 0);
    state_in   : in  std_logic_vector(640 downto 0);
    state_out  : out std_logic_vector(640 downto 0)
  );
end entity firewall_stage_014;

architecture rtl of firewall_stage_014 is
begin
  process(clk)
  begin
    if rising_edge(clk) then
      if rst = '1' or flush = '1' then
        valid_out <= '0';
      else
        valid_out <= valid_in;
        enable_out <= enable_in;  -- predication fan-through
        state_out(511 downto 0) <= state_in(511 downto 0);
        state_out(527 downto 512) <= state_in(527 downto 512);
        state_out(543 downto 528) <= state_in(543 downto 528);
        state_out(544) <= state_in(544);
        state_out(576 downto 545) <= state_in(576 downto 545);
        state_out(640 downto 577) <= state_in(640 downto 577);  -- carry r0
        -- b3: if r0 != 0 goto +2
        if valid_in = '1' and enable_in(3) = '1' and state_in(544) = '0' then
          if unsigned(state_in(640 downto 577)) /= unsigned(x"0000000000000000") then
            enable_out(5) <= '1';
          else
            enable_out(4) <= '1';
          end if;
        end if;
      end if;
    end if;
  end process;
end architecture rtl;

-- stage 15: r0 = 1
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
use work.ehdl_pkg.all;

entity firewall_stage_015 is
  port (
    clk        : in  std_logic;
    rst        : in  std_logic;
    flush      : in  std_logic;
    valid_in   : in  std_logic;
    valid_out  : out std_logic;
    enable_in  : in  std_logic_vector(31 downto 0);
    enable_out : out std_logic_vector(31 downto 0);
    state_in   : in  std_logic_vector(640 downto 0);
    state_out  : out std_logic_vector(640 downto 0)
  );
end entity firewall_stage_015;

architecture rtl of firewall_stage_015 is
begin
  process(clk)
  begin
    if rising_edge(clk) then
      if rst = '1' or flush = '1' then
        valid_out <= '0';
      else
        valid_out <= valid_in;
        enable_out <= enable_in;  -- predication fan-through
        state_out(511 downto 0) <= state_in(511 downto 0);
        state_out(527 downto 512) <= state_in(527 downto 512);
        state_out(543 downto 528) <= state_in(543 downto 528);
        state_out(544) <= state_in(544);
        state_out(576 downto 545) <= state_in(576 downto 545);
        state_out(640 downto 577) <= state_in(640 downto 577);  -- carry r0
        -- b4: r0 = 1
        if valid_in = '1' and enable_in(4) = '1' and state_in(544) = '0' then
          state_out(640 downto 577) <= x"0000000000000001";
        end if;
      end if;
    end if;
  end process;
end architecture rtl;

-- stage 16: exit
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
use work.ehdl_pkg.all;

entity firewall_stage_016 is
  port (
    clk        : in  std_logic;
    rst        : in  std_logic;
    flush      : in  std_logic;
    valid_in   : in  std_logic;
    valid_out  : out std_logic;
    enable_in  : in  std_logic_vector(31 downto 0);
    enable_out : out std_logic_vector(31 downto 0);
    state_in   : in  std_logic_vector(640 downto 0);
    state_out  : out std_logic_vector(640 downto 0)
  );
end entity firewall_stage_016;

architecture rtl of firewall_stage_016 is
begin
  process(clk)
  begin
    if rising_edge(clk) then
      if rst = '1' or flush = '1' then
        valid_out <= '0';
      else
        valid_out <= valid_in;
        enable_out <= enable_in;  -- predication fan-through
        state_out(511 downto 0) <= state_in(511 downto 0);
        state_out(527 downto 512) <= state_in(527 downto 512);
        state_out(543 downto 528) <= state_in(543 downto 528);
        state_out(544) <= state_in(544);
        state_out(576 downto 545) <= state_in(576 downto 545);
        state_out(640 downto 577) <= state_in(640 downto 577);  -- carry r0
        -- b4: exit
        if valid_in = '1' and enable_in(4) = '1' and state_in(544) = '0' then
          state_out(544) <= '1';
          state_out(576 downto 545) <= std_logic_vector(resize(unsigned(state_in(640 downto 577)), 32));
        end if;
      end if;
    end if;
  end process;
end architecture rtl;

-- stage 17: r1 = 1
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
use work.ehdl_pkg.all;

entity firewall_stage_017 is
  port (
    clk        : in  std_logic;
    rst        : in  std_logic;
    flush      : in  std_logic;
    valid_in   : in  std_logic;
    valid_out  : out std_logic;
    enable_in  : in  std_logic_vector(31 downto 0);
    enable_out : out std_logic_vector(31 downto 0);
    state_in   : in  std_logic_vector(640 downto 0);
    state_out  : out std_logic_vector(704 downto 0)
  );
end entity firewall_stage_017;

architecture rtl of firewall_stage_017 is
begin
  process(clk)
  begin
    if rising_edge(clk) then
      if rst = '1' or flush = '1' then
        valid_out <= '0';
      else
        valid_out <= valid_in;
        enable_out <= enable_in;  -- predication fan-through
        state_out(511 downto 0) <= state_in(511 downto 0);
        state_out(527 downto 512) <= state_in(527 downto 512);
        state_out(543 downto 528) <= state_in(543 downto 528);
        state_out(544) <= state_in(544);
        state_out(576 downto 545) <= state_in(576 downto 545);
        state_out(640 downto 577) <= state_in(640 downto 577);  -- carry r0
        state_out(704 downto 641) <= (others => '0');  -- r1 defined here
        -- b5: r1 = 1
        if valid_in = '1' and enable_in(5) = '1' and state_in(544) = '0' then
          state_out(704 downto 641) <= x"0000000000000001";
        end if;
      end if;
    end if;
  end process;
end architecture rtl;

-- stage 18: lock *(u64 *)(r0 + 0) += r1
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
use work.ehdl_pkg.all;

entity firewall_stage_018 is
  port (
    clk        : in  std_logic;
    rst        : in  std_logic;
    flush      : in  std_logic;
    valid_in   : in  std_logic;
    valid_out  : out std_logic;
    enable_in  : in  std_logic_vector(31 downto 0);
    enable_out : out std_logic_vector(31 downto 0);
    state_in   : in  std_logic_vector(704 downto 0);
    state_out  : out std_logic_vector(576 downto 0);
    ap_req      : out std_logic;
    ap_op       : out std_logic_vector(7 downto 0);
    ap_size     : out std_logic_vector(3 downto 0);
    ap_addr     : out std_logic_vector(63 downto 0);
    ap_wdata    : out std_logic_vector(63 downto 0);
    ap_expected : out std_logic_vector(63 downto 0);
    ap_old      : in  std_logic_vector(63 downto 0);
    ap_oob      : in  std_logic
  );
end entity firewall_stage_018;

architecture rtl of firewall_stage_018 is
begin
  ap_req <= '1' when valid_in = '1' and enable_in(5) = '1' and state_in(544) = '0' else '0';
  ap_op <= x"00";
  ap_size <= x"8";
  ap_addr <= std_logic_vector(unsigned(state_in(640 downto 577)) + unsigned(x"0000000000000000"));
  ap_wdata <= state_in(704 downto 641);
  ap_expected <= x"0000000000000000";
  process(clk)
  begin
    if rising_edge(clk) then
      if rst = '1' or flush = '1' then
        valid_out <= '0';
      else
        valid_out <= valid_in;
        enable_out <= enable_in;  -- predication fan-through
        state_out(511 downto 0) <= state_in(511 downto 0);
        state_out(527 downto 512) <= state_in(527 downto 512);
        state_out(543 downto 528) <= state_in(543 downto 528);
        state_out(544) <= state_in(544);
        state_out(576 downto 545) <= state_in(576 downto 545);
        -- b5: lock *(u64 *)(r0 + 0) += r1
        if valid_in = '1' and enable_in(5) = '1' and state_in(544) = '0' then
          if ap_oob = '1' then
            state_out(544) <= '1';
            state_out(576 downto 545) <= x"00000001";
          else
          end if;
        end if;
      end if;
    end if;
  end process;
end architecture rtl;

-- stage 19: r0 = 3
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
use work.ehdl_pkg.all;

entity firewall_stage_019 is
  port (
    clk        : in  std_logic;
    rst        : in  std_logic;
    flush      : in  std_logic;
    valid_in   : in  std_logic;
    valid_out  : out std_logic;
    enable_in  : in  std_logic_vector(31 downto 0);
    enable_out : out std_logic_vector(31 downto 0);
    state_in   : in  std_logic_vector(576 downto 0);
    state_out  : out std_logic_vector(640 downto 0)
  );
end entity firewall_stage_019;

architecture rtl of firewall_stage_019 is
begin
  process(clk)
  begin
    if rising_edge(clk) then
      if rst = '1' or flush = '1' then
        valid_out <= '0';
      else
        valid_out <= valid_in;
        enable_out <= enable_in;  -- predication fan-through
        state_out(511 downto 0) <= state_in(511 downto 0);
        state_out(527 downto 512) <= state_in(527 downto 512);
        state_out(543 downto 528) <= state_in(543 downto 528);
        state_out(544) <= state_in(544);
        state_out(576 downto 545) <= state_in(576 downto 545);
        state_out(640 downto 577) <= (others => '0');  -- r0 defined here
        -- b5: r0 = 3
        if valid_in = '1' and enable_in(5) = '1' and state_in(544) = '0' then
          state_out(640 downto 577) <= x"0000000000000003";
        end if;
      end if;
    end if;
  end process;
end architecture rtl;

-- stage 20: exit
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
use work.ehdl_pkg.all;

entity firewall_stage_020 is
  port (
    clk        : in  std_logic;
    rst        : in  std_logic;
    flush      : in  std_logic;
    valid_in   : in  std_logic;
    valid_out  : out std_logic;
    enable_in  : in  std_logic_vector(31 downto 0);
    enable_out : out std_logic_vector(31 downto 0);
    state_in   : in  std_logic_vector(640 downto 0);
    state_out  : out std_logic_vector(576 downto 0)
  );
end entity firewall_stage_020;

architecture rtl of firewall_stage_020 is
begin
  process(clk)
  begin
    if rising_edge(clk) then
      if rst = '1' or flush = '1' then
        valid_out <= '0';
      else
        valid_out <= valid_in;
        enable_out <= enable_in;  -- predication fan-through
        state_out(511 downto 0) <= state_in(511 downto 0);
        state_out(527 downto 512) <= state_in(527 downto 512);
        state_out(543 downto 528) <= state_in(543 downto 528);
        state_out(544) <= state_in(544);
        state_out(576 downto 545) <= state_in(576 downto 545);
        -- b5: exit
        if valid_in = '1' and enable_in(5) = '1' and state_in(544) = '0' then
          state_out(544) <= '1';
          state_out(576 downto 545) <= std_logic_vector(resize(unsigned(state_in(640 downto 577)), 32));
        end if;
      end if;
    end if;
  end process;
end architecture rtl;

-- stage 21: r0 = 2
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
use work.ehdl_pkg.all;

entity firewall_stage_021 is
  port (
    clk        : in  std_logic;
    rst        : in  std_logic;
    flush      : in  std_logic;
    valid_in   : in  std_logic;
    valid_out  : out std_logic;
    enable_in  : in  std_logic_vector(31 downto 0);
    enable_out : out std_logic_vector(31 downto 0);
    state_in   : in  std_logic_vector(576 downto 0);
    state_out  : out std_logic_vector(640 downto 0)
  );
end entity firewall_stage_021;

architecture rtl of firewall_stage_021 is
begin
  process(clk)
  begin
    if rising_edge(clk) then
      if rst = '1' or flush = '1' then
        valid_out <= '0';
      else
        valid_out <= valid_in;
        enable_out <= enable_in;  -- predication fan-through
        state_out(511 downto 0) <= state_in(511 downto 0);
        state_out(527 downto 512) <= state_in(527 downto 512);
        state_out(543 downto 528) <= state_in(543 downto 528);
        state_out(544) <= state_in(544);
        state_out(576 downto 545) <= state_in(576 downto 545);
        state_out(640 downto 577) <= (others => '0');  -- r0 defined here
        -- b6: r0 = 2
        if valid_in = '1' and enable_in(6) = '1' and state_in(544) = '0' then
          state_out(640 downto 577) <= x"0000000000000002";
        end if;
      end if;
    end if;
  end process;
end architecture rtl;

-- stage 22: exit
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
use work.ehdl_pkg.all;

entity firewall_stage_022 is
  port (
    clk        : in  std_logic;
    rst        : in  std_logic;
    flush      : in  std_logic;
    valid_in   : in  std_logic;
    valid_out  : out std_logic;
    enable_in  : in  std_logic_vector(31 downto 0);
    enable_out : out std_logic_vector(31 downto 0);
    state_in   : in  std_logic_vector(640 downto 0);
    state_out  : out std_logic_vector(576 downto 0)
  );
end entity firewall_stage_022;

architecture rtl of firewall_stage_022 is
begin
  process(clk)
  begin
    if rising_edge(clk) then
      if rst = '1' or flush = '1' then
        valid_out <= '0';
      else
        valid_out <= valid_in;
        enable_out <= enable_in;  -- predication fan-through
        state_out(511 downto 0) <= state_in(511 downto 0);
        state_out(527 downto 512) <= state_in(527 downto 512);
        state_out(543 downto 528) <= state_in(543 downto 528);
        state_out(544) <= state_in(544);
        state_out(576 downto 545) <= state_in(576 downto 545);
        -- b6: exit
        if valid_in = '1' and enable_in(6) = '1' and state_in(544) = '0' then
          state_out(544) <= '1';
          state_out(576 downto 545) <= std_logic_vector(resize(unsigned(state_in(640 downto 577)), 32));
        end if;
      end if;
    end if;
  end process;
end architecture rtl;

-- top-level pipeline wrapper (22 stages)
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
use work.ehdl_pkg.all;

entity ehdl_firewall is
  port (
    pipe_clk      : in  std_logic;
    shell_clk     : in  std_logic;
    rst           : in  std_logic;
    s_axis_tdata  : in  std_logic_vector(511 downto 0);
    s_axis_tlen   : in  std_logic_vector(15 downto 0);
    s_axis_tvalid : in  std_logic;
    s_axis_tlast  : in  std_logic;
    s_axis_tready : out std_logic;
    m_axis_tdata  : out std_logic_vector(511 downto 0);
    m_axis_tlen   : out std_logic_vector(15 downto 0);
    m_axis_tverdict : out std_logic_vector(31 downto 0);
    m_axis_tvalid : out std_logic;
    m_axis_tlast  : out std_logic;
    m_axis_tready : in  std_logic
  );
end entity ehdl_firewall;

architecture rtl of ehdl_firewall is
  signal tie_one : std_logic;
  signal tie_zero : std_logic;
  signal tie_addr : std_logic_vector(31 downto 0);
  signal fifo_in_bus : std_logic_vector(576 downto 0);
  signal fifo_in_q : std_logic_vector(576 downto 0);
  signal fifo_in_empty : std_logic;
  signal fifo_in_full : std_logic;
  signal inj_frame : std_logic_vector(511 downto 0);
  signal inj_tlen : std_logic_vector(15 downto 0);
  signal inj_done : std_logic;
  signal inj_verdict : std_logic_vector(31 downto 0);
  signal pkt_window : std_logic_vector(511 downto 0);
  signal v0 : std_logic;
  signal e0 : std_logic_vector(31 downto 0);
  signal st0 : std_logic_vector(640 downto 0);
  signal v1 : std_logic;
  signal e1 : std_logic_vector(31 downto 0);
  signal st1 : std_logic_vector(704 downto 0);
  signal v2 : std_logic;
  signal e2 : std_logic_vector(31 downto 0);
  signal st2 : std_logic_vector(640 downto 0);
  signal v3 : std_logic;
  signal e3 : std_logic_vector(31 downto 0);
  signal st3 : std_logic_vector(704 downto 0);
  signal v4 : std_logic;
  signal e4 : std_logic_vector(31 downto 0);
  signal st4 : std_logic_vector(640 downto 0);
  signal v5 : std_logic;
  signal e5 : std_logic_vector(31 downto 0);
  signal st5 : std_logic_vector(1024 downto 0);
  signal v6 : std_logic;
  signal e6 : std_logic_vector(31 downto 0);
  signal st6 : std_logic_vector(896 downto 0);
  signal v7 : std_logic;
  signal e7 : std_logic_vector(31 downto 0);
  signal st7 : std_logic_vector(736 downto 0);
  signal v8 : std_logic;
  signal e8 : std_logic_vector(31 downto 0);
  signal st8 : std_logic_vector(736 downto 0);
  signal v9 : std_logic;
  signal e9 : std_logic_vector(31 downto 0);
  signal st9 : std_logic_vector(736 downto 0);
  signal v10 : std_logic;
  signal e10 : std_logic_vector(31 downto 0);
  signal st10 : std_logic_vector(1152 downto 0);
  signal v11 : std_logic;
  signal e11 : std_logic_vector(31 downto 0);
  signal st11 : std_logic_vector(896 downto 0);
  signal v12 : std_logic;
  signal e12 : std_logic_vector(31 downto 0);
  signal st12 : std_logic_vector(640 downto 0);
  signal v13 : std_logic;
  signal e13 : std_logic_vector(31 downto 0);
  signal st13 : std_logic_vector(640 downto 0);
  signal v14 : std_logic;
  signal e14 : std_logic_vector(31 downto 0);
  signal st14 : std_logic_vector(640 downto 0);
  signal v15 : std_logic;
  signal e15 : std_logic_vector(31 downto 0);
  signal st15 : std_logic_vector(640 downto 0);
  signal v16 : std_logic;
  signal e16 : std_logic_vector(31 downto 0);
  signal st16 : std_logic_vector(640 downto 0);
  signal v17 : std_logic;
  signal e17 : std_logic_vector(31 downto 0);
  signal st17 : std_logic_vector(704 downto 0);
  signal v18 : std_logic;
  signal e18 : std_logic_vector(31 downto 0);
  signal st18 : std_logic_vector(576 downto 0);
  signal v19 : std_logic;
  signal e19 : std_logic_vector(31 downto 0);
  signal st19 : std_logic_vector(640 downto 0);
  signal v20 : std_logic;
  signal e20 : std_logic_vector(31 downto 0);
  signal st20 : std_logic_vector(576 downto 0);
  signal v21 : std_logic;
  signal e21 : std_logic_vector(31 downto 0);
  signal st21 : std_logic_vector(640 downto 0);
  signal v22 : std_logic;
  signal e22 : std_logic_vector(31 downto 0);
  signal st22 : std_logic_vector(576 downto 0);
  signal flush_sig : std_logic;
  signal s7_mp0_req : std_logic;
  signal s7_mp0_op : std_logic_vector(7 downto 0);
  signal s7_mp0_addr : std_logic_vector(63 downto 0);
  signal s7_mp0_key : std_logic_vector(127 downto 0);
  signal s7_mp0_wdata : std_logic_vector(63 downto 0);
  signal s12_mp0_req : std_logic;
  signal s12_mp0_op : std_logic_vector(7 downto 0);
  signal s12_mp0_addr : std_logic_vector(63 downto 0);
  signal s12_mp0_key : std_logic_vector(127 downto 0);
  signal s12_mp0_wdata : std_logic_vector(63 downto 0);
  signal s18_ap_req : std_logic;
  signal s18_ap_op : std_logic_vector(7 downto 0);
  signal s18_ap_size : std_logic_vector(3 downto 0);
  signal s18_ap_addr : std_logic_vector(63 downto 0);
  signal s18_ap_wdata : std_logic_vector(63 downto 0);
  signal s18_ap_expected : std_logic_vector(63 downto 0);
  signal m1_ch0_req : std_logic;
  signal m1_ch0_op : std_logic_vector(7 downto 0);
  signal m1_ch0_addr : std_logic_vector(63 downto 0);
  signal m1_ch0_key : std_logic_vector(127 downto 0);
  signal m1_ch0_wdata : std_logic_vector(63 downto 0);
  signal m1_ch0_rdata : std_logic_vector(63 downto 0);
  signal m1_ch0_oob : std_logic;
  signal m1_at_req : std_logic;
  signal m1_at_op : std_logic_vector(7 downto 0);
  signal m1_at_size : std_logic_vector(3 downto 0);
  signal m1_at_addr : std_logic_vector(63 downto 0);
  signal m1_at_wdata : std_logic_vector(63 downto 0);
  signal m1_at_expected : std_logic_vector(63 downto 0);
  signal m1_at_old : std_logic_vector(63 downto 0);
  signal m1_at_oob : std_logic;
  signal m1_host_wdata : std_logic_vector(63 downto 0);
  signal m1_host_rdata : std_logic_vector(63 downto 0);
  signal fifo_out_bus : std_logic_vector(576 downto 0);
  signal fifo_out_q : std_logic_vector(576 downto 0);
  signal fifo_out_empty : std_logic;
  signal fifo_out_full : std_logic;
begin
  tie_one <= '1';
  tie_zero <= '0';
  tie_addr <= (others => '0');
  s_axis_tready <= '1';
  fifo_in_bus(527 downto 0) <= s_axis_tdata & s_axis_tlen;
  fifo_in_bus(576 downto 528) <= (others => '0');
  input_fifo : entity work.ehdl_async_fifo port map (
    wr_clk => shell_clk, rd_clk => pipe_clk, rst => rst,
    wr_en => s_axis_tvalid, wr_data => fifo_in_bus,
    rd_en => tie_one, rd_data => fifo_in_q,
    empty => fifo_in_empty, full => fifo_in_full);
  inj_frame <= fifo_in_q(527 downto 16);
  inj_tlen <= fifo_in_q(15 downto 0);
  inj_done <= '1' when unsigned(inj_tlen) < to_unsigned(42, 16) else '0';
  inj_verdict <= x"00000002" when unsigned(inj_tlen) < to_unsigned(42, 16) else x"00000000";
  v0 <= not fifo_in_empty;
  e0 <= x"00000001";
  st0(511 downto 0) <= inj_frame(511 downto 0);
  st0(527 downto 512) <= inj_tlen;
  st0(543 downto 528) <= x"0000";
  st0(544) <= inj_done;
  st0(576 downto 545) <= inj_verdict;
  st0(640 downto 577) <= std_logic_vector(resize(unsigned(x"00100100"), 64));
  process(pipe_clk)
  begin
    if rising_edge(pipe_clk) then
      if v0 = '1' then
        pkt_window <= inj_frame;  -- frame bus for later joins
      end if;
    end if;
  end process;
  m1_host_wdata <= (others => '0');
  s001 : entity work.firewall_stage_001 port map (
    clk => pipe_clk,
    rst => rst,
    flush => flush_sig,
    valid_in => v0,
    valid_out => v1,
    enable_in => e0,
    enable_out => e1,
    state_in => st0,
    state_out => st1);
  s002 : entity work.firewall_stage_002 port map (
    clk => pipe_clk,
    rst => rst,
    flush => flush_sig,
    valid_in => v1,
    valid_out => v2,
    enable_in => e1,
    enable_out => e2,
    state_in => st1,
    state_out => st2);
  s003 : entity work.firewall_stage_003 port map (
    clk => pipe_clk,
    rst => rst,
    flush => flush_sig,
    valid_in => v2,
    valid_out => v3,
    enable_in => e2,
    enable_out => e3,
    state_in => st2,
    state_out => st3);
  s004 : entity work.firewall_stage_004 port map (
    clk => pipe_clk,
    rst => rst,
    flush => flush_sig,
    valid_in => v3,
    valid_out => v4,
    enable_in => e3,
    enable_out => e4,
    state_in => st3,
    state_out => st4);
  s005 : entity work.firewall_stage_005 port map (
    clk => pipe_clk,
    rst => rst,
    flush => flush_sig,
    valid_in => v4,
    valid_out => v5,
    enable_in => e4,
    enable_out => e5,
    state_in => st4,
    state_out => st5);
  s006 : entity work.firewall_stage_006 port map (
    clk => pipe_clk,
    rst => rst,
    flush => flush_sig,
    valid_in => v5,
    valid_out => v6,
    enable_in => e5,
    enable_out => e6,
    state_in => st5,
    state_out => st6);
  s007 : entity work.firewall_stage_007 port map (
    clk => pipe_clk,
    rst => rst,
    flush => flush_sig,
    valid_in => v6,
    valid_out => v7,
    enable_in => e6,
    enable_out => e7,
    state_in => st6,
    state_out => st7,
    mp0_req => s7_mp0_req,
    mp0_op => s7_mp0_op,
    mp0_addr => s7_mp0_addr,
    mp0_key => s7_mp0_key,
    mp0_wdata => s7_mp0_wdata,
    mp0_rdata => m1_ch0_rdata,
    mp0_oob => m1_ch0_oob);
  s008 : entity work.firewall_stage_008 port map (
    clk => pipe_clk,
    rst => rst,
    flush => flush_sig,
    valid_in => v7,
    valid_out => v8,
    enable_in => e7,
    enable_out => e8,
    state_in => st7,
    state_out => st8);
  s009 : entity work.firewall_stage_009 port map (
    clk => pipe_clk,
    rst => rst,
    flush => flush_sig,
    valid_in => v8,
    valid_out => v9,
    enable_in => e8,
    enable_out => e9,
    state_in => st8,
    state_out => st9);
  s010 : entity work.firewall_stage_010 port map (
    clk => pipe_clk,
    rst => rst,
    flush => flush_sig,
    valid_in => v9,
    valid_out => v10,
    enable_in => e9,
    enable_out => e10,
    state_in => st9,
    state_out => st10);
  s011 : entity work.firewall_stage_011 port map (
    clk => pipe_clk,
    rst => rst,
    flush => flush_sig,
    valid_in => v10,
    valid_out => v11,
    enable_in => e10,
    enable_out => e11,
    state_in => st10,
    state_out => st11);
  s012 : entity work.firewall_stage_012 port map (
    clk => pipe_clk,
    rst => rst,
    flush => flush_sig,
    valid_in => v11,
    valid_out => v12,
    enable_in => e11,
    enable_out => e12,
    state_in => st11,
    state_out => st12,
    mp0_req => s12_mp0_req,
    mp0_op => s12_mp0_op,
    mp0_addr => s12_mp0_addr,
    mp0_key => s12_mp0_key,
    mp0_wdata => s12_mp0_wdata,
    mp0_rdata => m1_ch0_rdata,
    mp0_oob => m1_ch0_oob);
  s013 : entity work.firewall_stage_013 port map (
    clk => pipe_clk,
    rst => rst,
    flush => flush_sig,
    valid_in => v12,
    valid_out => v13,
    enable_in => e12,
    enable_out => e13,
    state_in => st12,
    state_out => st13);
  s014 : entity work.firewall_stage_014 port map (
    clk => pipe_clk,
    rst => rst,
    flush => flush_sig,
    valid_in => v13,
    valid_out => v14,
    enable_in => e13,
    enable_out => e14,
    state_in => st13,
    state_out => st14);
  s015 : entity work.firewall_stage_015 port map (
    clk => pipe_clk,
    rst => rst,
    flush => flush_sig,
    valid_in => v14,
    valid_out => v15,
    enable_in => e14,
    enable_out => e15,
    state_in => st14,
    state_out => st15);
  s016 : entity work.firewall_stage_016 port map (
    clk => pipe_clk,
    rst => rst,
    flush => flush_sig,
    valid_in => v15,
    valid_out => v16,
    enable_in => e15,
    enable_out => e16,
    state_in => st15,
    state_out => st16);
  s017 : entity work.firewall_stage_017 port map (
    clk => pipe_clk,
    rst => rst,
    flush => flush_sig,
    valid_in => v16,
    valid_out => v17,
    enable_in => e16,
    enable_out => e17,
    state_in => st16,
    state_out => st17);
  s018 : entity work.firewall_stage_018 port map (
    clk => pipe_clk,
    rst => rst,
    flush => flush_sig,
    valid_in => v17,
    valid_out => v18,
    enable_in => e17,
    enable_out => e18,
    state_in => st17,
    state_out => st18,
    ap_req => s18_ap_req,
    ap_op => s18_ap_op,
    ap_size => s18_ap_size,
    ap_addr => s18_ap_addr,
    ap_wdata => s18_ap_wdata,
    ap_expected => s18_ap_expected,
    ap_old => m1_at_old,
    ap_oob => m1_at_oob);
  s019 : entity work.firewall_stage_019 port map (
    clk => pipe_clk,
    rst => rst,
    flush => flush_sig,
    valid_in => v18,
    valid_out => v19,
    enable_in => e18,
    enable_out => e19,
    state_in => st18,
    state_out => st19);
  s020 : entity work.firewall_stage_020 port map (
    clk => pipe_clk,
    rst => rst,
    flush => flush_sig,
    valid_in => v19,
    valid_out => v20,
    enable_in => e19,
    enable_out => e20,
    state_in => st19,
    state_out => st20);
  s021 : entity work.firewall_stage_021 port map (
    clk => pipe_clk,
    rst => rst,
    flush => flush_sig,
    valid_in => v20,
    valid_out => v21,
    enable_in => e20,
    enable_out => e21,
    state_in => st20,
    state_out => st21);
  s022 : entity work.firewall_stage_022 port map (
    clk => pipe_clk,
    rst => rst,
    flush => flush_sig,
    valid_in => v21,
    valid_out => v22,
    enable_in => e21,
    enable_out => e22,
    state_in => st21,
    state_out => st22);
  m1_ch0_req <= s7_mp0_req or s12_mp0_req;
  m1_ch0_op <= s7_mp0_op when s7_mp0_req = '1' else s12_mp0_op when s12_mp0_req = '1' else (others => '0');
  m1_ch0_addr <= s7_mp0_addr when s7_mp0_req = '1' else s12_mp0_addr when s12_mp0_req = '1' else (others => '0');
  m1_ch0_key <= s7_mp0_key when s7_mp0_req = '1' else s12_mp0_key when s12_mp0_req = '1' else (others => '0');
  m1_ch0_wdata <= s7_mp0_wdata when s7_mp0_req = '1' else s12_mp0_wdata when s12_mp0_req = '1' else (others => '0');
  m1_at_req <= s18_ap_req;
  m1_at_op <= s18_ap_op when s18_ap_req = '1' else (others => '0');
  m1_at_size <= s18_ap_size when s18_ap_req = '1' else (others => '0');
  m1_at_addr <= s18_ap_addr when s18_ap_req = '1' else (others => '0');
  m1_at_wdata <= s18_ap_wdata when s18_ap_req = '1' else (others => '0');
  m1_at_expected <= s18_ap_expected when s18_ap_req = '1' else (others => '0');
  m001 : entity work.firewall_map_1 port map (
    clk => pipe_clk,
    rst => rst,
    ch0_req => m1_ch0_req,
    ch0_op => m1_ch0_op,
    ch0_addr => m1_ch0_addr,
    ch0_key => m1_ch0_key,
    ch0_wdata => m1_ch0_wdata,
    ch0_rdata => m1_ch0_rdata,
    ch0_oob => m1_ch0_oob,
    at_req => m1_at_req,
    at_op => m1_at_op,
    at_size => m1_at_size,
    at_addr => m1_at_addr,
    at_wdata => m1_at_wdata,
    at_expected => m1_at_expected,
    at_old => m1_at_old,
    at_oob => m1_at_oob,
    host_req => tie_zero,
    host_wr => tie_zero,
    host_addr => tie_addr,
    host_wdata => m1_host_wdata,
    host_rdata => m1_host_rdata);
  flush_sig <= '0';
  fifo_out_bus(576 downto 0) <= st22;
  output_fifo : entity work.ehdl_async_fifo port map (
    wr_clk => pipe_clk, rd_clk => shell_clk, rst => rst,
    wr_en => v22, wr_data => fifo_out_bus,
    rd_en => tie_one, rd_data => fifo_out_q,
    empty => fifo_out_empty, full => fifo_out_full);
  m_axis_tvalid <= not fifo_out_empty;
  m_axis_tdata <= fifo_out_q(511 downto 0);
  m_axis_tlen <= fifo_out_q(527 downto 512);
  m_axis_tlast <= '1';
  m_axis_tverdict <= fifo_out_q(576 downto 545) when fifo_out_q(544) = '1' else x"00000000";
end architecture rtl;


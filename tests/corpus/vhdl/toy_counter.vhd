-- toy_counter: eHDL-generated pipeline (17 stages, 11 blocks)
-- top: ehdl_toy_counter
-- window plan (bytes per link): 64 64 64 64 64 64 64 64 64 64 64 64 64 64 64 64 64 64
-- enable width: 32  frame size: 64

library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

package ehdl_pkg is
  -- byte-order and division blocks; the RTL simulator binds these
  -- declarations to behavioural builtins (div by zero yields 0,
  -- rem by zero yields the dividend, as the eBPF ISA requires).
  function ehdl_bswap16(v : std_logic_vector(63 downto 0)) return std_logic_vector;
  function ehdl_bswap32(v : std_logic_vector(63 downto 0)) return std_logic_vector;
  function ehdl_bswap64(v : std_logic_vector(63 downto 0)) return std_logic_vector;
  function ehdl_udiv(a : std_logic_vector; b : std_logic_vector) return std_logic_vector;
  function ehdl_urem(a : std_logic_vector; b : std_logic_vector) return std_logic_vector;
end package ehdl_pkg;

library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
use work.ehdl_pkg.all;

-- dual-clock FIFO decoupling the pipeline from the shell (§4.5);
-- the single-clock RTL model binds it to a pass-through primitive.
entity ehdl_async_fifo is
  generic (G_WIDTH : integer := 577);
  port (
    wr_clk  : in  std_logic;
    rd_clk  : in  std_logic;
    rst     : in  std_logic;
    wr_en   : in  std_logic;
    wr_data : in  std_logic_vector(576 downto 0);
    rd_en   : in  std_logic;
    rd_data : out std_logic_vector(576 downto 0);
    empty   : out std_logic;
    full    : out std_logic
  );
end entity ehdl_async_fifo;

architecture behavioral of ehdl_async_fifo is
begin
  -- vendor dual-clock FIFO macro (simulation primitive)
end architecture behavioral;

library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
use work.ehdl_pkg.all;

-- eHDL map block for fd 1 (stats, array)
--   channels: 1  WAR buffer depth: 0  flush blocks: 0  atomic port: yes
entity toy_counter_map_1 is
  generic (G_FD : integer := 1; G_DEPTH : integer := 4; G_KEY_BYTES : integer := 4; G_VALUE_BYTES : integer := 8; G_MAP_TYPE : string := "array");
  port (
    clk : in  std_logic;
    rst : in  std_logic;
    ch0_req   : in  std_logic;
    ch0_op    : in  std_logic_vector(7 downto 0);
    ch0_addr  : in  std_logic_vector(63 downto 0);
    ch0_key   : in  std_logic_vector(31 downto 0);
    ch0_wdata : in  std_logic_vector(63 downto 0);
    ch0_rdata : out std_logic_vector(63 downto 0);
    ch0_oob   : out std_logic;
    at_req      : in  std_logic;
    at_op       : in  std_logic_vector(7 downto 0);
    at_size     : in  std_logic_vector(3 downto 0);
    at_addr     : in  std_logic_vector(63 downto 0);
    at_wdata    : in  std_logic_vector(63 downto 0);
    at_expected : in  std_logic_vector(63 downto 0);
    at_old      : out std_logic_vector(63 downto 0);
    at_oob      : out std_logic;
    host_req   : in  std_logic;  -- userspace eBPF map interface
    host_wr    : in  std_logic;
    host_addr  : in  std_logic_vector(31 downto 0);
    host_wdata : in  std_logic_vector(63 downto 0);
    host_rdata : out std_logic_vector(63 downto 0)
  );
end entity toy_counter_map_1;

architecture behavioral of toy_counter_map_1 is
begin
  -- BRAM + WAR delay chain (0 slots) + 0 Flush Evaluation Blocks (Figs. 6-7);
  -- bound to the repro.rtl simulation primitive backed by the
  -- shared MapSet.
end architecture behavioral;

-- stage 1: r3 = 0 | r2 = *(u8 *)(r1 + 12) | r1 = *(u8 *)(r1 + 13)
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
use work.ehdl_pkg.all;

entity toy_counter_stage_001 is
  port (
    clk        : in  std_logic;
    rst        : in  std_logic;
    flush      : in  std_logic;
    valid_in   : in  std_logic;
    valid_out  : out std_logic;
    enable_in  : in  std_logic_vector(31 downto 0);
    enable_out : out std_logic_vector(31 downto 0);
    state_in   : in  std_logic_vector(640 downto 0);
    state_out  : out std_logic_vector(768 downto 0)
  );
end entity toy_counter_stage_001;

architecture rtl of toy_counter_stage_001 is
begin
  process(clk)
  begin
    if rising_edge(clk) then
      if rst = '1' or flush = '1' then
        valid_out <= '0';
      else
        valid_out <= valid_in;
        enable_out <= enable_in;  -- predication fan-through
        state_out(511 downto 0) <= state_in(511 downto 0);
        state_out(527 downto 512) <= state_in(527 downto 512);
        state_out(543 downto 528) <= state_in(543 downto 528);
        state_out(544) <= state_in(544);
        state_out(576 downto 545) <= state_in(576 downto 545);
        state_out(640 downto 577) <= state_in(640 downto 577);  -- carry r1
        state_out(704 downto 641) <= (others => '0');  -- r2 defined here
        state_out(768 downto 705) <= (others => '0');  -- r3 defined here
        -- b0: r3 = 0
        if valid_in = '1' and enable_in(0) = '1' and state_in(544) = '0' then
          state_out(768 downto 705) <= x"0000000000000000";
        end if;
        -- b0: r2 = *(u8 *)(r1 + 12)
        if valid_in = '1' and enable_in(0) = '1' and state_in(544) = '0' then
          if unsigned(state_in(527 downto 512)) < to_unsigned(13, 16) then
            state_out(544) <= '1';
            state_out(576 downto 545) <= x"00000001";
          else
            state_out(704 downto 641) <= std_logic_vector(resize(unsigned(state_in(103 downto 96)), 64));
          end if;
        end if;
        -- b0: r1 = *(u8 *)(r1 + 13)
        if valid_in = '1' and enable_in(0) = '1' and state_in(544) = '0' and not (unsigned(state_in(527 downto 512)) < to_unsigned(13, 16)) then
          if unsigned(state_in(527 downto 512)) < to_unsigned(14, 16) then
            state_out(544) <= '1';
            state_out(576 downto 545) <= x"00000001";
          else
            state_out(640 downto 577) <= std_logic_vector(resize(unsigned(state_in(111 downto 104)), 64));
          end if;
        end if;
      end if;
    end if;
  end process;
end architecture rtl;

-- stage 2: *(u32 *)(r10 - 4) = r3 | r1 <<= 8 | r1 |= r2
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
use work.ehdl_pkg.all;

entity toy_counter_stage_002 is
  port (
    clk        : in  std_logic;
    rst        : in  std_logic;
    flush      : in  std_logic;
    valid_in   : in  std_logic;
    valid_out  : out std_logic;
    enable_in  : in  std_logic_vector(31 downto 0);
    enable_out : out std_logic_vector(31 downto 0);
    state_in   : in  std_logic_vector(768 downto 0);
    state_out  : out std_logic_vector(672 downto 0)
  );
end entity toy_counter_stage_002;

architecture rtl of toy_counter_stage_002 is
begin
  process(clk)
  begin
    if rising_edge(clk) then
      if rst = '1' or flush = '1' then
        valid_out <= '0';
      else
        valid_out <= valid_in;
        enable_out <= enable_in;  -- predication fan-through
        state_out(511 downto 0) <= state_in(511 downto 0);
        state_out(527 downto 512) <= state_in(527 downto 512);
        state_out(543 downto 528) <= state_in(543 downto 528);
        state_out(544) <= state_in(544);
        state_out(576 downto 545) <= state_in(576 downto 545);
        state_out(640 downto 577) <= state_in(640 downto 577);  -- carry r1
        state_out(672 downto 641) <= (others => '0');
        -- b0: *(u32 *)(r10 - 4) = r3
        if valid_in = '1' and enable_in(0) = '1' and state_in(544) = '0' then
          state_out(672 downto 641) <= std_logic_vector(resize(unsigned(state_in(768 downto 705)), 32));
        end if;
        -- b0: r1 <<= 8
        if valid_in = '1' and enable_in(0) = '1' and state_in(544) = '0' then
          state_out(640 downto 577) <= std_logic_vector(shift_left(unsigned(state_in(640 downto 577)), to_integer(resize(unsigned(x"0000000000000008"), 6))));
        end if;
        -- b0: r1 |= r2
        if valid_in = '1' and enable_in(0) = '1' and state_in(544) = '0' then
          state_out(640 downto 577) <= ((std_logic_vector(shift_left(unsigned(state_in(640 downto 577)), to_integer(resize(unsigned(x"0000000000000008"), 6)))))) or (state_in(704 downto 641));
        end if;
      end if;
    end if;
  end process;
end architecture rtl;

-- stage 3: if r1 == 34525 goto +4
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
use work.ehdl_pkg.all;

entity toy_counter_stage_003 is
  port (
    clk        : in  std_logic;
    rst        : in  std_logic;
    flush      : in  std_logic;
    valid_in   : in  std_logic;
    valid_out  : out std_logic;
    enable_in  : in  std_logic_vector(31 downto 0);
    enable_out : out std_logic_vector(31 downto 0);
    state_in   : in  std_logic_vector(672 downto 0);
    state_out  : out std_logic_vector(672 downto 0)
  );
end entity toy_counter_stage_003;

architecture rtl of toy_counter_stage_003 is
begin
  process(clk)
  begin
    if rising_edge(clk) then
      if rst = '1' or flush = '1' then
        valid_out <= '0';
      else
        valid_out <= valid_in;
        enable_out <= enable_in;  -- predication fan-through
        state_out(511 downto 0) <= state_in(511 downto 0);
        state_out(527 downto 512) <= state_in(527 downto 512);
        state_out(543 downto 528) <= state_in(543 downto 528);
        state_out(544) <= state_in(544);
        state_out(576 downto 545) <= state_in(576 downto 545);
        state_out(640 downto 577) <= state_in(640 downto 577);  -- carry r1
        state_out(672 downto 641) <= state_in(672 downto 641);
        -- b0: if r1 == 34525 goto +4
        if valid_in = '1' and enable_in(0) = '1' and state_in(544) = '0' then
          if unsigned(state_in(640 downto 577)) = unsigned(x"00000000000086dd") then
            enable_out(4) <= '1';
          else
            enable_out(1) <= '1';
          end if;
        end if;
      end if;
    end if;
  end process;
end architecture rtl;

-- stage 4: if r1 == 2054 goto +5
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
use work.ehdl_pkg.all;

entity toy_counter_stage_004 is
  port (
    clk        : in  std_logic;
    rst        : in  std_logic;
    flush      : in  std_logic;
    valid_in   : in  std_logic;
    valid_out  : out std_logic;
    enable_in  : in  std_logic_vector(31 downto 0);
    enable_out : out std_logic_vector(31 downto 0);
    state_in   : in  std_logic_vector(672 downto 0);
    state_out  : out std_logic_vector(672 downto 0)
  );
end entity toy_counter_stage_004;

architecture rtl of toy_counter_stage_004 is
begin
  process(clk)
  begin
    if rising_edge(clk) then
      if rst = '1' or flush = '1' then
        valid_out <= '0';
      else
        valid_out <= valid_in;
        enable_out <= enable_in;  -- predication fan-through
        state_out(511 downto 0) <= state_in(511 downto 0);
        state_out(527 downto 512) <= state_in(527 downto 512);
        state_out(543 downto 528) <= state_in(543 downto 528);
        state_out(544) <= state_in(544);
        state_out(576 downto 545) <= state_in(576 downto 545);
        state_out(640 downto 577) <= state_in(640 downto 577);  -- carry r1
        state_out(672 downto 641) <= state_in(672 downto 641);
        -- b1: if r1 == 2054 goto +5
        if valid_in = '1' and enable_in(1) = '1' and state_in(544) = '0' then
          if unsigned(state_in(640 downto 577)) = unsigned(x"0000000000000806") then
            enable_out(5) <= '1';
          else
            enable_out(2) <= '1';
          end if;
        end if;
      end if;
    end if;
  end process;
end architecture rtl;

-- stage 5: if r1 != 2048 goto +6
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
use work.ehdl_pkg.all;

entity toy_counter_stage_005 is
  port (
    clk        : in  std_logic;
    rst        : in  std_logic;
    flush      : in  std_logic;
    valid_in   : in  std_logic;
    valid_out  : out std_logic;
    enable_in  : in  std_logic_vector(31 downto 0);
    enable_out : out std_logic_vector(31 downto 0);
    state_in   : in  std_logic_vector(672 downto 0);
    state_out  : out std_logic_vector(608 downto 0)
  );
end entity toy_counter_stage_005;

architecture rtl of toy_counter_stage_005 is
begin
  process(clk)
  begin
    if rising_edge(clk) then
      if rst = '1' or flush = '1' then
        valid_out <= '0';
      else
        valid_out <= valid_in;
        enable_out <= enable_in;  -- predication fan-through
        state_out(511 downto 0) <= state_in(511 downto 0);
        state_out(527 downto 512) <= state_in(527 downto 512);
        state_out(543 downto 528) <= state_in(543 downto 528);
        state_out(544) <= state_in(544);
        state_out(576 downto 545) <= state_in(576 downto 545);
        state_out(608 downto 577) <= state_in(672 downto 641);
        -- b2: if r1 != 2048 goto +6
        if valid_in = '1' and enable_in(2) = '1' and state_in(544) = '0' then
          if unsigned(state_in(640 downto 577)) /= unsigned(x"0000000000000800") then
            enable_out(7) <= '1';
          else
            enable_out(3) <= '1';
          end if;
        end if;
      end if;
    end if;
  end process;
end architecture rtl;

-- stage 6: r1 = 1 | goto +3
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
use work.ehdl_pkg.all;

entity toy_counter_stage_006 is
  port (
    clk        : in  std_logic;
    rst        : in  std_logic;
    flush      : in  std_logic;
    valid_in   : in  std_logic;
    valid_out  : out std_logic;
    enable_in  : in  std_logic_vector(31 downto 0);
    enable_out : out std_logic_vector(31 downto 0);
    state_in   : in  std_logic_vector(608 downto 0);
    state_out  : out std_logic_vector(672 downto 0)
  );
end entity toy_counter_stage_006;

architecture rtl of toy_counter_stage_006 is
begin
  process(clk)
  begin
    if rising_edge(clk) then
      if rst = '1' or flush = '1' then
        valid_out <= '0';
      else
        valid_out <= valid_in;
        enable_out <= enable_in;  -- predication fan-through
        state_out(511 downto 0) <= state_in(511 downto 0);
        state_out(527 downto 512) <= state_in(527 downto 512);
        state_out(543 downto 528) <= state_in(543 downto 528);
        state_out(544) <= state_in(544);
        state_out(576 downto 545) <= state_in(576 downto 545);
        state_out(640 downto 577) <= (others => '0');  -- r1 defined here
        state_out(672 downto 641) <= state_in(608 downto 577);
        -- b3: r1 = 1
        if valid_in = '1' and enable_in(3) = '1' and state_in(544) = '0' then
          state_out(640 downto 577) <= x"0000000000000001";
        end if;
        -- b3: goto +3
        if valid_in = '1' and enable_in(3) = '1' and state_in(544) = '0' then
          enable_out(6) <= '1';
          enable_out(6) <= '1';
        end if;
      end if;
    end if;
  end process;
end architecture rtl;

-- stage 7: r1 = 2 | goto +1
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
use work.ehdl_pkg.all;

entity toy_counter_stage_007 is
  port (
    clk        : in  std_logic;
    rst        : in  std_logic;
    flush      : in  std_logic;
    valid_in   : in  std_logic;
    valid_out  : out std_logic;
    enable_in  : in  std_logic_vector(31 downto 0);
    enable_out : out std_logic_vector(31 downto 0);
    state_in   : in  std_logic_vector(672 downto 0);
    state_out  : out std_logic_vector(672 downto 0)
  );
end entity toy_counter_stage_007;

architecture rtl of toy_counter_stage_007 is
begin
  process(clk)
  begin
    if rising_edge(clk) then
      if rst = '1' or flush = '1' then
        valid_out <= '0';
      else
        valid_out <= valid_in;
        enable_out <= enable_in;  -- predication fan-through
        state_out(511 downto 0) <= state_in(511 downto 0);
        state_out(527 downto 512) <= state_in(527 downto 512);
        state_out(543 downto 528) <= state_in(543 downto 528);
        state_out(544) <= state_in(544);
        state_out(576 downto 545) <= state_in(576 downto 545);
        state_out(640 downto 577) <= state_in(640 downto 577);  -- carry r1
        state_out(672 downto 641) <= state_in(672 downto 641);
        -- b4: r1 = 2
        if valid_in = '1' and enable_in(4) = '1' and state_in(544) = '0' then
          state_out(640 downto 577) <= x"0000000000000002";
        end if;
        -- b4: goto +1
        if valid_in = '1' and enable_in(4) = '1' and state_in(544) = '0' then
          enable_out(6) <= '1';
          enable_out(6) <= '1';
        end if;
      end if;
    end if;
  end process;
end architecture rtl;

-- stage 8: r1 = 3
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
use work.ehdl_pkg.all;

entity toy_counter_stage_008 is
  port (
    clk        : in  std_logic;
    rst        : in  std_logic;
    flush      : in  std_logic;
    valid_in   : in  std_logic;
    valid_out  : out std_logic;
    enable_in  : in  std_logic_vector(31 downto 0);
    enable_out : out std_logic_vector(31 downto 0);
    state_in   : in  std_logic_vector(672 downto 0);
    state_out  : out std_logic_vector(672 downto 0)
  );
end entity toy_counter_stage_008;

architecture rtl of toy_counter_stage_008 is
begin
  process(clk)
  begin
    if rising_edge(clk) then
      if rst = '1' or flush = '1' then
        valid_out <= '0';
      else
        valid_out <= valid_in;
        enable_out <= enable_in;  -- predication fan-through
        state_out(511 downto 0) <= state_in(511 downto 0);
        state_out(527 downto 512) <= state_in(527 downto 512);
        state_out(543 downto 528) <= state_in(543 downto 528);
        state_out(544) <= state_in(544);
        state_out(576 downto 545) <= state_in(576 downto 545);
        state_out(640 downto 577) <= state_in(640 downto 577);  -- carry r1
        state_out(672 downto 641) <= state_in(672 downto 641);
        -- b5: r1 = 3
        if valid_in = '1' and enable_in(5) = '1' and state_in(544) = '0' then
          state_out(640 downto 577) <= x"0000000000000003";
          enable_out(6) <= '1';
        end if;
      end if;
    end if;
  end process;
end architecture rtl;

-- stage 9: *(u32 *)(r10 - 4) = r1
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
use work.ehdl_pkg.all;

entity toy_counter_stage_009 is
  port (
    clk        : in  std_logic;
    rst        : in  std_logic;
    flush      : in  std_logic;
    valid_in   : in  std_logic;
    valid_out  : out std_logic;
    enable_in  : in  std_logic_vector(31 downto 0);
    enable_out : out std_logic_vector(31 downto 0);
    state_in   : in  std_logic_vector(672 downto 0);
    state_out  : out std_logic_vector(608 downto 0)
  );
end entity toy_counter_stage_009;

architecture rtl of toy_counter_stage_009 is
begin
  process(clk)
  begin
    if rising_edge(clk) then
      if rst = '1' or flush = '1' then
        valid_out <= '0';
      else
        valid_out <= valid_in;
        enable_out <= enable_in;  -- predication fan-through
        state_out(511 downto 0) <= state_in(511 downto 0);
        state_out(527 downto 512) <= state_in(527 downto 512);
        state_out(543 downto 528) <= state_in(543 downto 528);
        state_out(544) <= state_in(544);
        state_out(576 downto 545) <= state_in(576 downto 545);
        state_out(608 downto 577) <= state_in(672 downto 641);
        -- b6: *(u32 *)(r10 - 4) = r1
        if valid_in = '1' and enable_in(6) = '1' and state_in(544) = '0' then
          state_out(608 downto 577) <= std_logic_vector(resize(unsigned(state_in(640 downto 577)), 32));
          enable_out(7) <= '1';
        end if;
      end if;
    end if;
  end process;
end architecture rtl;

-- stage 10: r2 = r10 | r2 += -4 | r1 = map[1]
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
use work.ehdl_pkg.all;

entity toy_counter_stage_010 is
  port (
    clk        : in  std_logic;
    rst        : in  std_logic;
    flush      : in  std_logic;
    valid_in   : in  std_logic;
    valid_out  : out std_logic;
    enable_in  : in  std_logic_vector(31 downto 0);
    enable_out : out std_logic_vector(31 downto 0);
    state_in   : in  std_logic_vector(608 downto 0);
    state_out  : out std_logic_vector(736 downto 0)
  );
end entity toy_counter_stage_010;

architecture rtl of toy_counter_stage_010 is
begin
  process(clk)
  begin
    if rising_edge(clk) then
      if rst = '1' or flush = '1' then
        valid_out <= '0';
      else
        valid_out <= valid_in;
        enable_out <= enable_in;  -- predication fan-through
        state_out(511 downto 0) <= state_in(511 downto 0);
        state_out(527 downto 512) <= state_in(527 downto 512);
        state_out(543 downto 528) <= state_in(543 downto 528);
        state_out(544) <= state_in(544);
        state_out(576 downto 545) <= state_in(576 downto 545);
        state_out(640 downto 577) <= (others => '0');  -- r1 defined here
        state_out(704 downto 641) <= (others => '0');  -- r2 defined here
        state_out(736 downto 705) <= state_in(608 downto 577);
        -- b7: r2 = r10
        if valid_in = '1' and enable_in(7) = '1' and state_in(544) = '0' then
          state_out(704 downto 641) <= x"0000000000200200";
        end if;
        -- b7: r2 += -4
        if valid_in = '1' and enable_in(7) = '1' and state_in(544) = '0' then
          state_out(704 downto 641) <= std_logic_vector(unsigned((x"0000000000200200")) + unsigned(x"fffffffffffffffc"));
        end if;
        -- b7: r1 = map[1]
        if valid_in = '1' and enable_in(7) = '1' and state_in(544) = '0' then
          state_out(640 downto 577) <= x"0000000030000001";
        end if;
      end if;
    end if;
  end process;
end architecture rtl;

-- stage 11: call 1
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
use work.ehdl_pkg.all;

entity toy_counter_stage_011 is
  port (
    clk        : in  std_logic;
    rst        : in  std_logic;
    flush      : in  std_logic;
    valid_in   : in  std_logic;
    valid_out  : out std_logic;
    enable_in  : in  std_logic_vector(31 downto 0);
    enable_out : out std_logic_vector(31 downto 0);
    state_in   : in  std_logic_vector(736 downto 0);
    state_out  : out std_logic_vector(640 downto 0);
    mp0_req   : out std_logic;
    mp0_op    : out std_logic_vector(7 downto 0);
    mp0_addr  : out std_logic_vector(63 downto 0);
    mp0_key   : out std_logic_vector(31 downto 0);
    mp0_wdata : out std_logic_vector(63 downto 0);
    mp0_rdata : in  std_logic_vector(63 downto 0);
    mp0_oob   : in  std_logic
  );
end entity toy_counter_stage_011;

architecture rtl of toy_counter_stage_011 is
begin
  mp0_req <= '1' when valid_in = '1' and enable_in(7) = '1' and state_in(544) = '0' else '0';
  mp0_op <= x"01";
  mp0_addr <= x"0000000000000000";
  mp0_key <= state_in(736 downto 705);
  mp0_wdata <= (others => '0');
  process(clk)
  begin
    if rising_edge(clk) then
      if rst = '1' or flush = '1' then
        valid_out <= '0';
      else
        valid_out <= valid_in;
        enable_out <= enable_in;  -- predication fan-through
        state_out(511 downto 0) <= state_in(511 downto 0);
        state_out(527 downto 512) <= state_in(527 downto 512);
        state_out(543 downto 528) <= state_in(543 downto 528);
        state_out(544) <= state_in(544);
        state_out(576 downto 545) <= state_in(576 downto 545);
        state_out(640 downto 577) <= (others => '0');  -- r0 defined here
        -- b7: call 1
        if valid_in = '1' and enable_in(7) = '1' and state_in(544) = '0' then
          if mp0_oob = '1' then
            state_out(544) <= '1';
            state_out(576 downto 545) <= x"00000001";
          else
            state_out(640 downto 577) <= mp0_rdata;
          end if;
        end if;
      end if;
    end if;
  end process;
end architecture rtl;

-- stage 12: (helper_latency)
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
use work.ehdl_pkg.all;

entity toy_counter_stage_012 is
  port (
    clk        : in  std_logic;
    rst        : in  std_logic;
    flush      : in  std_logic;
    valid_in   : in  std_logic;
    valid_out  : out std_logic;
    enable_in  : in  std_logic_vector(31 downto 0);
    enable_out : out std_logic_vector(31 downto 0);
    state_in   : in  std_logic_vector(640 downto 0);
    state_out  : out std_logic_vector(640 downto 0)
  );
end entity toy_counter_stage_012;

architecture rtl of toy_counter_stage_012 is
begin
  process(clk)
  begin
    if rising_edge(clk) then
      if rst = '1' or flush = '1' then
        valid_out <= '0';
      else
        valid_out <= valid_in;
        enable_out <= enable_in;  -- predication fan-through
        state_out(511 downto 0) <= state_in(511 downto 0);
        state_out(527 downto 512) <= state_in(527 downto 512);
        state_out(543 downto 528) <= state_in(543 downto 528);
        state_out(544) <= state_in(544);
        state_out(576 downto 545) <= state_in(576 downto 545);
        state_out(640 downto 577) <= state_in(640 downto 577);  -- carry r0
      end if;
    end if;
  end process;
end architecture rtl;

-- stage 13: r1 = r0 | r0 = 3
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
use work.ehdl_pkg.all;

entity toy_counter_stage_013 is
  port (
    clk        : in  std_logic;
    rst        : in  std_logic;
    flush      : in  std_logic;
    valid_in   : in  std_logic;
    valid_out  : out std_logic;
    enable_in  : in  std_logic_vector(31 downto 0);
    enable_out : out std_logic_vector(31 downto 0);
    state_in   : in  std_logic_vector(640 downto 0);
    state_out  : out std_logic_vector(704 downto 0)
  );
end entity toy_counter_stage_013;

architecture rtl of toy_counter_stage_013 is
begin
  process(clk)
  begin
    if rising_edge(clk) then
      if rst = '1' or flush = '1' then
        valid_out <= '0';
      else
        valid_out <= valid_in;
        enable_out <= enable_in;  -- predication fan-through
        state_out(511 downto 0) <= state_in(511 downto 0);
        state_out(527 downto 512) <= state_in(527 downto 512);
        state_out(543 downto 528) <= state_in(543 downto 528);
        state_out(544) <= state_in(544);
        state_out(576 downto 545) <= state_in(576 downto 545);
        state_out(640 downto 577) <= state_in(640 downto 577);  -- carry r0
        state_out(704 downto 641) <= (others => '0');  -- r1 defined here
        -- b7: r1 = r0
        if valid_in = '1' and enable_in(7) = '1' and state_in(544) = '0' then
          state_out(704 downto 641) <= state_in(640 downto 577);
        end if;
        -- b7: r0 = 3
        if valid_in = '1' and enable_in(7) = '1' and state_in(544) = '0' then
          state_out(640 downto 577) <= x"0000000000000003";
        end if;
      end if;
    end if;
  end process;
end architecture rtl;

-- stage 14: if r1 == 0 goto +2
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
use work.ehdl_pkg.all;

entity toy_counter_stage_014 is
  port (
    clk        : in  std_logic;
    rst        : in  std_logic;
    flush      : in  std_logic;
    valid_in   : in  std_logic;
    valid_out  : out std_logic;
    enable_in  : in  std_logic_vector(31 downto 0);
    enable_out : out std_logic_vector(31 downto 0);
    state_in   : in  std_logic_vector(704 downto 0);
    state_out  : out std_logic_vector(704 downto 0)
  );
end entity toy_counter_stage_014;

architecture rtl of toy_counter_stage_014 is
begin
  process(clk)
  begin
    if rising_edge(clk) then
      if rst = '1' or flush = '1' then
        valid_out <= '0';
      else
        valid_out <= valid_in;
        enable_out <= enable_in;  -- predication fan-through
        state_out(511 downto 0) <= state_in(511 downto 0);
        state_out(527 downto 512) <= state_in(527 downto 512);
        state_out(543 downto 528) <= state_in(543 downto 528);
        state_out(544) <= state_in(544);
        state_out(576 downto 545) <= state_in(576 downto 545);
        state_out(640 downto 577) <= state_in(640 downto 577);  -- carry r0
        state_out(704 downto 641) <= state_in(704 downto 641);  -- carry r1
        -- b7: if r1 == 0 goto +2
        if valid_in = '1' and enable_in(7) = '1' and state_in(544) = '0' then
          if unsigned(state_in(704 downto 641)) = unsigned(x"0000000000000000") then
            enable_out(9) <= '1';
          else
            enable_out(8) <= '1';
          end if;
        end if;
      end if;
    end if;
  end process;
end architecture rtl;

-- stage 15: r2 = 1
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
use work.ehdl_pkg.all;

entity toy_counter_stage_015 is
  port (
    clk        : in  std_logic;
    rst        : in  std_logic;
    flush      : in  std_logic;
    valid_in   : in  std_logic;
    valid_out  : out std_logic;
    enable_in  : in  std_logic_vector(31 downto 0);
    enable_out : out std_logic_vector(31 downto 0);
    state_in   : in  std_logic_vector(704 downto 0);
    state_out  : out std_logic_vector(768 downto 0)
  );
end entity toy_counter_stage_015;

architecture rtl of toy_counter_stage_015 is
begin
  process(clk)
  begin
    if rising_edge(clk) then
      if rst = '1' or flush = '1' then
        valid_out <= '0';
      else
        valid_out <= valid_in;
        enable_out <= enable_in;  -- predication fan-through
        state_out(511 downto 0) <= state_in(511 downto 0);
        state_out(527 downto 512) <= state_in(527 downto 512);
        state_out(543 downto 528) <= state_in(543 downto 528);
        state_out(544) <= state_in(544);
        state_out(576 downto 545) <= state_in(576 downto 545);
        state_out(640 downto 577) <= state_in(640 downto 577);  -- carry r0
        state_out(704 downto 641) <= state_in(704 downto 641);  -- carry r1
        state_out(768 downto 705) <= (others => '0');  -- r2 defined here
        -- b8: r2 = 1
        if valid_in = '1' and enable_in(8) = '1' and state_in(544) = '0' then
          state_out(768 downto 705) <= x"0000000000000001";
        end if;
      end if;
    end if;
  end process;
end architecture rtl;

-- stage 16: lock *(u64 *)(r1 + 0) += r2
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
use work.ehdl_pkg.all;

entity toy_counter_stage_016 is
  port (
    clk        : in  std_logic;
    rst        : in  std_logic;
    flush      : in  std_logic;
    valid_in   : in  std_logic;
    valid_out  : out std_logic;
    enable_in  : in  std_logic_vector(31 downto 0);
    enable_out : out std_logic_vector(31 downto 0);
    state_in   : in  std_logic_vector(768 downto 0);
    state_out  : out std_logic_vector(640 downto 0);
    ap_req      : out std_logic;
    ap_op       : out std_logic_vector(7 downto 0);
    ap_size     : out std_logic_vector(3 downto 0);
    ap_addr     : out std_logic_vector(63 downto 0);
    ap_wdata    : out std_logic_vector(63 downto 0);
    ap_expected : out std_logic_vector(63 downto 0);
    ap_old      : in  std_logic_vector(63 downto 0);
    ap_oob      : in  std_logic
  );
end entity toy_counter_stage_016;

architecture rtl of toy_counter_stage_016 is
begin
  ap_req <= '1' when valid_in = '1' and enable_in(8) = '1' and state_in(544) = '0' else '0';
  ap_op <= x"00";
  ap_size <= x"8";
  ap_addr <= std_logic_vector(unsigned(state_in(704 downto 641)) + unsigned(x"0000000000000000"));
  ap_wdata <= state_in(768 downto 705);
  ap_expected <= x"0000000000000000";
  process(clk)
  begin
    if rising_edge(clk) then
      if rst = '1' or flush = '1' then
        valid_out <= '0';
      else
        valid_out <= valid_in;
        enable_out <= enable_in;  -- predication fan-through
        state_out(511 downto 0) <= state_in(511 downto 0);
        state_out(527 downto 512) <= state_in(527 downto 512);
        state_out(543 downto 528) <= state_in(543 downto 528);
        state_out(544) <= state_in(544);
        state_out(576 downto 545) <= state_in(576 downto 545);
        state_out(640 downto 577) <= state_in(640 downto 577);  -- carry r0
        -- b8: lock *(u64 *)(r1 + 0) += r2
        if valid_in = '1' and enable_in(8) = '1' and state_in(544) = '0' then
          if ap_oob = '1' then
            state_out(544) <= '1';
            state_out(576 downto 545) <= x"00000001";
          else
            enable_out(9) <= '1';
          end if;
        end if;
      end if;
    end if;
  end process;
end architecture rtl;

-- stage 17: exit
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
use work.ehdl_pkg.all;

entity toy_counter_stage_017 is
  port (
    clk        : in  std_logic;
    rst        : in  std_logic;
    flush      : in  std_logic;
    valid_in   : in  std_logic;
    valid_out  : out std_logic;
    enable_in  : in  std_logic_vector(31 downto 0);
    enable_out : out std_logic_vector(31 downto 0);
    state_in   : in  std_logic_vector(640 downto 0);
    state_out  : out std_logic_vector(576 downto 0)
  );
end entity toy_counter_stage_017;

architecture rtl of toy_counter_stage_017 is
begin
  process(clk)
  begin
    if rising_edge(clk) then
      if rst = '1' or flush = '1' then
        valid_out <= '0';
      else
        valid_out <= valid_in;
        enable_out <= enable_in;  -- predication fan-through
        state_out(511 downto 0) <= state_in(511 downto 0);
        state_out(527 downto 512) <= state_in(527 downto 512);
        state_out(543 downto 528) <= state_in(543 downto 528);
        state_out(544) <= state_in(544);
        state_out(576 downto 545) <= state_in(576 downto 545);
        -- b9: exit
        if valid_in = '1' and enable_in(9) = '1' and state_in(544) = '0' then
          state_out(544) <= '1';
          state_out(576 downto 545) <= std_logic_vector(resize(unsigned(state_in(640 downto 577)), 32));
        end if;
      end if;
    end if;
  end process;
end architecture rtl;

-- top-level pipeline wrapper (17 stages)
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
use work.ehdl_pkg.all;

entity ehdl_toy_counter is
  port (
    pipe_clk      : in  std_logic;
    shell_clk     : in  std_logic;
    rst           : in  std_logic;
    s_axis_tdata  : in  std_logic_vector(511 downto 0);
    s_axis_tlen   : in  std_logic_vector(15 downto 0);
    s_axis_tvalid : in  std_logic;
    s_axis_tlast  : in  std_logic;
    s_axis_tready : out std_logic;
    m_axis_tdata  : out std_logic_vector(511 downto 0);
    m_axis_tlen   : out std_logic_vector(15 downto 0);
    m_axis_tverdict : out std_logic_vector(31 downto 0);
    m_axis_tvalid : out std_logic;
    m_axis_tlast  : out std_logic;
    m_axis_tready : in  std_logic
  );
end entity ehdl_toy_counter;

architecture rtl of ehdl_toy_counter is
  signal tie_one : std_logic;
  signal tie_zero : std_logic;
  signal tie_addr : std_logic_vector(31 downto 0);
  signal fifo_in_bus : std_logic_vector(576 downto 0);
  signal fifo_in_q : std_logic_vector(576 downto 0);
  signal fifo_in_empty : std_logic;
  signal fifo_in_full : std_logic;
  signal inj_frame : std_logic_vector(511 downto 0);
  signal inj_tlen : std_logic_vector(15 downto 0);
  signal inj_done : std_logic;
  signal inj_verdict : std_logic_vector(31 downto 0);
  signal pkt_window : std_logic_vector(511 downto 0);
  signal v0 : std_logic;
  signal e0 : std_logic_vector(31 downto 0);
  signal st0 : std_logic_vector(640 downto 0);
  signal v1 : std_logic;
  signal e1 : std_logic_vector(31 downto 0);
  signal st1 : std_logic_vector(768 downto 0);
  signal v2 : std_logic;
  signal e2 : std_logic_vector(31 downto 0);
  signal st2 : std_logic_vector(672 downto 0);
  signal v3 : std_logic;
  signal e3 : std_logic_vector(31 downto 0);
  signal st3 : std_logic_vector(672 downto 0);
  signal v4 : std_logic;
  signal e4 : std_logic_vector(31 downto 0);
  signal st4 : std_logic_vector(672 downto 0);
  signal v5 : std_logic;
  signal e5 : std_logic_vector(31 downto 0);
  signal st5 : std_logic_vector(608 downto 0);
  signal v6 : std_logic;
  signal e6 : std_logic_vector(31 downto 0);
  signal st6 : std_logic_vector(672 downto 0);
  signal v7 : std_logic;
  signal e7 : std_logic_vector(31 downto 0);
  signal st7 : std_logic_vector(672 downto 0);
  signal v8 : std_logic;
  signal e8 : std_logic_vector(31 downto 0);
  signal st8 : std_logic_vector(672 downto 0);
  signal v9 : std_logic;
  signal e9 : std_logic_vector(31 downto 0);
  signal st9 : std_logic_vector(608 downto 0);
  signal v10 : std_logic;
  signal e10 : std_logic_vector(31 downto 0);
  signal st10 : std_logic_vector(736 downto 0);
  signal v11 : std_logic;
  signal e11 : std_logic_vector(31 downto 0);
  signal st11 : std_logic_vector(640 downto 0);
  signal v12 : std_logic;
  signal e12 : std_logic_vector(31 downto 0);
  signal st12 : std_logic_vector(640 downto 0);
  signal v13 : std_logic;
  signal e13 : std_logic_vector(31 downto 0);
  signal st13 : std_logic_vector(704 downto 0);
  signal v14 : std_logic;
  signal e14 : std_logic_vector(31 downto 0);
  signal st14 : std_logic_vector(704 downto 0);
  signal v15 : std_logic;
  signal e15 : std_logic_vector(31 downto 0);
  signal st15 : std_logic_vector(768 downto 0);
  signal v16 : std_logic;
  signal e16 : std_logic_vector(31 downto 0);
  signal st16 : std_logic_vector(640 downto 0);
  signal v17 : std_logic;
  signal e17 : std_logic_vector(31 downto 0);
  signal st17 : std_logic_vector(576 downto 0);
  signal flush_sig : std_logic;
  signal s11_mp0_req : std_logic;
  signal s11_mp0_op : std_logic_vector(7 downto 0);
  signal s11_mp0_addr : std_logic_vector(63 downto 0);
  signal s11_mp0_key : std_logic_vector(31 downto 0);
  signal s11_mp0_wdata : std_logic_vector(63 downto 0);
  signal s16_ap_req : std_logic;
  signal s16_ap_op : std_logic_vector(7 downto 0);
  signal s16_ap_size : std_logic_vector(3 downto 0);
  signal s16_ap_addr : std_logic_vector(63 downto 0);
  signal s16_ap_wdata : std_logic_vector(63 downto 0);
  signal s16_ap_expected : std_logic_vector(63 downto 0);
  signal m1_ch0_req : std_logic;
  signal m1_ch0_op : std_logic_vector(7 downto 0);
  signal m1_ch0_addr : std_logic_vector(63 downto 0);
  signal m1_ch0_key : std_logic_vector(31 downto 0);
  signal m1_ch0_wdata : std_logic_vector(63 downto 0);
  signal m1_ch0_rdata : std_logic_vector(63 downto 0);
  signal m1_ch0_oob : std_logic;
  signal m1_at_req : std_logic;
  signal m1_at_op : std_logic_vector(7 downto 0);
  signal m1_at_size : std_logic_vector(3 downto 0);
  signal m1_at_addr : std_logic_vector(63 downto 0);
  signal m1_at_wdata : std_logic_vector(63 downto 0);
  signal m1_at_expected : std_logic_vector(63 downto 0);
  signal m1_at_old : std_logic_vector(63 downto 0);
  signal m1_at_oob : std_logic;
  signal m1_host_wdata : std_logic_vector(63 downto 0);
  signal m1_host_rdata : std_logic_vector(63 downto 0);
  signal fifo_out_bus : std_logic_vector(576 downto 0);
  signal fifo_out_q : std_logic_vector(576 downto 0);
  signal fifo_out_empty : std_logic;
  signal fifo_out_full : std_logic;
begin
  tie_one <= '1';
  tie_zero <= '0';
  tie_addr <= (others => '0');
  s_axis_tready <= '1';
  fifo_in_bus(527 downto 0) <= s_axis_tdata & s_axis_tlen;
  fifo_in_bus(576 downto 528) <= (others => '0');
  input_fifo : entity work.ehdl_async_fifo port map (
    wr_clk => shell_clk, rd_clk => pipe_clk, rst => rst,
    wr_en => s_axis_tvalid, wr_data => fifo_in_bus,
    rd_en => tie_one, rd_data => fifo_in_q,
    empty => fifo_in_empty, full => fifo_in_full);
  inj_frame <= fifo_in_q(527 downto 16);
  inj_tlen <= fifo_in_q(15 downto 0);
  inj_done <= '1' when unsigned(inj_tlen) < to_unsigned(14, 16) else '0';
  inj_verdict <= x"00000001" when unsigned(inj_tlen) < to_unsigned(14, 16) else x"00000000";
  v0 <= not fifo_in_empty;
  e0 <= x"00000001";
  st0(511 downto 0) <= inj_frame(511 downto 0);
  st0(527 downto 512) <= inj_tlen;
  st0(543 downto 528) <= x"0000";
  st0(544) <= inj_done;
  st0(576 downto 545) <= inj_verdict;
  st0(640 downto 577) <= std_logic_vector(resize(unsigned(x"00100100"), 64));
  process(pipe_clk)
  begin
    if rising_edge(pipe_clk) then
      if v0 = '1' then
        pkt_window <= inj_frame;  -- frame bus for later joins
      end if;
    end if;
  end process;
  m1_host_wdata <= (others => '0');
  s001 : entity work.toy_counter_stage_001 port map (
    clk => pipe_clk,
    rst => rst,
    flush => flush_sig,
    valid_in => v0,
    valid_out => v1,
    enable_in => e0,
    enable_out => e1,
    state_in => st0,
    state_out => st1);
  s002 : entity work.toy_counter_stage_002 port map (
    clk => pipe_clk,
    rst => rst,
    flush => flush_sig,
    valid_in => v1,
    valid_out => v2,
    enable_in => e1,
    enable_out => e2,
    state_in => st1,
    state_out => st2);
  s003 : entity work.toy_counter_stage_003 port map (
    clk => pipe_clk,
    rst => rst,
    flush => flush_sig,
    valid_in => v2,
    valid_out => v3,
    enable_in => e2,
    enable_out => e3,
    state_in => st2,
    state_out => st3);
  s004 : entity work.toy_counter_stage_004 port map (
    clk => pipe_clk,
    rst => rst,
    flush => flush_sig,
    valid_in => v3,
    valid_out => v4,
    enable_in => e3,
    enable_out => e4,
    state_in => st3,
    state_out => st4);
  s005 : entity work.toy_counter_stage_005 port map (
    clk => pipe_clk,
    rst => rst,
    flush => flush_sig,
    valid_in => v4,
    valid_out => v5,
    enable_in => e4,
    enable_out => e5,
    state_in => st4,
    state_out => st5);
  s006 : entity work.toy_counter_stage_006 port map (
    clk => pipe_clk,
    rst => rst,
    flush => flush_sig,
    valid_in => v5,
    valid_out => v6,
    enable_in => e5,
    enable_out => e6,
    state_in => st5,
    state_out => st6);
  s007 : entity work.toy_counter_stage_007 port map (
    clk => pipe_clk,
    rst => rst,
    flush => flush_sig,
    valid_in => v6,
    valid_out => v7,
    enable_in => e6,
    enable_out => e7,
    state_in => st6,
    state_out => st7);
  s008 : entity work.toy_counter_stage_008 port map (
    clk => pipe_clk,
    rst => rst,
    flush => flush_sig,
    valid_in => v7,
    valid_out => v8,
    enable_in => e7,
    enable_out => e8,
    state_in => st7,
    state_out => st8);
  s009 : entity work.toy_counter_stage_009 port map (
    clk => pipe_clk,
    rst => rst,
    flush => flush_sig,
    valid_in => v8,
    valid_out => v9,
    enable_in => e8,
    enable_out => e9,
    state_in => st8,
    state_out => st9);
  s010 : entity work.toy_counter_stage_010 port map (
    clk => pipe_clk,
    rst => rst,
    flush => flush_sig,
    valid_in => v9,
    valid_out => v10,
    enable_in => e9,
    enable_out => e10,
    state_in => st9,
    state_out => st10);
  s011 : entity work.toy_counter_stage_011 port map (
    clk => pipe_clk,
    rst => rst,
    flush => flush_sig,
    valid_in => v10,
    valid_out => v11,
    enable_in => e10,
    enable_out => e11,
    state_in => st10,
    state_out => st11,
    mp0_req => s11_mp0_req,
    mp0_op => s11_mp0_op,
    mp0_addr => s11_mp0_addr,
    mp0_key => s11_mp0_key,
    mp0_wdata => s11_mp0_wdata,
    mp0_rdata => m1_ch0_rdata,
    mp0_oob => m1_ch0_oob);
  s012 : entity work.toy_counter_stage_012 port map (
    clk => pipe_clk,
    rst => rst,
    flush => flush_sig,
    valid_in => v11,
    valid_out => v12,
    enable_in => e11,
    enable_out => e12,
    state_in => st11,
    state_out => st12);
  s013 : entity work.toy_counter_stage_013 port map (
    clk => pipe_clk,
    rst => rst,
    flush => flush_sig,
    valid_in => v12,
    valid_out => v13,
    enable_in => e12,
    enable_out => e13,
    state_in => st12,
    state_out => st13);
  s014 : entity work.toy_counter_stage_014 port map (
    clk => pipe_clk,
    rst => rst,
    flush => flush_sig,
    valid_in => v13,
    valid_out => v14,
    enable_in => e13,
    enable_out => e14,
    state_in => st13,
    state_out => st14);
  s015 : entity work.toy_counter_stage_015 port map (
    clk => pipe_clk,
    rst => rst,
    flush => flush_sig,
    valid_in => v14,
    valid_out => v15,
    enable_in => e14,
    enable_out => e15,
    state_in => st14,
    state_out => st15);
  s016 : entity work.toy_counter_stage_016 port map (
    clk => pipe_clk,
    rst => rst,
    flush => flush_sig,
    valid_in => v15,
    valid_out => v16,
    enable_in => e15,
    enable_out => e16,
    state_in => st15,
    state_out => st16,
    ap_req => s16_ap_req,
    ap_op => s16_ap_op,
    ap_size => s16_ap_size,
    ap_addr => s16_ap_addr,
    ap_wdata => s16_ap_wdata,
    ap_expected => s16_ap_expected,
    ap_old => m1_at_old,
    ap_oob => m1_at_oob);
  s017 : entity work.toy_counter_stage_017 port map (
    clk => pipe_clk,
    rst => rst,
    flush => flush_sig,
    valid_in => v16,
    valid_out => v17,
    enable_in => e16,
    enable_out => e17,
    state_in => st16,
    state_out => st17);
  m1_ch0_req <= s11_mp0_req;
  m1_ch0_op <= s11_mp0_op when s11_mp0_req = '1' else (others => '0');
  m1_ch0_addr <= s11_mp0_addr when s11_mp0_req = '1' else (others => '0');
  m1_ch0_key <= s11_mp0_key when s11_mp0_req = '1' else (others => '0');
  m1_ch0_wdata <= s11_mp0_wdata when s11_mp0_req = '1' else (others => '0');
  m1_at_req <= s16_ap_req;
  m1_at_op <= s16_ap_op when s16_ap_req = '1' else (others => '0');
  m1_at_size <= s16_ap_size when s16_ap_req = '1' else (others => '0');
  m1_at_addr <= s16_ap_addr when s16_ap_req = '1' else (others => '0');
  m1_at_wdata <= s16_ap_wdata when s16_ap_req = '1' else (others => '0');
  m1_at_expected <= s16_ap_expected when s16_ap_req = '1' else (others => '0');
  m001 : entity work.toy_counter_map_1 port map (
    clk => pipe_clk,
    rst => rst,
    ch0_req => m1_ch0_req,
    ch0_op => m1_ch0_op,
    ch0_addr => m1_ch0_addr,
    ch0_key => m1_ch0_key,
    ch0_wdata => m1_ch0_wdata,
    ch0_rdata => m1_ch0_rdata,
    ch0_oob => m1_ch0_oob,
    at_req => m1_at_req,
    at_op => m1_at_op,
    at_size => m1_at_size,
    at_addr => m1_at_addr,
    at_wdata => m1_at_wdata,
    at_expected => m1_at_expected,
    at_old => m1_at_old,
    at_oob => m1_at_oob,
    host_req => tie_zero,
    host_wr => tie_zero,
    host_addr => tie_addr,
    host_wdata => m1_host_wdata,
    host_rdata => m1_host_rdata);
  flush_sig <= '0';
  fifo_out_bus(576 downto 0) <= st17;
  output_fifo : entity work.ehdl_async_fifo port map (
    wr_clk => pipe_clk, rd_clk => shell_clk, rst => rst,
    wr_en => v17, wr_data => fifo_out_bus,
    rd_en => tie_one, rd_data => fifo_out_q,
    empty => fifo_out_empty, full => fifo_out_full);
  m_axis_tvalid <= not fifo_out_empty;
  m_axis_tdata <= fifo_out_q(511 downto 0);
  m_axis_tlen <= fifo_out_q(527 downto 512);
  m_axis_tlast <= '1';
  m_axis_tverdict <= fifo_out_q(576 downto 545) when fifo_out_q(544) = '1' else x"00000000";
end architecture rtl;


"""Multi-program NIC deployment tests (§2.4)."""

import pytest

from repro.apps import firewall, router, suricata
from repro.core import compile_program
from repro.core.resources import ALVEO_U50, estimate_resources
from repro.ebpf.maps import MapSet
from repro.hwsim.multi import MultiProgramNic, ethertype_classifier
from repro.net.packet import ETH_P_IP, ipv4, mac, udp_packet


@pytest.fixture()
def nic():
    fw_prog = firewall.build()
    rt_prog = router.build()
    fw_maps = MapSet(fw_prog.maps)
    rt_maps = MapSet(rt_prog.maps)
    router.add_route(rt_maps, ipv4("192.168.1.1"), mac("02:00:00:00:01:01"),
                     mac("02:00:00:00:01:02"), 3)
    return MultiProgramNic(
        [compile_program(fw_prog), compile_program(rt_prog)],
        # steer IPv4 to the router slot, everything else to the firewall
        ethertype_classifier({ETH_P_IP: 1}, default=0),
        maps=[fw_maps, rt_maps],
    )


class TestDispatch:
    def test_frames_steered_by_ethertype(self, nic):
        ip_frames = [udp_packet(dst_ip="192.168.1.9", size=64)] * 30
        other = [b"\x00" * 12 + b"\x86\xdd" + bytes(50)] * 10
        results = nic.run_at_line_rate(ip_frames + other)
        assert results[0].packets == 10  # non-IP -> firewall slot
        assert results[1].packets == 30  # IPv4 -> router slot

    def test_each_pipeline_line_rate(self, nic):
        frames = [udp_packet(dst_ip="192.168.1.9", size=64)] * 500
        results = nic.run_at_line_rate(frames)
        assert results[1].report.throughput_mpps > 200

    def test_empty_slot_has_no_report(self, nic):
        results = nic.run_at_line_rate([udp_packet(size=64)])
        assert results[0].report is None
        assert results[0].packets == 0

    def test_aggregate_throughput(self, nic):
        frames = [udp_packet(dst_ip="192.168.1.9", size=64)] * 200
        frames += [b"\x00" * 12 + b"\x86\xdd" + bytes(50)] * 200
        results = nic.run_at_line_rate(frames)
        agg = nic.aggregate_throughput_mpps(results)
        assert agg > 300  # two parallel pipelines exceed one link

    def test_bad_classifier_rejected(self):
        pipe = compile_program(firewall.build())
        nic = MultiProgramNic([pipe], lambda f: 7)
        with pytest.raises(ValueError, match="bad pipeline index"):
            nic.run_at_line_rate([udp_packet(size=64)])

    def test_short_frame_uses_default_slot(self, nic):
        results = nic.run_at_line_rate([b"\x01\x02"])
        assert results[0].packets == 1


class TestFromPrograms:
    def test_builds_nic_and_warms_the_compile_cache(self):
        from repro.core.cache import get_default_cache

        fw_prog = firewall.build()
        rt_prog = router.build()
        nic = MultiProgramNic.from_programs(
            [fw_prog, rt_prog],
            ethertype_classifier({ETH_P_IP: 1}, default=0),
        )
        assert [p.name for p in nic.pipelines] == ["firewall", "router"]
        # start-up went through the shared on-disk cache
        assert get_default_cache().stats()["disk_entries"] >= 2
        # and the NIC works: IPv4 steered to the router slot
        results = nic.run_at_line_rate([udp_packet(size=64)] * 8)
        assert results[1].packets == 8


class TestResources:
    def test_shell_counted_once(self, nic):
        total = nic.resources()
        separate = sum(
            estimate_resources(p, include_shell=False).luts
            for p in nic.pipelines
        )
        from repro.core.resources import CORUNDUM_SHELL

        assert total.luts == pytest.approx(
            separate + CORUNDUM_SHELL.luts + 650, abs=5
        )

    def test_three_programs_fit_the_u50(self):
        pipelines = [
            compile_program(firewall.build()),
            compile_program(router.build()),
            compile_program(suricata.build()),
        ]
        nic = MultiProgramNic(pipelines, lambda f: 0)
        assert nic.fits(ALVEO_U50)
        assert nic.resources().max_pct < 60

    def test_needs_at_least_one_pipeline(self):
        with pytest.raises(ValueError):
            MultiProgramNic([], lambda f: 0)

    def test_maps_arity_checked(self):
        pipe = compile_program(firewall.build())
        with pytest.raises(ValueError, match="per pipeline"):
            MultiProgramNic([pipe], lambda f: 0, maps=[])


class TestSlotManagement:
    """Serving control-plane primitives: add/replace/remove (§2.4 + §6)."""

    def test_names_and_index_of(self, nic):
        assert nic.names == ["firewall", "router"]
        assert nic.index_of("router") == 1
        with pytest.raises(KeyError):
            nic.index_of("nope")

    def test_index_of_ambiguous(self, nic):
        nic.add(compile_program(firewall.build()))
        with pytest.raises(ValueError, match="ambiguous"):
            nic.index_of("firewall")

    def test_add_is_load_then_steer(self, nic):
        index = nic.add(compile_program(suricata.build()))
        assert index == 2
        # classifier untouched: no frame reaches the new slot yet
        results = nic.run_at_line_rate(
            [udp_packet(dst_ip="192.168.1.9", size=64)] * 20
        )
        assert results[2].packets == 0

    def test_replace_keeps_index_and_steering(self, nic):
        frames = [udp_packet(dst_ip="192.168.1.9", size=64)] * 20
        nic.replace("router", compile_program(firewall.build()))
        assert nic.names == ["firewall", "firewall"]
        # slot 1 still receives every IPv4 frame, now as the new program
        results = nic.run_at_line_rate(frames)
        assert results[1].packets == 20

    def test_replace_resets_maps_unless_given(self, nic):
        old_maps = nic.maps[1]
        nic.replace_at(1, compile_program(router.build()))
        assert nic.maps[1] is not old_maps
        kept = nic.maps[1]
        nic.replace_at(1, compile_program(router.build()), mapset=kept)
        assert nic.maps[1] is kept

    def test_remove_remaps_to_default(self, nic):
        frames = [udp_packet(dst_ip="192.168.1.9", size=64)] * 15
        nic.remove("router")
        assert nic.names == ["firewall"]
        results = nic.run_at_line_rate(frames)
        assert results[0].packets == 15  # IPv4 now falls back to slot 0

    def test_remove_shifts_higher_slots_down(self, nic):
        nic.add(compile_program(suricata.build()))
        nic.classifier = ethertype_classifier({ETH_P_IP: 2}, default=0)
        nic.remove("router")  # slot 1 goes, suricata moves 2 -> 1
        results = nic.run_at_line_rate(
            [udp_packet(dst_ip="192.168.1.9", size=64)] * 10
        )
        assert results[1].packets == 10

    def test_remove_refuses_default_slot(self, nic):
        with pytest.raises(ValueError, match="slot 0"):
            nic.remove_at(0)
        nic.remove_at(1)
        with pytest.raises(ValueError, match="slot 0"):
            nic.remove_at(0)  # the sole remaining slot stays put


class TestProcessBatch:
    def test_persistent_sims_accumulate_state(self):
        from repro.apps import toy_counter

        counter = MultiProgramNic(
            [compile_program(toy_counter.build())], lambda f: 0
        )
        frames = [toy_counter.packet_for_key(1)] * 10
        counter.process_batch(frames)
        sim = counter._sims[0]
        counter.process_batch(frames)
        # same simulator instance serves every batch, and its map state
        # carries over: 20 packets counted across the two batches
        assert counter._sims[0] is sim
        value = counter.maps[0].by_name("stats").lookup(
            (1).to_bytes(4, "little")
        )
        assert int.from_bytes(value, "little") == 20

    def test_skip_counts_without_executing(self, nic):
        frames = [udp_packet(dst_ip="192.168.1.9", size=64)] * 10
        results = nic.process_batch(frames, skip=[1])
        assert results[1].skipped is True
        assert results[1].packets == 10
        assert results[1].report is None

    def test_isolate_wraps_simerror(self, nic, monkeypatch):
        from repro.hwsim.sim import SimError

        sim = nic._sim_for(1)
        monkeypatch.setattr(
            sim, "run_packets",
            lambda *a, **k: (_ for _ in ()).throw(SimError("boom")),
        )
        frames = [udp_packet(dst_ip="192.168.1.9", size=64)] * 5
        results = nic.process_batch(frames, isolate=True)
        assert results[1].error is not None
        assert "router" in str(results[1].error)
        assert nic._sims[1] is None  # failed sim retired
        # without isolate the same failure aborts the batch
        sim2 = nic._sim_for(1)
        monkeypatch.setattr(
            sim2, "run_packets",
            lambda *a, **k: (_ for _ in ()).throw(SimError("boom")),
        )
        with pytest.raises(SimError, match="router"):
            nic.process_batch(frames)

    def test_engine_override_matches_default(self):
        fw = compile_program(firewall.build())
        frames = [udp_packet(size=64)] * 50
        by_engine = {}
        for engine in (None, "codegen"):
            nic = MultiProgramNic([fw], lambda f: 0, engine=engine)
            report = nic.process_batch(frames)[0].report
            by_engine[engine] = (report.cycles, dict(report.action_counts))
        assert by_engine[None] == by_engine["codegen"]

"""End-to-end compiler tests: pipeline structure, framing, pruning, hazards."""

import pytest

from repro.apps import toy_counter
from repro.core import (
    CompileOptions,
    StageKind,
    compile_program,
)
from repro.core.framing import apply_framing, stage_packet_depth
from repro.ebpf import isa
from repro.ebpf.asm import assemble_program
from repro.ebpf.isa import MapSpec

MAPS = {"m": MapSpec("m", "array", 4, 8, 4)}


class TestToyPipeline:
    """Structure of the Figure 8 pipeline."""

    @pytest.fixture(scope="class")
    def pipeline(self):
        return compile_program(toy_counter.build())

    def test_stage_count_near_figure8(self, pipeline):
        # Figure 8 shows 20 stages; our fusion choices land nearby.
        assert 12 <= pipeline.n_stages <= 24

    def test_bounds_check_elided(self, pipeline):
        assert pipeline.elided_bounds_checks == 1

    def test_ctx_loads_become_entry_ops(self, pipeline):
        # the data pointer load is wired at entry; the data_end load became
        # dead after bounds-check elision and was removed entirely
        assert len(pipeline.entry_ops) == 1
        scheduled = [
            op.insn_index for s in pipeline.stages for op in s.ops
        ]
        for entry in pipeline.entry_ops:
            assert entry.insn_index not in scheduled

    def test_max_state_88_bytes(self, pipeline):
        # the paper: "the largest of the stages only requires 88B of memory"
        assert pipeline.max_state_bytes == 88

    def test_stack_pruned_to_key(self, pipeline):
        # stack carried anywhere is exactly the 4-byte lookup key
        widths = {sum(s for _, s in st.live_in_stack) for st in pipeline.stages}
        assert widths <= {0, 4}

    def test_register_histogram_small(self, pipeline):
        for stage in pipeline.stages:
            assert len(stage.live_in_regs) <= 3

    def test_atomic_block_planned(self, pipeline):
        plan = pipeline.map_hazards[1]
        assert plan.uses_atomic and not plan.needs_flush

    def test_exit_is_last_stage(self, pipeline):
        last_ops = pipeline.stages[-1].ops
        assert any(op.insn.is_exit for op in last_ops)

    def test_summary_renders(self, pipeline):
        text = pipeline.summary()
        assert "stage" in text and "call 1" in text


class TestOptions:
    def test_no_ilp_lengthens_pipeline(self):
        prog = toy_counter.build()
        wide = compile_program(prog)
        narrow = compile_program(
            prog, CompileOptions(enable_ilp=False, enable_fusion=False)
        )
        assert narrow.n_stages > wide.n_stages
        assert narrow.max_ilp == 1

    def test_no_pruning_carries_everything(self):
        prog = toy_counter.build()
        pruned = compile_program(prog)
        unpruned = compile_program(prog, CompileOptions(enable_pruning=False))
        assert unpruned.max_state_bytes > pruned.max_state_bytes
        assert unpruned.max_state_bytes >= 512 + 64  # stack + frame

    def test_keep_bounds_checks(self):
        prog = toy_counter.build()
        kept = compile_program(
            prog, CompileOptions(elide_bounds_checks=False)
        )
        assert kept.elided_bounds_checks == 0
        assert kept.n_instructions > compile_program(prog).n_instructions

    def test_row_width_cap(self):
        prog = toy_counter.build()
        capped = compile_program(prog, CompileOptions(max_row_width=2))
        assert capped.max_ilp <= 2

    def test_invalid_program_rejected(self):
        from repro.ebpf.verifier import VerifierError

        bad = assemble_program("r0 = r5\nexit")
        with pytest.raises(VerifierError):
            compile_program(bad)


class TestFraming:
    def test_deep_access_inserts_nops(self):
        source = """
            r6 = *(u32 *)(r1 + 0)
            r7 = *(u32 *)(r1 + 4)
            r2 = r6
            r2 += 200
            if r2 > r7 goto out
            r3 = *(u8 *)(r6 + 190)
            *(u8 *)(r6 + 0) = r3
        out:
            r0 = 2
            exit
        """
        prog = assemble_program(source)
        pipe = compile_program(prog)
        nops = [s for s in pipe.stages if s.kind is StageKind.NOP_FRAMING]
        assert nops, "expected NOP stages to wait for frame 2"
        # the deep access must sit at a stage >= frame_index + 1 = 3
        deep_index = next(
            i for i, insn in enumerate(pipe.program.instructions)
            if insn.is_mem_load and insn.off == 190
        )
        assert pipe.stage_of_insn(deep_index) >= 3

    def test_shallow_accesses_insert_no_nops(self):
        pipe = compile_program(toy_counter.build())
        assert not any(s.kind is StageKind.NOP_FRAMING for s in pipe.stages)

    def test_smaller_frames_need_more_nops(self):
        source = """
            r6 = *(u32 *)(r1 + 0)
            r7 = *(u32 *)(r1 + 4)
            r2 = r6
            r2 += 130
            if r2 > r7 goto out
            r3 = *(u8 *)(r6 + 120)
        out:
            r0 = 2
            exit
        """
        prog = assemble_program(source)
        with32 = compile_program(prog, CompileOptions(frame_size=32))
        with64 = compile_program(prog, CompileOptions(frame_size=64))
        nops32 = sum(1 for s in with32.stages if s.kind is StageKind.NOP_FRAMING)
        nops64 = sum(1 for s in with64.stages if s.kind is StageKind.NOP_FRAMING)
        assert nops32 >= nops64

    def test_dynamic_access_assumes_worst_case(self):
        source = """
            r6 = *(u32 *)(r1 + 0)
            r7 = *(u32 *)(r1 + 4)
            r2 = *(u8 *)(r6 + 0)
            r6 += r2
            r3 = r6
            r3 += 2
            if r3 > r7 goto out
            r4 = *(u8 *)(r6 + 0)
            *(u8 *)(r6 + 1) = r4
        out:
            r0 = 2
            exit
        """
        prog = assemble_program(source)
        small = compile_program(prog, CompileOptions(dynamic_access_depth=64))
        large = compile_program(prog, CompileOptions(dynamic_access_depth=512))
        assert large.n_stages > small.n_stages


class TestHazardPlanning:
    def test_war_buffer_for_early_write(self):
        # store to the map value, then a second lookup later
        source = """
            r2 = 0
            *(u32 *)(r10 - 4) = r2
            r1 = map[m]
            r2 = r10
            r2 += -4
            call 1
            if r0 == 0 goto out
            r2 = 1
            *(u64 *)(r0 + 0) = r2
            r2 = 0
            *(u32 *)(r10 - 8) = r2
            r1 = map[m]
            r2 = r10
            r2 += -8
            call 1
            if r0 == 0 goto out
            r3 = *(u64 *)(r0 + 0)
        out:
            r0 = 2
            exit
        """
        pipe = compile_program(assemble_program(source, maps=MAPS))
        plan = pipe.map_hazards[1]
        assert plan.war_buffer_depth > 0
        assert plan.needs_flush  # the load after the store is a RAW window

    def test_flush_block_geometry(self):
        source = """
            r2 = 0
            *(u32 *)(r10 - 4) = r2
            r1 = map[m]
            r2 = r10
            r2 += -4
            call 1
            if r0 == 0 goto out
            r2 = *(u64 *)(r0 + 0)
            r2 += 1
            *(u64 *)(r0 + 0) = r2
        out:
            r0 = 2
            exit
        """
        pipe = compile_program(assemble_program(source, maps=MAPS))
        plan = pipe.map_hazards[1]
        assert plan.flush_blocks
        fb = plan.flush_blocks[0]
        assert fb.write_stage > fb.read_stage
        assert fb.L == fb.write_stage - fb.read_stage
        assert fb.K() == fb.read_stage + 4

    def test_channel_cap_two(self):
        pipe = compile_program(toy_counter.build())
        for plan in pipe.map_hazards.values():
            assert 1 <= plan.channels <= 2

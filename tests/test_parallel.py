"""Multi-queue parallel simulation: RSS sharding, map merge, invariance.

Covers the three layers of :mod:`repro.hwsim.parallel`:

* the Toeplitz hash against the Microsoft RSS known-answer vectors and
  the sharding rules built on it (non-IP fallback, flow purity, hash
  stability across worker counts);
* the map-shard merge protocol (sum / union / last policies, conflict
  detection and last-writer resolution);
* the headline differential property: a sharded multi-worker run of a
  flow-partitionable program produces, for every worker count, the same
  XDP action multiset, byte-identical output frames per input position,
  and identical merged map state as both the single-queue simulator and
  the reference VM.
"""

import struct

import pytest

from repro.apps import firewall
from repro.core import compile_program
from repro.ebpf.isa import MapSpec
from repro.ebpf.maps import MapSet
from repro.ebpf.vm import Vm
from repro.ebpf.xdp import XdpAction
from repro.hwsim import (
    ParallelPipelineSimulator,
    ParallelSimError,
    PipelineSimulator,
    SimError,
    SimOptions,
    merge_map_shards,
    merge_reports,
)
from repro.hwsim.parallel import _dump_map_items, default_merge_policies
from repro.hwsim.stats import SimReport
from repro.net.flows import (
    RSS_KEY,
    TrafficGenerator,
    TrafficSpec,
    rss_hash,
    rss_input,
    rss_shard,
    shard_frames,
    toeplitz_hash,
)
from repro.net.packet import parse_five_tuple, tcp_packet, udp6_packet, udp_packet


def _ip(dotted: str) -> bytes:
    return bytes(int(p) for p in dotted.split("."))


# The Microsoft RSS verification suite: every NIC implementing Toeplitz
# RSS must reproduce these hashes under the default 40-byte key.
MS_VECTORS = [
    # (src ip, sport, dst ip, dport, hash with ports, hash ip-only)
    ("66.9.149.187", 2794, "161.142.100.80", 1766, 0x51CCC178, 0x323E8FC2),
    ("199.92.111.2", 14230, "65.69.140.83", 4739, 0xC626B0EA, 0xD718262A),
    ("24.19.198.95", 12898, "12.22.207.184", 38024, 0x5C2B394A, 0xD2D0A5DE),
    ("38.27.205.30", 48228, "209.142.163.6", 2217, 0xAFC7327F, 0x82989176),
    ("153.39.163.191", 44251, "202.188.127.2", 1303, 0x10E828A2, 0x5D1809C5),
]


class TestToeplitz:
    def test_known_answer_vectors_with_ports(self):
        for src, sport, dst, dport, expected, _ in MS_VECTORS:
            data = _ip(src) + _ip(dst) + struct.pack(">HH", sport, dport)
            assert toeplitz_hash(data) == expected, (src, sport)

    def test_known_answer_vectors_ip_only(self):
        for src, _sport, dst, _dport, _h, expected in MS_VECTORS:
            assert toeplitz_hash(_ip(src) + _ip(dst)) == expected, src

    def test_frame_hash_matches_tuple_hash(self):
        src, sport, dst, dport, expected, _ = MS_VECTORS[0]
        frame = udp_packet(src_ip=src, dst_ip=dst, sport=sport, dport=dport,
                           size=64)
        assert rss_hash(frame) == expected

    def test_key_too_short_rejected(self):
        with pytest.raises(ValueError, match="key too short"):
            toeplitz_hash(bytes(12), key=bytes(8))

    def test_symmetric_hash_equal_both_directions(self):
        fwd = udp_packet(src_ip="10.1.2.3", dst_ip="10.9.8.7",
                         sport=1111, dport=53, size=64)
        rev = udp_packet(src_ip="10.9.8.7", dst_ip="10.1.2.3",
                         sport=53, dport=1111, size=64)
        assert rss_hash(fwd) != rss_hash(rev)  # asymmetric by default
        assert rss_hash(fwd, symmetric=True) == rss_hash(rev, symmetric=True)


class TestSharding:
    def test_non_ip_frames_fall_back_to_shard_zero(self):
        arp = b"\xff" * 12 + b"\x08\x06" + bytes(46)
        ipv6 = udp6_packet(size=64)
        runt = b"\x01\x02\x03"
        for frame in (arp, ipv6, runt):
            assert rss_input(frame) is None
            assert rss_hash(frame) is None
            for n in (1, 2, 4, 8):
                assert rss_shard(frame, n) == 0

    def test_non_tcp_udp_ip_hashes_addresses_only(self):
        # ICMP: hashed over the 8-byte address pair, still sharded
        frame = udp_packet(src_ip="66.9.149.187", dst_ip="161.142.100.80",
                           size=64)
        icmp = bytearray(frame)
        icmp[23] = 1  # proto = ICMP
        assert rss_hash(bytes(icmp)) == 0x323E8FC2

    def test_bad_shard_count_rejected(self):
        with pytest.raises(ValueError, match="n_shards"):
            rss_shard(udp_packet(size=64), 0)

    def test_flow_purity_and_order_preserved(self):
        gen = TrafficGenerator(TrafficSpec(n_flows=40, packet_size=64, seed=9))
        frames = list(gen.packets(400))
        buffers = shard_frames(frames, 4)
        assert sum(len(b) for b in buffers) == len(frames)
        # every flow lands in exactly one shard...
        flow_shard = {}
        for shard, buf in enumerate(buffers):
            for frame in buf:
                flow = parse_five_tuple(bytes(frame))
                assert flow_shard.setdefault(flow, shard) == shard
        # ...multiple shards are actually used...
        assert sum(1 for b in buffers if len(b)) > 1
        # ...and per-flow frame order matches the unsharded stream
        per_flow_in = {}
        for frame in frames:
            per_flow_in.setdefault(parse_five_tuple(frame), []).append(frame)
        for buf in buffers:
            by_flow = {}
            for frame in buf:
                by_flow.setdefault(parse_five_tuple(bytes(frame)), []).append(
                    bytes(frame)
                )
            for flow, seq in by_flow.items():
                assert seq == per_flow_in[flow]

    def test_hash_stable_across_worker_counts(self):
        frames = [
            tcp_packet(src_ip=f"10.0.{i}.1", dst_ip="192.168.0.1",
                       sport=1000 + i, dport=80, size=64)
            for i in range(32)
        ]
        hashes = [rss_hash(f) for f in frames]
        # the hash is a pure function of the frame: recomputing and
        # changing the shard count never changes it
        assert hashes == [rss_hash(f) for f in frames]
        for n in (2, 3, 4, 8):
            assert [rss_shard(f, n) for f in frames] == \
                   [h % n for h in hashes]


# -- merge protocol -----------------------------------------------------------


def _worker_states(spec_dict, mutate_fns):
    """Per-worker item dicts: each fn mutates a fresh MapSet copy."""
    baseline_maps = MapSet(spec_dict)
    baseline = _dump_map_items(baseline_maps)
    states = []
    for fn in mutate_fns:
        maps = MapSet(spec_dict)
        fn(maps)
        states.append(_dump_map_items(maps))
    return baseline_maps, baseline, states


class TestMergeProtocol:
    ARRAY = {0: MapSpec("counters", "array", key_size=4, value_size=8,
                        max_entries=4)}
    HASH = {0: MapSpec("flows", "hash", key_size=4, value_size=4,
                       max_entries=8)}

    @staticmethod
    def _k(i):
        return struct.pack("<I", i)

    @staticmethod
    def _v(i, size=8):
        return struct.pack("<Q", i)[:size]

    def test_sum_policy_adds_counter_deltas(self):
        k, v = self._k, self._v
        maps, baseline, states = _worker_states(self.ARRAY, [
            lambda m: m[0].update(k(0), v(5)),
            lambda m: (m[0].update(k(0), v(7)), m[0].update(k(2), v(1))),
        ])
        conflicts = merge_map_shards(maps, baseline, states,
                                     default_merge_policies(maps))
        assert conflicts == []
        assert maps[0].lookup(k(0)) == v(12)  # 5 + 7 over a 0 baseline
        assert maps[0].lookup(k(2)) == v(1)
        assert maps[0].lookup(k(1)) == v(0)

    def test_sum_policy_exact_against_nonzero_baseline(self):
        k, v = self._k, self._v
        specs = self.ARRAY
        base_maps = MapSet(specs)
        base_maps[0].update(k(1), v(100))
        baseline = _dump_map_items(base_maps)
        # both workers started from 100 and counted up independently
        w0 = MapSet(specs)
        w0[0].update(k(1), v(103))
        w1 = MapSet(specs)
        w1[0].update(k(1), v(110))
        conflicts = merge_map_shards(
            base_maps, baseline,
            [_dump_map_items(w0), _dump_map_items(w1)],
            default_merge_policies(base_maps),
        )
        assert conflicts == []
        assert base_maps[0].lookup(k(1)) == v(113)  # 100 + 3 + 10

    def test_union_policy_unions_disjoint_flow_state(self):
        k = self._k
        maps, baseline, states = _worker_states(self.HASH, [
            lambda m: m[0].update(k(1), b"aaaa"),
            lambda m: m[0].update(k(2), b"bbbb"),
        ])
        conflicts = merge_map_shards(maps, baseline, states,
                                     default_merge_policies(maps))
        assert conflicts == []
        assert maps[0].lookup(k(1)) == b"aaaa"
        assert maps[0].lookup(k(2)) == b"bbbb"

    def test_union_policy_identical_writes_agree(self):
        k = self._k
        maps, baseline, states = _worker_states(self.HASH, [
            lambda m: m[0].update(k(3), b"same"),
            lambda m: m[0].update(k(3), b"same"),
        ])
        conflicts = merge_map_shards(maps, baseline, states,
                                     default_merge_policies(maps))
        assert conflicts == []
        assert maps[0].lookup(k(3)) == b"same"

    def test_union_policy_conflict_reported_and_last_writer_wins(self):
        k = self._k
        maps, baseline, states = _worker_states(self.HASH, [
            lambda m: m[0].update(k(1), b"AAAA"),
            lambda m: m[0].update(k(1), b"BBBB"),
        ])
        conflicts = merge_map_shards(maps, baseline, states,
                                     default_merge_policies(maps))
        assert len(conflicts) == 1
        conflict = conflicts[0]
        assert conflict.map_name == "flows" and conflict.key == k(1)
        assert conflict.values == {0: b"AAAA", 1: b"BBBB"}
        assert conflict.resolution == b"BBBB"
        assert maps[0].lookup(k(1)) == b"BBBB"
        assert "flows" in str(conflict)

    def test_delete_vs_update_is_a_conflict(self):
        k = self._k
        specs = self.HASH
        base_maps = MapSet(specs)
        base_maps[0].update(k(5), b"old!")
        baseline = _dump_map_items(base_maps)
        w0 = MapSet(specs)
        w0[0].update(k(5), b"old!")
        w0[0].delete(k(5))
        w1 = MapSet(specs)
        w1[0].update(k(5), b"new!")
        conflicts = merge_map_shards(
            base_maps, baseline,
            [_dump_map_items(w0), _dump_map_items(w1)],
            default_merge_policies(base_maps),
        )
        assert len(conflicts) == 1
        assert conflicts[0].values == {0: None, 1: b"new!"}
        assert base_maps[0].lookup(k(5)) == b"new!"

    def test_agreed_delete_is_applied(self):
        k = self._k
        specs = self.HASH
        base_maps = MapSet(specs)
        base_maps[0].update(k(5), b"old!")
        baseline = _dump_map_items(base_maps)
        w0 = MapSet(specs)
        w0[0].update(k(5), b"old!")
        w0[0].delete(k(5))
        w1 = MapSet(specs)
        w1[0].update(k(5), b"old!")  # untouched replica of the baseline
        conflicts = merge_map_shards(
            base_maps, baseline,
            [_dump_map_items(w0), _dump_map_items(w1)],
            default_merge_policies(base_maps),
        )
        assert conflicts == []
        assert base_maps[0].lookup(k(5)) is None

    def test_last_policy_override(self):
        k, v = self._k, self._v
        prog_specs = self.ARRAY
        maps, baseline, states = _worker_states(prog_specs, [
            lambda m: m[0].update(k(0), v(5)),
            lambda m: m[0].update(k(0), v(7)),
        ])
        policies = default_merge_policies(maps)
        policies[0] = "last"
        conflicts = merge_map_shards(maps, baseline, states, policies)
        assert conflicts == []
        assert maps[0].lookup(k(0)) == v(7)

    def test_bad_policy_name_rejected(self):
        pipeline = compile_program(firewall.build())
        with pytest.raises(ValueError, match="merge policy"):
            ParallelPipelineSimulator(pipeline, workers=2,
                                      merge_policies={"flows": "average"})


# -- report merging -----------------------------------------------------------


class TestReportMerge:
    def _report(self, cycles, out, total_cycles):
        rep = SimReport(clock_mhz=250.0, n_stages=10, keep_records=False)
        rep.cycles = cycles
        rep.packets_in = out
        for _ in range(out):
            rep.tally(XdpAction.TX, 0, 0, 0)
        rep.sum_total_cycles = total_cycles
        return rep

    def test_aggregates_sum_cycles_max(self):
        a = self._report(100, 3, 30)
        b = self._report(250, 5, 70)
        merged = merge_reports([a, b])
        assert merged.cycles == 250  # replicas run concurrently
        assert merged.packets_out == 8
        assert merged.sum_total_cycles == 100
        assert merged.latency_ns() == pytest.approx(
            (100 / 8) * merged.cycle_ns
        )

    def test_clock_mismatch_rejected(self):
        a = self._report(1, 1, 1)
        b = SimReport(clock_mhz=100.0, n_stages=10)
        with pytest.raises(ValueError, match="different clocks"):
            merge_reports([a, b])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            merge_reports([])


# -- the headline property: worker-count invariance ---------------------------


@pytest.fixture(scope="module")
def firewall_setup():
    program = firewall.build()
    pipeline = compile_program(program)
    gen = TrafficGenerator(TrafficSpec(n_flows=24, packet_size=64, seed=11))
    frames = list(gen.packets(300))
    flows = list(gen.flows)

    def setup(maps):
        for flow in flows:
            firewall.allow_flow(maps, flow)

    return program, pipeline, frames, setup


class TestWorkerCountInvariance:
    def _reference(self, program, pipeline, frames, setup):
        vm_maps = MapSet(program.maps)
        setup(vm_maps)
        vm = Vm(program, maps=vm_maps)
        vm_results = [vm.run(f) for f in frames]

        sim_maps = MapSet(program.maps)
        setup(sim_maps)
        sim = PipelineSimulator(pipeline, maps=sim_maps,
                                options=SimOptions(keep_records=True))
        report = sim.run_packets(frames)
        return vm_maps, vm_results, sim_maps, report

    @pytest.mark.parametrize("workers", [2, 4])
    def test_matches_vm_and_single_queue(self, firewall_setup, workers):
        program, pipeline, frames, setup = firewall_setup
        vm_maps, vm_results, sim_maps, single = self._reference(
            program, pipeline, frames, setup
        )

        par_maps = MapSet(program.maps)
        setup(par_maps)
        psim = ParallelPipelineSimulator(
            pipeline, maps=par_maps,
            options=SimOptions(keep_records=True), workers=workers,
        )
        result = psim.run_stream(frames)

        assert result.workers == workers
        assert result.flow_partitionable
        assert sum(result.shard_sizes) == len(frames)
        assert sum(1 for s in result.shard_sizes if s) > 1  # really sharded

        # 1. same XDP action multiset (and counts merged exactly)
        assert result.report.action_counts == single.action_counts
        assert result.report.packets_out == single.packets_out

        # 2. byte-identical output frames per original trace position
        # (each flow's packets keep their shard-local order, so indexing
        # back through shard_indices reconstructs the full trace)
        parallel_out = {}
        for w, worker_report in enumerate(result.worker_reports):
            for rec in worker_report.records:
                original = result.shard_indices[w][rec.pid]
                parallel_out[original] = (rec.action, bytes(rec.data))
        assert len(parallel_out) == len(frames)
        for rec in single.records:
            assert parallel_out[rec.pid] == (rec.action, bytes(rec.data))
        for i, vm_res in enumerate(vm_results):
            assert parallel_out[i] == (vm_res.action, vm_res.packet)

        # 3. identical merged map state (vs both references)
        for fd in vm_maps:
            assert dict(par_maps[fd].items()) == dict(vm_maps[fd].items())
            assert dict(par_maps[fd].items()) == dict(sim_maps[fd].items())

    def test_single_worker_path_is_plain_simulator(self, firewall_setup):
        program, pipeline, frames, setup = firewall_setup
        _vm_maps, _vm_results, sim_maps, single = self._reference(
            program, pipeline, frames, setup
        )
        par_maps = MapSet(program.maps)
        setup(par_maps)
        psim = ParallelPipelineSimulator(
            pipeline, maps=par_maps,
            options=SimOptions(keep_records=True), workers=1,
        )
        result = psim.run_stream(frames)
        assert result.report.cycles == single.cycles
        assert result.report.action_counts == single.action_counts
        for fd in sim_maps:
            assert dict(par_maps[fd].items()) == dict(sim_maps[fd].items())

    def test_bad_worker_count_rejected(self, firewall_setup):
        _program, pipeline, _frames, _setup = firewall_setup
        with pytest.raises(ValueError, match="workers"):
            ParallelPipelineSimulator(pipeline, workers=0)


# -- failure surfacing --------------------------------------------------------


class TestWorkerFailures:
    def test_worker_exception_carries_frame_context(self, firewall_setup):
        program, pipeline, frames, setup = firewall_setup
        maps = MapSet(program.maps)
        setup(maps)
        psim = ParallelPipelineSimulator(
            pipeline, maps=maps,
            options=SimOptions(keep_records=False, max_cycles=3),
            workers=2,
        )
        with pytest.raises(ParallelSimError) as excinfo:
            psim.run_stream(frames)
        err = excinfo.value
        assert err.worker in (0, 1)
        assert err.frame_index >= 0  # mapped back to the original trace
        assert "worker" in str(err)
        assert "exceeded" in err.worker_traceback

    def test_single_queue_stream_error_carries_frame_window(
        self, firewall_setup
    ):
        program, pipeline, frames, setup = firewall_setup
        maps = MapSet(program.maps)
        setup(maps)
        sim = PipelineSimulator(
            pipeline, maps=maps,
            options=SimOptions(keep_records=False, max_cycles=3),
        )
        with pytest.raises(SimError, match="while streaming"):
            sim.run_stream(iter(frames), batch_size=32)

"""Memory-region labeling tests (§3.1)."""

import pytest

from repro.core.labeling import LabelError, Region, label_program
from repro.ebpf.asm import assemble_program
from repro.ebpf.isa import MapSpec

MAPS = {"m": MapSpec("m", "array", 4, 8, 4)}


def labels_of(source: str, maps=None):
    return label_program(assemble_program(source, maps=maps))


class TestRegionLabels:
    def test_stack_store(self):
        labels = labels_of("r2 = 0\n*(u32 *)(r10 - 4) = r2\nr0 = 2\nexit")
        label = labels.label_for(1)
        assert label.region is Region.STACK
        assert label.offset == -4 and label.size == 4 and label.is_write

    def test_stack_via_derived_pointer(self):
        # §3.1: "eHDL then tracks all the downstream variables that contain
        # values derived from R10"
        labels = labels_of(
            "r9 = r10\nr9 += -16\nr2 = *(u64 *)(r9 + 8)\nr0 = 2\nexit"
        )
        label = labels.label_for(2)
        assert label.region is Region.STACK and label.offset == -8

    def test_packet_load(self):
        labels = labels_of(
            "r6 = *(u32 *)(r1 + 0)\nr2 = *(u8 *)(r6 + 12)\nr0 = 2\nexit"
        )
        label = labels.label_for(1)
        assert label.region is Region.PACKET
        assert label.offset == 12 and not label.is_write

    def test_packet_pointer_arithmetic_offset(self):
        labels = labels_of(
            "r6 = *(u32 *)(r1 + 0)\nr6 += 14\nr2 = *(u16 *)(r6 + 2)\nr0 = 2\nexit"
        )
        assert labels.label_for(2).offset == 16

    def test_ctx_load(self):
        labels = labels_of("r2 = *(u32 *)(r1 + 4)\nr0 = 2\nexit")
        assert labels.label_for(0).region is Region.CTX

    def test_map_value_access(self):
        source = """
            r2 = 0
            *(u32 *)(r10 - 4) = r2
            r1 = map[m]
            r2 = r10
            r2 += -4
            call 1
            if r0 == 0 goto out
            r3 = *(u64 *)(r0 + 0)
        out:
            r0 = 2
            exit
        """
        labels = labels_of(source, maps=MAPS)
        label = labels.label_for(7)
        assert label.region is Region.MAP_VALUE
        assert label.map_fd == 1 and label.offset == 0

    def test_atomic_label(self):
        source = """
            r2 = 0
            *(u32 *)(r10 - 4) = r2
            r1 = map[m]
            r2 = r10
            r2 += -4
            call 1
            if r0 == 0 goto out
            r3 = 1
            lock *(u64 *)(r0 + 0) += r3
        out:
            r0 = 2
            exit
        """
        labels = labels_of(source, maps=MAPS)
        label = labels.label_for(8)
        assert label.is_atomic and label.region is Region.MAP_VALUE

    def test_dynamic_offset_is_none(self):
        source = """
            r6 = *(u32 *)(r1 + 0)
            r7 = *(u32 *)(r1 + 4)
            r2 = *(u8 *)(r6 + 14)
            r6 += r2
            r3 = r6
            r3 += 2
            if r3 > r7 goto out
            r4 = *(u8 *)(r6 + 0)
        out:
            r0 = 2
            exit
        """
        labels = labels_of(source)
        assert labels.label_for(7).offset is None
        assert labels.label_for(7).region is Region.PACKET


class TestCallInfo:
    def test_lookup_call_info(self):
        source = """
            r2 = 0
            *(u32 *)(r10 - 8) = r2
            r1 = map[m]
            r2 = r10
            r2 += -8
            call 1
            r0 = 2
            exit
        """
        labels = labels_of(source, maps=MAPS)
        info = labels.call_for(5)
        assert info.map_fd == 1
        assert info.key_stack_offset == -8
        assert info.key_size == 4
        assert info.is_map_read and not info.is_map_write

    def test_update_call_info(self):
        source = """
            r2 = 0
            *(u32 *)(r10 - 4) = r2
            r3 = 9
            *(u64 *)(r10 - 16) = r3
            r1 = map[m]
            r2 = r10
            r2 += -4
            r3 = r10
            r3 += -16
            r4 = 0
            call 2
            r0 = 2
            exit
        """
        labels = labels_of(source, maps=MAPS)
        info = labels.call_for(10)
        assert info.is_map_write and info.map_fd == 1

    def test_non_map_helper(self):
        labels = labels_of("r9 = r1\ncall 5\nr0 = 2\nexit")
        info = labels.call_for(1)
        assert info.map_fd is None and info.helper_id == 5

    def test_map_fds_used(self):
        source = """
            r2 = 0
            *(u32 *)(r10 - 4) = r2
            r1 = map[m]
            r2 = r10
            r2 += -4
            call 1
            r0 = 2
            exit
        """
        labels = labels_of(source, maps=MAPS)
        assert labels.map_fds_used() == [1]


class TestJoins:
    def test_offset_join_conflicting_becomes_dynamic(self):
        source = """
            r6 = *(u32 *)(r1 + 0)
            if r1 == 0 goto other
            r6 += 4
            goto use
        other:
            r6 += 8
        use:
            r2 = *(u8 *)(r6 + 0)
            r0 = 2
            exit
        """
        labels = labels_of(source)
        use_index = 5
        assert labels.label_for(use_index).offset is None

    def test_offset_join_agreeing_kept(self):
        source = """
            r6 = *(u32 *)(r1 + 0)
            if r1 == 0 goto other
            r6 += 4
            goto use
        other:
            r6 += 4
        use:
            r2 = *(u8 *)(r6 + 0)
            r0 = 2
            exit
        """
        labels = labels_of(source)
        assert labels.label_for(5).offset == 4

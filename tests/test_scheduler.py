"""Scheduler tests: ILP, fusion, solo ops, terminators, lane caps (§3.2-3.3)."""

import pytest

from repro.core.cfg import build_cfg
from repro.core.ddg import RAW, WAR, WAW, build_ddg, critical_path_length
from repro.core.labeling import label_program
from repro.core.scheduler import SchedulerOptions, schedule_program
from repro.ebpf.asm import assemble_program
from repro.ebpf.isa import MapSpec


def schedule_src(source: str, maps=None, **opts):
    prog = assemble_program(source, maps=maps)
    labels = label_program(prog)
    cfg = build_cfg(prog)
    ddg = build_ddg(cfg, labels)
    return schedule_program(cfg, ddg, labels, SchedulerOptions(**opts))


class TestDdg:
    def _ddg(self, source, maps=None):
        prog = assemble_program(source, maps=maps)
        labels = label_program(prog)
        cfg = build_cfg(prog)
        return build_ddg(cfg, labels)

    def test_raw_dependency(self):
        ddg = self._ddg("r1 = 1\nr2 = r1\nr0 = 2\nexit")
        assert ddg.predecessors(1)[0] == RAW

    def test_war_dependency(self):
        ddg = self._ddg("r1 = 1\nr2 = r1\nr1 = 5\nr0 = 2\nexit")
        assert ddg.predecessors(2)[1] == WAR

    def test_waw_dependency(self):
        ddg = self._ddg("r1 = 1\nr1 = 2\nr0 = 2\nexit")
        assert ddg.predecessors(1)[0] == WAW

    def test_independent_ops_have_no_edge(self):
        ddg = self._ddg("r1 = 1\nr2 = 2\nr0 = 2\nexit")
        assert 0 not in ddg.predecessors(1)

    def test_disjoint_stack_slots_independent(self):
        source = (
            "r1 = 1\nr2 = 2\n*(u32 *)(r10 - 4) = r1\n*(u32 *)(r10 - 8) = r2\n"
            "r0 = 2\nexit"
        )
        ddg = self._ddg(source)
        assert 2 not in ddg.predecessors(3)

    def test_overlapping_stack_slots_conflict(self):
        source = (
            "r1 = 1\n*(u32 *)(r10 - 4) = r1\nr2 = *(u16 *)(r10 - 2)\n"
            "r0 = 2\nexit"
        )
        ddg = self._ddg(source)
        assert ddg.predecessors(2).get(1) == RAW

    def test_different_maps_independent(self):
        maps = {
            "a": MapSpec("a", "array", 4, 8, 1),
            "b": MapSpec("b", "array", 4, 8, 1),
        }
        source = """
            r2 = 0
            *(u32 *)(r10 - 4) = r2
            r1 = map[a]
            r2 = r10
            r2 += -4
            call 1
            r6 = r0
            r2 = 0
            *(u32 *)(r10 - 8) = r2
            r1 = map[b]
            r2 = r10
            r2 += -8
            call 1
            r0 = 2
            exit
        """
        ddg = self._ddg(source, maps=maps)
        # the two lookups conflict through registers, not through memory —
        # check no MAP_VALUE memory conflict exists between them
        # (regs force an order anyway; memory-wise they are disjoint)
        # indirectly: critical path is bounded by register reuse only.
        assert critical_path_length(ddg, range(len(ddg.program.instructions))) > 0

    def test_critical_path_chain(self):
        ddg = self._ddg("r1 = 1\nr1 += 1\nr1 += 1\nr0 = 2\nexit")
        assert critical_path_length(ddg, [0, 1, 2]) == 3


class TestParallelism:
    def test_independent_ops_share_row(self):
        sched = schedule_src("r1 = 1\nr2 = 2\nr3 = 3\nr0 = 2\nexit")
        assert sched.max_ilp >= 4

    def test_ilp_disabled_serialises(self):
        sched = schedule_src("r1 = 1\nr2 = 2\nr0 = 2\nexit",
                             enable_ilp=False, enable_fusion=False)
        assert sched.max_ilp == 1

    def test_dependent_chain_spreads_rows(self):
        sched = schedule_src("r1 = 1\nr2 = r1\nr3 = r2\nr0 = 2\nexit",
                             enable_fusion=False)
        assert sched.n_rows >= 3

    def test_fusion_packs_dependent_alu(self):
        fused = schedule_src("r2 = r10\nr2 += -4\nr0 = 2\nexit")
        row = fused.rows[fused.row_of(0)]
        assert 1 in row.ops and 1 in row.fused  # chained into the same stage
        plain = schedule_src("r2 = r10\nr2 += -4\nr0 = 2\nexit",
                             enable_fusion=False)
        assert plain.row_of(1) > plain.row_of(0)

    def test_fusion_chain_limit(self):
        # 4-deep chain with limit 2: needs at least 2 rows
        sched = schedule_src(
            "r1 = 1\nr1 += 1\nr1 += 1\nr1 += 1\nr0 = 2\nexit", max_fuse_chain=2
        )
        chain_rows = [r for r in sched.rows if 0 in r.ops or 1 in r.ops
                      or 2 in r.ops or 3 in r.ops]
        assert len(chain_rows) >= 2

    def test_war_shares_row(self):
        # store reads r2 while a later op overwrites r2: may share a stage
        sched = schedule_src(
            "r2 = 1\n*(u32 *)(r10 - 4) = r2\nr2 = r10\nr0 = 2\nexit"
        )
        store_row = sched.row_of(1)
        redef_row = sched.row_of(2)
        assert redef_row <= store_row + 1  # not pushed artificially far

    def test_lane_cap_respected(self):
        sched = schedule_src(
            "r1 = 1\nr2 = 2\nr3 = 3\nr4 = 4\nr0 = 2\nexit", max_row_width=2
        )
        assert all(row.width <= 2 for row in sched.rows)

    def test_call_is_solo(self):
        source = """
            r9 = r1
            r5 = 5
            call 5
            r0 = 2
            exit
        """
        sched = schedule_src(source)
        prog = assemble_program(source)
        call_index = next(i for i, insn in enumerate(prog.instructions) if insn.is_call)
        row = sched.rows[sched.row_of(call_index)]
        assert row.ops == [call_index]

    def test_helper_latency_counted(self):
        source = """
            r2 = 0
            *(u32 *)(r10 - 4) = r2
            r1 = map[m]
            r2 = r10
            r2 += -4
            call 1
            r0 = 2
            exit
        """
        sched = schedule_src(source, maps={"m": MapSpec("m", "array", 4, 8, 1)})
        assert sched.n_stages > sched.n_rows  # lookup block is pipelined


class TestTerminatorPlacement:
    def test_exit_in_final_row_of_block(self):
        # r0 is ready immediately but exit must not precede the stores
        source = """
            r6 = *(u32 *)(r1 + 0)
            r0 = 2
            *(u8 *)(r6 + 0) = 1
            *(u8 *)(r6 + 1) = 2
            *(u8 *)(r6 + 2) = 3
            exit
        """
        sched = schedule_src(source)
        prog = assemble_program(source)
        exit_index = len(prog.instructions) - 1
        exit_row = sched.row_of(exit_index)
        for i in range(exit_index):
            if i == 0:
                continue  # entry ctx load may be excluded elsewhere
            assert sched.row_of(i) <= exit_row

    def test_branch_in_final_row_of_its_block(self):
        source = """
            r2 = 1
            r3 = 2
            r4 = 3
            if r2 == 1 goto out
            r0 = 1
            exit
        out:
            r0 = 2
            exit
        """
        sched = schedule_src(source)
        branch_row = sched.row_of(3)
        assert all(sched.row_of(i) <= branch_row for i in (0, 1, 2))

    def test_ilp_statistics(self):
        sched = schedule_src("r1 = 1\nr2 = 2\nr0 = 2\nexit")
        assert sched.avg_ilp >= 1.0
        assert sched.n_instructions == 4

"""Unified telemetry subsystem tests.

Covers the zero-dependency core (counters/gauges/histograms/spans), the
three exporters (Prometheus text, Chrome ``trace_event`` JSON, flat JSON
snapshot), the tiny Prometheus text-format grammar checker CI relies on,
per-engine instrumentation (pipeline simulator, parallel engine, VM,
RTL, compiler passes), the CLI ``--metrics-out``/``--trace-out`` flags,
and the worker-merge property: registry snapshots merged across N
workers equal single-worker totals.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.apps import (
    dnat,
    firewall,
    icmp_echo,
    leaky_bucket,
    router,
    suricata,
    toy_counter,
    tunnel,
)
from repro.cli import main
from repro.core import compile_program
from repro.ebpf.maps import MapSet
from repro.ebpf.vm import Vm
from repro.hwsim import (
    ParallelPipelineSimulator,
    PipelineSimulator,
    SimOptions,
    SimReport,
    publish_report,
)
from repro.net.flows import TrafficGenerator, TrafficSpec
from repro.runtime import XdpOffload
from repro.telemetry import (
    BUCKET_BOUNDS,
    N_BUCKETS,
    Registry,
    bucket_index,
    chrome_trace,
    json_snapshot,
    merge_snapshots,
    parse_prometheus_samples,
    prometheus_text,
    validate_prometheus_text,
)

ALL_APPS = {
    "firewall": firewall,
    "router": router,
    "tunnel": tunnel,
    "dnat": dnat,
    "suricata": suricata,
    "toy_counter": toy_counter,
    "leaky_bucket": leaky_bucket,
    "icmp_echo": icmp_echo,
}

TRACE_EVENT_FIELDS = ("name", "ph", "ts", "dur", "pid", "tid")


@pytest.fixture(autouse=True)
def _private_registry():
    """Swap in a private, disabled registry per test so CLI runs (which
    flip the process-wide enabled bit) cannot leak across tests."""
    with telemetry.scoped(enabled=False) as reg:
        yield reg


def _frames(n=40, flows=8, seed=3):
    gen = TrafficGenerator(TrafficSpec(n_flows=flows, packet_size=64,
                                       seed=seed))
    return list(gen.packets(n))


def _run_app(module, frames, telemetry_on=None):
    program = module.build()
    pipeline = compile_program(program)
    sim = PipelineSimulator(
        pipeline, maps=MapSet(program.maps),
        options=SimOptions(keep_records=False, telemetry=telemetry_on),
    )
    return program, sim.run_packets(frames)


# -- core types ---------------------------------------------------------------


class TestCoreTypes:
    def test_registry_disabled_by_default(self):
        assert Registry().enabled is False
        assert telemetry.enabled() is False  # the scoped fixture default

    def test_counter_and_gauge(self):
        reg = Registry(enabled=True)
        c = reg.counter("c_total", "help", {"k": "v"})
        c.inc()
        c.inc(4)
        assert c.value == 5
        g = reg.gauge("g", "help", {})
        g.set(7)
        assert g.value == 7

    def test_label_sets_are_distinct_series(self):
        reg = Registry(enabled=True)
        reg.counter("c_total", "h", {"app": "a"}).inc(1)
        reg.counter("c_total", "h", {"app": "b"}).inc(2)
        samples = parse_prometheus_samples(prometheus_text(reg))
        series = samples["c_total"]
        assert series[(("app", "a"),)] == 1
        assert series[(("app", "b"),)] == 2

    def test_kind_conflict_rejected(self):
        reg = Registry(enabled=True)
        reg.counter("x", "h", {})
        with pytest.raises(ValueError):
            reg.gauge("x", "h", {})

    def test_bucket_index_log2_layout(self):
        assert bucket_index(0) == 0
        assert bucket_index(1) == 0
        assert bucket_index(2) == 1
        assert bucket_index(3) == 2
        assert bucket_index(2 ** 30) == 30
        assert bucket_index(2 ** 30 + 1) == 31  # overflow -> +Inf bucket
        assert len(BUCKET_BOUNDS) == N_BUCKETS - 1

    def test_histogram_observe(self):
        reg = Registry(enabled=True)
        h = reg.histogram("lat", "h", {})
        for v in (1, 2, 3, 1000):
            h.observe(v)
        assert h.count == 4
        assert h.sum == 1006
        assert sum(h.buckets) == 4

    def test_span_records_duration(self):
        reg = Registry(enabled=True)
        with reg.span("compile.test", cat="compile", program="p"):
            pass
        (span,) = reg.spans
        assert span.name == "compile.test"
        assert span.dur_ns >= 0

    def test_disabled_registry_spans_are_noops(self):
        reg = Registry(enabled=False)
        with reg.span("x"):
            pass
        assert reg.spans == []


# -- exporters ----------------------------------------------------------------


class TestPrometheusExport:
    def test_output_passes_grammar_check(self):
        reg = Registry(enabled=True)
        reg.counter("a_total", "counts \"things\"", {"l": 'va"l\\ue\n'}).inc(3)
        reg.gauge("b", "a gauge", {}).set(2.5)
        h = reg.histogram("lat", "latency", {"app": "x"})
        for v in (1, 5, 9, 2 ** 40):
            h.observe(v)
        text = prometheus_text(reg)
        assert validate_prometheus_text(text) == []

    def test_histogram_exposition_is_cumulative(self):
        reg = Registry(enabled=True)
        h = reg.histogram("lat", "h", {})
        for v in (1, 1, 4, 2 ** 40):
            h.observe(v)
        samples = parse_prometheus_samples(prometheus_text(reg))
        buckets = samples["lat_bucket"]
        le_one = buckets[(("le", "1"),)]
        le_inf = buckets[(("le", "+Inf"),)]
        assert le_one == 2
        assert le_inf == 4
        assert samples["lat_count"][()] == 4
        assert samples["lat_sum"][()] == 1 + 1 + 4 + 2 ** 40

    def test_help_and_type_emitted_once_per_name(self):
        reg = Registry(enabled=True)
        reg.counter("c_total", "h", {"a": "1"}).inc()
        reg.counter("c_total", "h", {"a": "2"}).inc()
        text = prometheus_text(reg)
        assert text.count("# HELP c_total") == 1
        assert text.count("# TYPE c_total") == 1

    def test_validator_flags_malformed_input(self):
        bad = "9bad{} 1\n"
        assert validate_prometheus_text(bad)

    def test_validator_flags_duplicate_type(self):
        bad = ("# TYPE x counter\nx 1\n"
               "# TYPE x counter\nx 2\n")
        assert validate_prometheus_text(bad)

    def test_validator_flags_non_cumulative_histogram(self):
        bad = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            'h_bucket{le="2"} 3\n'
            'h_bucket{le="+Inf"} 5\n'
            "h_sum 10\n"
            "h_count 5\n"
        )
        assert validate_prometheus_text(bad)

    def test_validator_requires_inf_bucket(self):
        bad = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 1\n'
            "h_sum 1\n"
            "h_count 1\n"
        )
        assert validate_prometheus_text(bad)

    def test_validator_accepts_empty_and_comment_only(self):
        assert validate_prometheus_text("") == []
        assert validate_prometheus_text("# just a comment\n") == []


class TestChromeTrace:
    def test_compile_spans_have_required_fields_all_apps(self):
        for name, module in ALL_APPS.items():
            with telemetry.scoped() as reg:
                compile_program(module.build())
                trace = chrome_trace(reg)
            events = trace["traceEvents"]
            assert events, f"{name}: no compile spans captured"
            for event in events:
                for fld in TRACE_EVENT_FIELDS:
                    assert fld in event, f"{name}: missing {fld!r}"
                assert event["ph"] == "X"
                assert event["dur"] >= 0
            names = {e["name"] for e in events}
            assert "compile.schedule" in names, name
            assert "compile.verify" in names, name

    def test_timestamps_are_microseconds(self):
        reg = Registry(enabled=True)
        with reg.span("s"):
            pass
        (span,) = reg.spans
        event = chrome_trace(reg)["traceEvents"][0]
        assert event["ts"] == pytest.approx(span.ts_ns / 1000.0)
        assert event["dur"] == pytest.approx(span.dur_ns / 1000.0)

    def test_trace_is_json_serializable(self):
        reg = Registry(enabled=True)
        with reg.span("s", detail="d"):
            pass
        parsed = json.loads(json.dumps(chrome_trace(reg)))
        assert parsed["traceEvents"][0]["name"] == "s"


class TestJsonSnapshot:
    def test_snapshot_round_trips_through_json(self):
        reg = Registry(enabled=True)
        reg.counter("c_total", "h", {"a": "b"}).inc(3)
        reg.histogram("lat", "h", {}).observe(5)
        snap = json.loads(json.dumps(json_snapshot(reg)))
        assert {"metrics", "spans"} <= set(snap)
        names = {m["name"] for m in snap["metrics"]}
        assert {"c_total", "lat"} <= names


# -- engine instrumentation ---------------------------------------------------


class TestSimInstrumentation:
    def test_metrics_none_when_disabled(self):
        _, report = _run_app(firewall, _frames(20))
        assert report.metrics is None

    def test_per_action_counters_match_report_all_apps(self):
        frames = _frames(30)
        for name, module in ALL_APPS.items():
            with telemetry.scoped() as reg:
                program, report = _run_app(module, frames)
                assert report.metrics is not None, name
                publish_report(report, reg, app=name)
                samples = parse_prometheus_samples(prometheus_text(reg))
            per_action = samples["ehdl_sim_packets_total"]
            total = 0
            for action, count in report.action_counts.items():
                key = (("action", action.name), ("app", name),
                       ("engine", "hwsim"))
                assert per_action[key] == count, name
                total += count
            assert total == report.packets_out, name
            assert samples["ehdl_sim_packets_in_total"][
                (("app", name), ("engine", "hwsim"))
            ] == report.packets_in

    def test_histogram_counts_every_packet(self):
        with telemetry.scoped():
            _, report = _run_app(toy_counter, _frames(25))
        metrics = report.metrics
        assert metrics.packet_cycle_count == report.packets_out
        assert sum(metrics.packet_cycle_buckets) == report.packets_out
        assert metrics.packet_cycle_sum == report.sum_pipeline_cycles

    def test_occupancy_bounded_by_observed_cycles(self):
        with telemetry.scoped():
            _, report = _run_app(firewall, _frames(40))
        metrics = report.metrics
        assert metrics.observed_cycles == report.cycles
        for pct in metrics.occupancy_pct():
            assert 0.0 <= pct <= 100.0
        assert max(metrics.occupancy_pct()) > 0.0

    def test_options_override_beats_global_registry(self):
        # telemetry=True collects even with the global registry off
        _, report = _run_app(firewall, _frames(10), telemetry_on=True)
        assert report.metrics is not None
        # telemetry=False suppresses even with the global registry on
        with telemetry.scoped():
            _, report = _run_app(firewall, _frames(10), telemetry_on=False)
        assert report.metrics is None

    def test_parallel_merge_is_exact_sum_of_workers(self):
        program = firewall.build()
        pipeline = compile_program(program)
        frames = _frames(400, flows=16)
        sim = ParallelPipelineSimulator(
            pipeline, maps=MapSet(program.maps),
            options=SimOptions(keep_records=False, telemetry=True),
            workers=2,
        )
        result = sim.run_stream(frames)
        merged = result.report.metrics
        assert merged is not None
        worker_metrics = [rep.metrics for rep in result.worker_reports]
        assert all(m is not None for m in worker_metrics)
        assert merged.packet_cycle_count == sum(
            m.packet_cycle_count for m in worker_metrics)
        assert merged.packet_cycle_count == result.report.packets_out
        for i in range(merged.n_stages):
            assert merged.stage_busy_cycles[i] == sum(
                m.stage_busy_cycles[i] for m in worker_metrics)
        for b in range(N_BUCKETS):
            assert merged.packet_cycle_buckets[b] == sum(
                m.packet_cycle_buckets[b] for m in worker_metrics)


class TestVmInstrumentation:
    def test_opcode_classes_and_helpers_counted(self):
        program = toy_counter.build()
        frames = [toy_counter.packet_for_key(1)] * 5
        with telemetry.scoped() as reg:
            vm = Vm(program, maps=MapSet(program.maps))
            for frame in frames:
                vm.run(frame)
            vm.publish_telemetry()
            samples = parse_prometheus_samples(prometheus_text(reg))
        insn = samples["ehdl_vm_instructions_total"]
        assert sum(insn.values()) > 0
        helpers = samples["ehdl_vm_helper_calls_total"]
        assert sum(helpers.values()) > 0

    def test_publish_resets_counts(self):
        program = toy_counter.build()
        with telemetry.scoped() as reg:
            vm = Vm(program, maps=MapSet(program.maps))
            vm.run(toy_counter.packet_for_key(1))
            vm.publish_telemetry()
            first = parse_prometheus_samples(prometheus_text(reg))
            vm.publish_telemetry()  # nothing new ran: must not double
            second = parse_prometheus_samples(prometheus_text(reg))
        assert first["ehdl_vm_instructions_total"] == \
            second["ehdl_vm_instructions_total"]

    def test_vm_counts_nothing_when_disabled(self):
        program = toy_counter.build()
        vm = Vm(program, maps=MapSet(program.maps))
        vm.run(toy_counter.packet_for_key(1))
        assert vm.opcode_class_counts == {}
        assert vm.helper_call_counts == {}


class TestRtlInstrumentation:
    def test_settles_and_primitive_ops_published(self):
        from repro.rtl import RtlRunner

        program = toy_counter.build()
        pipeline = compile_program(program)
        with telemetry.scoped() as reg:
            runner = RtlRunner(pipeline, maps=MapSet(program.maps))
            runner.run_packets([toy_counter.packet_for_key(1)] * 2)
            samples = parse_prometheus_samples(prometheus_text(reg))
        labels = (("engine", "rtl"), ("program", program.name))
        assert samples["ehdl_rtl_settles_total"][labels] > 0
        assert samples["ehdl_rtl_edges_total"][labels] > 0
        ops = samples["ehdl_rtl_primitive_ops_total"]
        assert sum(ops.values()) > 0

    def test_second_run_publishes_delta_not_cumulative(self):
        from repro.rtl import RtlRunner

        program = toy_counter.build()
        pipeline = compile_program(program)
        frames = [toy_counter.packet_for_key(1)] * 2
        with telemetry.scoped() as reg:
            runner = RtlRunner(pipeline, maps=MapSet(program.maps))
            runner.run_packets(frames)
            first = parse_prometheus_samples(prometheus_text(reg))
            runner.run_packets(frames)
            second = parse_prometheus_samples(prometheus_text(reg))
        labels = (("engine", "rtl"), ("program", program.name))
        # equal work per run: counter exactly doubles (not 1x + 3x)
        assert second["ehdl_rtl_settles_total"][labels] == \
            2 * first["ehdl_rtl_settles_total"][labels]


class TestCompilerSpans:
    def test_pass_counters_published(self):
        with telemetry.scoped() as reg:
            compile_program(firewall.build())
            samples = parse_prometheus_samples(prometheus_text(reg))
        runs = samples["ehdl_compile_pass_runs_total"]
        assert runs[(("pass", "schedule"),)] == 1
        ns = samples["ehdl_compile_pass_ns_total"]
        assert all(v >= 0 for v in ns.values())

    def test_no_spans_recorded_when_disabled(self):
        reg_before = telemetry.get_registry()
        compile_program(firewall.build())
        assert reg_before.spans == []


# -- merge property (satellite: parallel workers vs single) -------------------


class TestRegistryMergeProperty:
    @settings(max_examples=40, deadline=None)
    @given(
        shards=st.lists(
            st.lists(
                st.tuples(st.integers(0, 3), st.integers(0, 2 ** 24)),
                max_size=30,
            ),
            min_size=1,
            max_size=5,
        )
    )
    def test_merged_worker_snapshots_equal_single_worker_totals(
            self, shards):
        """N per-worker registries, merged, must equal one registry that
        saw every event: counter sums and bucket-wise histogram sums."""
        single = Registry(enabled=True)
        worker_snapshots = []
        for shard in shards:
            worker = Registry(enabled=True)
            for series, value in shard:
                labels = {"series": str(series)}
                for reg in (worker, single):
                    reg.counter("ops_total", "h", labels).inc(value)
                    reg.histogram("size", "h", labels).observe(value)
            worker_snapshots.append(worker.snapshot())
        merged = Registry(enabled=True)
        merged.load_snapshot(merge_snapshots(worker_snapshots))
        merged_samples = parse_prometheus_samples(prometheus_text(merged))
        single_samples = parse_prometheus_samples(prometheus_text(single))
        assert merged_samples == single_samples

    def test_gauge_merge_is_last_writer_wins(self):
        a = Registry(enabled=True)
        b = Registry(enabled=True)
        a.gauge("depth", "h", {}).set(3)
        b.gauge("depth", "h", {}).set(9)
        merged = Registry(enabled=True)
        merged.load_snapshot(merge_snapshots([a.snapshot(), b.snapshot()]))
        samples = parse_prometheus_samples(prometheus_text(merged))
        assert samples["depth"][()] == 9


# -- SimReport JSON round-trip ------------------------------------------------


class TestSimReportJson:
    def test_round_trip_exact(self):
        with telemetry.scoped():
            program = firewall.build()
            pipeline = compile_program(program)
            sim = PipelineSimulator(pipeline, maps=MapSet(program.maps),
                                    options=SimOptions())
            report = sim.run_packets(_frames(20))
        data = json.loads(json.dumps(report.to_json(include_records=True)))
        back = SimReport.from_json(data)
        assert back.cycles == report.cycles
        assert back.packets_in == report.packets_in
        assert back.packets_out == report.packets_out
        assert back.action_counts == report.action_counts
        assert back.sum_pipeline_cycles == report.sum_pipeline_cycles
        assert len(back.records) == len(report.records)
        assert back.records[0].data == report.records[0].data
        assert back.metrics is not None
        assert back.metrics.to_json() == report.metrics.to_json()
        # a second round-trip is a fixed point
        assert back.to_json(include_records=True) == data

    def test_round_trip_without_records_or_metrics(self):
        program = firewall.build()
        pipeline = compile_program(program)
        sim = PipelineSimulator(pipeline, maps=MapSet(program.maps),
                                options=SimOptions(keep_records=False))
        report = sim.run_packets(_frames(10))
        back = SimReport.from_json(report.to_json())
        assert back.metrics is None
        assert back.records == []
        assert back.action_counts == report.action_counts


# -- CLI ----------------------------------------------------------------------


class TestCli:
    def test_run_metrics_out_prometheus(self, tmp_path, capsys):
        out = tmp_path / "m.prom"
        rc = main(["run", "app:toy_counter", "--packets", "50",
                   "--flows", "4", "--metrics-out", str(out)])
        assert rc == 0
        text = out.read_text()
        assert validate_prometheus_text(text) == []
        samples = parse_prometheus_samples(text)
        per_action = samples["ehdl_sim_packets_total"]
        assert sum(per_action.values()) == 50
        assert "wrote prometheus metrics" in capsys.readouterr().out

    def test_run_metrics_out_json(self, tmp_path):
        out = tmp_path / "m.json"
        rc = main(["run", "app:toy_counter", "--packets", "20",
                   "--flows", "4", "--metrics-out", str(out)])
        assert rc == 0
        snap = json.loads(out.read_text())
        assert {"metrics", "spans"} <= set(snap)

    def test_run_trace_out(self, tmp_path):
        out = tmp_path / "t.json"
        rc = main(["run", "app:toy_counter", "--packets", "10",
                   "--flows", "2", "--trace-out", str(out)])
        assert rc == 0
        trace = json.loads(out.read_text())
        events = trace["traceEvents"]
        assert events
        for event in events:
            for fld in TRACE_EVENT_FIELDS:
                assert fld in event

    def test_compile_trace_out(self, tmp_path):
        trace_path = tmp_path / "compile.json"
        vhd = tmp_path / "out.vhd"
        rc = main(["compile", "app:firewall", "-o", str(vhd),
                   "--trace-out", str(trace_path)])
        assert rc == 0
        names = {e["name"] for e in
                 json.loads(trace_path.read_text())["traceEvents"]}
        assert "compile.schedule" in names
        assert "compile.vhdl_emit" in names

    def test_verify_metrics_out(self, tmp_path):
        out = tmp_path / "v.prom"
        rc = main(["verify", "app:toy_counter", "--packets", "4",
                   "--flows", "2", "--metrics-out", str(out)])
        assert rc == 0
        text = out.read_text()
        assert validate_prometheus_text(text) == []
        samples = parse_prometheus_samples(text)
        assert "ehdl_vm_instructions_total" in samples
        assert "ehdl_rtl_settles_total" in samples
        # both hardware legs publish per-action counts
        engines = {dict(k).get("engine")
                   for k in samples["ehdl_sim_packets_total"]}
        assert engines == {"hwsim", "rtl"}

    def test_workers_shard_balance_metric(self, tmp_path):
        out = tmp_path / "w.prom"
        rc = main(["run", "app:firewall", "--packets", "120",
                   "--flows", "8", "--workers", "2",
                   "--metrics-out", str(out)])
        assert rc == 0
        samples = parse_prometheus_samples(out.read_text())
        shards = samples["ehdl_sim_worker_packets_total"]
        assert len(shards) == 2
        assert sum(shards.values()) == 120

    def test_stats_prints_pass_table(self, capsys):
        rc = main(["stats", "app:firewall"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "compile pass" in out
        assert "schedule" in out

    def test_app_scheme_unknown_app(self):
        with pytest.raises(SystemExit, match="unknown app"):
            main(["stats", "app:nonexistent"])

    def test_no_flags_no_telemetry_files(self, tmp_path, capsys):
        rc = main(["run", "app:toy_counter", "--packets", "10",
                   "--flows", "2"])
        assert rc == 0
        assert "wrote" not in capsys.readouterr().out


# -- runtime facade -----------------------------------------------------------


class TestRuntimeTelemetry:
    def test_latency_ns_without_run_raises(self):
        nic = XdpOffload(toy_counter.build())
        with pytest.raises(RuntimeError, match="no report available"):
            nic.latency_ns()

    def test_latency_ns_after_process(self):
        nic = XdpOffload(toy_counter.build())
        nic.process([toy_counter.packet_for_key(1)] * 4)
        assert nic.latency_ns() > 0.0

    def test_latency_ns_after_streaming_run(self):
        nic = XdpOffload(toy_counter.build())
        nic.process_stream(iter([toy_counter.packet_for_key(1)] * 6))
        assert nic.latency_ns() > 0.0

    def test_telemetry_snapshot_carries_action_counts(self):
        nic = XdpOffload(toy_counter.build())
        report = nic.process([toy_counter.packet_for_key(1)] * 8)
        snap = nic.telemetry()
        per_action = [m["value"] for m in snap["metrics"]
                      if m["name"] == "ehdl_sim_packets_total"]
        assert per_action
        assert sum(per_action) == report.packets_out

"""Property-based tests (hypothesis).

The headline property: for *randomly generated, verifier-valid eBPF
programs* and random packets, the compiled hardware pipeline computes
exactly what the reference VM computes — actions, packet bytes and map
state. Every compiler pass is in the loop.
"""

import struct

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import CompileOptions, compile_program
from repro.core.pipeline import StageKind
from repro.ebpf import isa
from repro.ebpf.asm import assemble
from repro.ebpf.builder import ProgramBuilder
from repro.ebpf.disasm import disassemble
from repro.ebpf.isa import MapSpec, decode, encode
from repro.ebpf.maps import HashMap, MapError, MapSet
from repro.ebpf.verifier import VerifierError, verify
from repro.ebpf.vm import Vm
from repro.hwsim import run_differential
from repro.net.packet import checksum16

# ---------------------------------------------------------------------------
# random program generation
# ---------------------------------------------------------------------------

SCRATCH_REGS = [0, 2, 3, 4, 5, 8, 9]  # r6/r7 hold packet pointers
ALU_OPS = ["+", "-", "*", "&", "|", "^", "<<", ">>", "s>>", "/", "%"]
LOAD_SIZES = ["u8", "u16", "u32", "u64"]
CMP_OPS = ["==", "!=", "<", "<=", ">", ">=", "s<", "s>"]

PACKET_DEPTH = 48  # bounds-checked access window


@st.composite
def simple_ops(draw):
    """One random straight-line operation."""
    kind = draw(st.sampled_from(
        ["alu_imm", "alu_reg", "mov_imm", "mov_reg", "load_pkt",
         "store_pkt", "store_stack", "load_stack", "endian", "neg"]
    ))
    dst = draw(st.sampled_from(SCRATCH_REGS))
    src = draw(st.sampled_from(SCRATCH_REGS))
    imm = draw(st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1))
    width = draw(st.sampled_from([32, 64]))
    op = draw(st.sampled_from(ALU_OPS))
    size = draw(st.sampled_from(LOAD_SIZES))
    size_bytes = {"u8": 1, "u16": 2, "u32": 4, "u64": 8}[size]
    pkt_off = draw(st.integers(min_value=0, max_value=PACKET_DEPTH - size_bytes))
    stack_off = -8 * draw(st.integers(min_value=1, max_value=8))
    bits = draw(st.sampled_from([16, 32, 64]))
    return (kind, dst, src, imm, width, op, size, pkt_off, stack_off, bits)


def emit_op(b: ProgramBuilder, spec, stack_written: set) -> None:
    kind, dst, src, imm, width, op, size, pkt_off, stack_off, bits = spec
    if kind == "alu_imm":
        if op in ("<<", ">>", "s>>"):
            imm = imm % (width - 1) or 1
        b.alu_imm(op, dst, imm, width=width)
    elif kind == "alu_reg":
        if op in ("<<", ">>", "s>>"):
            b.alu_imm("&", src, 31, width=64)  # bound the shift amount
        b.alu(op, dst, src, width=width)
    elif kind == "mov_imm":
        b.mov_imm(dst, imm)
    elif kind == "mov_reg":
        b.mov(dst, src)
    elif kind == "load_pkt":
        b.load(size, dst, 6, pkt_off)
    elif kind == "store_pkt":
        b.store(size, 6, src, pkt_off)
    elif kind == "store_stack":
        b.store("u64", 10, src, stack_off)
        stack_written.add(stack_off)
    elif kind == "load_stack":
        if stack_written:
            b.load("u64", dst, 10, sorted(stack_written)[0])
        else:
            b.mov_imm(dst, 0)
    elif kind == "endian":
        b.endian(dst, bits, to_big=(imm & 1) == 0)
    elif kind == "neg":
        b.neg(dst, width=width)


@st.composite
def random_programs(draw):
    """A verifier-valid program: prologue + random body + classified exit.

    Bodies may contain one level of if/else diamonds whose arms are
    themselves random op sequences.
    """
    b = ProgramBuilder("randprog")
    # prologue: packet pointers + bounds check + initialised scratch regs
    b.load("u32", 7, 1, 4)
    b.load("u32", 6, 1, 0)
    b.mov(2, 6)
    b.alu_imm("+", 2, PACKET_DEPTH)
    b.jmp_reg(">", 2, 7, "drop")
    for reg in SCRATCH_REGS:
        b.mov_imm(reg, draw(st.integers(min_value=-100, max_value=100)))
    stack_written: set = set()

    n_segments = draw(st.integers(min_value=1, max_value=3))
    label_counter = [0]

    def segment(depth: int) -> None:
        ops = draw(st.lists(simple_ops(), min_size=1, max_size=6))
        for spec in ops:
            emit_op(b, spec, stack_written)
        if depth > 0 and draw(st.booleans()):
            label_counter[0] += 1
            n = label_counter[0]
            reg = draw(st.sampled_from(SCRATCH_REGS))
            cmp_op = draw(st.sampled_from(CMP_OPS))
            cmp_imm = draw(st.integers(min_value=-8, max_value=8))
            b.jmp_imm(cmp_op, reg, cmp_imm, f"else_{n}")
            segment(depth - 1)
            b.jmp(f"end_{n}")
            b.label(f"else_{n}")
            segment(depth - 1)
            b.label(f"end_{n}")

    for _ in range(n_segments):
        segment(depth=1)

    result_reg = draw(st.sampled_from(SCRATCH_REGS))
    b.mov(0, result_reg) if result_reg != 0 else None
    b.alu_imm("&", 0, 3)
    b.exit()
    b.label("drop")
    b.mov_imm(0, 1)
    b.exit()
    return b.build()


@st.composite
def packets(draw):
    long = draw(st.booleans())
    if long:
        size = draw(st.integers(min_value=PACKET_DEPTH, max_value=128))
    else:
        size = draw(st.integers(min_value=0, max_value=PACKET_DEPTH - 1))
    return bytes(draw(st.binary(min_size=size, max_size=size)))


class TestRandomProgramEquivalence:
    """The flagship property: VM ≡ pipeline on arbitrary programs."""

    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(prog=random_programs(), frames=st.lists(packets(), min_size=1, max_size=6))
    def test_pipeline_matches_vm(self, prog, frames):
        verify(prog)  # generated programs must be valid by construction
        run_differential(prog, frames).raise_on_mismatch()

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(prog=random_programs(), frames=st.lists(packets(), min_size=1, max_size=6))
    def test_codegen_matches_vm(self, prog, frames):
        # same property, executed by the generated compile()d source —
        # constant-offset folding and the elision decisions are in the loop
        verify(prog)
        run_differential(prog, frames, engine="codegen").raise_on_mismatch()

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(prog=random_programs(), frames=st.lists(packets(), min_size=1, max_size=4))
    def test_pipeline_matches_vm_without_optimisations(self, prog, frames):
        options = CompileOptions(
            enable_ilp=False, enable_fusion=False, enable_pruning=False,
            elide_bounds_checks=False, dead_code_elimination=False,
        )
        run_differential(prog, frames, compile_options=options).raise_on_mismatch()

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(prog=random_programs())
    def test_disasm_asm_roundtrip(self, prog):
        text = disassemble(prog.instructions, numbered=False)
        again = assemble(text)
        assert again == prog.instructions

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(prog=random_programs())
    def test_encode_decode_roundtrip(self, prog):
        assert decode(prog.encode()) == prog.instructions

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(prog=random_programs())
    def test_schedule_respects_dependencies(self, prog):
        pipe = compile_program(prog)
        stage_of = {}
        for stage in pipe.stages:
            for op in stage.ops:
                stage_of[op.insn_index] = stage.number
        from repro.core.ddg import WAR

        for j, preds in pipe.ddg.deps.items():
            if j not in stage_of:
                continue
            for i, kind in preds.items():
                if i not in stage_of:
                    continue
                if kind == WAR:
                    assert stage_of[i] <= stage_of[j]
                else:
                    # RAW/WAW: strictly later stage unless fused in-row
                    assert stage_of[i] <= stage_of[j]

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(prog=random_programs())
    def test_pruning_carries_every_needed_register(self, prog):
        """Structural soundness of state pruning: any register an op reads
        is carried into its stage, produced earlier in the stage, or is
        the hardwired R10/R1."""
        from repro.core.liveness import regs_read

        pipe = compile_program(prog)
        entry_written = {isa.R1, isa.R10}
        for op in pipe.entry_ops:
            entry_written |= set(op.insn.regs_written())
        written_so_far = set(entry_written)
        for stage in pipe.stages:
            produced = set()
            for op in stage.ops:
                for r in regs_read(op.insn):
                    if r in (isa.R10, isa.R1):
                        continue
                    if r in produced:
                        continue
                    if r not in written_so_far:
                        continue  # reading junk: verifier-unreachable path
                    assert r in stage.live_in_regs or r in produced, (
                        f"stage {stage.number} reads r{r} but does not carry it"
                    )
                produced |= set(op.insn.regs_written())
            written_so_far |= produced


# ---------------------------------------------------------------------------
# focused data-structure properties
# ---------------------------------------------------------------------------

map_keys = st.binary(min_size=4, max_size=4)
map_values = st.binary(min_size=8, max_size=8)


class TestHashMapModel:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(st.sampled_from(["update", "delete", "lookup"]),
                              map_keys, map_values), max_size=60))
    def test_matches_dict_model(self, ops):
        m = HashMap(MapSpec("h", "hash", 4, 8, 16))
        model = {}
        for op, key, value in ops:
            if op == "update":
                try:
                    m.update(key, value)
                    model[key] = value
                except MapError:
                    assert len(model) >= 16 and key not in model
            elif op == "delete":
                assert m.delete(key) == (key in model)
                model.pop(key, None)
            else:
                expected = model.get(key)
                assert m.lookup(key) == expected
        assert dict(m.items()) == model
        assert m.entry_count() == len(model)


class TestChecksumProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.binary(min_size=2, max_size=64))
    def test_checksum_of_data_plus_checksum_is_zero(self, data):
        if len(data) % 2:
            data += b"\x00"
        csum = checksum16(data)
        assert checksum16(data + csum.to_bytes(2, "big")) == 0

    @settings(max_examples=50, deadline=None)
    @given(st.binary(min_size=0, max_size=32), st.binary(min_size=0, max_size=32))
    def test_order_independent(self, a, b):
        if len(a) % 2 or len(b) % 2:
            a += b"\x00" * (len(a) % 2)
            b += b"\x00" * (len(b) % 2)
        assert checksum16(a + b) == checksum16(b + a)


class TestVmAluProperties:
    @settings(max_examples=80, deadline=None)
    @given(st.integers(min_value=0, max_value=(1 << 64) - 1),
           st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_add_sub_inverse(self, a, b):
        added = Vm._alu(isa.BPF_ADD, a, b, True)
        back = Vm._alu(isa.BPF_SUB, added, b, True)
        assert back == a

    @settings(max_examples=80, deadline=None)
    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_double_swap_identity(self, value):
        swapped = Vm._swap(value, 64, to_big=True)
        assert Vm._swap(swapped, 64, to_big=True) == value & ((1 << 64) - 1)

    @settings(max_examples=80, deadline=None)
    @given(st.integers(min_value=0, max_value=(1 << 64) - 1),
           st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_compare_antisymmetry(self, a, b):
        lt = Vm._compare(isa.BPF_JLT, a, b, True)
        gt = Vm._compare(isa.BPF_JGT, a, b, True)
        eq = Vm._compare(isa.BPF_JEQ, a, b, True)
        assert lt + gt + eq == 1

"""Disassembler edge cases: atomics, swaps, jmp32, numbering."""

import pytest

from repro.ebpf import isa
from repro.ebpf.asm import assemble
from repro.ebpf.disasm import disassemble, format_instruction


def fmt(insn):
    return format_instruction(insn)


class TestAtomicRendering:
    def test_plain_atomics(self):
        assert fmt(isa.atomic_op(isa.BPF_DW, 1, 2, 0, isa.ATOMIC_ADD)) == \
            "lock *(u64 *)(r1 + 0) += r2"
        assert fmt(isa.atomic_op(isa.BPF_W, 1, 2, 4, isa.ATOMIC_OR)) == \
            "lock *(u32 *)(r1 + 4) |= r2"
        assert fmt(isa.atomic_op(isa.BPF_DW, 1, 2, 0, isa.ATOMIC_AND)) == \
            "lock *(u64 *)(r1 + 0) &= r2"
        assert fmt(isa.atomic_op(isa.BPF_DW, 1, 2, 0, isa.ATOMIC_XOR)) == \
            "lock *(u64 *)(r1 + 0) ^= r2"

    def test_fetch_atomics(self):
        text = fmt(isa.atomic_op(isa.BPF_DW, 1, 2, 0,
                                 isa.ATOMIC_ADD | isa.BPF_FETCH))
        assert text == "lock fetch *(u64 *)(r1 + 0) += r2"

    def test_xchg_and_cmpxchg(self):
        assert fmt(isa.atomic_op(isa.BPF_DW, 1, 2, 0, isa.ATOMIC_XCHG)) == \
            "lock *(u64 *)(r1 + 0) xchg r2"
        assert fmt(isa.atomic_op(isa.BPF_DW, 1, 2, 0, isa.ATOMIC_CMPXCHG)) == \
            "lock *(u64 *)(r1 + 0) cmpxchg r2"

    def test_atomics_roundtrip(self):
        for op in (isa.ATOMIC_ADD, isa.ATOMIC_OR, isa.ATOMIC_AND,
                   isa.ATOMIC_XOR, isa.ATOMIC_ADD | isa.BPF_FETCH,
                   isa.ATOMIC_XCHG):
            insn = isa.atomic_op(isa.BPF_DW, 3, 4, -8, op)
            assert assemble(fmt(insn)) == [insn]


class TestSwapRendering:
    @pytest.mark.parametrize("bits", [16, 32, 64])
    @pytest.mark.parametrize("to_big", [True, False])
    def test_roundtrip(self, bits, to_big):
        insn = isa.endian(2, bits, to_big)
        assert assemble(fmt(insn)) == [insn]

    def test_text(self):
        assert fmt(isa.endian(2, 16, True)) == "r2 = be16 r2"
        assert fmt(isa.endian(5, 64, False)) == "r5 = le64 r5"


class TestJmp32Rendering:
    def test_word_registers(self):
        insn = isa.jump32_imm(isa.BPF_JSGT, 3, -5, 2)
        assert fmt(insn) == "if w3 s> -5 goto +2"

    def test_reg_comparison(self):
        insn = isa.jump32_reg(isa.BPF_JNE, 1, 2, -3)
        assert fmt(insn) == "if w1 != w2 goto -3"


class TestNegAndMoves:
    def test_neg(self):
        insn = isa.Instruction(isa.BPF_ALU64 | isa.BPF_K | isa.BPF_NEG, dst=4)
        assert fmt(insn) == "r4 = -r4"

    def test_neg32(self):
        insn = isa.Instruction(isa.BPF_ALU | isa.BPF_K | isa.BPF_NEG, dst=4)
        assert fmt(insn) == "w4 = -w4"

    def test_map_ref(self):
        assert fmt(isa.ld_map_fd(1, 5)) == "r1 = map[5]"

    def test_ld_imm64(self):
        assert fmt(isa.ld_imm64(1, 2 ** 40)) == f"r1 = {2 ** 40} ll"

    def test_store_imm(self):
        assert fmt(isa.store_imm(isa.BPF_H, 6, 12, 8)) == "*(u16 *)(r6 + 12) = 8"


class TestNumbering:
    def test_slot_numbers(self):
        insns = [
            isa.mov64_imm(0, 1),
            isa.ld_imm64(1, 7),
            isa.exit_(),
        ]
        lines = disassemble(insns).splitlines()
        assert lines[0].startswith("0:")
        assert lines[1].startswith("1:")
        assert lines[2].startswith("3:")  # ld_imm64 took slots 1-2

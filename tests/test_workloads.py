"""Tests of the repro.workloads subsystem (spec, sampler, generators)."""

import random

import pytest

from repro.net.flows import TrafficGenerator, TrafficSpec, zipf_weights
from repro.net.packet import parse_five_tuple
from repro.serve.feeder import Feeder, parse_feed_spec
from repro.workloads import (
    WORKLOADS,
    WorkloadSpec,
    ZipfSampler,
    make_sampler,
    make_workload,
    parse_workload_spec,
    workload_names,
)


class TestSpecParsing:
    def test_defaults(self):
        spec = parse_workload_spec("udp-zipf")
        assert spec.kind == "udp-zipf"
        assert spec.packets == 10_000
        assert spec.distribution == "zipf"

    def test_fields_and_aliases(self):
        spec = parse_workload_spec(
            "tcp-handshake:packets=500,flows=1000000,dist=uniform,"
            "size=128,seed=7"
        )
        assert spec.packets == 500
        assert spec.flows == 1_000_000
        assert spec.distribution == "uniform"
        assert spec.packet_size == 128
        assert spec.seed == 7

    def test_generator_params_ride_in_params(self):
        spec = parse_workload_spec("flow-churn:churn=0.25,packets=10")
        assert spec.param_float("churn", 0.0) == 0.25
        assert spec.packets == 10

    def test_describe_roundtrips(self):
        spec = parse_workload_spec("tunnel-encap:packets=50,vnis=4")
        again = parse_workload_spec(spec.describe())
        assert again == spec

    def test_bad_option_rejected(self):
        with pytest.raises(ValueError, match="not key=value"):
            parse_workload_spec("udp-zipf:packets")

    def test_bad_distribution_rejected(self):
        with pytest.raises(ValueError, match="distribution"):
            parse_workload_spec("udp-zipf:dist=pareto")

    def test_unknown_kind_error_enumerates_names(self):
        with pytest.raises(ValueError) as err:
            make_workload(WorkloadSpec(kind="nope"))
        for name in workload_names():
            assert name in str(err.value)


class TestZipfSampler:
    def test_matches_random_choices(self):
        # The inverse-CDF sampler must make the exact draws
        # random.choices would: that is what keeps the feeder's and
        # generator's streams identical to the pre-refactor ones.
        n, s = 1000, 1.1
        weights = zipf_weights(n, s)
        cum = []
        total = 0.0
        for w in weights:
            total += w
            cum.append(total)
        rng1 = random.Random(42)
        rng2 = random.Random(42)
        sampler = ZipfSampler(n, s)
        expected = []
        got = []
        for _ in range(500):
            expected.append(rng1.choices(range(n), cum_weights=cum, k=1)[0])
            got.append(sampler.sample(rng2))
        assert got == expected

    def test_million_flow_table_is_cheap(self):
        sampler = ZipfSampler(1_000_000, 1.0)
        rng = random.Random(1)
        ranks = [sampler.sample(rng) for _ in range(100)]
        assert all(0 <= r < 1_000_000 for r in ranks)
        # Zipf: rank 0 must dominate a uniform draw's hit rate
        assert ranks.count(0) >= 1

    def test_uniform_sampler(self):
        sampler = make_sampler(100, "uniform", 1.0)
        a = [sampler.sample(random.Random(5)) for _ in range(3)]
        b = [sampler.sample(random.Random(5)) for _ in range(3)]
        assert a == b


class TestGenerators:
    @pytest.mark.parametrize("kind", sorted(WORKLOADS))
    def test_restartable_and_deterministic(self, kind):
        spec = WorkloadSpec(kind=kind, packets=50, flows=1000)
        wl = make_workload(spec)
        first = wl.materialize()
        second = wl.materialize()
        assert first == second
        assert len(first) == 50
        # a distinct instance from the same spec agrees too
        assert make_workload(spec).materialize() == first

    @pytest.mark.parametrize("kind", sorted(WORKLOADS))
    def test_seed_changes_stream(self, kind):
        a = make_workload(WorkloadSpec(kind=kind, packets=50)).materialize()
        b = make_workload(
            WorkloadSpec(kind=kind, packets=50, seed=2)
        ).materialize()
        assert a != b

    def test_udp_zipf_matches_synth_feed(self):
        # udp-zipf over N flows is the serving feeder's synth: source —
        # one arithmetic, shared by construction.
        wl = make_workload(WorkloadSpec(kind="udp-zipf", packets=40,
                                        flows=500, seed=3))
        feed = Feeder(parse_feed_spec(
            "synth:packets=40,flows=500,dist=zipf,seed=3"))
        assert wl.materialize() == list(feed.frames())

    def test_tcp_handshake_lifecycle(self):
        wl = make_workload(WorkloadSpec(
            kind="tcp-handshake", packets=200, flows=1,
            params=(("data_packets", "2"),),
        ))
        frames = wl.materialize()
        flags = [f[47] for f in frames]
        # one flow: SYN, ACK, 2x PSH/ACK, FIN/ACK, then repeat
        assert flags[:5] == [0x02, 0x10, 0x18, 0x18, 0x11]
        assert flags[5:10] == flags[:5]
        # new connection, new ISN
        isn0 = int.from_bytes(frames[0][38:42], "big")
        isn1 = int.from_bytes(frames[5][38:42], "big")
        assert isn0 != isn1

    def test_tunnel_encap_shape(self):
        wl = make_workload(WorkloadSpec(kind="tunnel-encap", packets=30,
                                        flows=100,
                                        params=(("vnis", "4"),)))
        for frame in wl.materialize():
            tup = parse_five_tuple(frame)
            assert tup.dport == 4789
            assert frame[42] == 0x08  # VXLAN I flag
            vni = int.from_bytes(frame[46:49], "big")
            assert 0 <= vni < 4
            # inner frame is a full Ethernet/IPv4/UDP packet
            inner = frame[50:]
            assert parse_five_tuple(inner).proto == 17

    def test_flow_churn_slides_population(self):
        wl = make_workload(WorkloadSpec(
            kind="flow-churn", packets=400, flows=10, seed=1,
            params=(("churn", "1.0"),),
        ))
        frames = wl.materialize()
        first_srcs = {bytes(f[26:30]) for f in frames[:50]}
        last_srcs = {bytes(f[26:30]) for f in frames[-50:]}
        # with churn=1.0 over 400 packets and 10 ranks, the early and
        # late populations must be disjoint
        assert not (first_srcs & last_srcs)

    def test_syn_flood_spoofs_sources(self):
        wl = make_workload(WorkloadSpec(kind="syn-flood", packets=100))
        frames = wl.materialize()
        assert all(f[47] == 0x02 for f in frames)
        dsts = {bytes(f[30:34]) for f in frames}
        assert len(dsts) == 1  # one victim
        srcs = {bytes(f[26:30]) for f in frames}
        assert len(srcs) > 90  # spoofed sources do not revisit

    def test_udp6_nat64_targets_well_known_prefix(self):
        wl = make_workload(WorkloadSpec(kind="udp6-nat64", packets=30,
                                        flows=100))
        for frame in wl.materialize():
            assert frame[12:14] == b"\x86\xdd"
            assert frame[38:42] == bytes.fromhex("0064ff9b")
            assert frame[42:50] == bytes(8)


class TestFeederWorkloadSource:
    def test_workload_feed_parses_and_runs(self):
        feed = parse_feed_spec("workload:tcp-handshake,packets=20,flows=50")
        assert feed.source == "workload"
        assert feed.packets == 20
        assert feed.flows == 50
        frames = list(Feeder(feed).frames())
        assert len(frames) == 20
        assert frames == list(Feeder(feed).frames())  # restartable

    def test_workload_feed_matches_generator(self):
        feed = parse_feed_spec("workload:flow-churn,packets=25,churn=0.2")
        wl = make_workload(parse_workload_spec("flow-churn:packets=25,churn=0.2"))
        assert list(Feeder(feed).frames()) == wl.materialize()

    def test_unknown_workload_kind_rejected(self):
        with pytest.raises(ValueError) as err:
            parse_feed_spec("workload:bogus,packets=5")
        assert "tcp-handshake" in str(err.value)

    def test_describe_preserves_workload(self):
        feed = parse_feed_spec("workload:syn-flood,packets=9,dport=443")
        assert feed.describe().startswith("workload:syn-flood:")
        assert "dport=443" in feed.describe()


class TestTrafficGeneratorDedup:
    def test_generator_zipf_uses_shared_sampler(self):
        # TrafficGenerator must draw identical Zipf picks to the shared
        # sampler (dedup satellite: one Zipf implementation).
        gen = TrafficGenerator(TrafficSpec(
            n_flows=200, distribution="zipf", seed=9))
        sampler = ZipfSampler(200, 1.0)
        rng = random.Random(9)
        expected = [sampler.sample(rng) for _ in range(50)]
        got = [gen.flows.index(gen.pick_flow()) for _ in range(50)]
        assert got == expected

"""High-level runtime facade tests."""

import pathlib

import pytest

from repro.apps import firewall, toy_counter
from repro.ebpf.xdp import XdpAction
from repro.net.packet import FiveTuple, ipv4, udp_packet
from repro.runtime import HostMap, XdpOffload

SOURCE = """
.map hits array key=4 value=8 entries=2

    r2 = 0
    *(u32 *)(r10 - 4) = r2
    r1 = map[hits]
    r2 = r10
    r2 += -4
    call 1
    if r0 == 0 goto out
    r2 = 1
    lock *(u64 *)(r0 + 0) += r2
out:
    r0 = 2
    exit
"""


class TestConstruction:
    def test_from_program(self):
        nic = XdpOffload(toy_counter.build())
        assert nic.pipeline.n_stages > 10

    def test_from_source_text(self):
        nic = XdpOffload(SOURCE)
        assert nic.map_names() == ["hits"]

    def test_from_path(self, tmp_path):
        path = tmp_path / "p.ebpf"
        path.write_text(SOURCE)
        nic = XdpOffload(path)
        assert nic.map_names() == ["hits"]

    def test_from_path_string(self, tmp_path):
        path = tmp_path / "p.ebpf"
        path.write_text(SOURCE)
        nic = XdpOffload(str(path))
        assert nic.map_names() == ["hits"]


class TestHostMap:
    def _nic(self):
        return XdpOffload(SOURCE)

    def test_counter_increments(self):
        nic = self._nic()
        nic.process([udp_packet(size=64)] * 25)
        assert nic.map("hits").read_u64(0) == 25

    def test_int_and_bytes_keys_equivalent(self):
        nic = self._nic()
        hits = nic.map("hits")
        hits[1] = 7
        assert hits[bytes([1, 0, 0, 0])] == (7).to_bytes(8, "little")
        assert 1 in hits and 0 in hits  # array slots always exist

    def test_missing_key_raises(self):
        nic = self._nic()
        with pytest.raises(KeyError):
            nic.map("hits")[99]

    def test_geometry_exposed(self):
        hits = self._nic().map("hits")
        assert hits.key_size == 4 and hits.value_size == 8
        assert hits.name == "hits"
        assert len(hits) == 2

    def test_items(self):
        nic = self._nic()
        nic.map("hits")[0] = 5
        values = {int.from_bytes(k, "little"): int.from_bytes(v, "little")
                  for k, v in nic.map("hits").items()}
        assert values[0] == 5


class TestTraffic:
    def test_process_one(self):
        nic = XdpOffload(toy_counter.build())
        action, data = nic.process_one(toy_counter.packet_for_key(2))
        assert action == XdpAction.TX
        assert len(data) >= 60

    def test_rate_limited(self):
        nic = XdpOffload(SOURCE)
        report = nic.process([udp_packet(size=64)] * 100, rate_mpps=25.0)
        assert report.throughput_mpps == pytest.approx(25.0, rel=0.15)

    def test_latency_requires_traffic(self):
        nic = XdpOffload(SOURCE)
        with pytest.raises(RuntimeError):
            nic.latency_ns()
        nic.process([udp_packet(size=64)])
        assert 500 < nic.latency_ns() < 2000

    def test_firewall_workflow(self):
        nic = XdpOffload(firewall.build())
        flow = FiveTuple(ipv4("10.0.0.1"), ipv4("10.9.9.9"), 17, 1234, 53)
        frame = udp_packet(src_ip=flow.src_ip, dst_ip=flow.dst_ip,
                           sport=flow.sport, dport=flow.dport, size=64)
        action, _ = nic.process_one(frame)
        assert action == XdpAction.DROP
        firewall.allow_flow(nic.maps, flow)
        action, _ = nic.process_one(frame)
        assert action == XdpAction.TX


class TestReports:
    def test_summary_and_backends(self):
        nic = XdpOffload(SOURCE)
        nic.process([udp_packet(size=64)] * 10)
        text = nic.summary()
        assert "pipeline" in text and "Mpps" in text
        assert "entity" in nic.vhdl()
        assert nic.resources().luts > 0


class TestStreamBatchBoundaries:
    """The host-map synchronization point of process_stream(on_batch=...):
    a write made in the hook is observed by every frame of the next
    batch and none of the drained one, under every execution engine."""

    @staticmethod
    def _flow():
        return FiveTuple(src_ip=ipv4("10.0.0.1"), dst_ip=ipv4("10.9.9.9"),
                         proto=17, sport=7777, dport=53)

    def _run(self, engine):
        flow = self._flow()
        frame = udp_packet(src_ip=flow.src_ip, dst_ip=flow.dst_ip,
                           sport=flow.sport, dport=flow.dport, size=64)
        nic = XdpOffload(firewall.build(), engine=engine)

        def allow_after_first_batch(offload, index):
            if index == 0:
                firewall.allow_flow(offload.maps, flow)

        report = nic.process_stream([frame] * 64, batch_size=32,
                                    on_batch=allow_after_first_batch)
        return report

    @pytest.mark.parametrize("engine", [None, "interpreted", "fast",
                                        "codegen"])
    def test_boundary_write_splits_batches_exactly(self, engine):
        report = self._run(engine)
        # batch 0 (32 frames): unknown flow -> DROP; the hook's write is
        # then observed by all 32 frames of batch 1 -> TX
        assert report.count_action(XdpAction.DROP) == 32
        assert report.count_action(XdpAction.TX) == 32
        assert report.packets_in == report.packets_out == 64

    def test_engines_agree_bit_for_bit(self):
        reports = {
            engine: self._run(engine)
            for engine in (None, "interpreted", "fast", "codegen")
        }
        reference = reports.pop(None)
        for engine, report in reports.items():
            assert report.action_counts == reference.action_counts, engine
            assert report.cycles == reference.cycles, engine
            assert report.packets_out == reference.packets_out, engine

    def test_map_object_replacement_is_seen(self):
        """The boundary invalidates cached per-fd handles, so the hook
        may replace whole Map objects, not just mutate them."""
        from repro.ebpf.maps import MapSet

        program = firewall.build()
        flow = self._flow()
        frame = udp_packet(src_ip=flow.src_ip, dst_ip=flow.dst_ip,
                           sport=flow.sport, dport=flow.dport, size=64)
        nic = XdpOffload(program)

        def swap_in_fresh_allowing_maps(offload, index):
            if index == 0:
                fresh = MapSet(program.maps)
                firewall.allow_flow(fresh, flow)
                for fd, new_map in fresh.maps.items():
                    offload.maps.maps[fd] = new_map

        report = nic.process_stream([frame] * 20, batch_size=10,
                                    on_batch=swap_in_fresh_allowing_maps)
        assert report.count_action(XdpAction.DROP) == 10
        assert report.count_action(XdpAction.TX) == 10

    def test_without_hook_stream_is_unchanged(self):
        frame = toy_counter.packet_for_key(2)
        nic = XdpOffload(toy_counter.build())
        streamed = nic.process_stream([frame] * 40, batch_size=16)
        nic2 = XdpOffload(toy_counter.build())
        plain = nic2.process_stream([frame] * 40, batch_size=16,
                                    on_batch=lambda off, i: None)
        assert streamed.action_counts == plain.action_counts
        assert streamed.packets_out == plain.packets_out == 40

    def test_empty_stream_returns_empty_report(self):
        nic = XdpOffload(toy_counter.build())
        report = nic.process_stream([], on_batch=lambda off, i: None)
        assert report.packets_in == 0
        assert report.cycles == 0

    def test_hook_called_once_per_batch(self):
        nic = XdpOffload(toy_counter.build())
        seen = []
        nic.process_stream([toy_counter.packet_for_key(0)] * 70,
                           batch_size=32,
                           on_batch=lambda off, i: seen.append(i))
        assert seen == [0, 1, 2]


class TestMergeSerial:
    def test_concatenates_reports_on_one_timeline(self):
        from repro.hwsim.stats import SimReport

        frame = toy_counter.packet_for_key(1)
        nic = XdpOffload(toy_counter.build())
        whole = nic.process([frame] * 30)

        nic2 = XdpOffload(toy_counter.build())
        merged = nic2.process_stream([frame] * 30, batch_size=10,
                                     on_batch=lambda off, i: None)
        assert merged.packets_in == whole.packets_in == 30
        assert merged.action_counts == whole.action_counts
        # per-packet records are re-based onto one monotonic timeline
        pids = [rec.pid for rec in merged.records]
        assert pids == sorted(pids) and len(set(pids)) == 30
        exits = [rec.exit_cycle for rec in merged.records]
        assert exits == sorted(exits)

    def test_clock_mismatch_rejected(self):
        from repro.hwsim.stats import SimReport

        left = SimReport(clock_mhz=250.0, n_stages=4)
        right = SimReport(clock_mhz=100.0, n_stages=4)
        with pytest.raises(ValueError):
            left.merge_serial(right)

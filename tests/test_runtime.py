"""High-level runtime facade tests."""

import pathlib

import pytest

from repro.apps import firewall, toy_counter
from repro.ebpf.xdp import XdpAction
from repro.net.packet import FiveTuple, ipv4, udp_packet
from repro.runtime import HostMap, XdpOffload

SOURCE = """
.map hits array key=4 value=8 entries=2

    r2 = 0
    *(u32 *)(r10 - 4) = r2
    r1 = map[hits]
    r2 = r10
    r2 += -4
    call 1
    if r0 == 0 goto out
    r2 = 1
    lock *(u64 *)(r0 + 0) += r2
out:
    r0 = 2
    exit
"""


class TestConstruction:
    def test_from_program(self):
        nic = XdpOffload(toy_counter.build())
        assert nic.pipeline.n_stages > 10

    def test_from_source_text(self):
        nic = XdpOffload(SOURCE)
        assert nic.map_names() == ["hits"]

    def test_from_path(self, tmp_path):
        path = tmp_path / "p.ebpf"
        path.write_text(SOURCE)
        nic = XdpOffload(path)
        assert nic.map_names() == ["hits"]

    def test_from_path_string(self, tmp_path):
        path = tmp_path / "p.ebpf"
        path.write_text(SOURCE)
        nic = XdpOffload(str(path))
        assert nic.map_names() == ["hits"]


class TestHostMap:
    def _nic(self):
        return XdpOffload(SOURCE)

    def test_counter_increments(self):
        nic = self._nic()
        nic.process([udp_packet(size=64)] * 25)
        assert nic.map("hits").read_u64(0) == 25

    def test_int_and_bytes_keys_equivalent(self):
        nic = self._nic()
        hits = nic.map("hits")
        hits[1] = 7
        assert hits[bytes([1, 0, 0, 0])] == (7).to_bytes(8, "little")
        assert 1 in hits and 0 in hits  # array slots always exist

    def test_missing_key_raises(self):
        nic = self._nic()
        with pytest.raises(KeyError):
            nic.map("hits")[99]

    def test_geometry_exposed(self):
        hits = self._nic().map("hits")
        assert hits.key_size == 4 and hits.value_size == 8
        assert hits.name == "hits"
        assert len(hits) == 2

    def test_items(self):
        nic = self._nic()
        nic.map("hits")[0] = 5
        values = {int.from_bytes(k, "little"): int.from_bytes(v, "little")
                  for k, v in nic.map("hits").items()}
        assert values[0] == 5


class TestTraffic:
    def test_process_one(self):
        nic = XdpOffload(toy_counter.build())
        action, data = nic.process_one(toy_counter.packet_for_key(2))
        assert action == XdpAction.TX
        assert len(data) >= 60

    def test_rate_limited(self):
        nic = XdpOffload(SOURCE)
        report = nic.process([udp_packet(size=64)] * 100, rate_mpps=25.0)
        assert report.throughput_mpps == pytest.approx(25.0, rel=0.15)

    def test_latency_requires_traffic(self):
        nic = XdpOffload(SOURCE)
        with pytest.raises(RuntimeError):
            nic.latency_ns()
        nic.process([udp_packet(size=64)])
        assert 500 < nic.latency_ns() < 2000

    def test_firewall_workflow(self):
        nic = XdpOffload(firewall.build())
        flow = FiveTuple(ipv4("10.0.0.1"), ipv4("10.9.9.9"), 17, 1234, 53)
        frame = udp_packet(src_ip=flow.src_ip, dst_ip=flow.dst_ip,
                           sport=flow.sport, dport=flow.dport, size=64)
        action, _ = nic.process_one(frame)
        assert action == XdpAction.DROP
        firewall.allow_flow(nic.maps, flow)
        action, _ = nic.process_one(frame)
        assert action == XdpAction.TX


class TestReports:
    def test_summary_and_backends(self):
        nic = XdpOffload(SOURCE)
        nic.process([udp_packet(size=64)] * 10)
        text = nic.summary()
        assert "pipeline" in text and "Mpps" in text
        assert "entity" in nic.vhdl()
        assert nic.resources().luts > 0

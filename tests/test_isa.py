"""Unit tests for the eBPF ISA model: encoding, decoding, field access."""

import pytest

from repro.ebpf import isa
from repro.ebpf.isa import (
    ISAError,
    Instruction,
    MapSpec,
    Program,
    decode,
    encode,
    sign_extend,
    to_signed32,
    to_signed64,
)


class TestSignExtension:
    def test_positive_stays(self):
        assert sign_extend(5, 8) == 5

    def test_negative_byte(self):
        assert sign_extend(0xFF, 8) == -1

    def test_boundary(self):
        assert sign_extend(0x80, 8) == -128
        assert sign_extend(0x7F, 8) == 127

    def test_32bit(self):
        assert to_signed32(0xFFFFFFFF) == -1
        assert to_signed32(0x7FFFFFFF) == 0x7FFFFFFF

    def test_64bit(self):
        assert to_signed64((1 << 64) - 1) == -1


class TestInstructionFields:
    def test_opclass(self):
        insn = isa.alu64_imm(isa.BPF_ADD, isa.R1, 5)
        assert insn.opclass == isa.BPF_ALU64
        assert insn.is_alu and insn.is_alu64

    def test_alu32(self):
        insn = isa.alu32_imm(isa.BPF_ADD, isa.R1, 5)
        assert insn.opclass == isa.BPF_ALU
        assert insn.is_alu and not insn.is_alu64

    def test_size_bytes(self):
        assert isa.load(isa.BPF_B, 1, 2, 0).size_bytes == 1
        assert isa.load(isa.BPF_H, 1, 2, 0).size_bytes == 2
        assert isa.load(isa.BPF_W, 1, 2, 0).size_bytes == 4
        assert isa.load(isa.BPF_DW, 1, 2, 0).size_bytes == 8

    def test_jump_predicates(self):
        assert isa.jump(3).is_uncond_jump
        assert not isa.jump(3).is_cond_jump
        assert isa.jump_imm(isa.BPF_JEQ, 1, 0, 2).is_cond_jump
        assert isa.call(1).is_call and not isa.call(1).is_jump
        assert isa.exit_().is_exit and isa.exit_().is_terminator

    def test_atomic_predicates(self):
        insn = isa.atomic_op(isa.BPF_DW, 1, 2, 0, isa.ATOMIC_ADD)
        assert insn.is_atomic and insn.is_store

    def test_atomic_requires_word_sizes(self):
        with pytest.raises(ISAError):
            isa.atomic_op(isa.BPF_B, 1, 2, 0, isa.ATOMIC_ADD)

    def test_ld_imm64_slots(self):
        assert isa.ld_imm64(1, 0xDEADBEEF).slots == 2
        assert isa.mov64_imm(1, 5).slots == 1

    def test_map_ref(self):
        insn = isa.ld_map_fd(1, 7)
        assert insn.is_map_ref and insn.imm64 == 7

    def test_invalid_register(self):
        with pytest.raises(ISAError):
            Instruction(isa.BPF_ALU64 | isa.BPF_MOV, dst=11)

    def test_invalid_offset(self):
        with pytest.raises(ISAError):
            Instruction(isa.BPF_JMP | isa.BPF_JA, off=1 << 15)

    def test_endian_width_validation(self):
        with pytest.raises(ISAError):
            isa.endian(1, 24, to_big=True)


class TestRegisterSets:
    def test_alu_reg_reads_both(self):
        insn = isa.alu64_reg(isa.BPF_ADD, isa.R1, isa.R2)
        assert set(insn.regs_read()) == {isa.R1, isa.R2}
        assert insn.regs_written() == (isa.R1,)

    def test_mov_imm_reads_nothing(self):
        assert isa.mov64_imm(isa.R3, 7).regs_read() == ()

    def test_mov_reg_reads_src_only(self):
        insn = isa.mov64_reg(isa.R3, isa.R4)
        assert insn.regs_read() == (isa.R4,)

    def test_load_reads_base(self):
        insn = isa.load(isa.BPF_W, isa.R1, isa.R2, 4)
        assert insn.regs_read() == (isa.R2,)
        assert insn.regs_written() == (isa.R1,)

    def test_store_reads_base_and_value(self):
        insn = isa.store_reg(isa.BPF_W, isa.R1, isa.R2, 4)
        assert set(insn.regs_read()) == {isa.R1, isa.R2}
        assert insn.regs_written() == ()

    def test_exit_reads_r0(self):
        assert isa.exit_().regs_read() == (isa.R0,)

    def test_call_clobbers_caller_saved(self):
        written = set(isa.call(1).regs_written())
        assert {isa.R0, isa.R1, isa.R2, isa.R3, isa.R4, isa.R5} == written

    def test_atomic_fetch_writes_src(self):
        insn = isa.atomic_op(
            isa.BPF_DW, isa.R1, isa.R2, 0, isa.ATOMIC_ADD | isa.BPF_FETCH
        )
        assert isa.R2 in insn.regs_written()


class TestEncoding:
    def test_simple_roundtrip(self):
        insns = [
            isa.mov64_imm(isa.R0, 2),
            isa.alu64_reg(isa.BPF_ADD, isa.R0, isa.R1),
            isa.load(isa.BPF_W, isa.R2, isa.R1, 4),
            isa.store_imm(isa.BPF_H, isa.R10, -4, 99),
            isa.jump_imm(isa.BPF_JNE, isa.R0, 5, 2),
            isa.call(1),
            isa.exit_(),
        ]
        assert decode(encode(insns)) == insns

    def test_ld_imm64_roundtrip(self):
        insns = [isa.ld_imm64(isa.R1, 0x1122334455667788), isa.exit_()]
        data = encode(insns)
        assert len(data) == 24  # 2 slots + 1 slot
        assert decode(data) == insns

    def test_negative_imm_roundtrip(self):
        insns = [isa.mov64_imm(isa.R1, -42), isa.exit_()]
        assert decode(encode(insns)) == insns

    def test_negative_offset_roundtrip(self):
        insns = [isa.load(isa.BPF_W, isa.R1, isa.R10, -8), isa.exit_()]
        assert decode(encode(insns)) == insns

    def test_decode_rejects_bad_length(self):
        with pytest.raises(ISAError):
            decode(b"\x00" * 7)

    def test_decode_rejects_truncated_ld_imm64(self):
        data = isa.ld_imm64(isa.R1, 1).encode()[:8]
        with pytest.raises(ISAError):
            decode(data)

    def test_decode_rejects_bad_second_slot(self):
        data = bytearray(isa.ld_imm64(isa.R1, 1).encode())
        data[8] = 0x07  # second slot must be all-zero opcode
        with pytest.raises(ISAError):
            decode(bytes(data))

    def test_encoding_is_8_bytes(self):
        assert len(isa.mov64_imm(isa.R1, 1).encode()) == 8


class TestProgram:
    def _prog(self):
        return Program(
            [
                isa.mov64_imm(isa.R0, 1),
                isa.ld_imm64(isa.R1, 5),
                isa.jump_imm(isa.BPF_JEQ, isa.R0, 1, 1),
                isa.exit_(),
                isa.exit_(),
            ]
        )

    def test_slot_arithmetic(self):
        prog = self._prog()
        assert prog.slot_count == 6
        assert prog.slot_of_index(2) == 3  # after mov (1) + ld_imm64 (2)
        assert prog.index_of_slot(3) == 2

    def test_jump_target_skips_wide_insn(self):
        prog = self._prog()
        # jump at index 2, offset +1 slot -> index 4
        assert prog.jump_target_index(2) == 4

    def test_index_of_slot_rejects_mid_instruction(self):
        prog = self._prog()
        with pytest.raises(ISAError):
            prog.index_of_slot(2)  # middle of the ld_imm64

    def test_empty_program_rejected(self):
        with pytest.raises(ISAError):
            Program([])

    def test_from_bytes(self):
        prog = self._prog()
        again = Program.from_bytes(prog.encode())
        assert again.instructions == prog.instructions

    def test_referenced_map_fds(self):
        prog = Program([isa.ld_map_fd(isa.R1, 3), isa.exit_()],
                       maps={3: MapSpec("m", "array", 4, 8, 1)})
        assert prog.referenced_map_fds() == [3]

    def test_map_for_unknown_fd(self):
        prog = self._prog()
        with pytest.raises(ISAError):
            prog.map_for_fd(9)


class TestMapSpec:
    def test_valid(self):
        spec = MapSpec("m", "hash", 4, 8, 16)
        assert spec.max_entries == 16

    def test_rejects_bad_type(self):
        with pytest.raises(ISAError):
            MapSpec("m", "treemap", 4, 8, 16)

    def test_rejects_zero_sizes(self):
        with pytest.raises(ISAError):
            MapSpec("m", "hash", 0, 8, 16)
        with pytest.raises(ISAError):
            MapSpec("m", "hash", 4, 8, 0)

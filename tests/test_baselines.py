"""Baseline model tests: hXDP, Bluefield2, SDNet."""

import pytest

from repro.apps import EVALUATION_APPS, dnat, firewall, router
from repro.baselines import (
    P4_PORTS,
    SdnetCompiler,
    SdnetUnsupportedError,
    compile_for_hxdp,
    model_bluefield,
)
from repro.baselines.sdnet import ActionKind, P4Action, p4_firewall, p4_router
from repro.core import compile_program
from repro.core.resources import estimate_resources
from repro.ebpf.xdp import XdpAction
from repro.net.packet import udp_packet


class TestHxdp:
    def test_throughput_in_paper_band(self):
        # hXDP forwards 0.9-5.4 Mpps depending on the program (§5.1)
        for name, mod in EVALUATION_APPS.items():
            report = compile_for_hxdp(mod.build())
            assert 0.5 < report.throughput_mpps < 8, name

    def test_sequential_execution_penalty(self):
        # eHDL pipelines beat hXDP by 10-100x in throughput
        for name, mod in EVALUATION_APPS.items():
            hxdp = compile_for_hxdp(mod.build())
            ratio = 148.8 / hxdp.throughput_mpps
            assert ratio > 10, name

    def test_latency_same_ballpark_as_ehdl(self):
        # "the latency of eHDL and hXDP is in fact comparable"
        report = compile_for_hxdp(firewall.build())
        assert 100 < report.latency_ns < 1500

    def test_vliw_bundles_leq_instructions(self):
        prog = router.build()
        report = compile_for_hxdp(prog)
        assert report.vliw_instructions <= len(prog.instructions)

    def test_resources_program_independent(self):
        from repro.baselines.hxdp import resources

        assert resources(firewall.build()) == resources(router.build())

    def test_more_instructions_lower_throughput(self):
        small = compile_for_hxdp(firewall.build())
        large = compile_for_hxdp(dnat.build())
        assert large.throughput_mpps < small.throughput_mpps


class TestBluefield:
    SAMPLE = [udp_packet(size=64)] * 4

    def test_single_core_comparable_to_hxdp(self):
        for name, mod in EVALUATION_APPS.items():
            bf = model_bluefield(mod.build(), self.SAMPLE, cores=1)
            assert 0.5 < bf.throughput_mpps < 8, name

    def test_linear_core_scaling(self):
        prog = router.build()
        one = model_bluefield(prog, self.SAMPLE, cores=1)
        four = model_bluefield(prog, self.SAMPLE, cores=4)
        assert abs(four.throughput_mpps - 4 * one.throughput_mpps) < 1e-6

    def test_four_cores_over_10mpps(self):
        # "growing linearly to over 10 Mpps when using multiple cores"
        bf = model_bluefield(router.build(), self.SAMPLE, cores=4)
        assert bf.throughput_mpps > 10

    def test_latency_10x_fpga(self):
        bf = model_bluefield(router.build(), self.SAMPLE, cores=1)
        assert bf.latency_ns > 5_000  # ~10x the FPGA's ~1 us

    def test_core_count_validated(self):
        with pytest.raises(ValueError):
            model_bluefield(router.build(), self.SAMPLE, cores=0)
        with pytest.raises(ValueError):
            model_bluefield(router.build(), self.SAMPLE, cores=99)


class TestSdnet:
    def test_four_apps_compile(self):
        compiler = SdnetCompiler()
        for name in ("firewall", "router", "tunnel", "suricata"):
            pipe = compiler.compile(P4_PORTS[name]())
            assert pipe.throughput_mpps > 140

    def test_dnat_rejected(self):
        # the §5 result: "we could not implement the DNAT in P4"
        with pytest.raises(SdnetUnsupportedError):
            SdnetCompiler().compile(P4_PORTS["dnat"]())

    def test_unparsed_key_field_rejected(self):
        prog = p4_router()
        prog.tables[0].key_fields.append("vlan.id")
        with pytest.raises(KeyError):
            SdnetCompiler().compile(prog)

    def test_resources_exceed_ehdl(self):
        compiler = SdnetCompiler()
        for name in ("firewall", "router", "tunnel", "suricata"):
            sdnet_est = compiler.compile(P4_PORTS[name]()).resources()
            ehdl_est = estimate_resources(
                compile_program(EVALUATION_APPS[name].build())
            )
            assert sdnet_est.luts > 1.3 * ehdl_est.luts, name
            assert sdnet_est.ffs > ehdl_est.ffs, name

    def test_firewall_pipeline_behaviour(self):
        prog = p4_firewall()
        pipe = SdnetCompiler().compile(prog)
        frame = udp_packet(src_ip="10.0.0.1", dst_ip="10.0.0.2",
                           sport=1000, dport=53, size=64)
        # unknown flow: default action DROP
        action, _, _ = pipe.process(frame)
        assert action == XdpAction.DROP
        # install the flow from the "control plane"
        key = frame[26:30] + frame[30:34] + frame[34:36] + frame[36:38]
        prog.tables[0].add_entry(
            key,
            [P4Action(ActionKind.PASS),
             P4Action(ActionKind.COUNT, {"counter": "flow_hits", "index": 0})],
        )
        action, _, _ = pipe.process(frame)
        assert action == XdpAction.PASS
        assert prog.counter("flow_hits").values[0] == 1

    def test_router_pipeline_behaviour(self):
        from repro.net.packet import ETH_HLEN, checksum16

        prog = p4_router()
        pipe = SdnetCompiler().compile(prog)
        frame = udp_packet(dst_ip="10.0.0.2", size=64, ttl=10)
        key = frame[30:34]
        prog.tables[0].add_entry(
            key,
            [
                P4Action(ActionKind.SET_FIELDS, {
                    "eth.dst": b"\x02\x00\x00\x00\x0a\x0a",
                    "eth.src": b"\x02\x00\x00\x00\x0b\x0b",
                }),
                P4Action(ActionKind.DEC_TTL),
                P4Action(ActionKind.FORWARD, {"port": 4}),
            ],
        )
        action, data, port = pipe.process(frame)
        assert action == XdpAction.REDIRECT and port == 4
        assert data[ETH_HLEN + 8] == 9
        assert checksum16(data[ETH_HLEN : ETH_HLEN + 20]) == 0

    def test_short_packet_dropped(self):
        pipe = SdnetCompiler().compile(p4_firewall())
        action, _, _ = pipe.process(bytes(10))
        assert action == XdpAction.DROP

    def test_table_capacity_enforced(self):
        prog = p4_firewall()
        prog.tables[0].size = 1
        prog.tables[0].add_entry(bytes(12), [P4Action(ActionKind.PASS)])
        with pytest.raises(ValueError):
            prog.tables[0].add_entry(bytes(range(12)), [P4Action(ActionKind.PASS)])

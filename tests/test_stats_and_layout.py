"""Unit tests for SimReport metrics and the VHDL state layout."""

import pytest

from repro.apps import toy_counter
from repro.core import compile_program
from repro.core.pipeline import Stage, StageKind
from repro.core.vhdl import StateLayout, _layout_for, emit_vhdl, link_windows
from repro.ebpf.xdp import XdpAction
from repro.hwsim.stats import PacketRecord, SimReport


class TestPacketRecord:
    def test_cycle_accounting(self):
        rec = PacketRecord(
            pid=0, action=XdpAction.TX, data=b"", arrival_cycle=10,
            inject_cycle=14, exit_cycle=40,
        )
        assert rec.pipeline_cycles == 26
        assert rec.total_cycles == 30


class TestSimReport:
    def _report(self):
        report = SimReport(clock_mhz=250.0, n_stages=20)
        report.cycles = 1000
        report.packets_in = 100
        for i in range(100):
            report.record(PacketRecord(
                pid=i, action=XdpAction.TX if i % 2 else XdpAction.DROP,
                data=b"", arrival_cycle=i, inject_cycle=i, exit_cycle=i + 20,
            ))
        return report

    def test_throughput(self):
        report = self._report()
        assert report.throughput_mpps == pytest.approx(100 * 250 / 1000)

    def test_cycle_ns(self):
        assert SimReport(clock_mhz=250.0, n_stages=1).cycle_ns == 4.0

    def test_latency_with_shell(self):
        report = self._report()
        assert report.latency_ns(shell_overhead_ns=800) == pytest.approx(
            20 * 4.0 + 800
        )

    def test_action_counts(self):
        report = self._report()
        assert report.count_action(XdpAction.TX) == 50
        assert report.count_action(XdpAction.DROP) == 50
        assert report.count_action(XdpAction.PASS) == 0

    def test_flush_rate(self):
        report = self._report()
        report.flush_events = 10
        # 10 flushes in 1000 cycles at 250 MHz = 2.5M/s
        assert report.flushes_per_second() == pytest.approx(2.5e6)

    def test_records_can_be_disabled(self):
        report = SimReport(clock_mhz=250.0, n_stages=1, keep_records=False)
        report.record(PacketRecord(0, XdpAction.TX, b"", 0, 0, 1))
        assert report.packets_out == 1
        assert report.records == []

    def test_empty_report_metrics(self):
        report = SimReport(clock_mhz=250.0, n_stages=1)
        assert report.throughput_mpps == 0.0
        assert report.latency_ns() == 0.0
        assert report.flushes_per_second() == 0.0

    def test_summary_mentions_counts(self):
        text = self._report().summary()
        assert "out=100" in text and "DROP" in text


class TestStateLayout:
    def test_layout_positions(self):
        stage = Stage(number=1, kind=StageKind.OPS)
        stage.live_in_regs = frozenset({1, 3})
        stage.live_in_stack = ((-8, 4),)
        layout = _layout_for(stage, window_bytes=64)
        assert layout.window_bits == 512
        # header: plen(16) haj(16) done(1) verdict(32) right above the window
        assert layout.plen_low == 512
        assert layout.haj_low == 512 + 16
        assert layout.done_bit == 512 + 32
        assert layout.verdict_low == 512 + 33
        assert layout.regs[1] == 512 + 65
        assert layout.regs[3] == 512 + 65 + 64
        assert layout.stack[(-8, 4)] == 512 + 65 + 128
        assert layout.total_bits == 512 + 65 + 128 + 32

    def test_reg_slice_text(self):
        stage = Stage(number=1, kind=StageKind.OPS)
        stage.live_in_regs = frozenset({0})
        layout = _layout_for(stage, window_bytes=64)
        assert layout.reg_slice(0) == "(640 downto 577)"

    def test_r10_is_never_carried(self):
        # R10 is a hardware constant (stack top), not pipeline state
        stage = Stage(number=1, kind=StageKind.OPS)
        stage.live_in_regs = frozenset({1, 10})
        layout = _layout_for(stage, window_bytes=64)
        assert 10 not in layout.regs
        assert layout.total_bits == 512 + 65 + 64

    def test_final_link_is_header_only(self):
        layout = _layout_for(None, window_bytes=64)
        assert layout.verdict_low == 512 + 33
        assert layout.total_bits == 512 + 65

    def test_vhdl_ports_match_layouts(self):
        pipeline = compile_program(toy_counter.build())
        text = emit_vhdl(pipeline)
        windows = link_windows(pipeline)
        first = _layout_for(pipeline.stages[0], windows[0])
        assert (
            f"state_in   : in  std_logic_vector({first.total_bits - 1} downto 0)"
            in text
        )
        # the last stage's output is the final header-only link
        final = _layout_for(None, windows[-1])
        assert (
            f"state_out  : out std_logic_vector({final.total_bits - 1} downto 0)"
            in text
        )

    def test_datapath_expressions_present(self):
        text = emit_vhdl(compile_program(toy_counter.build()))
        assert "shift_left" in text  # r1 <<= 8
        assert " or " in text  # r1 |= r2
        assert "state_in(" in text  # window/register byte-select
        assert "enable_out(" in text  # predication updates

"""The examples must stay runnable — they are the library's front door."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must print their findings"


def test_at_least_three_examples():
    assert len(EXAMPLES) >= 3

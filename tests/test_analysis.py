"""Analytical flush model (Appendix A.1) and energy model tests."""

import math

import pytest

from repro.analysis import (
    analyze_pipeline,
    bluefield_power,
    fpga_power,
    k_max,
    pipeline_throughput,
    table4,
    uniform_flush_probability,
    zipf_flush_probability,
)
from repro.apps import dnat, firewall, router
from repro.core import compile_program


class TestUniformModel:
    def test_birthday_formula(self):
        # P = 1 - exp(-L^2/2N)
        assert uniform_flush_probability(10, 1000) == pytest.approx(
            1 - math.exp(-100 / 2000)
        )

    def test_no_window_no_flush(self):
        assert uniform_flush_probability(0, 1000) == 0.0
        assert uniform_flush_probability(1, 1000) == 0.0

    def test_more_flows_less_flush(self):
        assert uniform_flush_probability(5, 100_000) < uniform_flush_probability(5, 100)

    def test_longer_window_more_flush(self):
        assert uniform_flush_probability(10, 1000) > uniform_flush_probability(2, 1000)


class TestZipfModel:
    def test_probability_in_unit_interval(self):
        for L in (2, 5, 20):
            p = zipf_flush_probability(L, 50_000)
            assert 0.0 <= p <= 1.0

    def test_monotone_in_window(self):
        probs = [zipf_flush_probability(L, 50_000) for L in (2, 3, 4, 5)]
        assert probs == sorted(probs)

    def test_table4_shape(self):
        # paper Table 4: L=2: ~1%/K~61; L=5: ~10%/K~7
        rows = table4()
        assert [r["L"] for r in rows] == [2, 3, 4, 5]
        assert 0.005 < rows[0]["p_flush"] < 0.03
        assert 0.07 < rows[3]["p_flush"] < 0.15
        assert 30 < rows[0]["k_max"] < 80
        assert 4 < rows[3]["k_max"] < 12
        k_values = [r["k_max"] for r in rows]
        assert k_values == sorted(k_values, reverse=True)

    def test_truncated_sum_close(self):
        full = zipf_flush_probability(4, 20_000)
        truncated = zipf_flush_probability(4, 20_000, max_terms=2_000)
        assert truncated == pytest.approx(full, rel=0.05)


class TestThroughputEquations:
    def test_no_flush_full_rate(self):
        assert pipeline_throughput(100, 0.0) == 250.0

    def test_equation_2(self):
        # T_p = T / ((1-P) + K P)
        assert pipeline_throughput(50, 0.1) == pytest.approx(250 / (0.9 + 5.0))

    def test_k_max_inverts_throughput(self):
        p = 0.02
        k = k_max(p, target_mpps=148.8)
        assert pipeline_throughput(int(k), p) == pytest.approx(148.8, rel=0.02)

    def test_k_max_infinite_without_hazard(self):
        assert k_max(0.0) == math.inf


class TestPipelineAnalysis:
    def test_firewall_not_applicable(self):
        # Table 3: Simple firewall has no flushable hazard (atomics only)
        analysis = analyze_pipeline(compile_program(firewall.build()))
        assert not analysis.applicable
        assert "N/A" in analysis.row()

    def test_rmw_router_analysis(self):
        analysis = analyze_pipeline(
            compile_program(router.build(use_atomic=False))
        )
        assert analysis.applicable
        assert analysis.L >= 2
        assert analysis.K > analysis.L
        assert 0 < analysis.throughput_mpps <= 250

    def test_dnat_long_window(self):
        analysis = analyze_pipeline(compile_program(dnat.build()))
        assert analysis.applicable
        assert analysis.L >= 8  # the lookup->update distance is long

    def test_uniform_vs_zipf(self):
        pipe = compile_program(router.build(use_atomic=False))
        z = analyze_pipeline(pipe, distribution="zipf")
        u = analyze_pipeline(pipe, distribution="uniform")
        assert u.p_flush < z.p_flush  # Zipf concentrates traffic

    def test_unknown_distribution(self):
        pipe = compile_program(router.build(use_atomic=False))
        with pytest.raises(ValueError):
            analyze_pipeline(pipe, distribution="pareto")


class TestEnergy:
    def test_u50_host_power_band(self):
        # "80-85W when the system under test hosts the Xilinx Alveo U50"
        report = fpga_power(active_luts=70_000, throughput_mpps=148.8)
        assert 78 <= report.watts <= 87

    def test_bf2_host_power_band(self):
        # "100-105W when hosting the Bf2"
        report = bluefield_power(active_cores=4, throughput_mpps=10)
        assert 98 <= report.watts <= 107

    def test_little_variation_across_designs(self):
        small = fpga_power(45_000, 148.8)
        large = fpga_power(120_000, 148.8)
        assert abs(large.watts - small.watts) < 2

    def test_energy_per_packet_favours_fpga(self):
        fpga = fpga_power(70_000, 148.8)
        bf2 = bluefield_power(4, 10.0)
        assert fpga.nj_per_packet < bf2.nj_per_packet / 10

"""Reference VM semantics: ALU, jumps, memory, atomics, helpers, faults."""

import pytest

from repro.ebpf import isa
from repro.ebpf.asm import assemble_program
from repro.ebpf.isa import MASK64, MapSpec, Program
from repro.ebpf.maps import MapSet
from repro.ebpf.vm import Vm, VmError, run_program
from repro.ebpf.xdp import AddressSpace, XdpAction

PKT = bytes(range(64))


def run_src(source: str, packet: bytes = PKT, maps=None, **kwargs):
    prog = assemble_program(source, maps=maps)
    return run_program(prog, packet, **kwargs)


def r0_of(source_body: str, packet: bytes = PKT, maps=None, **kwargs) -> int:
    """Run a snippet that leaves its result in r0."""
    res = run_src(source_body + "\nexit", packet, maps, **kwargs)
    # encode the full 64-bit r0 in the action? No: use a trick — store to
    # packet instead. Simpler: return the action value (r0 & 0xffffffff).
    return res


class TestAlu:
    def _eval(self, body: str) -> int:
        """Compute a 64-bit result and write it into the packet for readout."""
        source = f"""
            r6 = *(u32 *)(r1 + 0)
            {body}
            *(u64 *)(r6 + 0) = r0
            r0 = 2
            exit
        """
        res = run_src(source)
        return int.from_bytes(res.packet[:8], "little")

    def test_add_wraps_64(self):
        assert self._eval("r0 = -1\nr0 += 2") == 1

    def test_sub_negative(self):
        assert self._eval("r0 = 5\nr0 -= 9") == (-4) & MASK64

    def test_mul(self):
        assert self._eval("r0 = 7\nr0 *= 6") == 42

    def test_div_unsigned(self):
        assert self._eval("r0 = -4\nr2 = 2\nr0 /= r2") == ((-4) & MASK64) // 2

    def test_div_by_zero_yields_zero(self):
        assert self._eval("r0 = 7\nr2 = 0\nr0 /= r2") == 0

    def test_mod_by_zero_keeps_dst(self):
        assert self._eval("r0 = 7\nr2 = 0\nr0 %= r2") == 7

    def test_shift_masked_to_63(self):
        assert self._eval("r0 = 1\nr2 = 65\nr0 <<= r2") == 2

    def test_rsh_logical(self):
        assert self._eval("r0 = -1\nr0 >>= 63") == 1

    def test_arsh_arithmetic(self):
        assert self._eval("r0 = -8\nr0 s>>= 1") == (-4) & MASK64

    def test_alu32_truncates_and_zero_extends(self):
        assert self._eval("r0 = -1\nw0 += 1") == 0
        assert self._eval("w0 = -1") == 0xFFFFFFFF

    def test_neg(self):
        assert self._eval("r0 = 5\nr0 = -r0") == (-5) & MASK64

    def test_be16(self):
        assert self._eval("r0 = 0x1234\nr0 = be16 r0") == 0x3412

    def test_be32(self):
        assert self._eval("r0 = 0x12345678\nr0 = be32 r0") == 0x78563412

    def test_le_truncates(self):
        assert self._eval("r0 = 0x11223344556677 ll\nr0 = le16 r0") == 0x6677

    def test_xor_self_zeroes(self):
        assert self._eval("r0 = 77\nr0 ^= r0") == 0


class TestJumps:
    def _action(self, body: str) -> XdpAction:
        return run_src(body + "\nexit").action

    def test_unsigned_gt(self):
        # -1 as unsigned is huge
        assert self._action("r0 = 1\nr2 = -1\nif r2 > 5 goto +1\nr0 = 2") == XdpAction.DROP

    def test_signed_lt(self):
        assert self._action("r0 = 1\nr2 = -1\nif r2 s< 0 goto +1\nr0 = 2") == XdpAction.DROP

    def test_jset(self):
        assert self._action("r0 = 1\nr2 = 6\nif r2 & 2 goto +1\nr0 = 2") == XdpAction.DROP

    def test_jmp32_compares_low_word(self):
        body = "r0 = 1\nr2 = 0x100000001 ll\nif w2 == 1 goto +1\nr0 = 2"
        assert self._action(body) == XdpAction.DROP

    def test_fallthrough(self):
        assert self._action("r0 = 1\nif r0 == 9 goto +1\nr0 = 2") == XdpAction.PASS


class TestMemory:
    def test_packet_load_little_endian(self):
        source = """
            r6 = *(u32 *)(r1 + 0)
            r0 = *(u16 *)(r6 + 0)
            exit
        """
        res = run_src(source, packet=b"\x02\x00" + bytes(62))
        assert res.action == XdpAction.PASS  # 0x0002

    def test_packet_store_visible_in_result(self):
        source = """
            r6 = *(u32 *)(r1 + 0)
            *(u8 *)(r6 + 5) = 0xAB
            r0 = 2
            exit
        """
        assert run_src(source).packet[5] == 0xAB

    def test_stack_roundtrip(self):
        source = """
            r2 = 0x1122334455667788 ll
            *(u64 *)(r10 - 8) = r2
            r3 = *(u32 *)(r10 - 8)
            r0 = 2
            if r3 == 0x55667788 goto +1
            r0 = 1
            exit
        """
        assert run_src(source).action == XdpAction.PASS

    def test_packet_oob_read_faults(self):
        source = """
            r6 = *(u32 *)(r1 + 0)
            r0 = *(u8 *)(r6 + 1000)
            exit
        """
        with pytest.raises(VmError, match="out of bounds"):
            run_src(source)

    def test_stack_oob_faults(self):
        with pytest.raises(VmError):
            run_src("*(u64 *)(r10 + 0) = r1\nr0 = 2\nexit")

    def test_ctx_write_faults(self):
        with pytest.raises(VmError, match="read-only"):
            run_src("*(u32 *)(r1 + 0) = 5\nr0 = 2\nexit")

    def test_data_end_minus_data_is_length(self):
        source = """
            r2 = *(u32 *)(r1 + 4)
            r3 = *(u32 *)(r1 + 0)
            r2 -= r3
            r0 = 1
            if r2 != 64 goto +1
            r0 = 2
            exit
        """
        assert run_src(source, packet=bytes(64)).action == XdpAction.PASS


class TestAtomics:
    def _maps(self):
        return {"m": MapSpec("m", "array", 4, 8, 1)}

    def _run(self, body, maps=None):
        source = f"""
            r2 = 0
            *(u32 *)(r10 - 4) = r2
            r1 = map[m]
            r2 = r10
            r2 += -4
            call 1
            if r0 == 0 goto fail
            {body}
            r0 = 2
            exit
        fail:
            r0 = 0
            exit
        """
        prog = assemble_program(source, maps=self._maps())
        maps_rt = MapSet(prog.maps)
        res = run_program(prog, PKT, maps=maps_rt)
        value = maps_rt.by_name("m").lookup(bytes(4))
        return res, int.from_bytes(value, "little")

    def test_atomic_add(self):
        res, value = self._run("r2 = 5\nlock *(u64 *)(r0 + 0) += r2")
        assert res.action == XdpAction.PASS and value == 5

    def test_atomic_or_and_xor(self):
        _, v = self._run("r2 = 0x0f\nlock *(u64 *)(r0 + 0) |= r2")
        assert v == 0x0F
        _, v = self._run("r2 = 3\nlock *(u64 *)(r0 + 0) ^= r2")
        assert v == 3

    def test_atomic_fetch_add_returns_old(self):
        res, value = self._run(
            """
            r2 = 5
            lock fetch *(u64 *)(r0 + 0) += r2
            if r2 != 0 goto bad
            goto ok
        bad:
            r0 = 0
            exit
        ok:
            r3 = 0
            """
        )
        assert res.action == XdpAction.PASS and value == 5

    def test_atomic_xchg(self):
        res, value = self._run("r2 = 9\nlock *(u64 *)(r0 + 0) xchg r2")
        assert value == 9


class TestCallsAndLimits:
    def test_call_scrubs_r1_to_r5(self):
        source = """
            r2 = 0
            *(u32 *)(r10 - 4) = r2
            r1 = map[m]
            r2 = r10
            r2 += -4
            r3 = 77
            call 1
            r0 = 2
            if r3 == 0 goto +1
            r0 = 1
            exit
        """
        prog = assemble_program(source, maps={"m": MapSpec("m", "array", 4, 8, 1)})
        assert run_program(prog, PKT).action == XdpAction.PASS

    def test_unknown_helper_faults(self):
        with pytest.raises(Exception):
            run_src("call 9999\nr0 = 2\nexit")

    def test_infinite_loop_hits_instruction_limit(self):
        source = """
        top:
            r0 = 0
            goto top
        """
        with pytest.raises(VmError, match="instruction limit"):
            run_src(source)

    def test_instruction_count_reported(self):
        res = run_src("r0 = 2\nexit")
        assert res.instructions_executed == 2

    def test_unknown_action_becomes_aborted(self):
        assert run_src("r0 = 77\nexit").action == XdpAction.ABORTED


class TestBoundedLoop:
    def test_counted_loop_executes(self):
        # sum 1..5 into r0 via a backward jump (legal in the VM; the
        # verifier is what rejects it before compilation)
        source = """
            r0 = 0
            r2 = 5
        loop:
            r0 += r2
            r2 -= 1
            if r2 != 0 goto loop
            r6 = *(u32 *)(r1 + 0)
            *(u64 *)(r6 + 0) = r0
            r0 = 2
            exit
        """
        res = run_src(source)
        assert int.from_bytes(res.packet[:8], "little") == 15


class TestMapsThroughVm:
    def test_lookup_miss_returns_null(self):
        source = """
            r2 = 1
            *(u32 *)(r10 - 4) = r2
            r1 = map[h]
            r2 = r10
            r2 += -4
            call 1
            if r0 == 0 goto miss
            r0 = 1
            exit
        miss:
            r0 = 2
            exit
        """
        prog = assemble_program(source, maps={"h": MapSpec("h", "hash", 4, 8, 4)})
        assert run_program(prog, PKT).action == XdpAction.PASS

    def test_update_then_host_visible(self):
        source = """
            r2 = 7
            *(u32 *)(r10 - 4) = r2
            r2 = 99
            *(u64 *)(r10 - 16) = r2
            r1 = map[h]
            r2 = r10
            r2 += -4
            r3 = r10
            r3 += -16
            r4 = 0
            call 2
            r0 = 2
            exit
        """
        prog = assemble_program(source, maps={"h": MapSpec("h", "hash", 4, 8, 4)})
        maps = MapSet(prog.maps)
        run_program(prog, PKT, maps=maps)
        assert maps.by_name("h").lookup((7).to_bytes(4, "little")) == (99).to_bytes(8, "little")

    def test_delete(self):
        source = """
            r2 = 7
            *(u32 *)(r10 - 4) = r2
            r1 = map[h]
            r2 = r10
            r2 += -4
            call 3
            r0 = r0
            r0 &= 1
            r0 += 1
            exit
        """
        prog = assemble_program(source, maps={"h": MapSpec("h", "hash", 4, 8, 4)})
        maps = MapSet(prog.maps)
        maps.by_name("h").update((7).to_bytes(4, "little"), bytes(8))
        res = run_program(prog, PKT, maps=maps)
        assert res.action == XdpAction.DROP  # r0 = 0 (success) -> &1 -> +1 = 1
        assert maps.by_name("h").lookup((7).to_bytes(4, "little")) is None

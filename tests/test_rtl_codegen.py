"""Tests of the compiled RTL schedule generator (:mod:`repro.rtl.codegen`).

Semantics (bit-identical agreement with the delta-cycle interpreter on
every app) are covered by ``tests/test_rtl.py``; this file pins the
machinery around the generated schedule source itself:

* golden snapshots of the emitted module text
  (``tests/corpus/rtl_codegen/``, regenerate with
  ``pytest --update-golden``) for one fusion-heavy app and one with
  read-modify-write map channels, so emitter changes show up as diffs;
* determinism: elaborating the same pipeline twice yields identical
  source (the persistent-cache contract — artifacts are keyed by
  netlist digest only);
* the version stamp and digest plumbing through ``core/cache.py``.
"""

from pathlib import Path

import pytest

from repro.core.cache import CompileCache
from repro.core.compiler import compile_program
from repro.core.vhdl import emit_vhdl
from repro.ebpf.maps import MapSet
from repro.rtl import RTL_CODEGEN_VERSION, elaborate, generate_rtl_source, parse_vhdl
from repro.rtl.codegen import (
    ARTIFACT_KIND,
    load_rtl_module,
    schedule_digest,
    write_debug_source,
)
from repro.rtl.primitives import RtlContext, primitive_factory
from repro.rtl.sim import find_top
from tests.test_rtl import APP_CASES


def _elaborated(app):
    build, _setup, _frames = APP_CASES[app]
    pipeline = compile_program(build())
    text = emit_vhdl(pipeline)
    context = RtlContext(MapSet(pipeline.program.maps))
    model = elaborate(parse_vhdl(text), find_top(text),
                      primitive_factory, context)
    return pipeline, text, model


class TestGolden:
    """Full-text snapshots of the generated schedule modules.

    ``firewall`` exercises comb-node fusion and the generated
    whole-window ``_frame`` stepper; ``router_rmw`` has
    read-modify-write map channels, so its module carries busy-port
    traffic the firewall's channels mostly idle through. Regenerate
    intentionally with ``pytest --update-golden``.
    """

    APPS = ["firewall", "router_rmw"]

    @pytest.mark.parametrize("app", APPS)
    def test_snapshot(self, app, request):
        pipeline, _text, model = _elaborated(app)
        source = generate_rtl_source(model, pipeline.name)
        path = Path(__file__).parent / "corpus" / "rtl_codegen" / f"{app}.py"
        if request.config.getoption("--update-golden"):
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(source)
            pytest.skip(f"golden file {path.name} regenerated")
        assert path.exists(), (
            f"missing golden file {path}; run pytest --update-golden"
        )
        assert source == path.read_text(), (
            f"generated schedule for {app} diverged from {path.name}; if "
            "the change is intentional run pytest --update-golden"
        )

    def test_generation_is_deterministic(self):
        pipeline, _text, model_a = _elaborated("firewall")
        _pipeline, _text, model_b = _elaborated("firewall")
        assert generate_rtl_source(model_a, pipeline.name) \
            == generate_rtl_source(model_b, pipeline.name)

    def test_version_stamp_matches(self):
        pipeline, _text, model = _elaborated("firewall")
        source = generate_rtl_source(model, pipeline.name)
        assert f"_GEN_VERSION = {RTL_CODEGEN_VERSION}" in source


class TestCachePlumbing:
    def test_schedule_persisted_by_digest(self, tmp_path):
        from repro.rtl import codegen as rtl_codegen

        pipeline, text, model = _elaborated("toy_counter")
        cache = CompileCache(tmp_path)
        digest = schedule_digest(text)
        # drop the in-process memo so the artifact path actually runs
        rtl_codegen._MODULE_CACHE.pop(digest, None)
        assert cache.get_artifact(digest, ARTIFACT_KIND) is None
        load_rtl_module(model, text, pipeline.name, cache=cache)
        persisted = cache.get_artifact(digest, ARTIFACT_KIND)
        assert persisted is not None
        assert persisted == generate_rtl_source(model, pipeline.name)

    def test_digest_covers_generator_version(self):
        _pipeline, text, _model = _elaborated("toy_counter")
        # the digest string folds in RTL_CODEGEN_VERSION, so a version
        # bump orphans stale persisted artifacts instead of loading them
        assert schedule_digest(text) != schedule_digest(text + " ")

    def test_debug_source_dump(self, tmp_path):
        pipeline, _text, model = _elaborated("toy_counter")
        source = generate_rtl_source(model, pipeline.name)
        out = write_debug_source(source, tmp_path / "dbg", pipeline.name)
        assert out.read_text() == source

"""Tests of the code-generation backend (:mod:`repro.hwsim.codegen`).

Semantics (bit-identical agreement with the other pipeline engines on
every app) are covered by ``tests/test_engines.py``; this file pins the
machinery around the generated source itself:

* golden snapshots of the emitted module text (``tests/corpus/codegen/``,
  regenerate with ``pytest --update-golden``) for one stream-eligible
  app and one with hazard plans, so emitter changes show up as diffs;
* caching: the compiler attaches the source at compile time, it pickles
  with the pipeline (compile-cache hits and parallel workers exec() it
  instead of re-emitting), and every regeneration outside the compiler
  increments ``ehdl_codegen_recompile_total``;
* the ``_STREAM`` straight-line path: emitted only for hazard-free
  pipelines without order-sensitive helpers, and observably equivalent
  to the generated cycle loop.
"""

import pickle
from pathlib import Path

import pytest

from repro import telemetry
from repro.apps import firewall, leaky_bucket, toy_counter
from repro.core.cache import CompileCache, compile_cached
from repro.core.compiler import compile_program
from repro.hwsim import PipelineSimulator, SimOptions
from repro.hwsim.codegen import (
    CODEGEN_VERSION,
    ensure_source,
    generate_pipeline_source,
    load_pipeline_module,
    write_debug_source,
)
from tests.test_rtl import APP_CASES

_COUNTER = "ehdl_codegen_recompile_total"


def _recompiles(reg, pipeline):
    return reg.counter(_COUNTER, labels={"program": pipeline.name}).value


class TestGolden:
    """Full-text snapshots of the generated execution modules.

    ``firewall`` exercises the ``_STREAM`` straight-line path plus
    constant-offset folding; ``router_rmw`` has read-modify-write hazard
    plans, so its module carries the predication/snapshot/flush logic
    the firewall's elides. Regenerate intentionally with
    ``pytest --update-golden``.
    """

    APPS = ["firewall", "router_rmw"]

    @pytest.mark.parametrize("app", APPS)
    def test_snapshot(self, app, request):
        build, _setup, _frames = APP_CASES[app]
        text = generate_pipeline_source(compile_program(build()))
        path = Path(__file__).parent / "corpus" / "codegen" / f"{app}.py"
        if request.config.getoption("--update-golden"):
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text)
            pytest.skip(f"golden file {path.name} regenerated")
        assert path.exists(), (
            f"missing golden file {path}; run pytest --update-golden"
        )
        assert text == path.read_text(), (
            f"generated source for {app} diverged from {path.name}; if "
            "the change is intentional run pytest --update-golden"
        )

    def test_generation_is_deterministic(self):
        pipeline = compile_program(firewall.build())
        assert generate_pipeline_source(pipeline) \
            == generate_pipeline_source(pipeline)


class TestSourceAttachment:
    def test_compiler_attaches_versioned_source(self):
        pipeline = compile_program(firewall.build())
        assert pipeline.codegen_source
        assert pipeline.codegen_version == CODEGEN_VERSION
        # attachment is exactly the on-demand generation
        assert pipeline.codegen_source == generate_pipeline_source(pipeline)

    def test_source_survives_pickling(self):
        pipeline = compile_program(firewall.build())
        clone = pickle.loads(pickle.dumps(pipeline))
        assert clone.codegen_source == pipeline.codegen_source
        assert clone.codegen_version == CODEGEN_VERSION

    def test_attached_source_is_not_regenerated(self):
        pipeline = compile_program(firewall.build())
        with telemetry.scoped(enabled=True) as reg:
            source = ensure_source(pipeline)
            assert source is pipeline.codegen_source
            assert _recompiles(reg, pipeline) == 0

    def test_stale_version_recompiles_and_counts(self):
        pipeline = compile_program(firewall.build())
        pipeline.codegen_version = 0  # e.g. unpickled from an old cache
        with telemetry.scoped(enabled=True) as reg:
            ensure_source(pipeline)
            assert _recompiles(reg, pipeline) == 1
            assert pipeline.codegen_version == CODEGEN_VERSION
            # and only once: the refreshed stamp satisfies the next call
            ensure_source(pipeline)
            assert _recompiles(reg, pipeline) == 1

    def test_compile_cache_hit_carries_source(self, tmp_path):
        prog = toy_counter.build()
        warm = CompileCache(tmp_path)
        compile_cached(prog, cache=warm)
        # a fresh cache over the same directory: a "new process" whose
        # hit must come back ready to execute, no re-emission
        cold = CompileCache(tmp_path)
        pipeline = compile_cached(prog, cache=cold)
        assert cold.hits == 1
        assert pipeline.codegen_version == CODEGEN_VERSION
        with telemetry.scoped(enabled=True) as reg:
            sim = PipelineSimulator(
                pipeline, options=SimOptions(engine="codegen"))
            sim.run_packets([toy_counter.packet_for_key(1)])
            assert _recompiles(reg, pipeline) == 0

    def test_cache_key_tracks_codegen_version(self, monkeypatch):
        # an emitter bump must invalidate cached pipelines: their pickled
        # source is stale, and serving it would recompile on every "hit"
        from repro.core.cache import cache_key
        from repro.hwsim import codegen

        prog = toy_counter.build()
        before = cache_key(prog)
        monkeypatch.setattr(codegen, "CODEGEN_VERSION",
                            codegen.CODEGEN_VERSION + 1)
        assert cache_key(prog) != before

    def test_module_cache_shared_across_simulators(self):
        pipeline = compile_program(firewall.build())
        clone = pickle.loads(pickle.dumps(pipeline))
        # same source digest -> the exec()d namespace is shared, even
        # across distinct pipeline objects
        assert load_pipeline_module(pipeline) is load_pipeline_module(clone)

    def test_write_debug_source(self, tmp_path):
        pipeline = compile_program(firewall.build())
        path = write_debug_source(pipeline, str(tmp_path / "dbg"))
        assert Path(path).read_text() == pipeline.codegen_source


class TestStreamPath:
    def test_stream_emitted_only_when_hazard_free(self):
        # firewall: no flush plans, no order-sensitive helpers
        fw = generate_pipeline_source(compile_program(firewall.build()))
        assert "_STREAM = _stream" in fw
        # leaky bucket calls bpf_ktime_get_ns: packets must observe the
        # clock in injection order, which the straight-line path breaks
        lb = generate_pipeline_source(compile_program(leaky_bucket.build()))
        assert "_STREAM = None" in lb

    def test_simulator_binds_stream_function(self):
        fw = PipelineSimulator(compile_program(firewall.build()),
                               options=SimOptions(engine="codegen"))
        lb = PipelineSimulator(compile_program(leaky_bucket.build()),
                               options=SimOptions(engine="codegen"))
        assert fw._stream_fn is not None
        assert lb._stream_fn is None

    def test_stream_matches_cycle_loop(self):
        # telemetry forces the generated cycle loop (per-cycle observers
        # need every cycle to happen); the straight-line path must agree
        # with it on every record field and on the total cycle count
        build, setup, frames = APP_CASES["firewall"]
        program = build()
        pipeline = compile_program(program)
        frames = frames * 10

        def run(**kw):
            from repro.ebpf.maps import MapSet

            maps = MapSet(program.maps)
            setup(maps)
            sim = PipelineSimulator(
                pipeline, maps=maps,
                options=SimOptions(engine="codegen", keep_records=True, **kw),
            )
            return sim.run_packets(list(frames))

        stream, loop = run(), run(telemetry=True)
        assert stream.metrics is None and loop.metrics is not None
        assert stream.cycles == loop.cycles
        assert stream.action_counts == loop.action_counts
        assert [
            (r.pid, r.action, bytes(r.data), r.arrival_cycle,
             r.inject_cycle, r.exit_cycle, r.restarts)
            for r in stream.records
        ] == [
            (r.pid, r.action, bytes(r.data), r.arrival_cycle,
             r.inject_cycle, r.exit_cycle, r.restarts)
            for r in loop.records
        ]


class TestParallelReuse:
    def test_parallel_workers_share_generated_source(self):
        # the parent generates once pre-fork; worker results must match a
        # single-queue codegen run (same engine in every process)
        from repro.ebpf.maps import MapSet
        from repro.hwsim import ParallelPipelineSimulator

        build, setup, frames = APP_CASES["firewall"]
        program = build()
        pipeline = compile_program(program)
        frames = frames * 25

        maps = MapSet(program.maps)
        setup(maps)
        single = PipelineSimulator(
            pipeline, maps=maps,
            options=SimOptions(engine="codegen", keep_records=False),
        ).run_packets(list(frames))

        maps = MapSet(program.maps)
        setup(maps)
        par = ParallelPipelineSimulator(
            pipeline, maps=maps,
            options=SimOptions(engine="codegen", keep_records=False),
            workers=2,
        ).run_stream(list(frames))
        assert par.report.action_counts == single.action_counts
        assert par.report.packets_out == single.packets_out

"""Property-based differential testing of random MAP-USING programs.

The flagship equivalence property of ``test_property.py`` covers
registers/stack/packet; this module adds randomly generated programs that
exercise the hazard machinery: array-map lookups with null checks,
atomic counters, and non-atomic read-modify-write sequences — run
back-to-back so WAR buffers and Flush Evaluation Blocks are active.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import compile_program
from repro.ebpf.builder import ProgramBuilder
from repro.ebpf.verifier import verify
from repro.hwsim import run_differential

PACKET_DEPTH = 32


@st.composite
def map_programs(draw):
    """A program with 1-2 array maps, doing per-packet:

    * a key derived from a packet byte (bounded to the map size),
    * a lookup + null check,
    * then either an atomic add, a plain RMW (load, ALU, store), or a
      second lookup of a different key — in random order across maps.
    """
    b = ProgramBuilder("randmap")
    n_maps = draw(st.integers(min_value=1, max_value=2))
    entries = draw(st.sampled_from([1, 2, 4]))
    map_names = []
    for m in range(n_maps):
        name = f"m{m}"
        b.add_map(name, "array", key_size=4, value_size=8, max_entries=entries)
        map_names.append(name)

    # prologue
    b.load("u32", 7, 1, 4)
    b.load("u32", 6, 1, 0)
    b.mov(2, 6)
    b.alu_imm("+", 2, PACKET_DEPTH)
    b.jmp_reg(">", 2, 7, "drop")

    n_ops = draw(st.integers(min_value=1, max_value=3))
    ops = draw(st.lists(
        st.tuples(
            st.sampled_from(map_names),
            st.sampled_from(["atomic", "rmw", "lookup_only"]),
            st.integers(min_value=0, max_value=PACKET_DEPTH - 1),  # key byte
            st.integers(min_value=1, max_value=9),  # delta
        ),
        min_size=n_ops, max_size=n_ops,
    ))

    for i, (map_name, kind, key_off, delta) in enumerate(ops):
        # key = packet[key_off] % entries, built on the stack
        b.load("u8", 2, 6, key_off)
        b.alu_imm("&", 2, entries - 1)
        b.store("u32", 10, 2, -4)
        b.ld_map(1, map_name)
        b.mov(2, 10)
        b.alu_imm("+", 2, -4)
        b.call(1)
        b.jmp_imm("==", 0, 0, f"skip_{i}")
        if kind == "atomic":
            b.mov_imm(2, delta)
            b.atomic_add("u64", 0, 2, 0)
        elif kind == "rmw":
            b.load("u64", 3, 0, 0)
            b.alu_imm("+", 3, delta)
            b.store("u64", 0, 3, 0)
        else:
            b.load("u64", 8, 0, 0)  # value read feeding nothing further
        b.label(f"skip_{i}")

    b.mov_imm(0, 3)
    b.exit()
    b.label("drop")
    b.mov_imm(0, 1)
    b.exit()
    return b.build(), ops


@st.composite
def packet_batches(draw):
    n = draw(st.integers(min_value=1, max_value=10))
    frames = []
    for _ in range(n):
        # small byte alphabet so packets frequently share map keys
        body = draw(st.lists(st.integers(min_value=0, max_value=3),
                             min_size=PACKET_DEPTH, max_size=PACKET_DEPTH))
        frames.append(bytes(body) + bytes(64 - PACKET_DEPTH))
    return frames


def _has_interleaving_risk(ops) -> bool:
    """Programs mixing atomics with flushable (RMW/read) map accesses —
    on any map — relax sequential equality under pipelining: a flush can
    force re-execution of (or keep stale state around) an already-applied
    atomic, exactly as the paper's hardware would (§4.1.2, Appendix A.2).
    Those runs check per-packet actions only."""
    kinds = {kind for _map, kind, _k, _d in ops}
    return "atomic" in kinds and len(kinds) > 1


class TestRandomMapPrograms:
    @settings(max_examples=50, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(prog_ops=map_programs(), frames=packet_batches())
    def test_line_rate_equivalence(self, prog_ops, frames):
        program, ops = prog_ops
        verify(program)
        result = run_differential(program, frames)
        if _has_interleaving_risk(ops):
            bad = [m for m in result.mismatches
                   if m.index >= 0 and m.what == "action"]
            assert not bad, bad
        else:
            result.raise_on_mismatch()

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(prog_ops=map_programs(), frames=packet_batches())
    def test_spaced_out_always_identical(self, prog_ops, frames):
        # with no pipeline overlap even mixed atomic patterns match exactly
        program, _ops = prog_ops
        run_differential(program, frames, gap=80).raise_on_mismatch()

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(prog_ops=map_programs())
    def test_hazard_plans_are_consistent(self, prog_ops):
        program, _ops = prog_ops
        pipeline = compile_program(program)
        for plan in pipeline.map_hazards.values():
            for fb in plan.flush_blocks:
                assert fb.write_stage > fb.read_stage
            if plan.war_buffer_depth:
                assert plan.read_stages and plan.write_stages
                assert min(plan.write_stages) < max(plan.read_stages)

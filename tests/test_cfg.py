"""CFG construction tests."""

import pytest

from repro.core.cfg import CfgError, build_cfg, reachable_blocks
from repro.ebpf.asm import assemble_program


def cfg_of(source: str):
    return build_cfg(assemble_program(source))


class TestBasicBlocks:
    def test_straight_line_is_one_block(self):
        cfg = cfg_of("r0 = 1\nr0 += 1\nexit")
        assert len(cfg.blocks) == 1
        assert len(cfg.blocks[0]) == 3

    def test_branch_splits_blocks(self):
        cfg = cfg_of(
            """
            r0 = 1
            if r0 == 1 goto yes
            r0 = 2
            exit
        yes:
            r0 = 3
            exit
        """
        )
        assert len(cfg.blocks) == 3
        entry = cfg.blocks[0]
        assert {kind for _, kind in entry.succs} == {"taken", "fall"}

    def test_jump_target_starts_block(self):
        cfg = cfg_of("goto out\nout: r0 = 1\nexit")
        assert len(cfg.blocks) == 2
        assert cfg.blocks[0].succs == [(1, "jump")]

    def test_block_of_insn(self):
        cfg = cfg_of("r0 = 1\nif r0 == 1 goto +1\nr0 = 2\nexit")
        assert cfg.block_of_insn[0] == 0
        assert cfg.block_for(2).block_id == 1

    def test_preds_recorded(self):
        cfg = cfg_of(
            """
            if r1 == 0 goto a
            r0 = 1
            goto out
        a:
            r0 = 2
        out:
            exit
        """
        )
        out_block = cfg.block_for(len(cfg.program.instructions) - 1)
        assert len(out_block.preds) == 2


class TestTopoOrder:
    def test_diamond_order(self):
        cfg = cfg_of(
            """
            if r1 == 0 goto a
            r0 = 1
            goto out
        a:
            r0 = 2
        out:
            exit
        """
        )
        order = cfg.topo_order
        # entry first, merge block last among reachable ones
        assert order[0] == 0
        merge = cfg.block_for(len(cfg.program.instructions) - 1).block_id
        assert order.index(merge) > order.index(0)

    def test_cycle_detected(self):
        from repro.ebpf import isa
        from repro.ebpf.isa import Program

        prog = Program([
            isa.mov64_imm(isa.R0, 0),
            isa.jump_imm(isa.BPF_JEQ, isa.R0, 0, -1),  # self loop-ish backward
            isa.exit_(),
        ])
        with pytest.raises(CfgError, match="cycle"):
            build_cfg(prog)

    def test_slot_aware_edges(self):
        # jump over a two-slot ld_imm64
        cfg = cfg_of("goto out\nr1 = 5 ll\nout: r0 = 1\nexit")
        assert cfg.blocks[0].succs[0][0] == cfg.block_for(2).block_id


class TestReachability:
    def test_unreachable_block_found(self):
        cfg = cfg_of("r0 = 1\ngoto out\nr0 = 2\nout: exit")
        reachable = reachable_blocks(cfg)
        dead = cfg.block_for(2).block_id
        assert dead not in reachable

    def test_edge_kind_lookup(self):
        cfg = cfg_of("if r1 == 0 goto +1\nexit\nexit")
        taken = cfg.blocks[0].succs[0][0]
        assert cfg.edge_kind(0, taken) == "taken"
        with pytest.raises(CfgError):
            cfg.edge_kind(0, 99)

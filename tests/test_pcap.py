"""pcap reader/writer tests."""

import struct

import pytest

from repro.net.packet import udp_packet
from repro.net.pcap import (
    PcapError,
    export_trace,
    import_arrivals,
    read_pcap,
    write_pcap,
)
from repro.net.traces import caida_like


class TestRoundTrip:
    def test_write_read(self, tmp_path):
        path = tmp_path / "t.pcap"
        frames = [(i * 1000.0, udp_packet(sport=1000 + i, size=64))
                  for i in range(10)]
        assert write_pcap(path, frames) == 10
        back = list(read_pcap(path))
        assert len(back) == 10
        for (t_in, f_in), (t_out, f_out) in zip(frames, back):
            assert f_out == f_in
            assert abs(t_out - t_in) < 1000  # microsecond resolution

    def test_empty_file(self, tmp_path):
        path = tmp_path / "e.pcap"
        write_pcap(path, [])
        assert list(read_pcap(path)) == []

    def test_big_endian_read(self, tmp_path):
        path = tmp_path / "be.pcap"
        frame = b"\x01\x02\x03\x04"
        with open(path, "wb") as fh:
            fh.write(struct.pack(">IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 1))
            fh.write(struct.pack(">IIII", 1, 500, len(frame), len(frame)))
            fh.write(frame)
        records = list(read_pcap(path))
        assert records == [(1_000_500_000, frame)]


class TestErrors:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.pcap"
        path.write_bytes(b"\x00" * 24)
        with pytest.raises(PcapError, match="magic"):
            list(read_pcap(path))

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "short.pcap"
        path.write_bytes(b"\xd4\xc3\xb2\xa1")
        with pytest.raises(PcapError, match="truncated"):
            list(read_pcap(path))

    def test_truncated_record(self, tmp_path):
        path = tmp_path / "trunc.pcap"
        write_pcap(path, [(0.0, b"\x01" * 20)])
        data = path.read_bytes()
        path.write_bytes(data[:-5])
        with pytest.raises(PcapError, match="truncated"):
            list(read_pcap(path))

    def test_wrong_linktype(self, tmp_path):
        path = tmp_path / "lt.pcap"
        with open(path, "wb") as fh:
            fh.write(struct.pack("<IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 101))
        with pytest.raises(PcapError, match="link type"):
            list(read_pcap(path))


class TestTraceInterop:
    def test_export_then_replay(self, tmp_path):
        from repro.apps import icmp_echo
        from repro.core import compile_program
        from repro.hwsim import PipelineSimulator

        trace = caida_like(n_packets=200)
        path = tmp_path / "caida.pcap"
        assert export_trace(trace, path) == 200
        arrivals = import_arrivals(path)
        assert len(arrivals) == 200
        cycles = [c for c, _ in arrivals]
        assert cycles == sorted(cycles) and cycles[0] == 0
        # the arrivals drive the simulator directly
        pipe = compile_program(icmp_echo.build())
        report = PipelineSimulator(pipe).run(iter(arrivals))
        assert report.packets_out == 200

    def test_import_empty(self, tmp_path):
        path = tmp_path / "none.pcap"
        write_pcap(path, [])
        assert import_arrivals(path) == []

"""Program builder DSL tests."""

import pytest

from repro.ebpf import isa
from repro.ebpf.builder import BuildError, ProgramBuilder
from repro.ebpf.vm import run_program
from repro.ebpf.xdp import XdpAction

PKT = bytes(range(64))


class TestEmission:
    def test_simple_program(self):
        b = ProgramBuilder("t")
        b.mov_imm(0, 2).exit()
        prog = b.build()
        assert len(prog.instructions) == 2
        assert run_program(prog, PKT).action == XdpAction.PASS

    def test_alu_helpers(self):
        b = ProgramBuilder()
        b.mov_imm(0, 10)
        b.alu_imm("-", 0, 8)
        b.exit()
        assert run_program(b.build(), PKT).action == XdpAction.PASS

    def test_alu32(self):
        b = ProgramBuilder()
        b.mov_imm(0, -1)
        b.alu_imm("+", 0, 3, width=32)
        b.exit()
        assert run_program(b.build(), PKT).action == XdpAction.PASS  # 2

    def test_memory_ops(self):
        b = ProgramBuilder()
        b.mov_imm(2, 0x55)
        b.store("u8", 10, 2, -1)
        b.load("u8", 0, 10, -1)
        b.alu_imm("-", 0, 0x53)
        b.exit()
        assert run_program(b.build(), PKT).action == XdpAction.PASS

    def test_store_imm(self):
        b = ProgramBuilder()
        b.store_imm("u32", 10, -4, 2)
        b.load("u32", 0, 10, -4)
        b.exit()
        assert run_program(b.build(), PKT).action == XdpAction.PASS

    def test_neg_and_endian(self):
        b = ProgramBuilder()
        b.mov_imm(0, 0x0200)
        b.endian(0, 16, to_big=True)
        b.exit()
        assert run_program(b.build(), PKT).action == XdpAction.PASS  # 0x0002

    def test_ld_imm64(self):
        b = ProgramBuilder()
        b.ld_imm64(0, 0x1_0000_0002)
        b.alu_imm("&", 0, 0xFF)
        b.exit()
        assert run_program(b.build(), PKT).action == XdpAction.PASS

    def test_bad_size_rejected(self):
        b = ProgramBuilder()
        with pytest.raises(BuildError, match="unknown size"):
            b.load("u128", 0, 1, 0)


class TestLabels:
    def test_forward_jump(self):
        b = ProgramBuilder()
        b.mov_imm(0, 1)
        b.jmp("out")
        b.mov_imm(0, 0)
        b.label("out")
        b.exit()
        assert run_program(b.build(), PKT).action == XdpAction.DROP

    def test_conditional_jump(self):
        b = ProgramBuilder()
        b.mov_imm(2, 7)
        b.mov_imm(0, 1)
        b.jmp_imm("==", 2, 7, "yes")
        b.exit()
        b.label("yes")
        b.mov_imm(0, 2)
        b.exit()
        assert run_program(b.build(), PKT).action == XdpAction.PASS

    def test_reg_comparison(self):
        b = ProgramBuilder()
        b.mov_imm(2, 3).mov_imm(3, 4).mov_imm(0, 1)
        b.jmp_reg("<", 2, 3, "yes")
        b.exit()
        b.label("yes")
        b.mov_imm(0, 2).exit()
        assert run_program(b.build(), PKT).action == XdpAction.PASS

    def test_label_at_end(self):
        b = ProgramBuilder()
        b.mov_imm(0, 2)
        b.jmp("end")
        b.label("end")
        b.exit()
        assert run_program(b.build(), PKT).action == XdpAction.PASS

    def test_undefined_label(self):
        b = ProgramBuilder()
        b.mov_imm(0, 2)
        b.jmp("nowhere")
        b.exit()
        with pytest.raises(BuildError, match="undefined label"):
            b.build()

    def test_duplicate_label(self):
        b = ProgramBuilder()
        b.label("x")
        with pytest.raises(BuildError, match="duplicate label"):
            b.label("x")

    def test_offsets_count_slots(self):
        b = ProgramBuilder()
        b.jmp("end")
        b.ld_imm64(1, 42)  # two slots to jump over
        b.label("end")
        b.mov_imm(0, 2)
        b.exit()
        prog = b.build()
        assert prog.instructions[0].off == 2
        assert run_program(prog, PKT).action == XdpAction.PASS


class TestMaps:
    def test_map_declaration_and_call(self):
        b = ProgramBuilder()
        b.add_map("m", "array", key_size=4, value_size=8, max_entries=2)
        b.store_imm("u32", 10, -4, 0)
        b.ld_map(1, "m")
        b.mov(2, 10)
        b.alu_imm("+", 2, -4)
        b.call("bpf_map_lookup_elem")
        b.jmp_imm("==", 0, 0, "out")
        b.mov_imm(2, 1)
        b.atomic_add("u64", 0, 2, 0)
        b.label("out")
        b.mov_imm(0, 2)
        b.exit()
        prog = b.build()
        from repro.ebpf.maps import MapSet

        maps = MapSet(prog.maps)
        run_program(prog, PKT, maps=maps)
        value = maps.by_name("m").lookup(bytes(4))
        assert int.from_bytes(value, "little") == 1

    def test_unknown_map(self):
        b = ProgramBuilder()
        with pytest.raises(BuildError, match="unknown map"):
            b.ld_map(1, "ghost")

    def test_duplicate_map(self):
        b = ProgramBuilder()
        b.add_map("m", "array", 4, 8, 1)
        with pytest.raises(BuildError, match="duplicate map"):
            b.add_map("m", "hash", 4, 8, 1)

    def test_atomic_fetch(self):
        b = ProgramBuilder()
        b.add_map("m", "array", 4, 8, 1)
        b.store_imm("u32", 10, -4, 0)
        b.ld_map(1, "m")
        b.mov(2, 10)
        b.alu_imm("+", 2, -4)
        b.call(1)
        b.jmp_imm("==", 0, 0, "out")
        b.mov_imm(2, 5)
        b.atomic_add("u64", 0, 2, 0, fetch=True)
        b.label("out")
        b.mov_imm(0, 2)
        b.exit()
        prog = b.build()
        fetch_insn = next(i for i in prog.instructions if i.is_atomic)
        assert fetch_insn.imm & isa.BPF_FETCH

"""XDP context / address-space model tests."""

import struct

import pytest

from repro.ebpf.xdp import (
    AddressSpace,
    XDP_MD_DATA,
    XDP_MD_DATA_END,
    XdpAction,
    XdpContext,
    XdpResult,
)


class TestAddressSpace:
    def test_regions_disjoint(self):
        addrs = {
            "ctx": AddressSpace.CTX_BASE,
            "packet": AddressSpace.PACKET_BASE + AddressSpace.PACKET_HEADROOM,
            "stack": AddressSpace.STACK_BASE,
            "map": AddressSpace.map_value_addr(1, 0),
        }
        assert AddressSpace.is_ctx(addrs["ctx"])
        assert AddressSpace.is_packet(addrs["packet"])
        assert AddressSpace.is_stack(addrs["stack"])
        assert AddressSpace.is_map_value(addrs["map"])
        # each address belongs to exactly one region
        for name, addr in addrs.items():
            count = sum([
                AddressSpace.is_ctx(addr),
                AddressSpace.is_packet(addr),
                AddressSpace.is_stack(addr),
                AddressSpace.is_map_value(addr),
            ])
            assert count == 1, name

    def test_stack_top_is_r10(self):
        assert AddressSpace.stack_top() == AddressSpace.STACK_BASE + 512

    def test_map_window_roundtrip(self):
        addr = AddressSpace.map_value_addr(3, 1234)
        assert AddressSpace.map_fd_of(addr) == 3
        assert AddressSpace.map_offset_of(addr) == 1234

    def test_map_fd_of_non_map_rejected(self):
        with pytest.raises(ValueError):
            AddressSpace.map_fd_of(AddressSpace.CTX_BASE)

    def test_packet_addresses_fit_u32(self):
        # xdp_md.data is a u32 field
        assert AddressSpace.PACKET_BASE + AddressSpace.PACKET_HEADROOM + 9000 < 2 ** 32


class TestXdpContext:
    def test_ctx_bytes_layout(self):
        ctx = XdpContext(bytearray(100), ingress_ifindex=5, rx_queue_index=2)
        raw = ctx.ctx_bytes()
        data, data_end = struct.unpack_from("<II", raw, XDP_MD_DATA)
        assert data_end - data == 100
        assert struct.unpack_from("<I", raw, 12)[0] == 5

    def test_adjust_head_grow(self):
        ctx = XdpContext(bytearray(b"abcd"))
        old_data = ctx.data
        assert ctx.adjust_head(-4)
        assert ctx.data == old_data - 4
        assert bytes(ctx.packet) == bytes(4) + b"abcd"

    def test_adjust_head_shrink(self):
        ctx = XdpContext(bytearray(b"abcdef"))
        assert ctx.adjust_head(2)
        assert bytes(ctx.packet) == b"cdef"

    def test_adjust_head_headroom_limit(self):
        ctx = XdpContext(bytearray(4))
        assert not ctx.adjust_head(-(AddressSpace.PACKET_HEADROOM + 1))
        assert len(ctx.packet) == 4

    def test_adjust_head_cannot_consume_packet(self):
        ctx = XdpContext(bytearray(4))
        assert not ctx.adjust_head(4)

    def test_cumulative_adjustments(self):
        ctx = XdpContext(bytearray(10))
        assert ctx.adjust_head(-10)
        assert ctx.adjust_head(5)
        assert len(ctx.packet) == 15
        assert ctx.head_adjust == -5


class TestXdpResult:
    def test_forwarded_actions(self):
        for action in (XdpAction.TX, XdpAction.PASS, XdpAction.REDIRECT):
            assert XdpResult(action, b"").forwarded
        for action in (XdpAction.DROP, XdpAction.ABORTED):
            assert not XdpResult(action, b"").forwarded

    def test_action_values_match_linux(self):
        assert XdpAction.ABORTED == 0
        assert XdpAction.DROP == 1
        assert XdpAction.PASS == 2
        assert XdpAction.TX == 3
        assert XdpAction.REDIRECT == 4

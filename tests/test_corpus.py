"""Conformance corpus: every tricky program verifies, compiles, and the
pipeline matches the VM over a battery of packets.

Each ``tests/corpus/*.ebpf`` file targets a distinct hard spot of the
compiler: 32-bit signed branches, byte-swap chains, deep control nesting,
mixed-width stack spills, multi-map interleavings, every atomic flavour,
packet resizing helpers, bounded loops, division edge cases.
"""

import pathlib

import pytest

from repro.cli import load_program
from repro.core import CompileOptions, compile_program
from repro.ebpf.verifier import verify
from repro.hwsim import run_differential

CORPUS = sorted((pathlib.Path(__file__).parent / "corpus").glob("*.ebpf"))

# A packet battery that exercises byte values across the range, short
# frames (implicit drops), and enough length for the resize programs.
PACKETS = [
    bytes(range(64)),
    bytes(64),
    bytes([0xFF] * 64),
    bytes([3, 0] + [0x80] * 62),
    bytes([0, 7] + [(i % 56) + 200 for i in range(62)]),
    bytes(range(48)),  # short for some corpus members
    bytes(8),
    b"",
]


# Programs whose per-packet atomic *sequences* are non-commutative
# (or/and/xor/xchg chains): under pipelining those interleave across
# packets exactly as on the real hardware (the §4.1.2 relaxation), so the
# sequential-equality check only holds with packets spaced apart.
NEEDS_SPACING = {"atomic_variants"}


def gap_for(path) -> int:
    return 40 if path.stem in NEEDS_SPACING else 1


def corpus_ids(path):
    return path.stem


@pytest.mark.parametrize("path", CORPUS, ids=corpus_ids)
class TestCorpus:
    def test_verifies(self, path):
        program = load_program(str(path))
        if program.name == "counted_loop":
            pytest.skip("verified after unrolling")
        verify(program)

    def test_compiles(self, path):
        pipeline = compile_program(load_program(str(path)))
        assert pipeline.n_stages > 0

    def test_pipeline_matches_vm(self, path):
        program = load_program(str(path))
        run_differential(program, PACKETS, gap=gap_for(path)).raise_on_mismatch()

    def test_codegen_matches_vm(self, path):
        # the generated-source backend over the same battery: corpus
        # members hit the folding/elision paths app code doesn't (packet
        # resizing, atomics, division corners, deep nesting)
        program = load_program(str(path))
        result = run_differential(program, PACKETS, gap=gap_for(path),
                                  engine="codegen")
        result.raise_on_mismatch()

    def test_pipeline_matches_vm_line_rate_repeats(self, path):
        # back-to-back duplicates stress the hazard machinery
        program = load_program(str(path))
        frames = [PACKETS[0]] * 12 + [PACKETS[3]] * 12
        result = run_differential(program, frames, gap=gap_for(path))
        result.raise_on_mismatch()

    def test_line_rate_actions_match_even_for_atomics(self, path):
        # even where interleaved atomics relax map-state equality, the
        # per-packet verdicts and bytes still match
        program = load_program(str(path))
        result = run_differential(program, [PACKETS[0]] * 10)
        packet_mismatches = [m for m in result.mismatches if m.index >= 0
                             and m.what == "action"]
        assert not packet_mismatches

    def test_unoptimised_build_matches_too(self, path):
        program = load_program(str(path))
        options = CompileOptions(
            enable_ilp=False, enable_fusion=False, enable_pruning=False,
        )
        run_differential(
            program, PACKETS[:5], compile_options=options, gap=gap_for(path)
        ).raise_on_mismatch()


def test_corpus_is_nontrivial():
    assert len(CORPUS) >= 10

"""VHDL backend, resource model, and NIC shell tests."""

import pytest

from repro.apps import EVALUATION_APPS, router, toy_counter
from repro.core import CompileOptions, compile_program
from repro.core.resources import (
    ALVEO_U50,
    CORUNDUM_SHELL,
    ResourceEstimate,
    estimate_resources,
)
from repro.core.vhdl import emit_vhdl
from repro.ebpf.maps import MapSet
from repro.hwsim import NicSystem, ShellConfig
from repro.net.packet import ipv4, mac, udp_packet


class TestVhdl:
    @pytest.fixture(scope="class")
    def vhdl(self):
        return emit_vhdl(compile_program(toy_counter.build()))

    def test_one_entity_per_stage_plus_blocks(self, vhdl):
        pipe = compile_program(toy_counter.build())
        stage_entities = vhdl.count("_stage_")
        assert vhdl.count("entity ") >= pipe.n_stages + len(pipe.map_hazards) + 1

    def test_map_block_emitted(self, vhdl):
        assert "toy_counter_map_1" in vhdl
        assert "host_req" in vhdl  # userspace map interface (§4.1)

    def test_async_fifos_for_shell_decoupling(self, vhdl):
        assert "async_fifo" in vhdl
        assert "pipe_clk" in vhdl and "shell_clk" in vhdl

    def test_state_port_width_matches_pruning(self, vhdl):
        from repro.core.vhdl import _layout_for, link_windows

        pipe = compile_program(toy_counter.build())
        windows = link_windows(pipe)
        bits = _layout_for(pipe.stages[0], windows[0]).total_bits
        assert f"std_logic_vector({bits - 1} downto 0)" in vhdl

    def test_atomic_port_present(self, vhdl):
        assert "ap_req" in vhdl  # the stage's dedicated atomic port

    def test_flush_machinery_when_needed(self):
        text = emit_vhdl(compile_program(router.build(use_atomic=False)))
        assert "Flush Evaluation Block" in text
        assert "flush_out" in text

    def test_all_apps_render(self):
        for mod in EVALUATION_APPS.values():
            text = emit_vhdl(compile_program(mod.build()))
            assert "architecture" in text and "end entity" in text

    def test_deterministic(self):
        a = emit_vhdl(compile_program(toy_counter.build()))
        b = emit_vhdl(compile_program(toy_counter.build()))
        assert a == b


class TestResources:
    def test_paper_utilisation_band(self):
        # "the generated pipelines use only 6.5%-13.3% of the FPGA"
        for name, mod in EVALUATION_APPS.items():
            est = estimate_resources(compile_program(mod.build()))
            assert 5.0 <= est.max_pct <= 15.0, f"{name}: {est.summary()}"

    def test_shell_included_by_default(self):
        pipe = compile_program(toy_counter.build())
        with_shell = estimate_resources(pipe)
        without = estimate_resources(pipe, include_shell=False)
        assert with_shell.luts - without.luts == CORUNDUM_SHELL.luts

    def test_pruning_ablation_direction(self):
        # §5.4: unpruned needs +46% LUT / +66% FF / +123% BRAM
        prog = toy_counter.build()
        pruned = estimate_resources(
            compile_program(prog), include_shell=False
        )
        unpruned = estimate_resources(
            compile_program(prog, CompileOptions(enable_pruning=False)),
            include_shell=False,
        )
        assert 1.15 < unpruned.luts / pruned.luts < 1.9
        assert 1.25 < unpruned.ffs / pruned.ffs < 2.2
        assert 1.4 < unpruned.bram36 / pruned.bram36 < 3.5

    def test_bigger_program_more_logic(self):
        small = estimate_resources(compile_program(toy_counter.build()),
                                   include_shell=False)
        big = estimate_resources(
            compile_program(EVALUATION_APPS["tunnel"].build()),
            include_shell=False,
        )
        assert big.luts > small.luts

    def test_percentages_derive_from_device(self):
        est = ResourceEstimate(luts=87_200, ffs=0, bram36=0, device=ALVEO_U50)
        assert est.lut_pct == pytest.approx(10.0)

    def test_addition(self):
        a = ResourceEstimate(1, 2, 3)
        b = ResourceEstimate(10, 20, 30)
        total = a + b
        assert (total.luts, total.ffs, total.bram36) == (11, 22, 33)

    def test_summary_renders(self):
        est = estimate_resources(compile_program(toy_counter.build()))
        assert "LUT" in est.summary() and "BRAM36" in est.summary()


class TestNicShell:
    def _system(self):
        prog = router.build()
        pipe = compile_program(prog)
        maps = MapSet(prog.maps)
        router.add_route(maps, ipv4("192.168.1.1"), mac("02:00:00:00:01:01"),
                         mac("02:00:00:00:01:02"), 3)
        return NicSystem(pipe, maps=maps)

    def test_line_rate_forwarding(self):
        nic = self._system()
        frames = [udp_packet(dst_ip="192.168.1.9", size=64)] * 2000
        report = nic.run_at_line_rate(frames)
        assert report.packets_out == 2000
        assert report.packets_dropped_queue == 0
        assert nic.achieved_mpps(report, 148.8) > 140

    def test_microsecond_latency(self):
        # Figure 9b: about 1 us end to end
        nic = self._system()
        report = nic.run_at_line_rate([udp_packet(dst_ip="192.168.1.9", size=64)] * 200)
        latency = nic.forwarding_latency_ns(report)
        assert 700 <= latency <= 1500

    def test_rate_limited_injection(self):
        nic = self._system()
        frames = [udp_packet(dst_ip="192.168.1.9", size=64)] * 200
        report = nic.run_at_rate(frames, offered_mpps=10.0)
        assert report.throughput_mpps == pytest.approx(10.0, rel=0.1)

    def test_trace_replay(self):
        from repro.net.traces import caida_like

        nic = self._system()
        trace = caida_like(n_packets=1500)
        report = nic.replay_trace(trace)
        assert report.packets_out == 1500
        assert report.packets_dropped_queue == 0

    def test_shell_latency_constant(self):
        cfg = ShellConfig()
        assert cfg.shell_latency_ns == 2 * cfg.mac_fifo_latency_ns


class TestReflash:
    def test_reflash_swaps_program(self):
        from repro.apps import icmp_echo, toy_counter
        from repro.core import compile_program
        from repro.hwsim import NicSystem

        nic = NicSystem(compile_program(toy_counter.build()))
        downtime = nic.reflash(compile_program(icmp_echo.build()))
        assert downtime > 0
        req = icmp_echo.echo_request()
        report = nic.run_at_line_rate([req])
        assert icmp_echo.is_valid_reply(report.records[0].data, req)

    def test_reflash_can_keep_pinned_maps(self):
        from repro.apps import dnat
        from repro.core import compile_program
        from repro.ebpf.maps import MapSet
        from repro.hwsim import NicSystem
        from repro.net.packet import parse_five_tuple, udp_packet

        maps = MapSet(dnat.build().maps)
        nic = NicSystem(compile_program(dnat.build()), maps=maps)
        out = udp_packet(src_ip="172.16.0.9", dst_ip="8.8.8.8",
                         sport=4444, dport=53, size=64)
        translated = parse_five_tuple(
            nic.run_at_line_rate([out]).records[0].data
        )
        # reflash to the reverse program, keeping the pinned maps
        nic.reflash(compile_program(dnat.build_reverse()), maps=maps)
        reply = udp_packet(src_ip="8.8.8.8", dst_ip=translated.src_ip,
                           sport=53, dport=translated.sport, size=64)
        back = parse_five_tuple(nic.run_at_line_rate([reply]).records[0].data)
        assert back.dport == 4444


class TestDeviceVariants:
    def test_alveo_u280(self):
        from repro.apps import firewall
        from repro.core import compile_program
        from repro.core.resources import DeviceSpec, estimate_resources

        u280 = DeviceSpec("xilinx-alveo-u280", luts=1_304_000,
                          ffs=2_607_000, bram36=2016)
        est = estimate_resources(compile_program(firewall.build()),
                                 device=u280)
        # same absolute cost, lower relative utilisation on the bigger part
        baseline = estimate_resources(compile_program(firewall.build()))
        assert est.luts == baseline.luts
        assert est.lut_pct < baseline.lut_pct


class TestTinyPrograms:
    def test_two_instruction_program(self):
        from repro.core import compile_program
        from repro.ebpf.asm import assemble_program
        from repro.hwsim import run_differential

        prog = assemble_program("r0 = 2\nexit")
        pipe = compile_program(prog)
        assert pipe.n_stages == 2  # mov, then the verdict latch
        run_differential(prog, [bytes(64)] * 5).raise_on_mismatch()

    def test_empty_frame_battery(self):
        from repro.apps import toy_counter
        from repro.hwsim import run_differential

        run_differential(toy_counter.build(), [b""]).raise_on_mismatch()

    def test_zero_frames(self):
        from repro.apps import toy_counter
        from repro.hwsim import run_differential

        result = run_differential(toy_counter.build(), [])
        assert result.ok and result.packets == 0


class TestVhdlGolden:
    """Golden-file snapshots of emitted designs.

    Any change to the emitter shows up as a full-text diff against
    ``tests/corpus/vhdl/``; regenerate intentionally with
    ``pytest --update-golden``.
    """

    APPS = ["toy_counter", "firewall"]

    @pytest.mark.parametrize("app", APPS)
    def test_snapshot(self, app, request):
        import importlib
        from pathlib import Path

        mod = importlib.import_module(f"repro.apps.{app}")
        text = emit_vhdl(compile_program(mod.build()))
        path = Path(__file__).parent / "corpus" / "vhdl" / f"{app}.vhd"
        if request.config.getoption("--update-golden"):
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text)
            pytest.skip(f"golden file {path.name} regenerated")
        assert path.exists(), (
            f"missing golden file {path}; run pytest --update-golden"
        )
        assert text == path.read_text(), (
            f"emitted VHDL for {app} diverged from {path.name}; if the "
            "change is intentional run pytest --update-golden"
        )


class TestEmitterRegressions:
    """Named regressions for emission defects the RTL subsystem surfaced.

    Each test pins a class of bug the original emitter had; all of them
    are caught structurally by parse+elaborate (undeclared signals,
    identifier collisions, port-width mismatches, dangling instances)
    or behaviourally by the three-way differential.
    """

    def _elaborate(self, program):
        from repro.rtl import parse_vhdl
        from repro.rtl.elab import elaborate
        from repro.rtl.primitives import RtlContext, primitive_factory
        from repro.rtl.sim import find_top
        from repro.ebpf.maps import MapSet

        text = emit_vhdl(compile_program(program))
        design = parse_vhdl(text)
        context = RtlContext(MapSet(program.maps))
        return elaborate(design, find_top(text), primitive_factory, context)

    def test_top_references_only_declared_signals(self):
        # regression: the top once referenced v{i}/e{i}/frame{i} nets that
        # were never declared; elaboration rejects undeclared names
        self._elaborate(toy_counter.build())

    def test_every_app_elaborates(self):
        # covers identifier collisions, port-width mismatches, and
        # unconnected ports across the whole evaluation suite
        for mod in EVALUATION_APPS.values():
            self._elaborate(mod.build())

    def test_fall_through_terminators_enable_successors(self):
        # regression: conditional-branch fall-through once left the
        # successor block disabled, silently killing the else-path
        from repro.ebpf.asm import assemble_program
        from repro.rtl.diff import run_three_way

        prog = assemble_program(
            """
            r0 = 1
            if r1 > 4096 goto out
            r0 = 2
            out:
            exit
            """
        )
        run_three_way(prog, [b"\x00" * 32] * 3).raise_on_mismatch()

    def test_exit_in_non_final_stage_sets_verdict(self):
        # regression: an early exit once targeted an undeclared
        # verdict register instead of the state vector's verdict field
        from repro.rtl.diff import run_three_way

        frames = [toy_counter.packet_for_key(0), b"\x00" * 4]
        run_three_way(toy_counter.build(), frames).raise_on_mismatch()

    def test_alu32_and_byteswap_emit_and_match(self):
        # regression: ALU32/END ops were once unimplemented placeholders
        from repro.ebpf.asm import assemble_program
        from repro.rtl.diff import run_three_way

        prog = assemble_program(
            """
            w0 = 0x11223344
            w0 += 0x10
            r0 = be16 r0
            r0 &= 0xffff
            exit
            """
        )
        run_three_way(prog, [b"\x00" * 16]).raise_on_mismatch()

    def test_signal_names_never_collide(self):
        # regression: generated names could collide with fixed port
        # names; the claim table suffixes _u{k} deterministically
        from repro.core.vhdl import _Names

        names = _Names()
        first = names.claim("state_in")
        second = names.claim("state_in")
        assert first != second
        assert first not in ("", second)

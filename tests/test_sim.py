"""Pipeline simulator behaviors: predication, drops, hazards, queueing."""

import pytest

from repro.core import CompileOptions, compile_program
from repro.ebpf.asm import assemble_program
from repro.ebpf.isa import MapSpec
from repro.ebpf.maps import MapSet
from repro.ebpf.xdp import XdpAction
from repro.hwsim import PipelineSimulator, SimError, SimOptions

MAPS = {"m": MapSpec("m", "array", 4, 8, 4)}
PKT = bytes(range(64))


def simulate(source: str, frames, maps=None, gap=1, **simopts):
    prog = assemble_program(source, maps=maps)
    pipe = compile_program(prog)
    map_rt = MapSet(prog.maps)
    sim = PipelineSimulator(pipe, maps=map_rt, options=SimOptions(**simopts))
    report = sim.run_packets(list(frames), gap=gap)
    return report, map_rt


class TestBasics:
    def test_single_packet(self):
        rep, _ = simulate("r0 = 2\nexit", [PKT])
        assert rep.packets_out == 1
        assert rep.records[0].action == XdpAction.PASS

    def test_packet_order_preserved(self):
        rep, _ = simulate("r0 = 2\nexit", [PKT] * 20)
        pids = [r.pid for r in rep.records]
        assert pids == sorted(pids)

    def test_line_rate_throughput(self):
        rep, _ = simulate("r0 = 2\nexit", [PKT] * 500)
        assert rep.throughput_mpps > 200  # approaches 250 at scale

    def test_latency_equals_depth(self):
        rep, _ = simulate("r0 = 2\nr3 = 1\nr4 = 2\nexit", [PKT], gap=1)
        rec = rep.records[0]
        # traversal cycles ~ number of stages
        assert rec.pipeline_cycles >= 1

    def test_packet_rewrite_visible(self):
        source = """
            r6 = *(u32 *)(r1 + 0)
            *(u8 *)(r6 + 3) = 0x7E
            r0 = 3
            exit
        """
        rep, _ = simulate(source, [PKT])
        assert rep.records[0].data[3] == 0x7E

    def test_gap_spacing_slows_rate(self):
        fast, _ = simulate("r0 = 2\nexit", [PKT] * 50, gap=1)
        slow, _ = simulate("r0 = 2\nexit", [PKT] * 50, gap=10)
        assert slow.cycles > fast.cycles


class TestPredication:
    def test_disabled_block_ops_skipped(self):
        source = """
            r6 = *(u32 *)(r1 + 0)
            r2 = *(u8 *)(r6 + 0)
            if r2 == 1 goto mark
            goto out
        mark:
            *(u8 *)(r6 + 1) = 0xAA
        out:
            r0 = 2
            exit
        """
        taken = bytes([1]) + bytes(63)
        not_taken = bytes([0]) + bytes(63)
        rep, _ = simulate(source, [taken, not_taken])
        by_pid = {r.pid: r for r in rep.records}
        assert by_pid[0].data[1] == 0xAA
        assert by_pid[1].data[1] == 0x00

    def test_multiway_classification(self):
        from repro.apps import toy_counter

        prog = toy_counter.build()
        pipe = compile_program(prog)
        maps = MapSet(prog.maps)
        sim = PipelineSimulator(pipe, maps=maps)
        frames = [toy_counter.packet_for_key(k) for k in (0, 1, 2, 3) * 4]
        sim.run_packets(frames)
        stats = maps.by_name("stats")
        counts = [
            int.from_bytes(stats.lookup(i.to_bytes(4, "little")), "little")
            for i in range(4)
        ]
        assert counts == [4, 4, 4, 4]


class TestImplicitDrops:
    SOURCE = """
        r6 = *(u32 *)(r1 + 0)
        r0 = *(u32 *)(r6 + 60)
        r0 &= 0
        r0 += 2
        exit
    """

    def test_short_packet_dropped_on_oob_access(self):
        rep, _ = simulate(self.SOURCE, [bytes(10)])
        assert rep.records[0].action == XdpAction.DROP

    def test_valid_packet_not_dropped(self):
        rep, _ = simulate(self.SOURCE, [PKT])
        assert rep.records[0].action == XdpAction.PASS


class TestInputQueue:
    def test_overflow_drops_packets(self):
        # many-stage pipeline + tiny queue + burst arrivals
        source = "\n".join([f"r{2 + (i % 3)} = {i}" for i in range(30)]) + "\nr0 = 2\nexit"
        prog = assemble_program(source)
        pipe = compile_program(prog, CompileOptions(enable_ilp=False,
                                                    enable_fusion=False))
        sim = PipelineSimulator(pipe, options=SimOptions(input_queue_capacity=2))
        # all packets arrive at cycle 0
        report = sim.run((0, PKT) for _ in range(50))
        assert report.packets_dropped_queue > 0
        assert report.packets_in + report.packets_dropped_queue == 50

    def test_max_cycles_guard(self):
        prog = assemble_program("r0 = 2\nexit")
        pipe = compile_program(prog)
        sim = PipelineSimulator(pipe, options=SimOptions(max_cycles=1))
        with pytest.raises(SimError):
            sim.run_packets([PKT] * 10)


class TestHazards:
    RMW = """
        r2 = 0
        *(u32 *)(r10 - 4) = r2
        r1 = map[m]
        r2 = r10
        r2 += -4
        call 1
        if r0 == 0 goto out
        r2 = *(u64 *)(r0 + 0)
        r2 += 1
        *(u64 *)(r0 + 0) = r2
    out:
        r0 = 2
        exit
    """

    def test_flush_preserves_rmw_consistency(self):
        # back-to-back packets all incrementing the same counter through a
        # non-atomic read-modify-write: flushes must keep the total exact
        rep, maps = simulate(self.RMW, [PKT] * 40, maps=MAPS)
        assert rep.flush_events > 0
        value = int.from_bytes(maps.by_name("m").lookup(bytes(4)), "little")
        assert value == 40

    def test_spaced_packets_no_flush(self):
        rep, maps = simulate(self.RMW, [PKT] * 10, maps=MAPS, gap=40)
        assert rep.flush_events == 0
        value = int.from_bytes(maps.by_name("m").lookup(bytes(4)), "little")
        assert value == 10

    def test_flush_costs_cycles(self):
        fast, _ = simulate("r0 = 2\nexit", [PKT] * 40)
        hazard, _ = simulate(self.RMW, [PKT] * 40, maps=MAPS)
        assert hazard.cycles > fast.cycles
        assert hazard.squashed_packets > 0

    def test_atomic_variant_never_flushes(self):
        source = """
            r2 = 0
            *(u32 *)(r10 - 4) = r2
            r1 = map[m]
            r2 = r10
            r2 += -4
            call 1
            if r0 == 0 goto out
            r2 = 1
            lock *(u64 *)(r0 + 0) += r2
        out:
            r0 = 2
            exit
        """
        rep, maps = simulate(source, [PKT] * 40, maps=MAPS)
        assert rep.flush_events == 0
        value = int.from_bytes(maps.by_name("m").lookup(bytes(4)), "little")
        assert value == 40

    def test_restart_counter_recorded(self):
        rep, _ = simulate(self.RMW, [PKT] * 10, maps=MAPS)
        assert any(r.restarts > 0 for r in rep.records)


class TestWarBuffer:
    SOURCE = """
        r2 = 0
        *(u32 *)(r10 - 4) = r2
        r1 = map[m]
        r2 = r10
        r2 += -4
        call 1
        if r0 == 0 goto out
        r8 = r0
        r2 = 7
        *(u64 *)(r8 + 0) = r2
        r2 = 0
        *(u32 *)(r10 - 8) = r2
        r1 = map[m]
        r2 = r10
        r2 += -8
        call 1
        if r0 == 0 goto out
        r3 = *(u64 *)(r0 + 0)
        r6 = *(u32 *)(r1 + 0)
    out:
        r0 = 2
        exit
    """

    def test_own_write_forwarded_to_later_read(self):
        # A packet's early store must be visible to its own later lookup
        # even while the write sits in the WAR buffer.
        source = """
            r2 = 0
            *(u32 *)(r10 - 4) = r2
            r1 = map[m]
            r2 = r10
            r2 += -4
            call 1
            if r0 == 0 goto bad
            r8 = r0
            r2 = 7
            *(u64 *)(r8 + 0) = r2
            r2 = 0
            *(u32 *)(r10 - 8) = r2
            r1 = map[m]
            r2 = r10
            r2 += -8
            call 1
            if r0 == 0 goto bad
            r3 = *(u64 *)(r0 + 0)
            if r3 != 7 goto bad
            r0 = 2
            exit
        bad:
            r0 = 1
            exit
        """
        rep, maps = simulate(source, [PKT] * 5, maps=MAPS)
        assert all(r.action == XdpAction.PASS for r in rep.records)
        value = int.from_bytes(maps.by_name("m").lookup(bytes(4)), "little")
        assert value == 7


class TestHostInteraction:
    def test_host_write_mid_run_changes_verdicts(self):
        """§6: the host keeps writing maps while the data plane forwards."""
        from repro.apps import firewall
        from repro.core import compile_program
        from repro.net.packet import FiveTuple, ipv4, udp_packet

        prog = firewall.build()
        pipe = compile_program(prog)
        maps = MapSet(prog.maps)
        sim = PipelineSimulator(pipe, maps=maps)
        flow = FiveTuple(ipv4("10.0.0.1"), ipv4("10.0.0.2"), 17, 1111, 53)
        frame = udp_packet(src_ip=flow.src_ip, dst_ip=flow.dst_ip,
                           sport=flow.sport, dport=flow.dport, size=64)
        # install the flow from the host halfway through the stream
        sim.schedule_host_op(
            50, lambda m: firewall.allow_flow(m, flow)
        )
        report = sim.run((i * 2, frame) for i in range(60))
        actions = [r.action.name for r in sorted(report.records,
                                                 key=lambda r: r.pid)]
        assert actions[0] == "DROP"
        assert actions[-1] == "TX"
        assert "TX" in actions and "DROP" in actions

    def test_host_read_sees_live_counters(self):
        from repro.apps import toy_counter
        from repro.core import compile_program

        prog = toy_counter.build()
        pipe = compile_program(prog)
        maps = MapSet(prog.maps)
        sim = PipelineSimulator(pipe, maps=maps)
        seen = []
        sim.schedule_host_op(
            100,
            lambda m: seen.append(
                int.from_bytes(m.by_name("stats").lookup((1).to_bytes(4, "little")),
                               "little")
            ),
        )
        frames = [toy_counter.packet_for_key(1)] * 150
        sim.run_packets(frames)
        assert seen and 0 < seen[0] < 150  # a mid-run snapshot


class TestInterleavedRmwRegression:
    """Regression for two hypothesis-found bugs: a WAR-buffered store must
    still flush-check younger early readers, and restart snapshots must
    carry (not replay) pending writes."""

    def _program(self):
        from repro.ebpf.builder import ProgramBuilder

        b = ProgramBuilder("two_slot_rmw")
        b.add_map("m0", "array", key_size=4, value_size=8, max_entries=2)
        b.load("u32", 7, 1, 4)
        b.load("u32", 6, 1, 0)
        b.mov(2, 6)
        b.alu_imm("+", 2, 32)
        b.jmp_reg(">", 2, 7, "drop")
        for i, key_off in enumerate((25, 0)):
            b.load("u8", 2, 6, key_off)
            b.alu_imm("&", 2, 1)
            b.store("u32", 10, 2, -4)
            b.ld_map(1, "m0")
            b.mov(2, 10)
            b.alu_imm("+", 2, -4)
            b.call(1)
            b.jmp_imm("==", 0, 0, f"s{i}")
            b.load("u64", 3, 0, 0)
            b.alu_imm("+", 3, 1)
            b.store("u64", 0, 3, 0)
            b.label(f"s{i}")
        b.mov_imm(0, 3)
        b.exit()
        b.label("drop")
        b.mov_imm(0, 1)
        b.exit()
        return b.build()

    @pytest.mark.parametrize("gap", [1, 2, 3])
    def test_two_rmws_on_shared_slots_stay_exact(self, gap):
        import itertools

        from repro.hwsim import run_differential

        frames = []
        for b0, b25 in itertools.product(range(2), repeat=2):
            f = bytearray(64)
            f[0], f[25] = b0, b25
            frames.append(bytes(f))
        run_differential(self._program(), frames * 4,
                         gap=gap).raise_on_mismatch()

    def test_single_rmw_after_lookup_only_read(self):
        # the original finding: read stages on both sides of a write
        from repro.hwsim import run_differential

        from repro.ebpf.builder import ProgramBuilder

        b = ProgramBuilder("rmw_then_read")
        b.add_map("m0", "array", key_size=4, value_size=8, max_entries=1)
        b.load("u32", 7, 1, 4)
        b.load("u32", 6, 1, 0)
        b.mov(2, 6)
        b.alu_imm("+", 2, 4)
        b.jmp_reg(">", 2, 7, "drop")
        for i, kind in enumerate(("rmw", "read")):
            b.store_imm("u32", 10, -4, 0)
            b.ld_map(1, "m0")
            b.mov(2, 10)
            b.alu_imm("+", 2, -4)
            b.call(1)
            b.jmp_imm("==", 0, 0, f"s{i}")
            if kind == "rmw":
                b.load("u64", 3, 0, 0)
                b.alu_imm("+", 3, 1)
                b.store("u64", 0, 3, 0)
            else:
                b.load("u64", 8, 0, 0)
            b.label(f"s{i}")
        b.mov_imm(0, 3)
        b.exit()
        b.label("drop")
        b.mov_imm(0, 1)
        b.exit()
        run_differential(b.build(), [bytes(64)] * 10).raise_on_mismatch()


class TestQueuedPacketFlushRegression:
    """Regression: packets parked in elastic-buffer queues after a flush
    must still be visible to subsequent flush checks — a queued packet can
    hold a stale read in its restored snapshot."""

    def _program(self):
        from repro.ebpf.builder import ProgramBuilder

        b = ProgramBuilder("queued_flush")
        b.add_map("m0", "array", key_size=4, value_size=8, max_entries=4)
        b.load("u32", 7, 1, 4)
        b.load("u32", 6, 1, 0)
        b.mov(2, 6)
        b.alu_imm("+", 2, 32)
        b.jmp_reg(">", 2, 7, "drop")
        for i, key_off in enumerate((27, 20)):
            b.load("u8", 2, 6, key_off)
            b.alu_imm("&", 2, 3)
            b.store("u32", 10, 2, -4)
            b.ld_map(1, "m0")
            b.mov(2, 10)
            b.alu_imm("+", 2, -4)
            b.call(1)
            b.jmp_imm("==", 0, 0, f"s{i}")
            b.load("u64", 3, 0, 0)
            b.alu_imm("+", 3, 1)
            b.store("u64", 0, 3, 0)
            b.label(f"s{i}")
        b.mov_imm(0, 3)
        b.exit()
        b.label("drop")
        b.mov_imm(0, 1)
        b.exit()
        return b.build()

    def test_three_packet_interleaving(self):
        from repro.hwsim import run_differential

        def frame(b20, b27):
            f = bytearray(64)
            f[20], f[27] = b20, b27
            return bytes(f)

        # the exact interleaving that exposed the bug: p0 (0,0), p1 (1,2),
        # p2 (0,1) — p2 gets flushed by p0, parks in a queue with a stale
        # slot-1 read, and p1's slot-1 write must flush it again
        frames = [frame(0, 0), frame(1, 2), frame(0, 1)]
        run_differential(self._program(), frames).raise_on_mismatch()

    def test_exhaustive_two_key_battery(self):
        import itertools

        from repro.hwsim import run_differential

        def frame(b20, b27):
            f = bytearray(64)
            f[20], f[27] = b20, b27
            return bytes(f)

        prog = self._program()
        for combo in itertools.product(
            itertools.product(range(2), repeat=2), repeat=3
        ):
            frames = [frame(b20, b27) for b20, b27 in combo]
            run_differential(prog, frames).raise_on_mismatch()

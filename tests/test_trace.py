"""Pipeline occupancy tracer tests."""

import pytest

from repro.apps import toy_counter
from repro.core import compile_program
from repro.ebpf.asm import assemble_program
from repro.ebpf.isa import MapSpec
from repro.ebpf.maps import MapSet
from repro.hwsim import OccupancyTracer, PipelineSimulator, render_occupancy

RMW = """
    r2 = 0
    *(u32 *)(r10 - 4) = r2
    r1 = map[m]
    r2 = r10
    r2 += -4
    call 1
    if r0 == 0 goto out
    r2 = *(u64 *)(r0 + 0)
    r2 += 1
    *(u64 *)(r0 + 0) = r2
out:
    r0 = 2
    exit
"""


def traced_run(source_or_prog, frames, maps=None, gap=1):
    prog = (source_or_prog if not isinstance(source_or_prog, str)
            else assemble_program(source_or_prog, maps=maps))
    pipe = compile_program(prog)
    sim = PipelineSimulator(pipe, maps=MapSet(prog.maps))
    tracer = OccupancyTracer()
    sim.observer = tracer
    report = sim.run_packets(frames, gap=gap)
    return tracer, report, pipe


class TestTracer:
    def test_packet_advances_one_stage_per_cycle(self):
        tracer, _, pipe = traced_run(toy_counter.build(),
                                     [toy_counter.packet_for_key(1)])
        path = tracer.stages_of(0)
        stages = [s for _, s in path]
        assert stages == list(range(1, pipe.n_stages + 1))

    def test_pipeline_fills_at_line_rate(self):
        frames = [toy_counter.packet_for_key(1)] * 60
        tracer, _, pipe = traced_run(toy_counter.build(), frames)
        assert tracer.max_in_flight() == pipe.n_stages

    def test_gap_spacing_visible(self):
        frames = [toy_counter.packet_for_key(1)] * 10
        tracer, _, _ = traced_run(toy_counter.build(), frames, gap=3)
        assert tracer.max_in_flight() < 10

    def test_flush_shows_backward_jump(self):
        maps = {"m": MapSpec("m", "array", 4, 8, 1)}
        frames = [bytes(64)] * 12
        tracer, report, _ = traced_run(RMW, frames, maps=maps)
        assert report.flush_events > 0
        assert tracer.flush_cycles()
        # at least one packet's stage trajectory goes backwards (restart)
        restarted = False
        for pid in range(12):
            stages = [s for _, s in tracer.stages_of(pid)]
            if any(b < a for a, b in zip(stages, stages[1:])):
                restarted = True
        assert restarted

    def test_render(self):
        frames = [toy_counter.packet_for_key(1)] * 5
        tracer, _, _ = traced_run(toy_counter.build(), frames)
        art = render_occupancy(tracer, first_cycle=0, last_cycle=8)
        assert "cycle" in art and "p0" in art

    def test_render_marks_flushes(self):
        maps = {"m": MapSpec("m", "array", 4, 8, 1)}
        tracer, _, _ = traced_run(RMW, [bytes(64)] * 12, maps=maps)
        assert "FLUSH" in render_occupancy(tracer)

    def test_max_cycles_bound(self):
        tracer = OccupancyTracer(max_cycles=3)
        frames = [toy_counter.packet_for_key(1)] * 50
        prog = toy_counter.build()
        pipe = compile_program(prog)
        sim = PipelineSimulator(pipe, maps=MapSet(prog.maps))
        sim.observer = tracer
        sim.run_packets(frames)
        assert len(tracer.snapshots) == 3

    def test_truncation_flagged_and_rendered(self):
        tracer = OccupancyTracer(max_cycles=3)
        frames = [toy_counter.packet_for_key(1)] * 50
        prog = toy_counter.build()
        pipe = compile_program(prog)
        sim = PipelineSimulator(pipe, maps=MapSet(prog.maps))
        sim.observer = tracer
        report = sim.run_packets(frames)
        assert tracer.truncated
        assert tracer.dropped_cycles == report.cycles - 3
        art = render_occupancy(tracer)
        assert "truncated" in art
        assert "max_cycles=3" in art

    def test_no_truncation_below_bound(self):
        tracer, _, _ = traced_run(toy_counter.build(),
                                  [toy_counter.packet_for_key(1)] * 3)
        assert not tracer.truncated
        assert tracer.dropped_cycles == 0
        assert "truncated" not in render_occupancy(tracer)

"""Tests of the RTL verification subsystem (:mod:`repro.rtl`).

Covers the three layers — parser, elaborator, simulator — on small
hand-written designs, then the three-way differential harness (VM vs
pipeline simulator vs simulated VHDL) across every evaluation app,
compiler-option corners, and randomized verifier-valid map programs.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.apps import (
    dnat,
    firewall,
    icmp_echo,
    leaky_bucket,
    router,
    suricata,
    toy_counter,
    tunnel,
)
from random import Random

from repro.core.compiler import CompileOptions, compile_program
from repro.core.vhdl import emit_vhdl
from repro.ebpf.maps import MapSet
from repro.ebpf.verifier import verify
from repro.net.packet import FiveTuple, ipv4, mac, tcp_packet, udp_packet
from repro.rtl import (
    RtlElabError,
    RtlParseError,
    RtlRunner,
    RtlSimulator,
    elaborate,
    parse_vhdl,
    run_three_way,
)
from repro.rtl.sim import find_top
from repro.runtime import XdpOffload
from tests.test_property_maps import map_programs, packet_batches

HEADER = """\
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
"""


def _design(body: str):
    return parse_vhdl(HEADER + body)


# ---------------------------------------------------------------------------
# parser


class TestParser:
    def test_parses_entity_and_architecture(self):
        design = _design("""
entity tiny is
  port (
    a : in  std_logic_vector(7 downto 0);
    y : out std_logic_vector(7 downto 0)
  );
end entity tiny;

architecture rtl of tiny is
begin
  y <= a;
end architecture rtl;
""")
        assert "tiny" in design.entities
        ent = design.entities["tiny"]
        assert [p.name for p in ent.ports] == ["a", "y"]

    def test_identifiers_are_case_insensitive(self):
        design = _design("""
entity Tiny is
  port (Y : out std_logic);
end entity Tiny;
architecture rtl of TINY is
begin
  y <= '1';
end architecture rtl;
""")
        assert "tiny" in design.entities

    def test_parse_error_carries_line_number(self):
        with pytest.raises(RtlParseError) as exc:
            parse_vhdl("entity broken is\n  port (")
        assert "line" in str(exc.value)

    def test_rejects_unknown_statement(self):
        with pytest.raises(RtlParseError):
            _design("""
entity t is
  port (y : out std_logic);
end entity t;
architecture rtl of t is
begin
  assert false report "no";
end architecture rtl;
""")

    def test_every_app_parses(self):
        text = emit_vhdl(compile_program(toy_counter.build()))
        design = parse_vhdl(text)
        assert find_top(text) == "ehdl_toy_counter"
        assert find_top(text) in design.entities


# ---------------------------------------------------------------------------
# elaborator: structural defect detection


class TestElaborator:
    def test_undeclared_signal_is_an_error(self):
        design = _design("""
entity t is
  port (y : out std_logic_vector(7 downto 0));
end entity t;
architecture rtl of t is
begin
  y <= nosuch;
end architecture rtl;
""")
        with pytest.raises(RtlElabError, match="nosuch"):
            elaborate(design, "t")

    def test_width_mismatch_is_an_error(self):
        design = _design("""
entity t is
  port (
    a : in  std_logic_vector(7 downto 0);
    y : out std_logic_vector(7 downto 0)
  );
end entity t;
architecture rtl of t is
begin
  y <= a & a;
end architecture rtl;
""")
        with pytest.raises(RtlElabError, match="width"):
            elaborate(design, "t")

    def test_combinational_cycle_is_an_error(self):
        design = _design("""
entity t is
  port (y : out std_logic_vector(7 downto 0));
end entity t;
architecture rtl of t is
  signal p : std_logic_vector(7 downto 0);
  signal q : std_logic_vector(7 downto 0);
begin
  p <= q;
  q <= p;
  y <= p;
end architecture rtl;
""")
        with pytest.raises(RtlElabError, match="cycle"):
            elaborate(design, "t")

    def test_out_of_range_slice_is_an_error(self):
        design = _design("""
entity t is
  port (
    a : in  std_logic_vector(7 downto 0);
    y : out std_logic_vector(7 downto 0)
  );
end entity t;
architecture rtl of t is
begin
  y <= a(15 downto 8);
end architecture rtl;
""")
        with pytest.raises(RtlElabError):
            elaborate(design, "t")

    def test_missing_top_entity_is_an_error(self):
        design = _design("""
entity t is
  port (y : out std_logic);
end entity t;
architecture rtl of t is
begin
  y <= '0';
end architecture rtl;
""")
        with pytest.raises(RtlElabError):
            elaborate(design, "nothere")


# ---------------------------------------------------------------------------
# simulator: two-phase semantics on tiny designs


class TestSimulator:
    def test_combinational_passthrough(self):
        design = _design("""
entity comb is
  port (
    a : in  std_logic_vector(7 downto 0);
    y : out std_logic_vector(7 downto 0)
  );
end entity comb;
architecture rtl of comb is
  signal t : std_logic_vector(7 downto 0);
begin
  t <= a;
  y <= t;
end architecture rtl;
""")
        sim = RtlSimulator(elaborate(design, "comb"))
        sim.drive("a", 0x5A)
        sim.settle()
        assert sim.read("y") == 0x5A

    def test_register_updates_only_on_edge(self):
        design = _design("""
entity reg8 is
  port (
    clk : in  std_logic;
    d   : in  std_logic_vector(7 downto 0);
    q   : out std_logic_vector(7 downto 0)
  );
end entity reg8;
architecture rtl of reg8 is
begin
  process(clk)
  begin
    if rising_edge(clk) then
      q <= d;
    end if;
  end process;
end architecture rtl;
""")
        sim = RtlSimulator(elaborate(design, "reg8"))
        sim.drive("d", 0xAB)
        sim.settle()
        assert sim.read("q") == 0  # not clocked yet
        sim.edge()
        assert sim.read("q") == 0xAB
        sim.drive("d", 0xCD)
        sim.settle()
        assert sim.read("q") == 0xAB  # holds until the next edge
        sim.edge()
        assert sim.read("q") == 0xCD

    def test_signal_semantics_swap(self):
        # both processes read the pre-edge values: a true register swap
        design = _design("""
entity swap is
  port (
    clk  : in  std_logic;
    seed : in  std_logic;
    da   : in  std_logic_vector(3 downto 0);
    db   : in  std_logic_vector(3 downto 0);
    pa   : out std_logic_vector(3 downto 0);
    pb   : out std_logic_vector(3 downto 0)
  );
end entity swap;
architecture rtl of swap is
  signal ra : std_logic_vector(3 downto 0);
  signal rb : std_logic_vector(3 downto 0);
begin
  process(clk)
  begin
    if rising_edge(clk) then
      if seed = '1' then
        ra <= da;
        rb <= db;
      else
        ra <= rb;
        rb <= ra;
      end if;
    end if;
  end process;
  pa <= ra;
  pb <= rb;
end architecture rtl;
""")
        sim = RtlSimulator(elaborate(design, "swap"))
        sim.drive("seed", 1)
        sim.drive("da", 1)
        sim.drive("db", 2)
        sim.settle()
        sim.edge()
        sim.drive("seed", 0)
        sim.settle()
        assert (sim.read("pa"), sim.read("pb")) == (1, 2)
        sim.edge()
        sim.settle()
        assert (sim.read("pa"), sim.read("pb")) == (2, 1)


# ---------------------------------------------------------------------------
# three-way differential: evaluation apps

F_ALLOWED = FiveTuple(ipv4("10.0.0.1"), ipv4("192.168.9.9"), 17, 5555, 53)
F_OTHER = FiveTuple(ipv4("10.0.0.2"), ipv4("192.168.9.9"), 17, 6666, 53)
F_BAD = FiveTuple(ipv4("6.6.6.6"), ipv4("10.0.0.1"), 17, 31337, 53)


def _udp(ft: FiveTuple, **kw) -> bytes:
    return udp_packet(src_ip=ft.src_ip, dst_ip=ft.dst_ip,
                      sport=ft.sport, dport=ft.dport, size=64, **kw)


def _fw_setup(maps):
    firewall.allow_flow(maps, F_ALLOWED)


def _rt_setup(maps):
    router.add_route(maps, ipv4("192.168.7.1"),
                     mac("02:0a:0b:0c:0d:0e"), mac("02:01:02:03:04:05"), 5)


def _tn_setup(maps):
    tunnel.add_tunnel(maps, ipv4("10.5.0.9"), ipv4("100.0.0.1"),
                      ipv4("100.0.0.2"), mac("02:ff:00:00:00:01"),
                      mac("02:ff:00:00:00:02"))


def _su_setup(maps):
    suricata.add_bypass(maps, F_BAD)


APP_CASES = {
    "toy_counter": (
        toy_counter.build, None,
        [toy_counter.packet_for_key(k) for k in (1, 2, 1, 0)],
    ),
    "firewall": (
        firewall.build, _fw_setup,
        [_udp(F_ALLOWED), _udp(F_OTHER), _udp(F_ALLOWED.reversed()),
         tcp_packet(size=64)],
    ),
    "router": (
        router.build, _rt_setup,
        [udp_packet(dst_ip="192.168.7.200", size=64, ttl=9),
         udp_packet(dst_ip="8.8.8.8", size=64),
         udp_packet(dst_ip="192.168.7.4", size=64, ttl=1)],
    ),
    "router_rmw": (
        lambda: router.build(use_atomic=False), _rt_setup,
        [udp_packet(dst_ip="192.168.7.200", size=64, ttl=9),
         udp_packet(dst_ip="192.168.7.3", size=64, ttl=255)],
    ),
    "tunnel": (
        tunnel.build, _tn_setup,
        [udp_packet(dst_ip="10.5.0.9", size=90),
         udp_packet(dst_ip="9.9.9.9", size=64)],
    ),
    "suricata": (
        suricata.build, _su_setup,
        [_udp(F_BAD), udp_packet(size=64), tcp_packet(size=64)],
    ),
    "dnat": (
        dnat.build, None,
        [udp_packet(src_ip="172.16.0.1", dst_ip="8.8.4.4",
                    sport=7000, dport=53, size=64),
         udp_packet(src_ip="172.16.0.2", dst_ip="8.8.4.4",
                    sport=7001, dport=53, size=64),
         udp_packet(src_ip="172.16.0.1", dst_ip="8.8.4.4",
                    sport=7000, dport=53, size=64),
         tcp_packet(size=64)],
    ),
    "leaky_bucket": (
        leaky_bucket.build, None,
        [_udp(F_ALLOWED)] * 4,
    ),
    "icmp_echo": (
        icmp_echo.build, None,
        [icmp_echo.echo_request(seq=1), icmp_echo.echo_request(seq=2),
         udp_packet(size=64)],
    ),
}


class TestThreeWayApps:
    @pytest.mark.parametrize("name", sorted(APP_CASES))
    def test_app_agrees_across_all_legs(self, name):
        build, setup, frames = APP_CASES[name]
        result = run_three_way(build(), frames, setup=setup)
        result.raise_on_mismatch()
        assert result.packets == len(frames)
        assert result.rtl_report is not None

    def test_rtl_latency_matches_pipeline_depth(self):
        program = toy_counter.build()
        pipeline = compile_program(program)
        runner = RtlRunner(pipeline)
        report = runner.run_packets([toy_counter.packet_for_key(1)] * 3)
        assert [r.pipeline_cycles for r in report.records] \
            == [pipeline.n_stages] * 3

    def test_corrupted_rtl_is_detected(self):
        program = toy_counter.build()
        pipeline = compile_program(program)
        text = emit_vhdl(pipeline)
        # r0 = 3 (XDP_TX) becomes r0 = 2 (XDP_PASS): the RTL leg now
        # disagrees on the verdict and the harness must say so.
        assert 'x"0000000000000003"' in text
        bad = text.replace('x"0000000000000003"', 'x"0000000000000002"')
        result = run_three_way(program, [toy_counter.packet_for_key(1)],
                               pipeline=pipeline, vhdl_text=bad)
        assert not result.ok
        assert any(m.what.startswith("rtl") for m in result.mismatches)
        with pytest.raises(AssertionError):
            result.raise_on_mismatch()

    def test_offload_verify_rtl_leaves_live_maps_alone(self):
        nic = XdpOffload(toy_counter.build())
        result = nic.verify_rtl([toy_counter.packet_for_key(1)] * 3)
        result.raise_on_mismatch()
        # the differential ran on fresh map sets, not the NIC's
        assert nic.map("stats").read_u64(1) == 0


# ---------------------------------------------------------------------------
# three-way differential: compiler-option corners

CORNER_OPTIONS = {
    "frame32": CompileOptions(frame_size=32),
    "no_pruning": CompileOptions(enable_pruning=False),
    "no_fusion": CompileOptions(enable_fusion=False),
}


class TestThreeWayOptionCorners:
    @pytest.mark.parametrize("app", ["toy_counter", "firewall", "suricata"])
    @pytest.mark.parametrize("corner", sorted(CORNER_OPTIONS))
    def test_option_corner(self, app, corner):
        build, setup, frames = APP_CASES[app]
        result = run_three_way(build(), frames, setup=setup,
                               compile_options=CORNER_OPTIONS[corner])
        result.raise_on_mismatch()


# ---------------------------------------------------------------------------
# three-way differential: randomized verifier-valid programs


class TestThreeWayRandomPrograms:
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(prog_ops=map_programs(), frames=packet_batches())
    def test_random_map_programs_agree(self, prog_ops, frames):
        program, _ops = prog_ops
        verify(program)
        # single packet in flight on both hardware legs: even mixed
        # atomic/RMW patterns must match the VM exactly
        run_three_way(program, frames[:4]).raise_on_mismatch()

    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(prog_ops=map_programs(), frames=packet_batches())
    def test_random_programs_compiled_matches_interp(self, prog_ops, frames):
        # The hypothesis corpus through the engine-pair differential:
        # both RTL engines simulate the same elaborated netlist, so
        # every observable — including the cycle structure — must match.
        # (Programs outside the schedulable subset fall back to the
        # interpreter, where the comparison is trivially exact.)
        program, _ops = prog_ops
        verify(program)
        _assert_rtl_engines_agree(compile_program(program), None, frames[:4])


# ---------------------------------------------------------------------------
# engine-pair differential: compiled schedule vs delta-cycle interpreter


def _rtl_engine_run(pipeline, setup, frames, engine):
    maps = MapSet(pipeline.program.maps)
    if setup is not None:
        setup(maps)
    runner = RtlRunner(pipeline, maps=maps, engine=engine)
    report = runner.run_packets(frames)
    return runner, report


def _assert_rtl_engines_agree(pipeline, setup, frames):
    """Run ``frames`` on both RTL engines and compare every observable:
    verdicts, output bytes, per-packet inject/exit cycles, total cycle
    count, final map state, and the primitive op mix."""
    interp, rep_i = _rtl_engine_run(pipeline, setup, frames, "rtl-interp")
    compiled, rep_c = _rtl_engine_run(pipeline, setup, frames, "rtl")
    obs_i = [(r.pid, r.action, bytes(r.data), r.inject_cycle, r.exit_cycle)
             for r in rep_i.records]
    obs_c = [(r.pid, r.action, bytes(r.data), r.inject_cycle, r.exit_cycle)
             for r in rep_c.records]
    assert obs_i == obs_c
    assert rep_i.cycles == rep_c.cycles
    assert interp.maps.snapshot() == compiled.maps.snapshot()
    assert interp.context.op_counts == compiled.context.op_counts
    return compiled


class TestCompiledEnginePair:
    @pytest.mark.parametrize("name", sorted(APP_CASES))
    def test_compiled_matches_interp(self, name):
        build, setup, frames = APP_CASES[name]
        pipeline = compile_program(build())
        compiled = _assert_rtl_engines_agree(pipeline, setup, frames)
        # every evaluation app must be inside the schedulable subset —
        # a silent interpreter fallback would void the bench numbers
        assert compiled.engine == "rtl"

    def test_compiled_matches_interp_on_random_traffic(self):
        # Same deterministic seed on both engines, mixed verdicts.
        rng = Random(0x5EED)
        tuples = [FiveTuple(ipv4(f"10.0.{i % 4}.{10 + i}"),
                            ipv4("192.168.9.9"), 17, 5000 + i, 53)
                  for i in range(16)]
        allowed = tuples[::2]

        def setup(maps):
            for ft in allowed:
                firewall.allow_flow(maps, ft)

        frames = [_udp(rng.choice(tuples)) for _ in range(120)]
        pipeline = compile_program(firewall.build())
        compiled = _assert_rtl_engines_agree(pipeline, setup, frames)
        assert compiled.engine == "rtl"


# ---------------------------------------------------------------------------
# three-way differential: full bench traces on the compiled engine

FULL_TRACE_PACKETS = 4000


def _firewall_trace():
    rng = Random(0x5EED)
    tuples = [FiveTuple(ipv4(f"10.0.{i % 4}.{10 + i}"),
                        ipv4("192.168.9.9"), 17, 5000 + i, 53)
              for i in range(16)]
    allowed = tuples[::2]

    def setup(maps):
        for ft in allowed:
            firewall.allow_flow(maps, ft)

    frames = [_udp(rng.choice(tuples)) for _ in range(FULL_TRACE_PACKETS)]
    return firewall.build, setup, frames


def _router_trace():
    rng = Random(0x5EED)
    dsts = ["192.168.7.200", "192.168.7.4", "8.8.8.8"]
    frames = [udp_packet(dst_ip=rng.choice(dsts), size=64,
                         ttl=rng.choice([1, 9, 64]))
              for _ in range(FULL_TRACE_PACKETS)]
    return router.build, _rt_setup, frames


class TestThreeWayFullTraces:
    """vm == hwsim == rtl on full 4000-packet traces.

    Only feasible because the compiled RTL engine simulates these
    traces in well under a second; the delta-cycle interpreter needed
    ~40s per trace, which is why the differential used to stop at
    16-packet smoke runs.
    """

    @pytest.mark.parametrize("trace", ["firewall", "router"])
    def test_full_trace_agrees_across_all_legs(self, trace):
        build, setup, frames = \
            _firewall_trace() if trace == "firewall" else _router_trace()
        result = run_three_way(build(), frames, setup=setup,
                               rtl_engine="rtl")
        result.raise_on_mismatch()
        assert result.packets == FULL_TRACE_PACKETS
        # both verdict classes must occur or the trace proves little
        actions = {rec.action for rec in result.rtl_report.records}
        assert len(actions) >= 2

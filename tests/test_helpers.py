"""Helper-function semantics, exercised through the VM."""

import struct

import pytest

from repro.ebpf.asm import assemble_program
from repro.ebpf.helpers import (
    HELPER_IDS_BY_NAME,
    HELPERS,
    HelperError,
    helper_spec,
    is_map_ptr,
    map_ptr,
)
from repro.ebpf.isa import MapSpec
from repro.ebpf.maps import MapSet
from repro.ebpf.vm import Vm, run_program
from repro.ebpf.xdp import XdpAction
from repro.net.packet import checksum16

PKT = bytes(range(64))


class TestRegistry:
    def test_ids_match_linux(self):
        assert HELPER_IDS_BY_NAME["bpf_map_lookup_elem"] == 1
        assert HELPER_IDS_BY_NAME["bpf_map_update_elem"] == 2
        assert HELPER_IDS_BY_NAME["bpf_map_delete_elem"] == 3
        assert HELPER_IDS_BY_NAME["bpf_ktime_get_ns"] == 5
        assert HELPER_IDS_BY_NAME["bpf_redirect"] == 23
        assert HELPER_IDS_BY_NAME["bpf_csum_diff"] == 28
        assert HELPER_IDS_BY_NAME["bpf_xdp_adjust_head"] == 44

    def test_unknown_helper_raises(self):
        with pytest.raises(HelperError):
            helper_spec(123456)

    def test_map_channel_flags(self):
        assert helper_spec(1).map_channel
        assert helper_spec(2).map_write
        assert not helper_spec(5).map_channel

    def test_cpu_only_helpers_marked(self):
        assert helper_spec(8).cpu_only  # get_smp_processor_id

    def test_map_ptr_encoding(self):
        assert is_map_ptr(map_ptr(3))
        assert not is_map_ptr(0x1000)


class TestKtime:
    def test_returns_vm_time(self):
        prog = assemble_program(
            """
            call 5
            r6 = *(u32 *)(r1 + 0)
            *(u64 *)(r6 + 0) = r0
            r0 = 2
            exit
            """
        )
        # note: r1 is clobbered by the call; reload ctx? r1 *is* the ctx at
        # entry but scrubbed after call 5 — so this program is invalid.
        # Rewritten properly below.

    def test_ktime_value(self):
        prog = assemble_program(
            """
            r9 = r1
            call 5
            r6 = *(u32 *)(r9 + 0)
            *(u64 *)(r6 + 0) = r0
            r0 = 2
            exit
            """
        )
        res = run_program(prog, PKT, time_ns=123456789)
        assert int.from_bytes(res.packet[:8], "little") == 123456789


class TestPrandom:
    def test_deterministic_sequence(self):
        prog = assemble_program(
            """
            r9 = r1
            call 7
            r7 = r0
            call 7
            r6 = *(u32 *)(r9 + 0)
            *(u32 *)(r6 + 0) = r7
            *(u32 *)(r6 + 4) = r0
            r0 = 2
            exit
            """
        )
        res1 = run_program(prog, PKT)
        res2 = run_program(prog, PKT)
        assert res1.packet[:8] == res2.packet[:8]
        assert res1.packet[:4] != res1.packet[4:8]


class TestRedirect:
    def test_sets_ifindex_and_action(self):
        prog = assemble_program("r1 = 7\nr2 = 0\ncall 23\nexit")
        res = run_program(prog, PKT)
        assert res.action == XdpAction.REDIRECT
        assert res.redirect_ifindex == 7


class TestAdjustHead:
    def _prog(self, delta: int):
        return assemble_program(
            f"""
            r9 = r1
            r2 = {delta}
            call 44
            if r0 != 0 goto fail
            r0 = 2
            exit
        fail:
            r0 = 1
            exit
            """
        )

    def test_grow(self):
        res = run_program(self._prog(-20), PKT)
        assert res.action == XdpAction.PASS
        assert len(res.packet) == len(PKT) + 20
        assert res.packet[20:] == PKT

    def test_shrink(self):
        res = run_program(self._prog(14), PKT)
        assert res.action == XdpAction.PASS
        assert res.packet == PKT[14:]

    def test_exceeding_headroom_fails(self):
        res = run_program(self._prog(-1000), PKT)
        assert res.action == XdpAction.DROP
        assert res.packet == PKT

    def test_shrink_beyond_packet_fails(self):
        res = run_program(self._prog(100), PKT)
        assert res.action == XdpAction.DROP


class TestCsumDiff:
    def test_from_zero_computes_sum(self):
        # csum_diff(NULL, 0, to, len, 0) returns the 32-bit sum of `to`
        prog = assemble_program(
            """
            r9 = r1
            r2 = 0x04030201
            *(u32 *)(r10 - 4) = r2
            r1 = 0
            r2 = 0
            r3 = r10
            r3 += -4
            r4 = 4
            r5 = 0
            call 28
            r6 = *(u32 *)(r9 + 0)
            *(u64 *)(r6 + 0) = r0
            r0 = 2
            exit
            """
        )
        res = run_program(prog, PKT)
        value = int.from_bytes(res.packet[:8], "little")
        assert value == 0x04030201


class TestStubHelpers:
    def test_get_smp_processor_id_is_zero(self):
        prog = assemble_program("call 8\nexit")
        assert run_program(prog, PKT).action == XdpAction.ABORTED  # r0 = 0

    def test_trace_printk_records_event(self):
        prog = assemble_program(
            "r1 = 0\nr2 = 4\nr3 = 0\ncall 6\nr0 = 2\nexit"
        )
        vm = Vm(prog)
        vm.run(PKT)
        assert len(vm.trace_events) == 1


class TestRedirectMap:
    def test_hit_redirects(self):
        prog = assemble_program(
            """
            r1 = map[ports]
            r2 = 0
            r3 = 2
            call 51
            exit
            """,
            maps={"ports": MapSpec("ports", "array", 4, 8, 4)},
        )
        maps = MapSet(prog.maps)
        maps.by_name("ports").update(bytes(4), (9).to_bytes(8, "little"))
        res = run_program(prog, PKT, maps=maps)
        assert res.action == XdpAction.REDIRECT
        assert res.redirect_ifindex == 9

    def test_miss_returns_flags_action(self):
        prog = assemble_program(
            """
            r1 = map[ports]
            r2 = 99
            r3 = 2
            call 51
            exit
            """,
            maps={"ports": MapSpec("ports", "array", 4, 8, 4)},
        )
        res = run_program(prog, PKT)
        assert res.action == XdpAction.PASS


class TestAdjustTail:
    def _prog(self, delta: int):
        return assemble_program(
            f"""
            r9 = r1
            r2 = {delta}
            call 65
            if r0 != 0 goto fail
            r0 = 2
            exit
        fail:
            r0 = 1
            exit
            """
        )

    def test_trim(self):
        res = run_program(self._prog(-10), PKT)
        assert res.action == XdpAction.PASS
        assert res.packet == PKT[:-10]

    def test_grow(self):
        res = run_program(self._prog(16), PKT)
        assert res.action == XdpAction.PASS
        assert res.packet == PKT + bytes(16)

    def test_exceeding_tailroom_fails(self):
        res = run_program(self._prog(10_000), PKT)
        assert res.action == XdpAction.DROP

    def test_cannot_trim_whole_packet(self):
        res = run_program(self._prog(-1000), PKT)
        assert res.action == XdpAction.DROP

    def test_invalidates_packet_pointers(self):
        from repro.ebpf.verifier import VerifierError, verify

        prog = assemble_program(
            """
            r9 = r1
            r6 = *(u32 *)(r1 + 0)
            r2 = -4
            call 65
            r0 = *(u8 *)(r6 + 0)
            exit
            """
        )
        with pytest.raises(VerifierError, match="uninitialised"):
            verify(prog)

"""Network substrate tests: headers, checksums, flows, traces."""

import pytest

from repro.net.packet import (
    ETH_HLEN,
    ETH_P_IP,
    IPPROTO_TCP,
    IPPROTO_UDP,
    Ethernet,
    FiveTuple,
    IPv4,
    IPv6,
    PacketError,
    Tcp,
    Udp,
    checksum16,
    ipv4,
    ipv4_str,
    mac,
    mac_str,
    parse_five_tuple,
    tcp_packet,
    udp_packet,
)
from repro.net.flows import TrafficGenerator, TrafficSpec, make_flows, zipf_weights
from repro.net.traces import caida_like, mawi_like, single_flow_trace


class TestAddresses:
    def test_ipv4_roundtrip(self):
        assert ipv4_str(ipv4("192.168.1.200")) == "192.168.1.200"

    def test_ipv4_value(self):
        assert ipv4("10.0.0.1") == 0x0A000001

    def test_ipv4_rejects_garbage(self):
        with pytest.raises(PacketError):
            ipv4("10.0.0")
        with pytest.raises(PacketError):
            ipv4("10.0.0.300")

    def test_mac_roundtrip(self):
        assert mac_str(mac("02:aa:bb:cc:dd:ee")) == "02:aa:bb:cc:dd:ee"

    def test_mac_rejects_garbage(self):
        with pytest.raises(PacketError):
            mac("02:aa:bb")


class TestChecksum:
    def test_known_vector(self):
        # classic RFC1071 example
        data = bytes.fromhex("0001f203f4f5f6f7")
        assert checksum16(data) == 0x220D

    def test_zero_data(self):
        assert checksum16(bytes(4)) == 0xFFFF

    def test_checksum_validates_to_zero(self):
        header = IPv4(src=ipv4("10.0.0.1"), dst=ipv4("10.0.0.2")).pack(8)
        assert checksum16(header) == 0

    def test_odd_length_padded(self):
        assert checksum16(b"\x01") == checksum16(b"\x01\x00")


class TestHeaders:
    def test_ethernet_roundtrip(self):
        eth = Ethernet(mac("02:00:00:00:00:01"), mac("02:00:00:00:00:02"), ETH_P_IP)
        assert Ethernet.parse(eth.pack()) == eth

    def test_ipv4_roundtrip(self):
        hdr = IPv4(src=ipv4("1.2.3.4"), dst=ipv4("5.6.7.8"), proto=IPPROTO_TCP, ttl=7)
        parsed = IPv4.parse(hdr.pack(20))
        assert (parsed.src, parsed.dst, parsed.proto, parsed.ttl) == (
            hdr.src, hdr.dst, hdr.proto, hdr.ttl,
        )
        assert parsed.total_length == 40

    def test_ipv6_roundtrip(self):
        hdr = IPv6(next_header=IPPROTO_UDP, hop_limit=9)
        parsed = IPv6.parse(hdr.pack(8))
        assert parsed.next_header == IPPROTO_UDP and parsed.hop_limit == 9

    def test_udp_parse(self):
        udp = Udp(1234, 53)
        parsed = Udp.parse(udp.pack(b"", 0, 0))
        assert (parsed.sport, parsed.dport) == (1234, 53)

    def test_tcp_parse(self):
        tcp = Tcp(1234, 80, seq=77, flags=0x12)
        parsed = Tcp.parse(tcp.pack(b"", 0, 0))
        assert (parsed.sport, parsed.dport, parsed.seq, parsed.flags) == (
            1234, 80, 77, 0x12,
        )

    def test_short_frames_rejected(self):
        with pytest.raises(PacketError):
            Ethernet.parse(b"\x00" * 10)
        with pytest.raises(PacketError):
            IPv4.parse(b"\x45" + b"\x00" * 10)


class TestCompositeBuilders:
    def test_udp_packet_structure(self):
        frame = udp_packet(src_ip="10.0.0.1", dst_ip="10.0.0.2",
                           sport=1000, dport=53, size=100)
        assert len(frame) == 100
        ft = parse_five_tuple(frame)
        assert ft == FiveTuple(ipv4("10.0.0.1"), ipv4("10.0.0.2"),
                               IPPROTO_UDP, 1000, 53)

    def test_minimum_frame_padding(self):
        assert len(udp_packet(size=1)) == 60
        assert len(udp_packet()) == 60

    def test_ip_checksum_valid(self):
        frame = udp_packet(size=64)
        assert checksum16(frame[ETH_HLEN : ETH_HLEN + 20]) == 0

    def test_tcp_packet(self):
        frame = tcp_packet(sport=5, dport=80, size=64)
        ft = parse_five_tuple(frame)
        assert ft.proto == IPPROTO_TCP and ft.sport == 5

    def test_size_too_small_for_payload(self):
        with pytest.raises(PacketError):
            udp_packet(payload=b"x" * 100, size=64)

    def test_parse_five_tuple_non_ip(self):
        frame = bytearray(udp_packet(size=64))
        frame[12:14] = b"\x86\xdd"
        assert parse_five_tuple(bytes(frame)) is None


class TestFiveTuple:
    def test_reversed(self):
        ft = FiveTuple(1, 2, 17, 30, 40)
        assert ft.reversed() == FiveTuple(2, 1, 17, 40, 30)

    def test_key_bytes_length(self):
        assert len(FiveTuple(1, 2, 17, 3, 4).key_bytes()) == 13


class TestFlows:
    def test_make_flows_distinct(self):
        flows = make_flows(1000)
        assert len(set(flows)) == 1000

    def test_zipf_weights_normalised(self):
        weights = zipf_weights(100)
        assert abs(sum(weights) - 1.0) < 1e-9
        assert weights[0] > weights[50]

    def test_zipf_rejects_empty(self):
        with pytest.raises(ValueError):
            zipf_weights(0)

    def test_uniform_generator_deterministic(self):
        a = TrafficGenerator(TrafficSpec(n_flows=10, seed=3))
        b = TrafficGenerator(TrafficSpec(n_flows=10, seed=3))
        assert list(a.packets(20)) == list(b.packets(20))

    def test_zipf_generator_skews(self):
        gen = TrafficGenerator(
            TrafficSpec(n_flows=100, distribution="zipf", seed=1)
        )
        seq = gen.flow_sequence(2000)
        top = seq.count(gen.flows[0])
        assert top > 2000 / 100 * 3  # far above the uniform share

    def test_unknown_distribution(self):
        with pytest.raises(ValueError):
            TrafficGenerator(TrafficSpec(distribution="pareto"))

    def test_frame_sizes(self):
        gen = TrafficGenerator(TrafficSpec(n_flows=4, packet_size=64))
        assert all(len(f) >= 60 for f in gen.packets(8))


class TestTraces:
    def test_caida_like_stats(self):
        trace = caida_like(n_packets=20_000)
        stats = trace.stats()
        assert abs(stats.mean_size - 411) < 45
        assert stats.flows > 5000

    def test_mawi_like_stats(self):
        trace = mawi_like(n_packets=20_000)
        assert abs(trace.stats().mean_size - 573) < 55

    def test_timestamps_monotonic_at_link_rate(self):
        trace = caida_like(n_packets=1000)
        times = [r.timestamp_ns for r in trace]
        assert times == sorted(times)
        assert trace.stats().rate_gbps > 80  # back-to-back at ~100 Gbps

    def test_single_flow_trace(self):
        trace = single_flow_trace(n_packets=100)
        assert len({r.flow for r in trace}) == 1
        assert len(trace) == 100

"""Assembler and disassembler tests: syntax coverage and round-trips."""

import pytest

from repro.ebpf import isa
from repro.ebpf.asm import AsmError, assemble, assemble_program
from repro.ebpf.disasm import disassemble, format_instruction
from repro.ebpf.isa import MapSpec


def one(source: str, **kwargs):
    insns = assemble(source, **kwargs)
    assert len(insns) == 1
    return insns[0]


class TestAluSyntax:
    def test_mov_imm(self):
        insn = one("r1 = 42")
        assert insn.opcode == isa.BPF_ALU64 | isa.BPF_K | isa.BPF_MOV
        assert insn.imm == 42

    def test_mov_reg(self):
        insn = one("r1 = r2")
        assert insn.uses_reg_src and insn.src == 2

    def test_mov32(self):
        insn = one("w3 = 7")
        assert insn.opclass == isa.BPF_ALU

    def test_negative_imm(self):
        assert one("r2 += -4").imm == -4

    def test_hex_imm(self):
        assert one("r2 &= 0xffff").imm == 0xFFFF

    @pytest.mark.parametrize(
        "text,op",
        [
            ("r1 += r2", isa.BPF_ADD),
            ("r1 -= r2", isa.BPF_SUB),
            ("r1 *= r2", isa.BPF_MUL),
            ("r1 /= r2", isa.BPF_DIV),
            ("r1 %= r2", isa.BPF_MOD),
            ("r1 &= r2", isa.BPF_AND),
            ("r1 |= r2", isa.BPF_OR),
            ("r1 ^= r2", isa.BPF_XOR),
            ("r1 <<= r2", isa.BPF_LSH),
            ("r1 >>= r2", isa.BPF_RSH),
            ("r1 s>>= r2", isa.BPF_ARSH),
        ],
    )
    def test_all_alu_ops(self, text, op):
        assert one(text).op == op

    def test_neg(self):
        insn = one("r3 = -r3")
        assert insn.op == isa.BPF_NEG

    def test_neg_wrong_register_rejected(self):
        with pytest.raises(AsmError):
            assemble("r3 = -r4")

    def test_byteswap(self):
        insn = one("r2 = be16 r2")
        assert insn.op == isa.BPF_END and insn.imm == 16 and insn.uses_reg_src
        insn = one("r2 = le64 r2")
        assert insn.imm == 64 and not insn.uses_reg_src


class TestMemorySyntax:
    def test_load(self):
        insn = one("r2 = *(u8 *)(r1 + 12)")
        assert insn.is_mem_load and insn.size_bytes == 1 and insn.off == 12

    def test_load_negative_offset(self):
        insn = one("r2 = *(u64 *)(r10 - 8)")
        assert insn.off == -8 and insn.src == 10

    def test_store_reg(self):
        insn = one("*(u32 *)(r10 - 4) = r3")
        assert insn.opclass == isa.BPF_STX and insn.src == 3

    def test_store_imm(self):
        insn = one("*(u16 *)(r6 + 12) = 8")
        assert insn.opclass == isa.BPF_ST and insn.imm == 8

    def test_atomic_add(self):
        insn = one("lock *(u64 *)(r1 + 0) += r2")
        assert insn.is_atomic and insn.imm == isa.ATOMIC_ADD

    def test_atomic_fetch_add(self):
        insn = one("lock fetch *(u64 *)(r0 + 0) += r9")
        assert insn.imm == (isa.ATOMIC_ADD | isa.BPF_FETCH)

    def test_atomic_xchg(self):
        insn = one("lock *(u64 *)(r1 + 0) xchg r2")
        assert insn.imm == isa.ATOMIC_XCHG

    def test_ld_imm64(self):
        insn = one("r1 = 81985529216486895 ll")
        assert insn.is_ld_imm64 and insn.imm64 == 81985529216486895

    def test_map_ref_needs_declared_map(self):
        with pytest.raises(AsmError):
            assemble("r1 = map[stats]")
        insn = one("r1 = map[stats]", maps={"stats": 4})
        assert insn.is_map_ref and insn.imm64 == 4


class TestControlFlow:
    def test_relative_offsets(self):
        insns = assemble("if r1 == 5 goto +2\nr0 = 0\nr0 = 1\nexit")
        assert insns[0].off == 2

    def test_labels(self):
        insns = assemble(
            """
            if r1 == 5 goto done
            r0 = 0
            exit
        done:
            r0 = 1
            exit
        """
        )
        assert insns[0].off == 2

    def test_label_offsets_count_slots(self):
        # ld_imm64 between branch and label occupies two slots
        insns = assemble(
            """
            goto end
            r1 = 7 ll
        end:
            exit
        """
        )
        assert insns[0].off == 2

    def test_backward_label(self):
        insns = assemble(
            """
        top:
            r1 += 1
            goto top
        """
        )
        assert insns[1].off == -2

    def test_undefined_label(self):
        with pytest.raises(AsmError):
            assemble("goto nowhere")

    def test_call_by_id_and_name(self):
        assert one("call 1").imm == 1
        assert one("call bpf_map_lookup_elem").imm == 1
        assert one("call bpf_xdp_adjust_head").imm == 44

    @pytest.mark.parametrize(
        "sym,op",
        [
            ("==", isa.BPF_JEQ), ("!=", isa.BPF_JNE), (">", isa.BPF_JGT),
            (">=", isa.BPF_JGE), ("<", isa.BPF_JLT), ("<=", isa.BPF_JLE),
            ("s>", isa.BPF_JSGT), ("s<", isa.BPF_JSLT), ("&", isa.BPF_JSET),
        ],
    )
    def test_comparison_ops(self, sym, op):
        insns = assemble(f"if r1 {sym} 5 goto +1\nexit\nexit")
        assert insns[0].op == op

    def test_jmp32(self):
        insns = assemble("if w1 == 5 goto +1\nexit\nexit")
        assert insns[0].opclass == isa.BPF_JMP32

    def test_reg_comparison(self):
        insns = assemble("if r1 > r2 goto +1\nexit\nexit")
        assert insns[0].uses_reg_src and insns[0].src == 2


class TestCommentsAndErrors:
    def test_comments_stripped(self):
        insns = assemble("r1 = 1 ; a comment\nr2 = 2 # another\nr3 = 3 // third")
        assert len(insns) == 3

    def test_garbage_rejected_with_line_number(self):
        with pytest.raises(AsmError, match="line 2"):
            assemble("r1 = 1\nthis is not bpf")

    def test_bad_register(self):
        with pytest.raises(AsmError):
            assemble("r11 = 5")


class TestRoundTrip:
    def test_disassemble_reassemble(self):
        source = """
            r2 = *(u32 *)(r1 + 4)
            r1 = *(u32 *)(r1 + 0)
            r3 = 0
            *(u32 *)(r10 - 4) = r3
            r2 = *(u8 *)(r1 + 12)
            r1 <<= 8
            r1 |= r2
            if r1 == 34525 goto +2
            r0 = 1
            exit
            r2 = r10
            r2 += -4
            r1 = 0 ll
            call 1
            lock *(u64 *)(r1 + 0) += r2
            exit
        """
        insns = assemble(source)
        text = disassemble(insns, numbered=False)
        again = assemble(text)
        assert again == insns

    def test_numbered_disassembly_uses_slots(self):
        insns = assemble("r1 = 7 ll\nexit")
        text = disassemble(insns)
        assert text.splitlines()[1].startswith("2:")

    def test_format_every_instruction_in_apps(self):
        from repro.apps import EVALUATION_APPS

        for mod in EVALUATION_APPS.values():
            for insn in mod.build().instructions:
                assert format_instruction(insn)


class TestAssembleProgram:
    def test_allocates_fds_in_order(self):
        prog = assemble_program(
            "r1 = map[a]\nr1 = map[b]\nr0 = 0\nexit",
            maps={
                "a": MapSpec("a", "array", 4, 8, 1),
                "b": MapSpec("b", "array", 4, 8, 1),
            },
        )
        assert prog.referenced_map_fds() == [1, 2]
        assert prog.maps[1].name == "a"
        assert prog.maps[2].name == "b"

#!/usr/bin/env python3
"""Watching the hazard machinery work, cycle by cycle.

Compiles a deliberately hazard-prone program (a non-atomic counter:
lookup → load → add → store on one map slot), attaches the occupancy
tracer, and renders the pipeline timeline around the first flush — the
live version of the paper's Figure 7. Then shows the atomic-block variant
sailing through at line rate, and finishes by exporting the traffic as a
pcap that tcpdump/Wireshark can open.

Run:  python examples/hazard_visualizer.py
"""

import tempfile

from repro.ebpf.asm import assemble_program
from repro.ebpf.isa import MapSpec
from repro.ebpf.maps import MapSet
from repro.core import compile_program, hazard_summary
from repro.hwsim import OccupancyTracer, PipelineSimulator, render_occupancy
from repro.net.packet import udp_packet
from repro.net.pcap import write_pcap

RMW = """
    r2 = 0
    *(u32 *)(r10 - 4) = r2
    r1 = map[m]
    r2 = r10
    r2 += -4
    call 1
    if r0 == 0 goto out
    r2 = *(u64 *)(r0 + 0)
    r2 += 1
    *(u64 *)(r0 + 0) = r2
out:
    r0 = 2
    exit
"""

ATOMIC = RMW.replace(
    "    r2 = *(u64 *)(r0 + 0)\n    r2 += 1\n    *(u64 *)(r0 + 0) = r2",
    "    r2 = 1\n    lock *(u64 *)(r0 + 0) += r2",
)

MAPS = {"m": MapSpec("m", "array", 4, 8, 1)}
N = 30


def run(source: str, label: str):
    prog = assemble_program(source, maps=MAPS, name=label)
    pipeline = compile_program(prog)
    maps = MapSet(prog.maps)
    sim = PipelineSimulator(pipeline, maps=maps)
    tracer = OccupancyTracer()
    sim.observer = tracer
    frames = [udp_packet(size=64)] * N
    report = sim.run_packets(frames)
    counter = int.from_bytes(maps.by_name("m").lookup(bytes(4)), "little")
    return pipeline, tracer, report, counter


def main() -> None:
    print("=== non-atomic counter (lookup -> load -> add -> store) ===")
    pipeline, tracer, report, counter = run(RMW, "rmw_counter")
    print(hazard_summary(pipeline))
    print(f"{N} packets -> counter = {counter} (exact despite the hazards)")
    print(f"throughput: {report.throughput_mpps:.1f} Mpps, "
          f"{report.flush_events} flushes, "
          f"{report.squashed_packets} packets squashed\n")

    flush_cycles = tracer.flush_cycles()
    if flush_cycles:
        first = flush_cycles[0]
        print(f"pipeline timeline around the first flush (cycle {first}):")
        print(render_occupancy(tracer, first_cycle=max(0, first - 3),
                               last_cycle=first + 4, max_stages=16))
    print()

    print("=== the same counter through the atomic block (§4.1.2) ===")
    pipeline, tracer, report, counter = run(ATOMIC, "atomic_counter")
    print(hazard_summary(pipeline))
    print(f"{N} packets -> counter = {counter}")
    print(f"throughput: {report.throughput_mpps:.1f} Mpps, "
          f"{report.flush_events} flushes\n")

    with tempfile.NamedTemporaryFile(suffix=".pcap", delete=False) as fh:
        count = write_pcap(fh.name, ((i * 1000.0, udp_packet(size=64))
                                     for i in range(N)))
        print(f"exported the {count}-packet workload to {fh.name} "
              "(openable in Wireshark)")


if __name__ == "__main__":
    main()

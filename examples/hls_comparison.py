#!/usr/bin/env python3
"""Programming-experience comparison (§5.5, Appendix A.4).

The paper contrasts three ways to get a NIC to run a network function:

* **eHDL** — "the code from Listing 1 is all that is needed": compile the
  unmodified eBPF bytecode, get a firmware-ready pipeline;
* **SDNet (P4)** — re-express the function as parser + match-action
  tables; works for classification-style programs, but the dynamic NAT
  cannot be expressed at all;
* **Vitis HLS** — rewrite the function in C++ with AXI-stream state
  machines and a dozen pragmas (Listings 3-5 of the paper), i.e. be a
  hardware engineer.

This example runs the first two flows for the same function and prints
the Vitis requirements list for contrast.

Run:  python examples/hls_comparison.py
"""

from repro.apps import dnat, toy_counter
from repro.baselines import P4_PORTS, SdnetCompiler, SdnetUnsupportedError
from repro.baselines.sdnet import ActionKind, P4Action
from repro.core import compile_program
from repro.core.resources import estimate_resources
from repro.ebpf.xdp import XdpAction


def ehdl_flow() -> None:
    print("=== eHDL: unmodified bytecode in, hardware out ===")
    program = toy_counter.build()
    pipeline = compile_program(program)
    est = estimate_resources(pipeline)
    print(f"input:  {len(program.instructions)} eBPF instructions "
          "(exactly what the kernel would load)")
    print(f"output: {pipeline.n_stages}-stage pipeline, {est.summary()}")
    print("user-supplied hardware annotations required: none\n")


def sdnet_flow() -> None:
    print("=== SDNet: P4 re-implementation ===")
    compiler = SdnetCompiler()
    port = P4_PORTS["suricata"]()
    pipe = compiler.compile(port)
    print(f"suricata port: parser({port.parser.depth_bytes} B deep) + "
          f"{len(port.tables)} table(s); {pipe.resources().summary()}")
    print("works — but only because the function is parse/classify-shaped.")

    print("\nthe DNAT port needs the data plane to *write* its tables:")
    try:
        compiler.compile(P4_PORTS["dnat"]())
    except SdnetUnsupportedError as exc:
        print(f"  SDNet: REJECTED — {exc}")
    pipeline = compile_program(dnat.build())
    print(f"  eHDL:  compiled — {pipeline.n_stages} stages, "
          f"{len(pipeline.map_hazards)} maps, flush blocks handle the "
          "lookup->insert hazard\n")


def vitis_flow() -> None:
    print("=== Vitis HLS: what the C++ port demands (Appendix A.4) ===")
    requirements = [
        "re-implement the function against stream<axiWord> interfaces",
        "hand-write parser state machines for the frame chunking",
        "#pragma HLS PIPELINE II=1 / INLINE / DATAFLOW on every function",
        "#pragma HLS INTERFACE mode=axis for every port",
        "#pragma HLS BIND_STORAGE + DEPENDENCE for every memory",
        "manual data-consistency reasoning (no hazard handling for free)",
        "generate an IP core, then hand-wire it into the NIC shell",
    ]
    for req in requirements:
        print(f"  - {req}")
    print("i.e. the programmer must already be a hardware designer.")


def main() -> None:
    ehdl_flow()
    sdnet_flow()
    vitis_flow()


if __name__ == "__main__":
    main()

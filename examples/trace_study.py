#!/usr/bin/env python3
"""Flush-behaviour study: the Leaky Bucket under realistic traces (§5.3).

Replays synthetic CAIDA/MAWI-like traces at 100 Gbps through the leaky
bucket pipeline — the application whose read-modify-write of per-flow
(timestamp, level) state cannot use the atomic block — and compares the
measured flush rate and throughput with the analytical model of
Appendix A.1.

Run:  python examples/trace_study.py
"""

from repro.analysis import analyze_pipeline, pipeline_throughput, zipf_flush_probability
from repro.apps import leaky_bucket
from repro.core import compile_program, hazard_summary
from repro.ebpf.maps import MapSet
from repro.hwsim import NicSystem
from repro.net.packet import udp_packet
from repro.net.traces import caida_like, mawi_like

N_PACKETS = 8_000


def main() -> None:
    program = leaky_bucket.build()
    pipeline = compile_program(program)
    print("=== leaky bucket pipeline ===")
    print(f"{pipeline.n_stages} stages")
    print(hazard_summary(pipeline))

    print("\n=== trace replay at 100 Gbps (Table 2) ===")
    for trace in (caida_like(N_PACKETS), mawi_like(N_PACKETS)):
        stats = trace.stats()
        nic = NicSystem(pipeline, maps=MapSet(program.maps), keep_records=False)
        report = nic.replay_trace(trace)
        print(f"{trace.name}: {stats.packets} pkts, {stats.flows} flows, "
              f"mean {stats.mean_size:.0f} B")
        print(f"  lost packets: {report.packets_dropped_queue}   "
              f"flushes/sec: {report.flushes_per_second():,.0f}   "
              f"restarted packets: {report.squashed_packets}")

    print("\n=== worst case: one flow, line rate (§5.3) ===")
    nic = NicSystem(pipeline, maps=MapSet(program.maps), keep_records=False)
    frame = udp_packet(src_ip="10.0.0.1", sport=1000, size=64)
    report = nic.run_at_line_rate([frame] * 3000)
    print(f"max achieved throughput: {report.throughput_mpps:.1f} Mpps "
          f"({report.flush_events} flushes) — the paper's 29->12 Mpps case")

    print("\n=== analytical model (Appendix A.1) ===")
    analysis = analyze_pipeline(pipeline, n_flows=50_000)
    print(analysis.row())
    print("predicted throughput vs hazard window length (50k Zipfian flows):")
    for L in (2, 3, 5, 8, 13):
        p = zipf_flush_probability(L, 50_000)
        tp = pipeline_throughput(analysis.K, p)
        print(f"  L={L:>2}:  P_f={100 * p:5.1f}%   T_p={tp:6.1f} Mpps")


if __name__ == "__main__":
    main()

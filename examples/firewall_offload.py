#!/usr/bin/env python3
"""Offloading a stateful UDP firewall to the NIC.

The workflow a network operator would follow with eHDL (§6): take the
existing XDP firewall, generate the NIC pipeline, flash it (here:
instantiate the simulated NIC), keep managing flow state from the host
through the standard eBPF map interface, and watch it hold 148 Mpps line
rate with microsecond latency.

Run:  python examples/firewall_offload.py
"""

from repro.apps import firewall
from repro.core import compile_program
from repro.core.resources import estimate_resources
from repro.ebpf.maps import MapSet
from repro.hwsim import NicSystem
from repro.net.flows import TrafficGenerator, TrafficSpec
from repro.ebpf.xdp import XdpAction
from repro.net.packet import FiveTuple, ipv4, udp_packet


def main() -> None:
    program = firewall.build()
    pipeline = compile_program(program)
    print(f"firewall pipeline: {pipeline.n_stages} stages, "
          f"max ILP {pipeline.max_ilp}")
    print(f"resources: {estimate_resources(pipeline).summary()}")

    # the host (control plane) decides which flows have connectivity
    maps = MapSet(program.maps)
    gen = TrafficGenerator(TrafficSpec(n_flows=500, packet_size=64, seed=7))
    allowed = gen.flows[:250]  # half of the flows get state
    for flow in allowed:
        firewall.allow_flow(maps, flow)
    print(f"\nhost installed {len(allowed)} flow entries")

    # flash the NIC and blast line-rate traffic at it
    nic = NicSystem(pipeline, maps=maps)
    frames = list(gen.packets(5000))
    report = nic.run_at_line_rate(frames)

    print("\n=== line-rate run ===")
    print(report.summary())
    print(f"forwarding latency: {nic.forwarding_latency_ns(report):.0f} ns")
    tx = report.count_action(XdpAction.TX)
    drop = report.count_action(XdpAction.DROP)
    print(f"forwarded {tx}, dropped {drop} "
          "(unknown flows are dropped by policy)")

    # live host interaction: the reverse path starts working the moment
    # the host installs state — no reflash, no downtime (§6)
    probe = FiveTuple(ipv4("203.0.113.9"), ipv4("10.0.0.1"), 17, 4444, 53)
    probe_frame = udp_packet(src_ip=probe.src_ip, dst_ip=probe.dst_ip,
                             sport=probe.sport, dport=probe.dport, size=64)
    before = nic.run_at_line_rate([probe_frame])
    firewall.allow_flow(maps, probe)
    after = nic.run_at_line_rate([probe_frame])
    print(f"\nprobe flow before host update: {before.records[0].action.name}")
    print(f"probe flow after  host update: {after.records[0].action.name}")
    print(f"its packet counter, read from the host: "
          f"{firewall.flow_counter(maps, probe)}")


if __name__ == "__main__":
    main()

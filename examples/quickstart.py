#!/usr/bin/env python3
"""Quickstart: from eBPF bytecode to a simulated hardware pipeline.

This walks the full eHDL flow on the paper's running example (Listing 1):

1. assemble the XDP program (the toy ethertype counter),
2. compile it into a hardware pipeline (Figure 8),
3. simulate packets through the pipeline at line rate,
4. read the results back through the host-side map interface,
5. emit the VHDL that would be handed to the FPGA toolchain.

Run:  python examples/quickstart.py
"""

from repro.apps import toy_counter
from repro.core import compile_program, hazard_summary
from repro.core.resources import estimate_resources
from repro.core.vhdl import emit_vhdl
from repro.ebpf.disasm import disassemble
from repro.ebpf.maps import MapSet
from repro.hwsim import PipelineSimulator


def main() -> None:
    # 1. the input: unmodified eBPF bytecode
    program = toy_counter.build()
    print("=== input eBPF program (Listing 2) ===")
    print(disassemble(program.instructions))

    # 2. compile to a hardware pipeline
    pipeline = compile_program(program)
    print("\n=== generated pipeline (Figure 8) ===")
    print(pipeline.summary())
    print(f"\nbounds checks elided: {pipeline.elided_bounds_checks}, "
          f"dead instructions removed: {pipeline.dce_removed}")
    print(f"max per-stage state: {pipeline.max_state_bytes} B "
          "(the paper's 88 B)")
    print(hazard_summary(pipeline))

    # 3. simulate traffic: one packet per clock cycle (line rate)
    maps = MapSet(program.maps)
    sim = PipelineSimulator(pipeline, maps=maps)
    frames = [toy_counter.packet_for_key(k % 4) for k in range(1000)]
    report = sim.run_packets(frames)
    print("\n=== simulation at line rate ===")
    print(report.summary())

    # 4. host-side view of the stats map (the userspace eBPF interface)
    stats = maps.by_name("stats")
    print("\nper-ethertype counters (host map reads):")
    for key in range(4):
        value = int.from_bytes(stats.lookup(key.to_bytes(4, "little")), "little")
        print(f"  key {key}: {value}")

    # 5. resources + VHDL output
    est = estimate_resources(pipeline)
    print(f"\nestimated FPGA resources (Alveo U50): {est.summary()}")
    vhdl = emit_vhdl(pipeline)
    print(f"\nVHDL output: {len(vhdl.splitlines())} lines; first stage entity:")
    for line in vhdl.splitlines():
        print(" ", line)
        if line.startswith("end entity") and "_stage_001" in line:
            break


if __name__ == "__main__":
    main()

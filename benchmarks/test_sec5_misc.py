"""§5.1 / §5.2 / §5.4 textual results: expressiveness, energy, pruning.

* §5.1 — SDNet cannot implement the DNAT; eHDL beats the processor-based
  systems by 10-100x in throughput.
* §5.2 — wall power: 80-85 W with the U50 regardless of the flashed
  design, 100-105 W with the Bf2.
* §5.4 — disabling state pruning costs +46% LUTs, +66% FFs, +123% BRAM
  on the running example's pipeline (without the Corundum overhead).
"""

import pytest

from conftest import print_table
from repro.analysis import bluefield_power, fpga_power
from repro.apps import EVALUATION_APPS, toy_counter
from repro.baselines import (
    P4_PORTS,
    SdnetCompiler,
    SdnetUnsupportedError,
    compile_for_hxdp,
)
from repro.baselines.hxdp import HXDP_RESOURCES
from repro.core import CompileOptions, compile_program
from repro.core.resources import estimate_resources


class TestSec51Expressiveness:
    def test_sdnet_cannot_express_dnat(self):
        with pytest.raises(SdnetUnsupportedError, match="data.plane"):
            SdnetCompiler().compile(P4_PORTS["dnat"]())

    def test_ehdl_compiles_all_five(self, pipelines):
        assert len(pipelines) == 5

    def test_bench_speedup_table(self, benchmark):
        def speedups():
            out = {}
            for name, mod in EVALUATION_APPS.items():
                hxdp = compile_for_hxdp(mod.build())
                out[name] = 148.8 / hxdp.throughput_mpps
            return out

        result = benchmark(speedups)
        print_table(
            "§5.1: eHDL speedup over hXDP",
            ["app", "speedup"],
            [[k, f"{v:.0f}x"] for k, v in result.items()],
        )
        assert all(10 <= v <= 300 for v in result.values())


class TestSec52Energy:
    @pytest.fixture(scope="class")
    def power_rows(self, pipelines):
        rows = []
        for name, pipe in pipelines.items():
            est = estimate_resources(pipe)
            rows.append(["eHDL/" + name, fpga_power(est.luts, 148.8).watts])
        rows.append(["hXDP", fpga_power(HXDP_RESOURCES.luts, 3.0).watts])
        rows.append(["Bf2 (4 cores)", bluefield_power(4, 10.0).watts])
        print_table("§5.2: wall power (W)", ["system", "watts"],
                    [[n, f"{w:.1f}"] for n, w in rows])
        return rows

    def test_u50_band(self, power_rows):
        fpga = [w for n, w in power_rows if n != "Bf2 (4 cores)"]
        assert all(78 <= w <= 87 for w in fpga)
        # "little variation" across flashed designs
        assert max(fpga) - min(fpga) < 3

    def test_bf2_band(self, power_rows):
        bf2 = dict((n, w) for n, w in power_rows)["Bf2 (4 cores)"]
        assert 98 <= bf2 <= 107

    def test_bench_power_model(self, benchmark, power_rows):
        benchmark(lambda: fpga_power(70_000, 148.8).nj_per_packet)


class TestSec54Pruning:
    @pytest.fixture(scope="class")
    def ablation(self):
        prog = toy_counter.build()
        pruned = estimate_resources(compile_program(prog), include_shell=False)
        unpruned = estimate_resources(
            compile_program(prog, CompileOptions(enable_pruning=False)),
            include_shell=False,
        )
        deltas = {
            "lut": unpruned.luts / pruned.luts - 1,
            "ff": unpruned.ffs / pruned.ffs - 1,
            "bram": unpruned.bram36 / pruned.bram36 - 1,
        }
        print_table(
            "§5.4: state pruning ablation (pipeline only, no shell)",
            ["resource", "pruned", "unpruned", "delta"],
            [
                ["LUT", pruned.luts, unpruned.luts, f"+{100 * deltas['lut']:.0f}%"],
                ["FF", pruned.ffs, unpruned.ffs, f"+{100 * deltas['ff']:.0f}%"],
                ["BRAM36", pruned.bram36, unpruned.bram36,
                 f"+{100 * deltas['bram']:.0f}%"],
            ],
        )
        return deltas

    def test_deltas_match_paper_shape(self, ablation):
        # paper: +46% LUT, +66% FF, +123% BRAM — same ordering, same scale
        assert 0.15 <= ablation["lut"] <= 0.9
        assert 0.25 <= ablation["ff"] <= 1.2
        assert 0.4 <= ablation["bram"] <= 2.5
        assert ablation["lut"] < ablation["ff"] < ablation["bram"]

    def test_bench_ablation(self, benchmark, ablation):
        prog = toy_counter.build()
        benchmark(
            lambda: estimate_resources(
                compile_program(prog, CompileOptions(enable_pruning=False)),
                include_shell=False,
            )
        )

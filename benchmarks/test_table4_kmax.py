"""Table 4: maximum flushable-stage count K_max sustaining 148 Mpps, per
hazard-window length L, under 50k Zipfian flows (Appendix A.1, Eq. 3).

Paper rows: L=2 -> P_f 1%, K_max 61; L=3 -> 3%, 21; L=4 -> 6%, 11;
L=5 -> 10%, 7.
"""

import pytest

from conftest import print_table
from repro.analysis import k_max, pipeline_throughput, table4, zipf_flush_probability


@pytest.fixture(scope="module")
def table4_rows():
    rows = table4(L_values=(2, 3, 4, 5), n_flows=50_000)
    print_table(
        "Table 4: K_max sustaining 148 Mpps (50k Zipfian flows)",
        ["L", "P_f^Z", "K_max"],
        [[r["L"], f"{100 * r['p_flush']:.1f}%", f"{r['k_max']:.0f}"]
         for r in rows],
    )
    return rows


def _check(rows):
    by_L = {r["L"]: r for r in rows}
    # probabilities near the paper's 1/3/6/10%
    assert 0.005 <= by_L[2]["p_flush"] <= 0.03
    assert 0.02 <= by_L[3]["p_flush"] <= 0.06
    assert 0.04 <= by_L[4]["p_flush"] <= 0.10
    assert 0.07 <= by_L[5]["p_flush"] <= 0.15
    # K_max near the paper's 61/21/11/7 and strictly decreasing
    assert 30 <= by_L[2]["k_max"] <= 80
    assert 12 <= by_L[3]["k_max"] <= 30
    assert 7 <= by_L[4]["k_max"] <= 16
    assert 4 <= by_L[5]["k_max"] <= 11
    ks = [r["k_max"] for r in rows]
    assert ks == sorted(ks, reverse=True)


class TestTable4:
    def test_shape(self, table4_rows):
        _check(table4_rows)

    def test_kmax_consistent_with_eq2(self, table4_rows):
        for row in table4_rows:
            tp = pipeline_throughput(row["k_max"], row["p_flush"])
            assert tp == pytest.approx(148.8, rel=0.01)

    def test_bench_model(self, benchmark, table4_rows):
        _check(table4_rows)
        benchmark(lambda: table4(L_values=(2, 3, 4, 5), n_flows=50_000))

"""Figure 8 + §4.4: the generated design for the running example
(Listing 1 / Listing 2).

Paper claims reproduced here:

* bounds-check instructions (Listing 1 lines 8-9) are absent,
* ~20 pipeline stages with ILP at most small for this control-heavy code,
* state pruning leaves most stages with 1 register, a few with 2-3,
* the stack shrinks to the 4-byte lookup key,
* the largest stage carries only 88 B of state (64 B frame + 3 registers)
  versus >2 KB unpruned.
"""

import pytest

from conftest import print_table
from repro.apps import toy_counter
from repro.core import CompileOptions, compile_program


@pytest.fixture(scope="module")
def fig8():
    pipeline = compile_program(toy_counter.build())
    print("\n=== Figure 8: generated pipeline for the running example ===")
    print(pipeline.summary())
    hist = {}
    for stage in pipeline.stages:
        hist[len(stage.live_in_regs)] = hist.get(len(stage.live_in_regs), 0) + 1
    stack_stages = sum(1 for s in pipeline.stages if s.live_in_stack)
    print(f"register histogram: {dict(sorted(hist.items()))}  "
          f"stages with stack: {stack_stages}  "
          f"max state: {pipeline.max_state_bytes} B")
    return pipeline, hist, stack_stages


def _check(fig8):
    pipeline, hist, stack_stages = fig8
    assert pipeline.elided_bounds_checks == 1
    assert 12 <= pipeline.n_stages <= 24  # paper: 20
    assert pipeline.max_state_bytes == 88  # paper: exactly 88 B
    assert max(hist) <= 3  # at most 3 live registers anywhere
    assert hist.get(1, 0) >= pipeline.n_stages // 3  # mostly 1-register stages
    # stack only where the key lives, 4 bytes wide
    for stage in pipeline.stages:
        for _off, size in stage.live_in_stack:
            assert size == 4
    assert 0 < stack_stages < pipeline.n_stages


class TestFigure8:
    def test_structure(self, fig8):
        _check(fig8)

    def test_unpruned_exceeds_2kb(self):
        # §2.4: "each stage requires over 2KB of memory" without pruning
        # (1500 B packet + 512 B stack + 88 B registers). With 64 B framing
        # but no pruning the state is still ~0.6 KB per stage.
        unpruned = compile_program(
            toy_counter.build(),
            CompileOptions(enable_pruning=False),
        )
        assert unpruned.max_state_bytes >= 64 + 512 + 80

    def test_vhdl_matches_figure(self, fig8):
        from repro.core.vhdl import emit_vhdl

        pipeline, _, _ = fig8
        text = emit_vhdl(pipeline)
        assert text.count("_stage_") >= pipeline.n_stages

    def test_bench_toy_compile(self, benchmark, fig8):
        _check(fig8)
        prog = toy_counter.build()
        benchmark(lambda: compile_program(prog))

"""Validation of the Appendix A.1 analytical model against measurement.

The paper derives the flushing probability and throughput equations
analytically and notes that "the actual degradation of the throughput is
much less significant than the one foreseen from this model" under real
traces. Here we close the loop quantitatively: sweep the flow count for
the RMW-router pipeline (a genuine lookup→store RAW window), measure the
flush probability and throughput in the cycle-level simulator at full
offered load, and compare against the model's prediction for the same
(K, L, N).
"""

import pytest

from conftest import print_table
from repro.analysis import pipeline_throughput, zipf_flush_probability
from repro.apps import router
from repro.core import compile_program
from repro.ebpf.maps import MapSet
from repro.hwsim import PipelineSimulator, SimOptions
from repro.net.flows import TrafficGenerator, TrafficSpec
from repro.net.packet import ipv4, mac

FLOW_COUNTS = (200, 2_000, 20_000)
N_PACKETS = 4_000


def _measure(n_flows: int):
    """The RMW router under Zipfian traffic at back-to-back injection.

    Its stats counter is a single entry, so every packet shares one slot
    and flushes depend only on the read->write window timing; the flow
    count enters through the *leaky-bucket-style* per-flow variant below.
    Instead we use the leaky bucket, whose buckets are per-flow keys.
    """
    from repro.apps import leaky_bucket

    prog = leaky_bucket.build()
    pipeline = compile_program(prog)
    gen = TrafficGenerator(TrafficSpec(
        n_flows=n_flows, distribution="zipf", packet_size=64, seed=9,
    ))
    sim = PipelineSimulator(prog and pipeline, maps=MapSet(prog.maps),
                            options=SimOptions(keep_records=False))
    report = sim.run_packets(list(gen.packets(N_PACKETS)))
    worst = max(
        (fb for plan in pipeline.map_hazards.values()
         for fb in plan.flush_blocks),
        key=lambda fb: fb.L,
    )
    measured_p = report.flush_events / max(1, report.packets_out)
    predicted_p = zipf_flush_probability(worst.L, n_flows)
    return {
        "L": worst.L,
        "K": worst.write_stage - 1 + 4,
        "measured_p": measured_p,
        "predicted_p": predicted_p,
        "measured_mpps": report.throughput_mpps,
        "predicted_mpps": pipeline_throughput(worst.write_stage - 1 + 4,
                                              predicted_p),
    }


@pytest.fixture(scope="module")
def validation():
    rows = {n: _measure(n) for n in FLOW_COUNTS}
    print_table(
        "Model validation: leaky bucket, Zipfian flows, saturating load",
        ["flows", "P_f measured", "P_f model", "Mpps measured", "Mpps model"],
        [
            [n, f"{r['measured_p']:.3f}", f"{r['predicted_p']:.3f}",
             f"{r['measured_mpps']:.1f}", f"{r['predicted_mpps']:.1f}"]
            for n, r in rows.items()
        ],
    )
    return rows


def _check(rows):
    values = [rows[n] for n in FLOW_COUNTS]
    # both model and measurement improve with more flows
    measured = [r["measured_p"] for r in values]
    predicted = [r["predicted_p"] for r in values]
    assert measured == sorted(measured, reverse=True)
    assert predicted == sorted(predicted, reverse=True)
    for r in values:
        # same order of magnitude: the model is a coarse upper-shape, and
        # the paper itself observed measurements come in *below* it
        if r["predicted_p"] > 0.01:
            ratio = r["measured_p"] / r["predicted_p"]
            assert 0.1 <= ratio <= 3.0, r
        # throughput: measured within a factor ~2.5 of the prediction
        assert r["measured_mpps"] >= 0.4 * r["predicted_mpps"], r


class TestModelValidation:
    def test_shape(self, validation):
        _check(validation)

    def test_bench_measurement(self, benchmark, validation):
        _check(validation)
        benchmark(lambda: _measure(500))

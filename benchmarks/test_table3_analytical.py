"""Table 3: analytical pipeline throughput under flushing, per use case,
at 50k Zipfian flows (Appendix A.1).

Paper rows: Simple firewall N/A; Tunnel K=109 L=2 (120 Mpps); Router
K=41 L=2 (178 Mpps); DNAT K=33 L=51 (N/A — flushes only on new flows);
Suricata K=59 L=3 (91 Mpps); Leaky bucket K=39 L=5 (52 Mpps).

As in the paper, the flushing numbers for firewall/router/tunnel/suricata
describe the *non-atomic* variant of their global-state updates ("for
many of the use case in the table, the atomic primitive could be also
used to avoid flushing"); the deployed designs use the atomic block and
run at line rate (Figure 9a).
"""

import pytest

from conftest import print_table
from repro.analysis import analyze_pipeline
from repro.apps import dnat, firewall, leaky_bucket, router, suricata, tunnel
from repro.core import compile_program

N_FLOWS = 50_000


def _build_variants():
    return {
        "firewall": compile_program(firewall.build()),  # atomics only: N/A
        "tunnel": compile_program(tunnel.build(use_atomic=False)),
        "router": compile_program(router.build(use_atomic=False)),
        "dnat": compile_program(dnat.build()),
        "suricata": compile_program(suricata.build(use_atomic=False)),
        "leaky_bucket": compile_program(leaky_bucket.build()),
    }


@pytest.fixture(scope="module")
def table3():
    rows = {}
    for name, pipeline in _build_variants().items():
        rows[name] = analyze_pipeline(pipeline, n_flows=N_FLOWS)
    print_table(
        "Table 3: analytical throughput, 50k Zipfian flows",
        ["program", "K", "L", "T_p (Mpps)"],
        [
            [name,
             a.K if a.applicable else "N/A",
             a.L if a.applicable else "N/A",
             f"{a.throughput_mpps:.0f}" if a.applicable else "N/A"]
            for name, a in rows.items()
        ],
    )
    return rows


def _check(rows):
    # Simple firewall uses only atomics: no flushable hazard (paper: N/A)
    assert not rows["firewall"].applicable
    for name in ("tunnel", "router", "suricata", "leaky_bucket", "dnat"):
        assert rows[name].applicable, name
    # small hazard windows for the counter-style programs (paper: L=2..5)
    for name in ("tunnel", "router", "suricata"):
        assert 2 <= rows[name].L <= 8, name
    # the data-plane-insert programs (DNAT, leaky bucket) have much longer
    # windows than the counter updates (paper: DNAT L=51 vs 2-3)
    counter_worst = max(rows[n].L for n in ("tunnel", "router", "suricata"))
    assert rows["dnat"].L > counter_worst
    assert rows["leaky_bucket"].L > counter_worst
    # under Zipfian flows the counter programs land well below the 250 Mpps
    # theoretical rate but still tens of Mpps (paper: 91-178 Mpps)
    for name in ("tunnel", "router", "suricata"):
        assert 20 <= rows[name].throughput_mpps <= 240, name
    # the long-window programs degrade the hardest (paper: leaky 52 Mpps)
    assert 5 <= rows["leaky_bucket"].throughput_mpps <= 100
    assert 5 <= rows["dnat"].throughput_mpps <= 100
    # K spans the pipeline prefix: always larger than L
    for name, a in rows.items():
        if a.applicable:
            assert a.K > a.L, name


class TestTable3:
    def test_shape(self, table3):
        _check(table3)

    def test_more_flows_less_flushing(self):
        pipe = compile_program(router.build(use_atomic=False))
        few = analyze_pipeline(pipe, n_flows=1_000)
        many = analyze_pipeline(pipe, n_flows=1_000_000)
        assert many.throughput_mpps > few.throughput_mpps

    def test_bench_analysis(self, benchmark, table3):
        _check(table3)
        pipe = compile_program(leaky_bucket.build())
        benchmark(lambda: analyze_pipeline(pipe, n_flows=N_FLOWS))

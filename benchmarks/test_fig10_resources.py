"""Figure 10: FPGA resource utilization (LUT / FF / BRAM, % of the Alveo
U50) for eHDL, hXDP and SDNet on the five applications.

Paper result: eHDL designs use 6.5%-13.3% of the FPGA (Corundum included),
roughly comparable to the fixed hXDP processor and significantly below the
SDNet designs, whose generic parser/table engines cost 2-4x more.
"""

import pytest

from conftest import print_table
from repro.apps import EVALUATION_APPS
from repro.baselines import P4_PORTS, SdnetCompiler, SdnetUnsupportedError
from repro.baselines.hxdp import HXDP_RESOURCES
from repro.core.resources import estimate_resources


@pytest.fixture(scope="module")
def figure10(pipelines):
    sdnet = SdnetCompiler()
    rows = {}
    for name in EVALUATION_APPS:
        ehdl = estimate_resources(pipelines[name])
        try:
            sd = sdnet.compile(P4_PORTS[name]()).resources()
        except SdnetUnsupportedError:
            sd = None
        rows[name] = {"ehdl": ehdl, "hxdp": HXDP_RESOURCES, "sdnet": sd}

    def fmt(est, attr):
        return "n/a" if est is None else f"{getattr(est, attr):.2f}"

    for attr, label in (("lut_pct", "a: LUTs"), ("ff_pct", "b: Flip-Flops"),
                        ("bram_pct", "c: BRAM")):
        print_table(
            f"Figure 10{label} (% of Alveo U50)",
            ["app", "eHDL", "hXDP", "SDNet"],
            [[name, fmt(r["ehdl"], attr), fmt(r["hxdp"], attr),
              fmt(r["sdnet"], attr)] for name, r in rows.items()],
        )
    return rows


def _check(rows):
    for name, row in rows.items():
        ehdl = row["ehdl"]
        # the paper's 6.5%-13.3% overall-utilisation band
        assert 5.0 <= ehdl.max_pct <= 15.0, f"{name}: {ehdl.summary()}"
        # hXDP footprint is program-independent
        assert row["hxdp"] is HXDP_RESOURCES
        if row["sdnet"] is not None:
            assert row["sdnet"].luts > 1.3 * ehdl.luts, name
            assert row["sdnet"].ffs > ehdl.ffs, name
    assert rows["dnat"]["sdnet"] is None
    # eHDL tailoring: resources vary by program (unlike hXDP)
    luts = [r["ehdl"].luts for r in rows.values()]
    assert max(luts) > 1.2 * min(luts)


class TestFigure10:
    def test_shape(self, figure10):
        _check(figure10)

    def test_bench_resource_estimation(self, benchmark, figure10, pipelines):
        _check(figure10)
        benchmark(lambda: estimate_resources(pipelines["dnat"]))

"""Table 2 + §5.3: leaky-bucket flushing under realistic traces.

Paper result: replaying CAIDA/MAWI traces at 100 Gbps through the Leaky
Bucket — whose read-modify-write of per-flow (time, level) state cannot
use atomics — loses **zero packets** while flushing at most a few hundred
thousand times per second. The §5.3 worst case (every packet in a single
flow) degrades the achievable rate from ~29 Mpps offered to ~12 Mpps.
"""

import pytest

from conftest import print_table
from repro.apps import leaky_bucket
from repro.core import compile_program
from repro.ebpf.maps import MapSet
from repro.hwsim import NicSystem
from repro.net.traces import caida_like, mawi_like

N_PACKETS = 12_000  # scaled-down replay window (the rates are per-second)


def _replay(trace):
    prog = leaky_bucket.build()
    pipeline = compile_program(prog)
    nic = NicSystem(pipeline, maps=MapSet(prog.maps), keep_records=False)
    report = nic.replay_trace(trace)
    return pipeline, report


@pytest.fixture(scope="module")
def table2():
    rows = {}
    for trace in (caida_like(N_PACKETS), mawi_like(N_PACKETS)):
        pipeline, report = _replay(trace)
        stats = trace.stats()
        rows[trace.name] = {
            "lost": report.packets_dropped_queue,
            "flushes_per_sec": report.flushes_per_second(),
            "trace_mean_size": stats.mean_size,
            "trace_flows": stats.flows,
            "report": report,
        }
    # §5.3 single-flow degradation: measure the *maximum achieved
    # throughput* (saturating injection) when every packet hits the same
    # map entry, versus the 29 Mpps a 100 Gbps replay of the trace offers.
    from repro.net.packet import udp_packet

    prog = leaky_bucket.build()
    pipeline = compile_program(prog)
    nic = NicSystem(pipeline, maps=MapSet(prog.maps), keep_records=False)
    frame = udp_packet(src_ip="10.0.0.1", sport=1000, size=64)
    degraded = nic.run_at_line_rate([frame] * 3000)
    offered_mpps = 100_000 / (8 * (411 + 24))  # 100 Gbps of 411 B frames
    rows["single-flow"] = {
        "lost": degraded.packets_dropped_queue,
        "flushes_per_sec": degraded.flushes_per_second(),
        "achieved_mpps": degraded.throughput_mpps,
        "offered_mpps": offered_mpps,
        "report": degraded,
    }
    print_table(
        "Table 2: leaky bucket under trace replay @ 100 Gbps",
        ["trace", "lost packets", "flushes/sec"],
        [[name, r["lost"], f"{r['flushes_per_sec']:,.0f}"]
         for name, r in rows.items() if name != "single-flow"],
    )
    single_row = rows["single-flow"]
    print(f"§5.3 single-flow worst case: trace offers {single_row['offered_mpps']:.1f}"
          f" Mpps -> max achieved {single_row['achieved_mpps']:.1f} Mpps"
          f" ({single_row['flushes_per_sec']:,.0f} flushes/sec)")
    return rows


def _check(rows):
    for name in ("caida-like", "mawi-like"):
        row = rows[name]
        assert row["lost"] == 0, f"{name} lost packets"
        # "in any case below 350k" flushes per second
        assert row["flushes_per_sec"] < 600_000, name
    single = rows["single-flow"]
    # paper: max achieved degrades from the 29 Mpps the trace offers to
    # ~12 Mpps under continuous flushing
    assert single["achieved_mpps"] < 0.75 * single["offered_mpps"]
    assert 8 <= single["achieved_mpps"] <= 22
    # realistic traces flush far less than the pathological case
    assert (rows["caida-like"]["flushes_per_sec"]
            < single["flushes_per_sec"])


class TestTable2:
    def test_shape(self, table2):
        _check(table2)

    def test_mean_sizes_match_paper(self, table2):
        assert abs(table2["caida-like"]["trace_mean_size"] - 411) < 45
        assert abs(table2["mawi-like"]["trace_mean_size"] - 573) < 55

    def test_bench_trace_replay(self, benchmark, table2):
        _check(table2)
        small = caida_like(1500)
        benchmark(lambda: _replay(small))

"""Shared fixtures for the paper-reproduction benchmarks.

Each ``test_*`` module regenerates one table or figure of the paper
(see DESIGN.md's experiment index). Compiled pipelines and traffic are
cached per session; benchmark timings cover the interesting computation
(simulation or compilation), and every module *prints* the rows it
reproduces so `pytest benchmarks/ --benchmark-only -s` doubles as the
results generator for EXPERIMENTS.md.
"""

import pytest

from repro.apps import EVALUATION_APPS, dnat, firewall, router, suricata, tunnel
from repro.core import compile_program
from repro.ebpf.maps import MapSet
from repro.net.packet import FiveTuple, ipv4, mac, udp_packet
from repro.net.flows import TrafficGenerator, TrafficSpec

LINE_RATE_MPPS = 148.8


@pytest.fixture(scope="session")
def pipelines():
    """Compiled eHDL pipelines for the five evaluation applications."""
    return {name: compile_program(mod.build())
            for name, mod in EVALUATION_APPS.items()}


def setup_app_maps(name: str, maps: MapSet, flows):
    """Install the host-side state each application needs so that the
    generated traffic takes the interesting (stateful) path."""
    if name == "firewall":
        for flow in flows:
            firewall.allow_flow(maps, flow)
    elif name == "router":
        seen = set()
        for flow in flows:
            prefix = flow.dst_ip >> 8
            if prefix not in seen:
                seen.add(prefix)
                router.add_route(
                    maps, flow.dst_ip, mac("02:0a:0b:0c:0d:0e"),
                    mac("02:01:02:03:04:05"), 3,
                )
    elif name == "tunnel":
        seen = set()
        for flow in flows:
            if flow.dst_ip not in seen:
                seen.add(flow.dst_ip)
                tunnel.add_tunnel(
                    maps, flow.dst_ip, ipv4("100.0.0.1"), ipv4("100.0.0.2"),
                    mac("02:11:22:33:44:55"), mac("02:66:77:88:99:aa"),
                )
    elif name == "suricata":
        for flow in flows[::7]:  # bypass a subset of flows
            suricata.add_bypass(maps, flow)
    # dnat needs no pre-installed state: it builds bindings in the data plane


@pytest.fixture(scope="session")
def traffic():
    """The §5.1 workload: many concurrent flows of 64 B packets."""
    gen = TrafficGenerator(TrafficSpec(n_flows=2000, packet_size=64, seed=42))
    frames = list(gen.packets(4000))
    return gen, frames


def print_table(title: str, headers, rows) -> None:
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows))
              for i, h in enumerate(headers)]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))

"""Table 5 (Appendix A.3): instruction-level parallelism per application.

Paper rows: Simple Firewall max 3 / avg 1.48; Tunnel 15 / 2.37; Router
5 / 1.54; DNAT 7 / 1.67; Suricata 3 / 1.42. "Each stage can grow to an
arbitrary amount of instruction parallelism … the average ILP … is
between 1.5 and 2.5, in line with the numbers reported by previous work."
"""

import pytest

from conftest import print_table
from repro.apps import EVALUATION_APPS
from repro.core import CompileOptions, compile_program


@pytest.fixture(scope="module")
def table5(pipelines):
    rows = {
        name: {"max": pipe.max_ilp, "avg": pipe.avg_ilp}
        for name, pipe in pipelines.items()
    }
    print_table(
        "Table 5: instruction-level parallelism",
        ["program", "max ILP", "avg ILP"],
        [[name, r["max"], f"{r['avg']:.2f}"] for name, r in rows.items()],
    )
    return rows


def _check(rows):
    for name, row in rows.items():
        assert row["max"] >= 2, name
        # average ILP band from the appendix (1.4 - 2.7)
        assert 1.2 <= row["avg"] <= 3.0, name
    # the Tunnel's header-store burst dominates (paper: max ILP 15)
    assert rows["tunnel"]["max"] == max(r["max"] for r in rows.values())
    assert rows["tunnel"]["max"] >= 10
    # control-heavy programs have modest width (paper: 3-7)
    for name in ("firewall", "suricata"):
        assert rows[name]["max"] <= 10, name


class TestTable5:
    def test_shape(self, table5):
        _check(table5)

    def test_ilp_is_the_scheduler_not_luck(self):
        # forcing 1-wide scheduling kills the ILP
        from repro.apps import tunnel

        narrow = compile_program(
            tunnel.build(), CompileOptions(enable_ilp=False, enable_fusion=False)
        )
        assert narrow.max_ilp == 1

    def test_bench_scheduling(self, benchmark, table5):
        _check(table5)
        from repro.apps import tunnel

        prog = tunnel.build()
        benchmark(lambda: compile_program(prog).max_ilp)

"""Figure 9c: eHDL pipeline stages vs hXDP VLIW instructions vs original
eBPF instruction count, per application.

Paper result: both compilers reduce the original instruction count,
sometimes by about 50%; the eHDL stage count tracks the hXDP bundle count
closely (same ILP extraction), modulo helper-block stages.
"""

import pytest

from conftest import print_table
from repro.apps import EVALUATION_APPS
from repro.baselines import compile_for_hxdp
from repro.core import compile_program


@pytest.fixture(scope="module")
def figure9c(pipelines):
    rows = {}
    for name, mod in EVALUATION_APPS.items():
        prog = mod.build()
        pipeline = pipelines[name]
        hxdp = compile_for_hxdp(prog)
        rows[name] = {
            "stages": pipeline.n_stages,
            "hxdp_instr": hxdp.vliw_instructions,
            "original": len(prog.instructions),
        }
    print_table(
        "Figure 9c: pipeline stages vs instruction counts",
        ["app", "eHDL stages", "hXDP instr", "original instr"],
        [[name, r["stages"], r["hxdp_instr"], r["original"]]
         for name, r in rows.items()],
    )
    return rows


def _check(rows):
    for name, row in rows.items():
        # both backends compress the original program
        assert row["stages"] < row["original"], name
        assert row["hxdp_instr"] < row["original"], name
        # eHDL stages and hXDP bundles track each other (same ILP source);
        # eHDL may add helper-latency and framing stages on top
        assert 0.5 <= row["stages"] / row["hxdp_instr"] <= 2.0, name
    # at least one app compresses strongly (paper: "sometimes by about 50%")
    assert any(r["stages"] <= 0.6 * r["original"] for r in rows.values())


class TestFigure9c:
    def test_shape(self, figure9c):
        _check(figure9c)

    def test_bench_compilation(self, benchmark, figure9c):
        _check(figure9c)
        from repro.apps import tunnel

        prog = tunnel.build()
        benchmark(lambda: compile_program(prog))

"""Figure 9a: forwarding throughput (Mpps, log scale) of eHDL vs SDNet vs
hXDP vs Bluefield2 (1 and 4 cores) on the five applications.

Paper result: every eHDL pipeline forwards the full 148 Mpps line rate;
SDNet matches it on the four programs it can express (not DNAT); hXDP
manages 0.9-5.4 Mpps; Bf2 is comparable to hXDP per core, scaling
linearly. eHDL ends up 10-100x above the processor-based approaches.
"""

import pytest

from conftest import LINE_RATE_MPPS, print_table, setup_app_maps
from repro.apps import EVALUATION_APPS
from repro.baselines import (
    P4_PORTS,
    SdnetCompiler,
    SdnetUnsupportedError,
    compile_for_hxdp,
    model_bluefield,
)
from repro.ebpf.maps import MapSet
from repro.hwsim import NicSystem


def _ehdl_throughput(name, pipelines, traffic):
    gen, frames = traffic
    pipeline = pipelines[name]
    maps = MapSet(pipeline.program.maps)
    setup_app_maps(name, maps, gen.flows)
    nic = NicSystem(pipeline, maps=maps, keep_records=False)
    report = nic.run_at_line_rate(frames)
    return min(report.throughput_mpps, LINE_RATE_MPPS), report


def _check(figure9a):
    """Shape assertions shared by the plain and --benchmark-only runs."""
    for name, row in figure9a.items():
        assert row["ehdl"] >= 0.95 * LINE_RATE_MPPS, name
        assert row["report"].packets_dropped_queue == 0, name
        assert 0.5 <= row["hxdp"] <= 8, name
        assert 10 <= row["ehdl"] / row["hxdp"] <= 300, name
        assert 10 <= row["ehdl"] / row["bf2_1c"] <= 300, name
    assert figure9a["dnat"]["sdnet"] == "n/a"


@pytest.fixture(scope="module")
def figure9a(pipelines, traffic):
    gen, frames = traffic
    sample = frames[:8]
    rows = {}
    sdnet = SdnetCompiler()
    for name, mod in EVALUATION_APPS.items():
        ehdl_mpps, report = _ehdl_throughput(name, pipelines, traffic)
        try:
            sdnet_mpps = sdnet.compile(P4_PORTS[name]()).throughput_mpps
            sdnet_cell = f"{min(sdnet_mpps, LINE_RATE_MPPS):.1f}"
        except SdnetUnsupportedError:
            sdnet_cell = "n/a"
        hxdp = compile_for_hxdp(mod.build())
        bf1 = model_bluefield(mod.build(), sample, cores=1)
        bf4 = model_bluefield(mod.build(), sample, cores=4)
        rows[name] = {
            "ehdl": ehdl_mpps,
            "sdnet": sdnet_cell,
            "hxdp": hxdp.throughput_mpps,
            "bf2_1c": bf1.throughput_mpps,
            "bf2_4c": bf4.throughput_mpps,
            "report": report,
        }
    print_table(
        "Figure 9a: throughput (Mpps) @ 64B, 2k flows",
        ["app", "eHDL", "SDNet", "hXDP", "Bf2 1c", "Bf2 4c"],
        [
            [name, f"{r['ehdl']:.1f}", r["sdnet"], f"{r['hxdp']:.2f}",
             f"{r['bf2_1c']:.2f}", f"{r['bf2_4c']:.2f}"]
            for name, r in rows.items()
        ],
    )
    return rows


class TestFigure9a:
    def test_ehdl_sustains_line_rate(self, figure9a):
        for name, row in figure9a.items():
            assert row["ehdl"] >= 0.95 * LINE_RATE_MPPS, (
                f"{name}: {row['ehdl']:.1f} Mpps below line rate"
            )

    def test_no_packet_loss(self, figure9a):
        for name, row in figure9a.items():
            assert row["report"].packets_dropped_queue == 0, name

    def test_sdnet_line_rate_except_dnat(self, figure9a):
        assert figure9a["dnat"]["sdnet"] == "n/a"
        for name in ("firewall", "router", "tunnel", "suricata"):
            assert float(figure9a[name]["sdnet"]) >= 140

    def test_hxdp_band(self, figure9a):
        for name, row in figure9a.items():
            assert 0.5 <= row["hxdp"] <= 8, name

    def test_bf2_scaling(self, figure9a):
        for name, row in figure9a.items():
            assert row["bf2_4c"] == pytest.approx(4 * row["bf2_1c"], rel=1e-6)
        assert any(row["bf2_4c"] > 10 for row in figure9a.values())

    def test_10_to_100x_speedup(self, figure9a):
        for name, row in figure9a.items():
            assert 10 <= row["ehdl"] / row["hxdp"] <= 300, name
            assert 10 <= row["ehdl"] / row["bf2_1c"] <= 300, name

    def test_bench_ehdl_simulation(self, benchmark, figure9a, pipelines, traffic):
        _check(figure9a)
        gen, frames = traffic
        benchmark(lambda: _ehdl_throughput("router", pipelines,
                                           (gen, frames[:800])))

"""Figure 9b: per-packet forwarding latency (ns) of eHDL vs hXDP.

Paper result: both land near one microsecond for every application —
"the latency of eHDL and hXDP is in fact comparable since they both
leverage instruction-level parallelism in the same way" — with the
variation across applications explained by pipeline depth (Figure 9c).
"""

import pytest

from conftest import print_table, setup_app_maps
from repro.apps import EVALUATION_APPS
from repro.baselines import compile_for_hxdp
from repro.ebpf.maps import MapSet
from repro.hwsim import NicSystem


def _latency(name, pipelines, traffic):
    gen, frames = traffic
    pipeline = pipelines[name]
    maps = MapSet(pipeline.program.maps)
    setup_app_maps(name, maps, gen.flows)
    nic = NicSystem(pipeline, maps=maps)
    report = nic.run_at_line_rate(frames[:400])
    return nic.forwarding_latency_ns(report)


@pytest.fixture(scope="module")
def figure9b(pipelines, traffic):
    rows = {}
    for name, mod in EVALUATION_APPS.items():
        ehdl_ns = _latency(name, pipelines, traffic)
        hxdp = compile_for_hxdp(mod.build())
        shell_ns = NicSystem(pipelines[name]).shell.shell_latency_ns
        rows[name] = {
            "ehdl_ns": ehdl_ns,
            "hxdp_ns": hxdp.forwarding_latency_ns(shell_ns),
            "stages": pipelines[name].n_stages,
        }
    print_table(
        "Figure 9b: forwarding latency (ns)",
        ["app", "eHDL", "hXDP", "stages"],
        [[name, f"{r['ehdl_ns']:.0f}", f"{r['hxdp_ns']:.0f}", r["stages"]]
         for name, r in rows.items()],
    )
    return rows


def _check(rows):
    for name, row in rows.items():
        # "about 1 microsecond" for every application, both systems
        assert 700 <= row["ehdl_ns"] <= 1600, f"{name}: {row['ehdl_ns']}"
        assert 700 <= row["hxdp_ns"] <= 1600, f"{name}: {row['hxdp_ns']}"
        assert 0.5 <= row["ehdl_ns"] / row["hxdp_ns"] <= 2.0, name
    # deeper pipelines have higher latency
    by_depth = sorted(rows.values(), key=lambda r: r["stages"])
    assert by_depth[0]["ehdl_ns"] <= by_depth[-1]["ehdl_ns"]


class TestFigure9b:
    def test_latency_near_one_microsecond(self, figure9b):
        _check(figure9b)

    def test_bench_latency_measurement(self, benchmark, figure9b,
                                       pipelines, traffic):
        _check(figure9b)
        benchmark(lambda: _latency("firewall", pipelines, traffic))

"""Table 1: the evaluation application inventory.

Checks that each of the paper's five applications exists, verifies,
compiles, and matches its one-line description; also times a full
compile of the whole suite (the "few seconds" claim of §6: "eHDL could
readily generate the hardware design … in few seconds").
"""

import time

import pytest

from conftest import print_table
from repro.apps import EVALUATION_APPS
from repro.core import compile_program
from repro.ebpf.verifier import verify

DESCRIPTIONS = {
    "firewall": "checks the bidirectional connectivity for UDP flows",
    "router": "parse pkt headers up to IP, look up in routing table and forward",
    "tunnel": "parse pkt up to L4, encapsulate and XDP_TX",
    "dnat": "an application performing dynamic source NAT",
    "suricata": "an Intrusion Detection System early filter",
}


@pytest.fixture(scope="module")
def table1(pipelines):
    rows = []
    for name, mod in EVALUATION_APPS.items():
        prog = mod.build()
        verify(prog)
        rows.append([name, len(prog.instructions), len(prog.maps),
                     pipelines[name].n_stages, DESCRIPTIONS[name]])
    print_table(
        "Table 1: applications used for evaluation",
        ["program", "instrs", "maps", "stages", "description"],
        rows,
    )
    return rows


def _check(rows):
    assert len(rows) == 5
    for name, n_instr, n_maps, n_stages, _desc in rows:
        assert n_instr > 20, name  # real programs, not stubs
        assert n_maps >= 1, name
        assert n_stages > 10, name


class TestTable1:
    def test_inventory(self, table1):
        _check(table1)

    def test_generation_takes_seconds_not_hours(self, table1):
        # §6: generating all designs takes seconds (synthesis is what
        # takes hours on a real FPGA flow)
        start = time.monotonic()
        for mod in EVALUATION_APPS.values():
            compile_program(mod.build())
        assert time.monotonic() - start < 30

    def test_bench_full_suite_compile(self, benchmark, table1):
        _check(table1)
        programs = [mod.build() for mod in EVALUATION_APPS.values()]
        benchmark(lambda: [compile_program(p) for p in programs])

"""Ablation benches for eHDL's design choices (beyond the paper's §5.4).

The paper motivates several mechanisms qualitatively; these benches
quantify each one on our implementation:

* **ILP scheduling + fusion** (§3.2/3.3) — pipeline depth (= latency and
  register cost) with and without them;
* **packet framing width** (§4.2) — 32/64/128-byte frames vs stage count
  and per-stage state;
* **bounds-check elision** (§4.4) — scheduled instruction savings;
* **atomic blocks vs flush** (§4.1.2) — measured line-rate throughput of
  the router's global counter implemented both ways.
"""

import pytest

from conftest import print_table
from repro.apps import EVALUATION_APPS, router, tunnel
from repro.core import CompileOptions, compile_program
from repro.core.resources import estimate_resources
from repro.ebpf.maps import MapSet
from repro.hwsim import NicSystem
from repro.net.packet import ipv4, mac, udp_packet


@pytest.fixture(scope="module")
def ilp_ablation():
    rows = []
    for name, mod in EVALUATION_APPS.items():
        prog = mod.build()
        full = compile_program(prog)
        no_fusion = compile_program(prog, CompileOptions(enable_fusion=False))
        serial = compile_program(
            prog, CompileOptions(enable_ilp=False, enable_fusion=False)
        )
        rows.append([name, full.n_stages, no_fusion.n_stages, serial.n_stages])
    print_table(
        "Ablation: pipeline depth vs scheduling features",
        ["app", "ILP+fusion", "ILP only", "serial"],
        rows,
    )
    return rows


@pytest.fixture(scope="module")
def framing_ablation():
    rows = []
    prog = tunnel.build()
    for frame in (32, 64, 128):
        pipe = compile_program(prog, CompileOptions(frame_size=frame))
        est = estimate_resources(pipe, include_shell=False)
        rows.append([frame, pipe.n_stages, pipe.max_state_bytes, est.ffs])
    print_table(
        "Ablation: frame size (tunnel)",
        ["frame B", "stages", "max state B", "FFs"],
        rows,
    )
    return rows


@pytest.fixture(scope="module")
def atomic_ablation():
    rows = []
    for use_atomic in (True, False):
        prog = router.build(use_atomic=use_atomic)
        pipe = compile_program(prog)
        maps = MapSet(prog.maps)
        router.add_route(maps, ipv4("192.168.1.1"), mac("02:00:00:00:01:01"),
                         mac("02:00:00:00:01:02"), 3)
        nic = NicSystem(pipe, maps=maps, keep_records=False)
        frames = [udp_packet(dst_ip="192.168.1.9", size=64)] * 2500
        report = nic.run_at_line_rate(frames)
        rows.append([
            "atomic block" if use_atomic else "lookup+store",
            f"{report.throughput_mpps:.1f}",
            report.flush_events,
        ])
    print_table(
        "Ablation: router global counter, atomic vs RMW (same flow key)",
        ["variant", "Mpps", "flushes"],
        rows,
    )
    return rows


def _check(ilp_rows, framing_rows, atomic_rows):
    for name, full, no_fusion, serial in ilp_rows:
        assert full <= no_fusion <= serial, name
        assert serial > 1.2 * full, name  # parallelism buys real depth
    frames = [r[0] for r in framing_rows]
    states = [r[2] for r in framing_rows]
    assert states == sorted(states)  # bigger frames carry more state
    by_variant = {r[0]: r for r in atomic_rows}
    atomic_mpps = float(by_variant["atomic block"][1])
    rmw_mpps = float(by_variant["lookup+store"][1])
    assert atomic_mpps > 1.5 * rmw_mpps  # §4.1.2's motivation, measured
    assert by_variant["atomic block"][2] == 0
    assert by_variant["lookup+store"][2] > 0


class TestAblations:
    def test_shapes(self, ilp_ablation, framing_ablation, atomic_ablation):
        _check(ilp_ablation, framing_ablation, atomic_ablation)

    def test_elision_saves_instructions(self):
        for name, mod in EVALUATION_APPS.items():
            prog = mod.build()
            with_elision = compile_program(prog)
            without = compile_program(
                prog, CompileOptions(elide_bounds_checks=False)
            )
            assert with_elision.n_instructions < without.n_instructions, name

    def test_bench_ablation_compiles(self, benchmark, ilp_ablation,
                                     framing_ablation, atomic_ablation):
        _check(ilp_ablation, framing_ablation, atomic_ablation)
        prog = tunnel.build()
        benchmark(
            lambda: compile_program(
                prog, CompileOptions(enable_ilp=False, enable_fusion=False)
            ).n_stages
        )

"""Simulator-throughput regression bench: fast path vs. interpreted.

Measures end-to-end simulated packets/second (simulator construction —
and therefore kernel compilation — excluded, matching a warm compile
cache) for the firewall and router applications, with the pre-compiled
stage kernels on and off. Writes ``BENCH_sim_throughput.json`` at the
repo root so future PRs can track the trajectory, and enforces the
floor this PR establishes: the fast path must stay >= 3x the
interpreted engine on the firewall.
"""

import json
import pathlib
import time

from conftest import print_table, setup_app_maps

from repro.apps import firewall, router
from repro.core import compile_program
from repro.ebpf.maps import MapSet
from repro.hwsim import PipelineSimulator, SimOptions
from repro.net.flows import TrafficGenerator, TrafficSpec

RESULT_PATH = pathlib.Path(__file__).parent.parent / "BENCH_sim_throughput.json"

N_PACKETS = 4000
MIN_SPEEDUP = 3.0


def _measure(name, program, frames, flows, fast):
    """One timed run; returns (report, packets_per_second)."""
    pipeline = compile_program(program)
    # best of two passes: the second run sees warm allocators/caches, so
    # the ratio is stable across noisy CI machines
    best = None
    for _ in range(2):
        maps = MapSet(program.maps)
        setup_app_maps(name, maps, flows)
        sim = PipelineSimulator(
            pipeline, maps=maps,
            options=SimOptions(fast=fast, keep_records=False),
        )
        start = time.perf_counter()
        report = sim.run_packets(frames)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best[1]:
            best = (report, elapsed)
    return best[0], len(frames) / best[1]


def _bench_app(name, program):
    gen = TrafficGenerator(TrafficSpec(n_flows=64, packet_size=64, seed=7))
    frames = list(gen.packets(N_PACKETS))
    flows = list(gen.flows)
    fast_rep, fast_pps = _measure(name, program, frames, flows, True)
    slow_rep, slow_pps = _measure(name, program, frames, flows, False)
    assert fast_rep.cycles == slow_rep.cycles
    assert fast_rep.action_counts == slow_rep.action_counts
    return {
        "app": name,
        "packets": N_PACKETS,
        "fast_pps": round(fast_pps),
        "interpreted_pps": round(slow_pps),
        "speedup": round(fast_pps / slow_pps, 2),
        "cycles": fast_rep.cycles,
    }


def test_fast_path_throughput_regression():
    rows = [
        _bench_app("firewall", firewall.build()),
        _bench_app("router", router.build()),
    ]
    RESULT_PATH.write_text(json.dumps({
        "benchmark": "sim_throughput",
        "packets_per_run": N_PACKETS,
        "results": rows,
    }, indent=2) + "\n")
    print_table(
        "simulator throughput (fast vs interpreted)",
        ["app", "fast pps", "interpreted pps", "speedup"],
        [[r["app"], f"{r['fast_pps']:,}", f"{r['interpreted_pps']:,}",
          f"{r['speedup']:.2f}x"] for r in rows],
    )
    firewall_row = rows[0]
    assert firewall_row["speedup"] >= MIN_SPEEDUP, (
        f"fast path regressed: {firewall_row['speedup']:.2f}x < "
        f"{MIN_SPEEDUP}x on the firewall"
    )

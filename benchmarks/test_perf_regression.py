"""Simulator-throughput regression bench across execution engines.

Measures end-to-end simulated packets/second (simulator construction —
and therefore kernel compilation — excluded, matching a warm compile
cache) for the firewall and router applications on each pipeline
engine from the :mod:`repro.hwsim.engines` registry: ``interpreted``
(per-op decode), ``fast`` (precompiled closure kernels) and ``codegen``
(generated, ``compile()``'d source). Writes
``BENCH_sim_throughput.json`` at the repo root so future PRs can track
the trajectory, and enforces two floors on the firewall: the fast path
must stay >= 3x the interpreted engine, and the codegen engine must
stay >= 5x the fast path.

The ``rtl_sim`` rows time the compiled-schedule RTL engine against the
delta-cycle interpreter on the full 4000-packet firewall and router
traces (interpreter extrapolated from a slice) and enforce a >= 100x
floor on the firewall; the telemetry row times the fast path with
metrics on vs off and records the overhead against its pre-batching
baseline.

Also times the multi-queue parallel engine at 1 vs. 4 workers on the
firewall and records the scaling ratio; the >= 2x floor at 4 workers is
enforced only on hosts that actually have >= 4 CPUs (fork + IPC overhead
makes parallel slower, not faster, on starved CI containers), and rows
measured on such hosts carry ``"inconclusive": true`` so readers of the
JSON don't mistake a starved-container number for a regression.
"""

import gc
import json
import os
import pathlib
import threading
import time

from conftest import print_table, setup_app_maps

from repro.apps import firewall, router
from repro.core import compile_program
from repro.ebpf.maps import MapSet
from repro.hwsim import (
    ParallelPipelineSimulator,
    PipelineSimulator,
    SimOptions,
    SimReport,
)
from repro.net.flows import TrafficGenerator, TrafficSpec
from repro.rtl import RtlRunner

RESULT_PATH = pathlib.Path(__file__).parent.parent / "BENCH_sim_throughput.json"

# Enough packets that the codegen engine's per-run setup cost is fully
# amortized; at small N the codegen/fast ratio under-reads its asymptote.
N_PACKETS = 20_000
MIN_SPEEDUP = 3.0
# codegen vs. fast floor on the firewall, established by the codegen
# backend PR (measured ~6x: constant-offset folding + the straight-line
# stream path)
MIN_CODEGEN_SPEEDUP = 5.0

PARALLEL_PACKETS = 20_000
PARALLEL_WORKERS = 4
MIN_PARALLEL_SCALING = 2.0

# Full bench trace on the compiled RTL engine; the delta-cycle
# interpreter runs a slice extrapolated linearly (its per-frame cost is
# constant: every frame is the same 25-cycle single-packet window).
RTL_PACKETS = 4000
RTL_INTERP_PACKETS = 200
RTL_ROUNDS = 3
# compiled-schedule vs interpreter floor on the firewall, established by
# the compiled RTL simulation PR (measured 101-116x across load
# conditions: levelized schedule + comb fusion + generated frame stepper)
MIN_RTL_SPEEDUP = 100.0
# telemetry_overhead_pct before the batched per-run observer (PR 8
# hoisted the enabled check and batched per-cycle increments); kept in
# the bench row as the before/after reference.
TELEMETRY_OVERHEAD_BEFORE_PCT = 12.0

SERVE_PACKETS = 20_000
SERVE_FLOWS = 100_000
SERVE_SWAPS = 3

# Second-generation app matrix: each app on its registered workload
# (repro.apps.APP_WORKLOADS — Zipfian, million-flow populations),
# truncated so the interpreted engine keeps the whole matrix cheap.
APP_MATRIX_PACKETS = 6_000


def _host_cpus():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _measure(name, program, frames, flows, engines):
    """Timed runs on several registry engines, interleaved.

    Passes are interleaved round-robin (codegen, fast, interpreted,
    codegen, ...) rather than run per-engine back to back, so a noisy
    neighbour on a starved CI host perturbs every engine's window about
    equally and the *ratios* stay stable even when the absolute numbers
    wander. Returns ``({engine: report}, {engine: best_pps})``.
    """
    pipeline = compile_program(program)
    reps = {}
    best = {}
    for _ in range(3):
        for engine in engines:
            maps = MapSet(program.maps)
            setup_app_maps(name, maps, flows)
            sim = PipelineSimulator(
                pipeline, maps=maps,
                options=SimOptions(engine=engine, keep_records=False),
            )
            start = time.perf_counter()
            report = sim.run_packets(frames)
            elapsed = time.perf_counter() - start
            if engine not in best or elapsed < best[engine]:
                best[engine] = elapsed
                reps[engine] = report
    return reps, {e: len(frames) / dt for e, dt in best.items()}


def _bench_app(name, program):
    gen = TrafficGenerator(TrafficSpec(n_flows=64, packet_size=64, seed=7))
    frames = list(gen.packets(N_PACKETS))
    flows = list(gen.flows)
    reps, pps = _measure(
        name, program, frames, flows, ("codegen", "fast", "interpreted")
    )
    # all three pipeline engines are executions of the same cycle-level
    # model: cycle counts and verdicts must match before pps means
    # anything
    for engine in ("fast", "interpreted"):
        assert reps["codegen"].cycles == reps[engine].cycles
        assert reps["codegen"].action_counts == reps[engine].action_counts
    # round-trip through the JSON codec so the BENCH row carries exactly
    # what a reader would get back out of it
    report_json = SimReport.from_json(reps["fast"].to_json()).to_json()
    return {
        "app": name,
        "packets": N_PACKETS,
        "codegen_pps": round(pps["codegen"]),
        "fast_pps": round(pps["fast"]),
        "interpreted_pps": round(pps["interpreted"]),
        "speedup": round(pps["fast"] / pps["interpreted"], 2),
        "codegen_speedup": round(pps["codegen"] / pps["fast"], 2),
        "cycles": reps["fast"].cycles,
        "report": report_json,
    }


def _measure_parallel(name, program, frames, flows, workers):
    """One timed parallel run; returns (ParallelReport, packets/second)."""
    pipeline = compile_program(program)
    best = None
    for _ in range(2):
        maps = MapSet(program.maps)
        setup_app_maps(name, maps, flows)
        sim = ParallelPipelineSimulator(
            pipeline, maps=maps,
            options=SimOptions(fast=True, keep_records=False),
            workers=workers,
        )
        start = time.perf_counter()
        result = sim.run_stream(frames)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best[1]:
            best = (result, elapsed)
    return best[0], len(frames) / best[1]


def _bench_parallel(name, program):
    gen = TrafficGenerator(TrafficSpec(n_flows=64, packet_size=64, seed=7))
    frames = list(gen.packets(PARALLEL_PACKETS))
    flows = list(gen.flows)
    single, single_pps = _measure_parallel(name, program, frames, flows, 1)
    multi, multi_pps = _measure_parallel(
        name, program, frames, flows, PARALLEL_WORKERS
    )
    # worker-count invariance: the merged parallel run must agree with
    # the single-queue run on actions and stay conflict-free
    assert multi.report.action_counts == single.report.action_counts
    assert multi.flow_partitionable
    host_cpus = _host_cpus()
    return {
        "app": name,
        "packets": PARALLEL_PACKETS,
        "workers": PARALLEL_WORKERS,
        "host_cpus": host_cpus,
        "single_worker_pps": round(single_pps),
        "parallel_pps": round(multi_pps),
        "scaling": round(multi_pps / single_pps, 2),
        # fewer CPUs than workers: the scaling number measures scheduler
        # contention, not the engine — flag it so trend readers discard it
        "inconclusive": host_cpus < PARALLEL_WORKERS,
    }


def _bench_telemetry_overhead(name, program):
    """Cost of the telemetry machinery on the fast path.

    The disabled path (the default — one ``is not None`` test per cycle)
    must be free; the enabled path pays for per-stage occupancy and the
    cycles-per-packet histogram, and both runs must retire identical
    packets."""
    gen = TrafficGenerator(TrafficSpec(n_flows=64, packet_size=64, seed=7))
    frames = list(gen.packets(N_PACKETS))
    flows = list(gen.flows)
    pipeline = compile_program(program)

    def run(telemetry_on):
        best = None
        for _ in range(2):
            maps = MapSet(program.maps)
            setup_app_maps(name, maps, flows)
            sim = PipelineSimulator(
                pipeline, maps=maps,
                options=SimOptions(fast=True, keep_records=False,
                                   telemetry=telemetry_on),
            )
            start = time.perf_counter()
            report = sim.run_packets(frames)
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best[1]:
                best = (report, elapsed)
        return best

    off_rep, off_dt = run(False)
    on_rep, on_dt = run(True)
    assert off_rep.metrics is None
    assert on_rep.metrics is not None
    assert off_rep.cycles == on_rep.cycles
    assert off_rep.action_counts == on_rep.action_counts
    assert on_rep.metrics.packet_cycle_count == on_rep.packets_out
    off_pps = len(frames) / off_dt
    on_pps = len(frames) / on_dt
    return {
        "app": name,
        "packets": N_PACKETS,
        "disabled_pps": round(off_pps),
        "enabled_pps": round(on_pps),
        "telemetry_overhead_pct": round((off_pps - on_pps) / off_pps * 100, 1),
    }


def _bench_rtl(name, program):
    """Compiled-schedule RTL simulation vs the delta-cycle interpreter.

    The compiled engine runs the full ``RTL_PACKETS`` bench trace; the
    interpreter — which re-walks the whole netlist every delta cycle by
    construction — runs a ``RTL_INTERP_PACKETS`` slice extrapolated
    linearly (per-frame cost is constant in the one-packet-in-flight
    regime: every frame is the same fixed-cycle window). Rounds are
    interleaved compiled/interp so a noisy host perturbs both engines
    about equally, and gc is paused around the timed regions — allocator
    pauses otherwise dominate the compiled engine's sub-second runs.
    The recorded speedup is best-of-rounds over best-of-rounds."""
    gen = TrafficGenerator(TrafficSpec(n_flows=16, packet_size=64, seed=7))
    frames = list(gen.packets(RTL_PACKETS))
    flows = list(gen.flows)
    pipeline = compile_program(program)

    def timed(engine, fr):
        maps = MapSet(program.maps)
        setup_app_maps(name, maps, flows)
        runner = RtlRunner(pipeline, maps=maps, engine=engine)
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            start = time.perf_counter()
            report = runner.run_packets(fr)
            return report, time.perf_counter() - start
        finally:
            if gc_was_enabled:
                gc.enable()

    compiled, interp = [], []
    for _ in range(RTL_ROUNDS):
        compiled.append(timed("rtl", frames))
        interp.append(timed("rtl-interp", frames[:RTL_INTERP_PACKETS]))
    report, c_best = min(compiled, key=lambda pair: pair[1])
    i_report, i_slice = min(interp, key=lambda pair: pair[1])
    i_best = i_slice * (RTL_PACKETS / RTL_INTERP_PACKETS)
    # Both engines simulate the same netlist; if they disagree on the
    # slice's verdicts the numbers below compare different computations
    # (bit-identity itself is covered by tests/test_rtl.py).
    assert i_report.packets_out == RTL_INTERP_PACKETS
    assert report.packets_out == RTL_PACKETS
    compiled_pps = RTL_PACKETS / c_best
    interp_pps = RTL_PACKETS / i_best
    return {
        "app": name,
        "engine": "rtl_sim",
        "packets": RTL_PACKETS,
        "interp_packets": RTL_INTERP_PACKETS,
        "n_stages": report.n_stages,
        "sim_cycles": report.cycles,
        "cycles_per_sec": round(report.cycles / c_best),
        "compiled_pps": round(compiled_pps, 1),
        "interp_pps": round(interp_pps, 1),
        "speedup": round(compiled_pps / interp_pps, 1),
    }


def _bench_app_matrix():
    """Throughput rows for the second-generation app suite, each on its
    registered Zipfian workload (million-flow populations where the
    :data:`repro.apps.APP_WORKLOADS` spec says so), across all three
    pipeline engines. The input queue is sized to the trace: the
    lru_hash apps carry serialization windows that make line-rate
    injection outrun drain, and a queue drop would silently shrink the
    measured work. Engine parity (cycles + verdicts) is asserted before
    any pps is recorded; the three-way vm/hwsim/rtl equivalence on the
    same workloads is enforced by tests/test_second_gen_apps.py and the
    CI app-matrix step."""
    import dataclasses

    from repro.apps import APP_WORKLOADS, SECOND_GEN_APPS
    from repro.workloads import make_workload, parse_workload_spec

    rows = []
    for name in sorted(SECOND_GEN_APPS):
        module = SECOND_GEN_APPS[name]
        program = module.build()
        pipeline = compile_program(program)
        spec = dataclasses.replace(
            parse_workload_spec(APP_WORKLOADS[name]),
            packets=APP_MATRIX_PACKETS,
        )
        frames = make_workload(spec).materialize()
        setup = getattr(module, "default_setup", None)
        reps = {}
        best = {}
        for _ in range(2):
            for engine in ("codegen", "fast", "interpreted"):
                maps = MapSet(program.maps)
                if setup is not None:
                    setup(maps)
                sim = PipelineSimulator(
                    pipeline, maps=maps,
                    options=SimOptions(engine=engine, keep_records=False,
                                       input_queue_capacity=len(frames)),
                )
                gc.collect()
                start = time.perf_counter()
                report = sim.run_packets(frames)
                elapsed = time.perf_counter() - start
                if engine not in best or elapsed < best[engine]:
                    best[engine] = elapsed
                    reps[engine] = report
        for engine in ("fast", "interpreted"):
            assert reps["codegen"].cycles == reps[engine].cycles, name
            assert (reps["codegen"].action_counts
                    == reps[engine].action_counts), name
        report = reps["codegen"]
        assert report.packets_dropped_queue == 0, name
        rows.append({
            "app": name,
            "workload": spec.describe(),
            "packets": APP_MATRIX_PACKETS,
            "workload_flows": spec.flows,
            "n_stages": pipeline.n_stages,
            "serial_windows": len(pipeline.serial_windows),
            "codegen_pps": round(APP_MATRIX_PACKETS / best["codegen"]),
            "fast_pps": round(APP_MATRIX_PACKETS / best["fast"]),
            "interpreted_pps": round(
                APP_MATRIX_PACKETS / best["interpreted"]),
            "cycles": report.cycles,
            "cycles_per_packet": round(
                report.cycles / APP_MATRIX_PACKETS, 2),
            "action_counts": dict(report.action_counts),
        })
    return rows


def _bench_serve():
    """Serving-daemon throughput and hot-swap latency.

    One :class:`~repro.serve.daemon.NicDaemon` streams a Zipfian synth
    feed through the two-slot NIC while a driver thread issues three
    live firewall hot-swaps through the control-plane ``submit`` path —
    so the measured wall time pays for batch dispatch, the drained-
    boundary synchronization, and the swaps themselves. The swap
    latency rows come from the daemon's own request-to-activation
    telemetry (cached compile + draining the in-flight batch). The run
    only counts if the offline segmented replay reproduces it
    bit-identically."""
    from repro.apps import toy_counter
    from repro.net.packet import ETH_P_IP
    from repro.serve import (
        FeedSpec,
        NicDaemon,
        ProgramSpec,
        ServeConfig,
        segmented_replay,
        verify_replay,
    )

    config = ServeConfig(
        programs=[
            ProgramSpec("bg", toy_counter.build()),
            ProgramSpec("fw", firewall.build(), ethertype=ETH_P_IP),
        ],
        feed=FeedSpec(source="synth", packets=SERVE_PACKETS,
                      flows=SERVE_FLOWS, distribution="zipf", seed=7),
        engine="codegen",
        batch_size=1024,
    )
    daemon = NicDaemon(config)

    def driver():
        # live same-program upgrades that keep the flow table — each
        # submit blocks until its swap lands at a drained boundary
        for _ in range(SERVE_SWAPS):
            daemon.submit({"op": "swap", "name": "fw",
                           "program": "app:firewall", "keep_maps": True})

    thread = threading.Thread(target=driver, daemon=True)
    start = time.perf_counter()
    thread.start()
    report = daemon.run()
    elapsed = time.perf_counter() - start
    thread.join(timeout=30)

    assert report["frames"] == SERVE_PACKETS
    latencies = report["swap_latencies_us"]
    assert len(latencies) == SERVE_SWAPS
    offline = segmented_replay(config, report, daemon.program_table)
    assert verify_replay(report, offline) == []
    return {
        "feed": config.feed.describe(),
        "packets": SERVE_PACKETS,
        "batch_size": config.batch_size,
        "engine": config.engine,
        "swaps": len(latencies),
        "serve_pps": round(SERVE_PACKETS / elapsed),
        "serve_swap_latency": {
            "unit": "us",
            "min": round(min(latencies)),
            "mean": round(sum(latencies) / len(latencies)),
            "max": round(max(latencies)),
        },
        "replay_bit_identical": True,
    }


def test_fast_path_throughput_regression():
    rows = [
        _bench_app("firewall", firewall.build()),
        _bench_app("router", router.build()),
    ]
    parallel_row = _bench_parallel("firewall", firewall.build())
    rtl_rows = [
        _bench_rtl("firewall", firewall.build()),
        _bench_rtl("router", router.build()),
    ]
    telemetry_row = _bench_telemetry_overhead("firewall", firewall.build())
    telemetry_row["overhead_pct_before_batching"] = \
        TELEMETRY_OVERHEAD_BEFORE_PCT
    matrix_rows = _bench_app_matrix()
    serve_row = _bench_serve()
    RESULT_PATH.write_text(json.dumps({
        "benchmark": "sim_throughput",
        "packets_per_run": N_PACKETS,
        "results": rows,
        "parallel": parallel_row,
        "rtl_sim": rtl_rows,
        "telemetry": telemetry_row,
        "app_matrix": matrix_rows,
        "serve": serve_row,
    }, indent=2) + "\n")
    print_table(
        "simulator throughput by engine",
        ["app", "codegen pps", "fast pps", "interpreted pps",
         "codegen/fast", "fast/interp"],
        [[r["app"], f"{r['codegen_pps']:,}", f"{r['fast_pps']:,}",
          f"{r['interpreted_pps']:,}", f"{r['codegen_speedup']:.2f}x",
          f"{r['speedup']:.2f}x"] for r in rows],
    )
    print_table(
        f"parallel engine ({PARALLEL_WORKERS} workers, "
        f"{parallel_row['host_cpus']} host cpus)",
        ["app", "1-worker pps", f"{PARALLEL_WORKERS}-worker pps", "scaling"],
        [[parallel_row["app"], f"{parallel_row['single_worker_pps']:,}",
          f"{parallel_row['parallel_pps']:,}",
          f"{parallel_row['scaling']:.2f}x"]],
    )
    print_table(
        "rtl simulation (elaborated VHDL netlist, compiled vs interp)",
        ["app", "stages", "sim cycles", "compiled pps", "interp pps",
         "speedup"],
        [[r["app"], r["n_stages"], f"{r['sim_cycles']:,}",
          f"{r['compiled_pps']:,}", f"{r['interp_pps']:,}",
          f"{r['speedup']:.1f}x"] for r in rtl_rows],
    )
    print_table(
        "telemetry overhead (fast path, enabled vs disabled)",
        ["app", "disabled pps", "enabled pps", "overhead", "before"],
        [[telemetry_row["app"], f"{telemetry_row['disabled_pps']:,}",
          f"{telemetry_row['enabled_pps']:,}",
          f"{telemetry_row['telemetry_overhead_pct']:.1f}%",
          f"{telemetry_row['overhead_pct_before_batching']:.1f}%"]],
    )
    print_table(
        f"second-generation app matrix ({APP_MATRIX_PACKETS:,} packets "
        "of each app's registered workload)",
        ["app", "stages", "windows", "cyc/pkt", "codegen pps",
         "fast pps", "interp pps"],
        [[r["app"], r["n_stages"], r["serial_windows"],
          f"{r['cycles_per_packet']:.2f}", f"{r['codegen_pps']:,}",
          f"{r['fast_pps']:,}", f"{r['interpreted_pps']:,}"]
         for r in matrix_rows],
    )
    lat = serve_row["serve_swap_latency"]
    print_table(
        f"serving daemon ({serve_row['swaps']} live hot-swaps, "
        "replay-verified)",
        ["packets", "batch", "serve pps", "swap lat min/mean/max (us)"],
        [[f"{serve_row['packets']:,}", serve_row["batch_size"],
          f"{serve_row['serve_pps']:,}",
          f"{lat['min']:,} / {lat['mean']:,} / {lat['max']:,}"]],
    )
    firewall_row = rows[0]
    assert firewall_row["speedup"] >= MIN_SPEEDUP, (
        f"fast path regressed: {firewall_row['speedup']:.2f}x < "
        f"{MIN_SPEEDUP}x on the firewall"
    )
    assert firewall_row["codegen_speedup"] >= MIN_CODEGEN_SPEEDUP, (
        f"codegen engine regressed: {firewall_row['codegen_speedup']:.2f}x "
        f"< {MIN_CODEGEN_SPEEDUP}x over the fast path on the firewall"
    )
    if not parallel_row["inconclusive"]:
        assert parallel_row["scaling"] >= MIN_PARALLEL_SCALING, (
            f"parallel engine regressed: {parallel_row['scaling']:.2f}x < "
            f"{MIN_PARALLEL_SCALING}x at {PARALLEL_WORKERS} workers"
        )
    rtl_firewall = rtl_rows[0]
    assert rtl_firewall["speedup"] >= MIN_RTL_SPEEDUP, (
        f"compiled RTL engine regressed: {rtl_firewall['speedup']:.1f}x < "
        f"{MIN_RTL_SPEEDUP}x over the interpreter on the firewall "
        f"{RTL_PACKETS}-packet trace"
    )

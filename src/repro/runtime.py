"""High-level runtime facade: load a program, get a NIC.

:class:`XdpOffload` bundles the whole workflow of §6 — "accelerating
Suricata took us about 1h … eHDL could readily generate the hardware
design … giving us an FPGA NIC-accelerated appliance. Here, it is worthy
of notice that even the interface with the host system stays unchanged"
— into one object:

>>> from repro.runtime import XdpOffload
>>> from repro.apps import toy_counter
>>> nic = XdpOffload(toy_counter.build())
>>> report = nic.process([toy_counter.packet_for_key(1)] * 100)
>>> nic.map("stats").read_u64(1)
100

The host keeps talking to the loaded maps through the standard eBPF map
interface (:class:`HostMap`), while packets flow through the simulated
hardware pipeline at line rate.
"""

from __future__ import annotations

import pathlib
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

from .core.compiler import CompileOptions, compile_program
from .core.pipeline import Pipeline
from .core.resources import ResourceEstimate, estimate_resources
from .ebpf.asm import assemble_program
from .ebpf.isa import Program
from .ebpf.maps import Map, MapSet
from .hwsim.shell import NicSystem, ShellConfig
from .hwsim.stats import SimReport

ProgramLike = Union[Program, str, pathlib.Path]


class HostMap:
    """Userspace view of one loaded map (the ``bpftool map`` experience).

    Keys and values may be raw ``bytes`` of the exact declared size, or
    plain integers (encoded little-endian at the declared width, like the
    common u32-key/u64-value counter maps).
    """

    def __init__(self, bpf_map: Map) -> None:
        self._map = bpf_map

    @property
    def name(self) -> str:
        return self._map.name

    @property
    def key_size(self) -> int:
        return self._map.key_size

    @property
    def value_size(self) -> int:
        return self._map.value_size

    def _key(self, key: Union[int, bytes]) -> bytes:
        if isinstance(key, int):
            return key.to_bytes(self._map.key_size, "little")
        return key

    def _value(self, value: Union[int, bytes]) -> bytes:
        if isinstance(value, int):
            return value.to_bytes(self._map.value_size, "little")
        return value

    def lookup(self, key: Union[int, bytes]) -> Optional[bytes]:
        return self._map.lookup(self._key(key))

    def read_u64(self, key: Union[int, bytes]) -> int:
        """Read a value as a little-endian integer (0 for missing keys)."""
        value = self.lookup(key)
        return int.from_bytes(value, "little") if value else 0

    def update(self, key: Union[int, bytes], value: Union[int, bytes]) -> None:
        self._map.update(self._key(key), self._value(value))

    def delete(self, key: Union[int, bytes]) -> bool:
        return self._map.delete(self._key(key))

    def __getitem__(self, key: Union[int, bytes]) -> bytes:
        value = self.lookup(key)
        if value is None:
            raise KeyError(key)
        return value

    def __setitem__(self, key: Union[int, bytes], value: Union[int, bytes]) -> None:
        self.update(key, value)

    def __contains__(self, key: Union[int, bytes]) -> bool:
        return self.lookup(key) is not None

    def items(self):
        return self._map.items()

    def __len__(self) -> int:
        return self._map.entry_count()


class XdpOffload:
    """A program loaded onto the simulated eHDL NIC.

    ``program`` may be a :class:`Program`, assembler source text (with
    ``.map`` directives), or a path to an ``.ebpf`` file.
    """

    def __init__(
        self,
        program: ProgramLike,
        options: Optional[CompileOptions] = None,
        shell: Optional[ShellConfig] = None,
        engine: Optional[str] = None,
    ) -> None:
        self.program = self._resolve(program)
        self.pipeline: Pipeline = compile_program(self.program, options)
        self.maps = MapSet(self.program.maps)
        self._nic = NicSystem(self.pipeline, maps=self.maps, shell=shell,
                              keep_records=True, engine=engine)
        self._last_report: Optional[SimReport] = None

    @staticmethod
    def _resolve(program: ProgramLike) -> Program:
        if isinstance(program, Program):
            return program
        if isinstance(program, pathlib.Path):
            from .cli import load_program

            return load_program(str(program))
        if isinstance(program, str) and "\n" not in program:
            path = pathlib.Path(program)
            if path.exists():
                from .cli import load_program

                return load_program(str(path))
        return assemble_program(str(program))

    # -- host map interface -----------------------------------------------------

    def map(self, name: str) -> HostMap:
        """The userspace handle for a loaded map."""
        return HostMap(self.maps.by_name(name))

    def map_names(self):
        return [m.name for m in self.maps.maps.values()]

    # -- traffic ------------------------------------------------------------------

    def process(
        self,
        frames: Sequence[bytes],
        rate_mpps: Optional[float] = None,
    ) -> SimReport:
        """Push frames through the NIC (line rate unless ``rate_mpps``)."""
        if rate_mpps is None:
            report = self._nic.run_at_line_rate(list(frames))
        else:
            report = self._nic.run_at_rate(list(frames), rate_mpps)
        self._last_report = report
        return report

    def process_one(self, frame: bytes):
        """Convenience: one frame in, its (action, bytes) out."""
        report = self.process([frame])
        record = report.records[0]
        return record.action, record.data

    def process_stream(
        self,
        frames: Iterable[bytes],
        gap: int = 1,
        batch_size: int = 256,
        on_batch: Optional[Callable[["XdpOffload", int], None]] = None,
    ) -> SimReport:
        """Stream an arbitrarily long frame iterable through the NIC in
        bounded memory (see :meth:`PipelineSimulator.run_stream`).

        **Host-map synchronization point.** :class:`HostMap` writes made
        *while* a stream runs are only well-defined at **drained batch
        boundaries**. Pass ``on_batch``: the stream is cut into
        ``batch_size``-frame batches, each batch runs to full pipeline
        drain, then ``on_batch(offload, batch_index)`` is called with no
        frame in flight. A write made inside the hook is observed by
        **every** frame of the next batch and by **none** of the batch
        just drained — identically under every execution engine. Without
        the hook the engines legitimately disagree on when a concurrent
        write lands: the codegen engine's straight-line stream path runs
        each packet to completion (a write between generator yields hits
        exactly at a packet boundary) while the cycle-level engines keep
        ``n_stages`` packets in flight that observe it at whatever stage
        they happen to occupy — and batch prefetching shifts generator
        side effects to arbitrary pipeline states.

        The simulator's cached per-fd map handles are invalidated at
        every boundary (:meth:`PipelineSimulator.invalidate_map_cache`),
        so the hook may even replace whole ``Map`` objects. Each drain
        costs ``n_stages`` extra cycles per batch relative to one
        continuous run; the returned report is the serial concatenation
        of the per-batch runs (:meth:`SimReport.merge_serial`), with
        per-packet records re-based onto one monotonic timeline.
        """
        if on_batch is None:
            report = self._nic.sim.run_stream(frames, gap=gap,
                                              batch_size=batch_size)
            self._last_report = report
            return report
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        from itertools import islice

        sim = self._nic.sim
        total: Optional[SimReport] = None
        it = iter(frames)
        index = 0
        while True:
            batch = list(islice(it, batch_size))
            if not batch:
                break
            sim.invalidate_map_cache()
            report = sim.run_packets(batch, gap=gap)
            if total is None:
                total = report
            else:
                total.merge_serial(report)
            on_batch(self, index)
            index += 1
        if total is None:
            total = SimReport(clock_mhz=self._nic.shell.clock_mhz,
                              n_stages=self.pipeline.n_stages)
        self._last_report = total
        return total

    # -- reports --------------------------------------------------------------------

    def latency_ns(self, report: Optional[SimReport] = None) -> float:
        if report is None:
            report = self._last_report
        if report is None:
            raise RuntimeError(
                "latency_ns: no report available — run process(), "
                "process_stream() or process_one() first, or pass a "
                "SimReport explicitly"
            )
        return self._nic.forwarding_latency_ns(report)

    def telemetry(self, registry=None) -> dict:
        """Snapshot of this offload's NIC-style counters.

        Publishes the last run's report (and the live pipeline metrics,
        when a telemetry-enabled run collected them) into ``registry`` —
        a fresh private one by default — and returns its snapshot dict.
        Use ``repro.telemetry.prometheus_text``/``chrome_trace`` on the
        registry for the exposition formats.
        """
        from .hwsim.stats import publish_report
        from .telemetry import Registry

        if registry is None:
            registry = Registry(enabled=True)
        if self._last_report is not None:
            publish_report(
                self._last_report, registry,
                app=self.program.name, engine="hwsim",
            )
        return registry.snapshot()

    def resources(self, include_shell: bool = True) -> ResourceEstimate:
        return estimate_resources(self.pipeline, include_shell=include_shell)

    def vhdl(self) -> str:
        from .core.vhdl import emit_vhdl

        return emit_vhdl(self.pipeline)

    def verify_rtl(self, frames: Sequence[bytes],
                   setup=None, ignore_maps: Sequence[str] = (),
                   rtl_engine: str = "rtl"):
        """Three-way differential over ``frames``: the reference VM, the
        pipeline simulator, and an RTL simulation of :meth:`vhdl`'s
        output must agree on every action, output byte, and final map
        entry. Returns a :class:`repro.rtl.diff.ThreeWayResult`; call
        ``raise_on_mismatch()`` to assert. Runs on fresh map sets (the
        loaded NIC's live state is not disturbed); ``setup(maps)`` seeds
        each leg the same way. ``rtl_engine`` picks the RTL leg's
        simulator: the compiled levelized schedule (``"rtl"``, default)
        or the delta-cycle interpreter (``"rtl-interp"``)."""
        from .rtl import run_three_way

        return run_three_way(
            self.program, list(frames), pipeline=self.pipeline,
            setup=setup, ignore_maps=ignore_maps, rtl_engine=rtl_engine,
        )

    def summary(self) -> str:
        est = self.resources()
        lines = [
            f"program {self.program.name!r}: "
            f"{len(self.program.instructions)} instructions, "
            f"{len(self.program.maps)} map(s)",
            f"pipeline: {self.pipeline.n_stages} stages, "
            f"max ILP {self.pipeline.max_ilp}, "
            f"max state {self.pipeline.max_state_bytes} B",
            f"resources: {est.summary()}",
        ]
        if self._last_report is not None:
            lines.append(
                f"last run: {self._last_report.packets_out} packets, "
                f"{self._last_report.throughput_mpps:.1f} Mpps, "
                f"{self.latency_ns():.0f} ns latency"
            )
        return "\n".join(lines)

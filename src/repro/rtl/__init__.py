"""RTL verification subsystem: parse, elaborate and simulate the VHDL
emitted by :mod:`repro.core.vhdl`.

The paper's shipped artifact is the generated VHDL pipeline; this package
closes the loop by *executing* it. The pipeline entities are parsed and
elaborated into a netlist of combinational assignments and clocked
processes, behavioural blocks (map blocks, helper blocks, the async
FIFOs, the ``ehdl_pkg`` functions) are bound to simulation primitives
backed by the same :class:`repro.ebpf.maps.MapSet` and helper
implementations the VM uses, and a two-phase clock-stepped simulator
drives the top level with real frames. :mod:`repro.rtl.diff` wires the
result into a three-way differential harness against
:class:`repro.hwsim.sim.PipelineSimulator` and :class:`repro.ebpf.vm.Vm`.
"""

from .errors import (RtlError, RtlParseError, RtlElabError, RtlSimError,
                     RtlCodegenError)
from .parser import parse_vhdl
from .elab import elaborate
from .codegen import RTL_CODEGEN_VERSION, generate_rtl_source
from .sim import (RTL_ENGINES, CompiledRtlSimulator, RtlSimulator,
                  RtlRunner, dump_schedule_source, load_design)
from .diff import ThreeWayResult, run_three_way

__all__ = [
    "RtlError",
    "RtlParseError",
    "RtlElabError",
    "RtlSimError",
    "RtlCodegenError",
    "RTL_CODEGEN_VERSION",
    "RTL_ENGINES",
    "parse_vhdl",
    "elaborate",
    "generate_rtl_source",
    "CompiledRtlSimulator",
    "RtlSimulator",
    "RtlRunner",
    "load_design",
    "dump_schedule_source",
    "ThreeWayResult",
    "run_three_way",
]

"""Three-way differential harness: VM vs pipeline simulator vs RTL.

The hwsim differential (:mod:`repro.hwsim.diff`) established VM ==
pipeline-simulator equivalence. This module closes the remaining gap to
the actual artifact: the *emitted VHDL*, parsed, elaborated and
simulated by :mod:`repro.rtl.sim`, must agree with both software legs on
every observable — per-packet XDP action, output bytes, and final map
contents. A bug anywhere in ``emit_vhdl`` (a wrong slice, a missing
carry, an unconnected port) surfaces as either an elaboration error or a
reported :class:`~repro.hwsim.diff.Mismatch`.

All three legs run with frozen helper time and the same deterministic
PRNG seed, so time- and randomness-dependent programs (e.g. the leaky
bucket policer) diff cleanly. Packets are spaced ``n_stages + 2`` cycles
apart on both hardware legs: with one packet in flight the pipeline is
sequentially consistent with the VM, which is the regime the RTL model
verifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..core.compiler import CompileOptions, compile_program
from ..core.pipeline import Pipeline
from ..ebpf.isa import Program
from ..ebpf.maps import MapSet
from ..ebpf.vm import Vm
from ..hwsim.diff import Mismatch
from ..hwsim.sim import PipelineSimulator, SimOptions
from ..hwsim.stats import SimReport
from .sim import RtlRunner

# Effectively freezes the per-cycle helper clock: cycle-to-nanosecond
# conversion rounds to zero for every realistic cycle count, so
# bpf_ktime_get_ns returns the same value on all legs.
_FROZEN_CLOCK_MHZ = 1e9


@dataclass
class ThreeWayResult:
    """Outcome of one three-way differential run."""

    packets: int
    mismatches: List[Mismatch] = field(default_factory=list)
    hw_report: Optional[SimReport] = None
    rtl_report: Optional[SimReport] = None

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def raise_on_mismatch(self) -> None:
        if self.mismatches:
            preview = "\n".join(str(m) for m in self.mismatches[:10])
            raise AssertionError(
                f"{len(self.mismatches)} mismatches in three-way "
                f"differential run:\n{preview}"
            )


def _leg_maps(program: Program, setup) -> MapSet:
    maps = MapSet(program.maps)
    if setup is not None:
        setup(maps)
    return maps


def run_three_way(
    program: Program,
    frames: Sequence[bytes],
    compile_options: Optional[CompileOptions] = None,
    pipeline: Optional[Pipeline] = None,
    time_ns: int = 0,
    setup=None,
    ignore_maps: Sequence[str] = (),
    vhdl_text: Optional[str] = None,
    engine: Optional[str] = None,
    rtl_engine: str = "rtl",
) -> ThreeWayResult:
    """Run ``frames`` through the VM, the pipeline simulator, and the
    RTL simulation of the emitted VHDL; compare everything observable.

    ``setup(maps)`` — if given — seeds each leg's fresh map set with the
    same host-installed state. ``vhdl_text`` lets callers diff an
    already-emitted (possibly hand-edited) design; by default the
    pipeline is re-emitted. ``engine`` selects the pipeline-simulator
    execution backend for the hwsim leg ("interpreted", "fast" or
    "codegen"; see :mod:`repro.hwsim.engines`); ``rtl_engine`` selects
    the RTL leg's simulation engine ("rtl" for the compiled levelized
    schedule, "rtl-interp" for the delta-cycle interpreter).
    """
    if pipeline is None:
        pipeline = compile_program(program, compile_options)
    frames = [bytes(f) for f in frames]
    gap = pipeline.n_stages + 2

    vm_maps = _leg_maps(program, setup)
    vm = Vm(program, maps=vm_maps, time_ns=time_ns)
    vm_results = [vm.run(f) for f in frames]
    # Flush the VM leg's opcode/helper counters (no-op when telemetry
    # was off during the runs above).
    vm.publish_telemetry()

    hw_maps = _leg_maps(program, setup)
    hw_sim = PipelineSimulator(
        pipeline, maps=hw_maps,
        options=SimOptions(clock_mhz=_FROZEN_CLOCK_MHZ, engine=engine),
        time_ns=time_ns,
    )
    hw_report = hw_sim.run_packets(list(frames), gap=gap)

    rtl_maps = _leg_maps(program, setup)
    rtl = RtlRunner(pipeline, maps=rtl_maps, time_ns=time_ns,
                    text=vhdl_text, engine=rtl_engine)
    rtl_report = rtl.run_packets(frames, gap=gap)

    result = ThreeWayResult(packets=len(frames), hw_report=hw_report,
                            rtl_report=rtl_report)
    hw_by_pid = {rec.pid: rec for rec in hw_report.records}
    rtl_by_pid = {rec.pid: rec for rec in rtl_report.records}
    for i, vm_res in enumerate(vm_results):
        for leg, by_pid in (("hw", hw_by_pid), ("rtl", rtl_by_pid)):
            rec = by_pid.get(i)
            if rec is None:
                result.mismatches.append(Mismatch(
                    i, f"missing from {leg}", vm_res.action, None
                ))
                continue
            if rec.action != vm_res.action:
                result.mismatches.append(Mismatch(
                    i, f"{leg} action", vm_res.action, rec.action
                ))
            if bytes(rec.data) != vm_res.packet:
                result.mismatches.append(Mismatch(
                    i, f"{leg} packet bytes", vm_res.packet.hex(),
                    bytes(rec.data).hex()
                ))
    ignored_fds = {vm_maps.fd_of(name) for name in ignore_maps}
    for fd in vm_maps:
        if fd in ignored_fds:
            continue
        vm_items = dict(vm_maps[fd].items())
        for leg, leg_maps in (("hw", hw_maps), ("rtl", rtl_maps)):
            leg_items = dict(leg_maps[fd].items())
            if vm_items != leg_items:
                diff_keys = [
                    k.hex() for k in set(vm_items) | set(leg_items)
                    if vm_items.get(k) != leg_items.get(k)
                ]
                result.mismatches.append(Mismatch(
                    -1,
                    f"{leg} map fd {fd} final state "
                    f"(keys {diff_keys[:4]})",
                    {k.hex(): v.hex()
                     for k, v in sorted(vm_items.items())},
                    {k.hex(): v.hex()
                     for k, v in sorted(leg_items.items())},
                ))
    return result

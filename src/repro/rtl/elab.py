"""Elaborate a parsed design into a flat netlist of compiled closures.

The entity hierarchy (top → stages / map blocks / helper blocks / FIFOs)
is flattened: ports alias the parent's nets (slice actuals become
bit-offset references), architecture signals allocate fresh nets, and
every concurrent assignment compiles into a closure over a shared value
table. Behavioural architectures (empty bodies) are bound to simulation
primitives supplied by a factory.

Combinational nodes are topologically ordered at elaboration time, so
the simulator evaluates each exactly once per cycle — which also lets
effectful primitives (map blocks mutate the shared ``MapSet``) commit in
deterministic program order. A combinational cycle is an elaboration
error naming the nets involved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from .ast import (
    Architecture,
    Bin,
    Call,
    ConcAssign,
    DesignFile,
    EntityDecl,
    IfStmt,
    Index,
    Instance,
    Lit,
    NameRef,
    OthersZero,
    Process,
    SeqAssign,
    SliceRef,
    Un,
    WhenElse,
)
from .errors import RtlElabError


@dataclass(frozen=True)
class Ref:
    """A bit range of one net: the unit of reading and writing."""

    net: int
    low: int
    width: int

    @property
    def mask(self) -> int:
        return (1 << self.width) - 1

    def get(self, values: List[int]) -> int:
        return (values[self.net] >> self.low) & self.mask

    def set(self, values: List[int], value: int) -> None:
        keep = values[self.net] & ~(self.mask << self.low)
        values[self.net] = keep | ((value & self.mask) << self.low)

    def sub(self, low: int, width: int) -> "Ref":
        return Ref(self.net, self.low + low, width)


@dataclass
class CombNode:
    """One combinational evaluation step."""

    fn: Callable[[List[int]], None]
    reads: Set[int]
    writes: Set[int]
    label: str = ""
    after: Optional["CombNode"] = None  # explicit ordering edge
    # Metadata retained for the compiled scheduler (rtl/codegen.py).
    # Pure assignments keep their AST + name scope; primitives declare
    # how they are gated instead (evaluate while ``gate`` reads 1, zero
    # the ``idle`` refs otherwise) or, for pure wire models, their port
    # refs so the scheduler can re-derive the wire equations.
    stmt: object = None
    scope: Optional[Dict[str, "Ref"]] = None
    where: str = ""
    gate: Optional["Ref"] = None
    idle: Optional[List["Ref"]] = None
    ports: Optional[Dict[str, "Ref"]] = None


@dataclass
class ClockedProcess:
    fn: Callable[[List[int], Dict[int, int]], None]
    label: str = ""
    # Retained for the compiled scheduler: statement list + name scope.
    body: object = None
    scope: Optional[Dict[str, "Ref"]] = None
    where: str = ""


class Elaborated:
    """Flat simulation model: nets, ordered comb nodes, clocked procs."""

    def __init__(self) -> None:
        self.net_widths: List[int] = []
        self.net_names: List[str] = []
        self.top_scope: Dict[str, Ref] = {}
        self.nodes: List[CombNode] = []
        # Longest-path level of each node, aligned with ``nodes`` (filled
        # by ``_order_nodes``; the compiled scheduler keys on it).
        self.node_ranks: List[int] = []
        self.procs: List[ClockedProcess] = []
        self.primitives: List[object] = []
        self.top_entity: Optional[EntityDecl] = None

    def new_net(self, name: str, width: int) -> Ref:
        idx = len(self.net_widths)
        self.net_widths.append(width)
        self.net_names.append(name)
        return Ref(idx, 0, width)


def _sign(value: int, width: int) -> int:
    if width and value & (1 << (width - 1)):
        return value - (1 << width)
    return value


# -- expression compilation --------------------------------------------------

#: compiled expression: (closure over values, bit width, kind)
#: kind: 'u' unsigned/slv bits, 's' signed bits, 'i' integer, 'b' boolean
_C = Tuple[Callable[[List[int]], int], int, str]


class _Compiler:
    def __init__(self, model: Elaborated, scope: Dict[str, Ref],
                 where: str) -> None:
        self.model = model
        self.scope = scope
        self.where = where
        self.reads: Set[int] = set()

    def err(self, message: str) -> RtlElabError:
        return RtlElabError(f"{self.where}: {message}")

    def ref_of(self, target) -> Ref:
        if isinstance(target, NameRef):
            name = target.name
        else:
            name = target.name
        base = self.scope.get(name)
        if base is None:
            raise self.err(f"undeclared signal {name!r}")
        if isinstance(target, NameRef):
            return base
        if isinstance(target, Index):
            if not 0 <= target.index < base.width:
                raise self.err(
                    f"{name}({target.index}) out of range "
                    f"(width {base.width})"
                )
            return base.sub(target.index, 1)
        if not (0 <= target.lo <= target.hi < base.width):
            raise self.err(
                f"{name}({target.hi} downto {target.lo}) out of range "
                f"(width {base.width})"
            )
        return base.sub(target.lo, target.hi - target.lo + 1)

    def compile(self, expr, expect_width: Optional[int] = None) -> _C:
        if isinstance(expr, Lit):
            value, width, kind = expr.value, expr.width, expr.kind
            return (lambda values: value), width, kind
        if isinstance(expr, OthersZero):
            if expect_width is None:
                raise self.err("(others => '0') in a context without a "
                               "known width")
            return (lambda values: 0), expect_width, "u"
        if isinstance(expr, (NameRef, Index, SliceRef)):
            ref = self.ref_of(expr)
            self.reads.add(ref.net)
            return ref.get, ref.width, "u"
        if isinstance(expr, Call):
            return self.compile_call(expr, expect_width)
        if isinstance(expr, Un):
            return self.compile_un(expr)
        if isinstance(expr, Bin):
            return self.compile_bin(expr)
        if isinstance(expr, WhenElse):
            return self.compile_when(expr, expect_width)
        raise self.err(f"cannot compile {type(expr).__name__}")

    def compile_call(self, expr: Call, expect_width: Optional[int]) -> _C:
        fn = expr.fn
        if fn == "rising_edge":
            # processes run exactly at the clock edge
            return (lambda values: 1), 0, "b"
        if fn in ("unsigned", "std_logic_vector"):
            f, w, _k = self.compile(expr.args[0], expect_width)
            return f, w, "u"
        if fn == "signed":
            f, w, _k = self.compile(expr.args[0], expect_width)
            return f, w, "s"
        if fn == "resize":
            f, w, k = self.compile(expr.args[0])
            nw = self._const(expr.args[1])
            mask = (1 << nw) - 1
            if k == "s":
                return (lambda values: _sign(f(values), w) & mask), nw, "s"
            return (lambda values: f(values) & mask), nw, "u"
        if fn in ("to_unsigned", "to_signed"):
            f, _w, _k = self.compile(expr.args[0])
            nw = self._const(expr.args[1])
            mask = (1 << nw) - 1
            kind = "u" if fn == "to_unsigned" else "s"
            return (lambda values: f(values) & mask), nw, kind
        if fn == "to_integer":
            f, w, k = self.compile(expr.args[0])
            if k == "s":
                return (lambda values: _sign(f(values), w)), 0, "i"
            return f, 0, "i"
        if fn in ("shift_left", "shift_right"):
            f, w, k = self.compile(expr.args[0])
            amt, _aw, _ak = self.compile(expr.args[1])
            mask = (1 << w) - 1
            if fn == "shift_left":
                return (lambda values: (f(values) << amt(values)) & mask), w, k
            if k == "s":
                return (
                    lambda values: (_sign(f(values), w) >> amt(values)) & mask
                ), w, k
            return (lambda values: f(values) >> amt(values)), w, k
        if fn in ("ehdl_bswap16", "ehdl_bswap32", "ehdl_bswap64"):
            bits = int(fn[len("ehdl_bswap"):])
            f, _w, _k = self.compile(expr.args[0])

            def bswap(values, bits=bits, f=f):
                raw = f(values) & ((1 << bits) - 1)
                data = raw.to_bytes(bits // 8, "little")
                return int.from_bytes(data, "big")

            return bswap, 64, "u"
        if fn in ("ehdl_udiv", "ehdl_urem"):
            fa, wa, _ka = self.compile(expr.args[0])
            fb, _wb, _kb = self.compile(expr.args[1])
            if fn == "ehdl_udiv":
                return (
                    lambda values: (fa(values) // fb(values))
                    if fb(values) else 0
                ), wa, "u"
            return (
                lambda values: (fa(values) % fb(values))
                if fb(values) else fa(values)
            ), wa, "u"
        raise self.err(f"unknown function {fn!r}")

    def _const(self, expr) -> int:
        if isinstance(expr, Lit) and expr.kind == "i":
            return expr.value
        raise self.err("expected an integer literal")

    def compile_un(self, expr: Un) -> _C:
        f, w, k = self.compile(expr.operand)
        if expr.op != "not":
            raise self.err(f"unary {expr.op!r} unsupported")
        if k == "b":
            return (lambda values: 0 if f(values) else 1), 0, "b"
        mask = (1 << w) - 1
        return (lambda values: (~f(values)) & mask), w, k

    def compile_bin(self, expr: Bin) -> _C:
        op = expr.op
        fa, wa, ka = self.compile(expr.left)
        fb, wb, kb = self.compile(expr.right)
        if op in ("and", "or", "xor"):
            if ka == "b" and kb == "b":
                table = {
                    "and": lambda a, b: a and b,
                    "or": lambda a, b: a or b,
                    "xor": lambda a, b: a != b,
                }[op]
                return (
                    lambda values: 1 if table(fa(values), fb(values)) else 0
                ), 0, "b"
            if wa != wb:
                raise self.err(
                    f"bitwise {op} width mismatch ({wa} vs {wb})"
                )
            table = {
                "and": lambda a, b: a & b,
                "or": lambda a, b: a | b,
                "xor": lambda a, b: a ^ b,
            }[op]
            return (lambda values: table(fa(values), fb(values))), wa, ka
        if op in ("=", "/=", "<", "<=", ">", ">="):
            signed = ka == "s" or kb == "s"

            def interp(f, w, k):
                if signed and k != "i":
                    return lambda values: _sign(f(values), w)
                return f

            ia, ib = interp(fa, wa, ka), interp(fb, wb, kb)
            if ka not in ("i", "b") and kb not in ("i", "b") and wa != wb:
                raise self.err(
                    f"comparison {op} width mismatch ({wa} vs {wb})"
                )
            table = {
                "=": lambda a, b: a == b,
                "/=": lambda a, b: a != b,
                "<": lambda a, b: a < b,
                "<=": lambda a, b: a <= b,
                ">": lambda a, b: a > b,
                ">=": lambda a, b: a >= b,
            }[op]
            return (
                lambda values: 1 if table(ia(values), ib(values)) else 0
            ), 0, "b"
        if op == "&":
            width = wa + wb
            return (
                lambda values: (fa(values) << wb) | fb(values)
            ), width, "u"
        if op in ("+", "-"):
            if ka == "i":
                width, kind = wb, kb
            elif kb == "i":
                width, kind = wa, ka
            elif wa != wb:
                raise self.err(f"{op} width mismatch ({wa} vs {wb})")
            else:
                width, kind = wa, "s" if (ka == "s" or kb == "s") else "u"
            mask = (1 << width) - 1
            if kind == "s":
                ia = (lambda values: _sign(fa(values), wa)) \
                    if ka == "s" else fa
                ib = (lambda values: _sign(fb(values), wb)) \
                    if kb == "s" else fb
            else:
                ia, ib = fa, fb
            if op == "+":
                return (lambda values: (ia(values) + ib(values)) & mask), \
                    width, kind
            return (lambda values: (ia(values) - ib(values)) & mask), \
                width, kind
        if op == "*":
            width = wa + wb
            mask = (1 << width) - 1
            return (lambda values: (fa(values) * fb(values)) & mask), \
                width, "u"
        raise self.err(f"operator {op!r} unsupported")

    def compile_when(self, expr: WhenElse,
                     expect_width: Optional[int]) -> _C:
        arms = []
        width, kind = expect_width, "u"
        for value, cond in expr.arms:
            fv, wv, kv = self.compile(value, expect_width)
            fc, _wc, kc = self.compile(cond)
            if kc != "b":
                raise self.err("when-condition is not boolean")
            arms.append((fv, fc))
            if not isinstance(value, OthersZero):
                width, kind = wv, kv
        fo, wo, _ko = self.compile(expr.otherwise, width)
        if width is None:
            width = wo

        def run(values):
            for fv, fc in arms:
                if fc(values):
                    return fv(values)
            return fo(values)

        return run, width, kind


# -- statement compilation ---------------------------------------------------


def _compile_conc(model: Elaborated, scope: Dict[str, Ref],
                  stmt: ConcAssign, where: str) -> CombNode:
    comp = _Compiler(model, scope, f"{where}:{stmt.line}")
    target = comp.ref_of(stmt.target)
    fn, width, kind = comp.compile(stmt.value, expect_width=target.width)
    if width not in (0, target.width):
        raise comp.err(
            f"assignment width mismatch: target {target.width} bits, "
            f"expression {width} bits"
        )
    node_fn = lambda values, fn=fn, target=target: \
        target.set(values, fn(values))
    return CombNode(node_fn, comp.reads, {target.net},
                    label=f"{where}:{stmt.line}",
                    stmt=stmt, scope=scope, where=f"{where}:{stmt.line}")


def _compile_seq(comp: "_Compiler", body) -> Callable:
    steps = []
    for stmt in body:
        if isinstance(stmt, SeqAssign):
            target = comp.ref_of(stmt.target)
            fn, width, _kind = comp.compile(stmt.value,
                                            expect_width=target.width)
            if width not in (0, target.width):
                raise comp.err(
                    f"line {stmt.line}: sequential assignment width "
                    f"mismatch: target {target.width}, expr {width}"
                )

            def assign(values, pending, fn=fn, target=target):
                current = pending.get(target.net)
                if current is None:
                    current = values[target.net]
                keep = current & ~(target.mask << target.low)
                pending[target.net] = keep | (
                    (fn(values) & target.mask) << target.low
                )

            steps.append(assign)
        elif isinstance(stmt, IfStmt):
            branches = []
            for cond, cbody in stmt.branches:
                fc, _w, kc = comp.compile(cond)
                if kc != "b":
                    raise comp.err(f"line {stmt.line}: non-boolean if")
                branches.append((fc, _compile_seq(comp, cbody)))
            otherwise = _compile_seq(comp, stmt.otherwise)

            def run_if(values, pending, branches=branches,
                       otherwise=otherwise):
                for fc, fbody in branches:
                    if fc(values):
                        fbody(values, pending)
                        return
                otherwise(values, pending)

            steps.append(run_if)
        else:  # pragma: no cover - parser only yields the two kinds
            raise comp.err(f"unsupported statement {type(stmt).__name__}")

    def run(values, pending, steps=steps):
        for step in steps:
            step(values, pending)

    return run


# -- hierarchy ---------------------------------------------------------------


def _actual_ref(comp: _Compiler, actual) -> Ref:
    return comp.ref_of(actual)


def _elaborate_arch(model: Elaborated, design: DesignFile,
                    entity: EntityDecl, arch: Architecture,
                    scope: Dict[str, Ref], generics: Dict[str, object],
                    path: str, factory, context) -> None:
    for decl in arch.signals:
        if decl.name in scope:
            raise RtlElabError(
                f"{path}: signal {decl.name!r} collides with a port"
            )
        scope[decl.name] = model.new_net(f"{path}.{decl.name}", decl.width)
    for stmt in arch.statements:
        if isinstance(stmt, ConcAssign):
            model.nodes.append(_compile_conc(model, scope, stmt, path))
        elif isinstance(stmt, Process):
            comp = _Compiler(model, scope, f"{path}:process@{stmt.line}")
            fn = _compile_seq(comp, stmt.body)
            model.procs.append(
                ClockedProcess(fn, label=f"{path}:process@{stmt.line}",
                               body=stmt.body, scope=scope,
                               where=f"{path}:process@{stmt.line}")
            )
        elif isinstance(stmt, Instance):
            _elaborate_instance(model, design, stmt, scope, path,
                                factory, context)
        else:  # pragma: no cover
            raise RtlElabError(f"{path}: unsupported statement")


def _elaborate_instance(model: Elaborated, design: DesignFile,
                        inst: Instance, scope: Dict[str, Ref],
                        path: str, factory, context) -> None:
    child_entity = design.entities.get(inst.entity)
    if child_entity is None:
        raise RtlElabError(
            f"{path}:{inst.line}: instance {inst.label!r} references "
            f"undeclared entity {inst.entity!r}"
        )
    child_arch = design.architectures.get(inst.entity)
    if child_arch is None:
        raise RtlElabError(
            f"{path}:{inst.line}: entity {inst.entity!r} has no "
            "architecture"
        )
    generics = {g.name: g.default for g in child_entity.generics}
    for formal, value in inst.generic_map.items():
        if formal not in generics:
            raise RtlElabError(
                f"{path}:{inst.line}: unknown generic {formal!r} on "
                f"{inst.entity!r}"
            )
        generics[formal] = value
    comp = _Compiler(model, scope, f"{path}:{inst.line}")
    child_scope: Dict[str, Ref] = {}
    bound = set()
    for formal, actual in inst.port_map:
        port = child_entity.port(formal)
        if port is None:
            raise RtlElabError(
                f"{path}:{inst.line}: entity {inst.entity!r} has no "
                f"port {formal!r}"
            )
        if formal in bound:
            raise RtlElabError(
                f"{path}:{inst.line}: port {formal!r} mapped twice"
            )
        bound.add(formal)
        ref = _actual_ref(comp, actual)
        if ref.width != port.width:
            raise RtlElabError(
                f"{path}:{inst.line}: port {inst.entity}.{formal} is "
                f"{port.width} bits but the actual is {ref.width} bits"
            )
        child_scope[formal] = ref
    for port in child_entity.ports:
        if port.name not in bound:
            raise RtlElabError(
                f"{path}:{inst.line}: port {inst.entity}.{port.name} "
                "is unconnected"
            )
    child_path = f"{path}/{inst.label}"
    if child_arch.is_primitive:
        if factory is None:
            raise RtlElabError(
                f"{child_path}: behavioural entity {inst.entity!r} needs "
                "a primitive factory"
            )
        primitive = factory(child_entity, generics, child_scope, context)
        model.primitives.append(primitive)
        previous = None
        for node in primitive.nodes():
            node.after = previous
            node.label = node.label or child_path
            model.nodes.append(node)
            previous = node
    else:
        _elaborate_arch(model, design, child_entity, child_arch,
                        child_scope, generics, child_path, factory, context)


def _order_nodes(model: Elaborated) -> None:
    """Topologically order combinational nodes (Kahn); cycles are fatal."""
    nodes = model.nodes
    index = {id(n): i for i, n in enumerate(nodes)}
    readers: Dict[int, List[int]] = {}
    for i, node in enumerate(nodes):
        for net in node.reads:
            readers.setdefault(net, []).append(i)
    succs: List[Set[int]] = [set() for _ in nodes]
    indeg = [0] * len(nodes)
    for i, node in enumerate(nodes):
        for net in node.writes:
            for j in readers.get(net, ()):
                if j != i and j not in succs[i]:
                    succs[i].add(j)
                    indeg[j] += 1
        if node.after is not None:
            k = index[id(node.after)]
            if i not in succs[k]:
                succs[k].add(i)
                indeg[i] += 1
    ready = [i for i, d in enumerate(indeg) if d == 0]
    order: List[int] = []
    while ready:
        i = ready.pop()
        order.append(i)
        for j in succs[i]:
            indeg[j] -= 1
            if indeg[j] == 0:
                ready.append(j)
    if len(order) < len(nodes):
        stuck = [nodes[i].label for i, d in enumerate(indeg) if d > 0]
        raise RtlElabError(
            "combinational cycle through: " + ", ".join(stuck[:8])
        )
    # Levelize: longest-path ranks over the same edge set. A stable sort
    # of any topological order by rank is itself a topological order
    # (every edge strictly increases rank), so both the interpreting and
    # the compiled simulator share one canonical, levelized evaluation
    # order — which lets the compiled scheduler use the plain node index
    # as its priority key.
    rank = [0] * len(nodes)
    for i in order:
        for j in succs[i]:
            if rank[j] <= rank[i]:
                rank[j] = rank[i] + 1
    level_order = sorted(range(len(nodes)), key=lambda i: (rank[i], i))
    model.nodes = [nodes[i] for i in level_order]
    model.node_ranks = [rank[i] for i in level_order]


def elaborate(design: DesignFile, top: str, factory=None,
              context=None) -> Elaborated:
    """Flatten the hierarchy under entity ``top`` into an
    :class:`Elaborated` model ready for simulation."""
    entity = design.entities.get(top)
    if entity is None:
        raise RtlElabError(f"no entity named {top!r}")
    arch = design.architectures.get(top)
    if arch is None:
        raise RtlElabError(f"entity {top!r} has no architecture")
    model = Elaborated()
    model.top_entity = entity
    scope: Dict[str, Ref] = {}
    for port in entity.ports:
        scope[port.name] = model.new_net(f"top.{port.name}", port.width)
    model.top_scope = scope
    _elaborate_arch(model, design, entity, arch, scope, {}, top,
                    factory, context)
    _order_nodes(model)
    return model

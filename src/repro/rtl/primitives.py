"""Python models for the behavioural entities in the emitted design.

``emit_vhdl`` leaves three kinds of blocks behavioural (empty
architecture bodies): the per-map port blocks, the helper blocks, and
the async FIFOs of the NIC-shell boundary. During elaboration each
instance is bound to one of the primitives here, which evaluate as
combinational nodes against the shared value table while mutating the
*same* backing objects the software legs use (``MapSet``, packet
shadows), so the differential harness compares ends states directly.

The map block contributes one node per channel — in channel order, with
an explicit ordering edge — plus the atomic port last; the topological
scheduler guarantees each runs exactly once per cycle, making the
mutation-on-evaluate model sound.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ebpf import isa
from ..ebpf.helpers import helper_impl, helper_spec
from ..ebpf.maps import MapError, MapSet
from ..ebpf.xdp import AddressSpace, XdpContext
from .elab import CombNode, Ref
from .errors import RtlElabError, RtlSimError

MASK32 = (1 << 32) - 1
MASK64 = (1 << 64) - 1
NEG1 = MASK64

CH_OP_LOOKUP = 0x1
CH_OP_UPDATE = 0x2
CH_OP_DELETE = 0x3
CH_OP_LOAD = 0x4
CH_OP_STORE = 0x5
CH_OP_REDIRECT = 0x6

_CH_OP_NAMES = {
    CH_OP_LOOKUP: "lookup",
    CH_OP_UPDATE: "update",
    CH_OP_DELETE: "delete",
    CH_OP_LOAD: "load",
    CH_OP_STORE: "store",
    CH_OP_REDIRECT: "redirect",
}


def _sign16(value: int) -> int:
    return value - 0x10000 if value & 0x8000 else value


class PacketShadow:
    """Runner-side state of the packet currently in flight.

    The pipeline carries only the first ``wmax`` packet bytes; anything
    beyond rides here, along with metadata the state vector has no bits
    for (the original length, the redirect target).
    """

    def __init__(self, frame: bytes) -> None:
        self.orig_len = len(frame)
        self.tail = bytearray()
        self.redirect_ifindex: Optional[int] = None


class RtlContext:
    """Shared environment of one RTL simulation run: the maps, the
    frozen clock, and the shadow of the in-flight packet."""

    def __init__(self, maps: MapSet, time_ns: int = 0) -> None:
        self.maps = maps
        self.time_ns = time_ns
        self.trace_events: List[tuple] = []
        self._prandom_state = 0x5EED
        self.packet: Optional[PacketShadow] = None
        # Primitive activity: executed map-channel/atomic/helper requests
        # by kind, for the RTL telemetry counters.
        self.op_counts: Dict[str, int] = {}

    def count_op(self, kind: str) -> None:
        self.op_counts[kind] = self.op_counts.get(kind, 0) + 1

    def next_prandom(self) -> int:
        self._prandom_state = (
            self._prandom_state * 1103515245 + 12345
        ) & MASK32
        return self._prandom_state


def _bytes_le(value: int, nbytes: int) -> bytes:
    return (value & ((1 << (8 * nbytes)) - 1)).to_bytes(nbytes, "little")


class MapBlock:
    """Models a ``{prog}_map_{fd}`` entity against the shared MapSet."""

    def __init__(self, entity_name: str, generics: Dict[str, object],
                 ports: Dict[str, Ref], context: RtlContext) -> None:
        self.name = entity_name
        self.fd = int(generics["g_fd"])
        self.key_bytes = int(generics["g_key_bytes"])
        self.value_bytes = int(generics["g_value_bytes"])
        self.ports = ports
        self.context = context
        # Elaboration-time kind check: the netlist's idea of the map's
        # type (G_MAP_TYPE, from the emitted entity) must match the map
        # object actually bound in the MapSet — an LRU block driving a
        # plain hash (or vice versa) would silently drop the recency
        # semantics the serialization window exists to protect. Absent
        # generic (pre-G_MAP_TYPE netlists) skips the check.
        self.map_type = generics.get("g_map_type")
        if self.map_type is not None and self.fd in context.maps:
            actual = context.maps[self.fd].spec.map_type
            if actual != self.map_type:
                raise RtlElabError(
                    f"{entity_name}: G_MAP_TYPE {self.map_type!r} does not "
                    f"match bound map kind {actual!r} (fd {self.fd})"
                )
        self.n_channels = 0
        while f"ch{self.n_channels}_req" in ports:
            self.n_channels += 1
        if not self.n_channels:
            raise RtlElabError(f"{entity_name}: no channels")
        # Port refs bound once; _channel runs on the simulation hot
        # path and must not re-do name lookups per call.
        self._chan_refs = [
            tuple(ports.get(f"ch{c}_{nm}") for nm in
                  ("req", "op", "addr", "key", "wdata", "rdata", "oob"))
            for c in range(self.n_channels)
        ]
        # Flattened bit positions for the channel fields: _channel runs
        # on the simulation hot path (the idle branch on most calls)
        # and must be a handful of int ops, not Ref method calls.
        self._chan_hot = []
        for refs in self._chan_refs:
            req, op, addr, key, wdata, rdata, oob = refs
            self._chan_hot.append(
                ((req.net, req.low, req.mask),
                 (op.net, op.low, op.mask),
                 (addr.net, addr.low, addr.mask),
                 (key.net, key.low, key.mask),
                 (wdata.net, wdata.low, wdata.mask),
                 (rdata.net, rdata.low, rdata.mask,
                  rdata.mask << rdata.low),
                 (oob.net, oob.low, oob.mask << oob.low)))

    def _map(self):
        maps = self.context.maps
        if self.fd not in maps:
            raise RtlSimError(f"{self.name}: fd {self.fd} not in MapSet")
        return maps[self.fd]

    def _decode_addr(self, addr: int, size: int):
        """A map-value address valid for this fd, or None (→ oob)."""
        if not AddressSpace.is_map_value(addr):
            return None
        if AddressSpace.map_fd_of(addr) != self.fd:
            return None
        offset = AddressSpace.map_offset_of(addr)
        if offset + size > len(self._map().storage):
            return None
        return offset

    def _channel(self, c: int, values: List[int]) -> None:
        ((rq_n, rq_l, rq_m), (op_n, op_l, op_m), (ad_n, ad_l, ad_m),
         (ky_n, ky_l, ky_m), (wd_n, wd_l, wd_m),
         (rd_n, rd_l, rd_m, rd_sm), (ob_n, ob_l, ob_sm)) = \
            self._chan_hot[c]
        if (values[rq_n] >> rq_l) & rq_m != 1:
            values[rd_n] &= ~rd_sm
            values[ob_n] &= ~ob_sm
            return
        op = (values[op_n] >> op_l) & op_m
        code, size = op & 0xF, op >> 4
        self.context.count_op(_CH_OP_NAMES.get(code, "unknown"))
        addr = (values[ad_n] >> ad_l) & ad_m
        key_raw = (values[ky_n] >> ky_l) & ky_m
        bpf_map = self._map()
        result, out_of_bounds = 0, 0
        if code == CH_OP_LOOKUP:
            key = _bytes_le(key_raw, bpf_map.key_size)
            slot = bpf_map.lookup_slot(key)
            if slot is not None:
                result = AddressSpace.map_value_addr(
                    self.fd, bpf_map.value_addr(slot)
                )
        elif code == CH_OP_UPDATE:
            key = _bytes_le(key_raw, bpf_map.key_size)
            value = _bytes_le((values[wd_n] >> wd_l) & wd_m,
                              bpf_map.value_size)
            try:
                bpf_map.update(key, value, flags=addr & 0x3)
            except MapError:
                result = NEG1
        elif code == CH_OP_DELETE:
            key = _bytes_le(key_raw, bpf_map.key_size)
            slot = bpf_map.lookup_slot(key)
            deleted = False
            if slot is not None:
                try:
                    deleted = bpf_map.delete(key)
                except MapError:
                    deleted = False
            result = 0 if deleted else NEG1
        elif code == CH_OP_REDIRECT:
            slot = None
            if bpf_map.key_size == 4:
                key = _bytes_le(key_raw, 4)
                slot = bpf_map.lookup_slot(key)
            if slot is None:
                result = addr & MASK32  # miss: fall back to r3's action
            else:
                value = bpf_map.lookup(key)
                shadow = self.context.packet
                if shadow is not None:
                    shadow.redirect_ifindex = int.from_bytes(
                        value[:4], "little"
                    )
                result = 4  # XDP_REDIRECT
        elif code == CH_OP_LOAD:
            offset = self._decode_addr(addr, size)
            if offset is None:
                out_of_bounds = 1
            else:
                result = int.from_bytes(
                    bpf_map.storage[offset:offset + size], "little"
                )
        elif code == CH_OP_STORE:
            offset = self._decode_addr(addr, size)
            if offset is None:
                out_of_bounds = 1
            else:
                bpf_map.storage[offset:offset + size] = _bytes_le(
                    (values[wd_n] >> wd_l) & wd_m, size
                )
        else:
            raise RtlSimError(f"{self.name}: channel op {op:#x}")
        values[rd_n] = values[rd_n] & ~rd_sm | (result & rd_m) << rd_l
        values[ob_n] = values[ob_n] & ~ob_sm | (out_of_bounds & 1) << ob_l

    def _atomic(self, values: List[int]) -> None:
        p = self.ports
        old_ref, oob = p["at_old"], p["at_oob"]
        if p["at_req"].get(values) != 1:
            old_ref.set(values, 0)
            oob.set(values, 0)
            return
        op = p["at_op"].get(values)
        self.context.count_op("atomic")
        size = p["at_size"].get(values)
        addr = p["at_addr"].get(values)
        src = p["at_wdata"].get(values)
        mask = (1 << (8 * size)) - 1
        offset = self._decode_addr(addr, size)
        if offset is None:
            old_ref.set(values, 0)
            oob.set(values, 1)
            return
        bpf_map = self._map()
        old = int.from_bytes(bpf_map.storage[offset:offset + size],
                             "little")
        src_val = src & mask
        if op == isa.ATOMIC_XCHG:
            new = src_val
        elif op == isa.ATOMIC_CMPXCHG:
            expected = p["at_expected"].get(values) & mask
            new = src_val if old == expected else old
        else:
            base = op & ~isa.BPF_FETCH
            if base == isa.ATOMIC_ADD:
                new = (old + src_val) & mask
            elif base == isa.ATOMIC_OR:
                new = old | src_val
            elif base == isa.ATOMIC_AND:
                new = old & src_val
            elif base == isa.ATOMIC_XOR:
                new = old ^ src_val
            else:
                raise RtlSimError(f"{self.name}: atomic op {op:#x}")
        bpf_map.storage[offset:offset + size] = new.to_bytes(size, "little")
        old_ref.set(values, old)
        oob.set(values, 0)

    def nodes(self) -> List[CombNode]:
        p = self.ports
        out: List[CombNode] = []
        for c in range(self.n_channels):
            reads = {p[f"ch{c}_{f}"].net
                     for f in ("req", "op", "addr", "key", "wdata")}
            writes = {p[f"ch{c}_rdata"].net, p[f"ch{c}_oob"].net}
            out.append(CombNode(
                lambda values, c=c: self._channel(c, values),
                reads, writes, label=f"{self.name}.ch{c}",
                gate=p[f"ch{c}_req"],
                idle=[p[f"ch{c}_rdata"], p[f"ch{c}_oob"]],
            ))
        if "at_req" in p:
            reads = {p[f"at_{f}"].net
                     for f in ("req", "op", "size", "addr", "wdata",
                               "expected")}
            writes = {p["at_old"].net, p["at_oob"].net}
            out.append(CombNode(self._atomic, reads, writes,
                                label=f"{self.name}.atomic",
                                gate=p["at_req"],
                                idle=[p["at_old"], p["at_oob"]]))
        # Quiescent host/flush outputs (host port unused in verification).
        tied = [p[name] for name in ("flush_out", "host_rdata")
                if name in p]
        if tied:
            def tie(values, tied=tied):
                for ref in tied:
                    ref.set(values, 0)

            out.append(CombNode(tie, set(), {r.net for r in tied},
                                label=f"{self.name}.tie", idle=tied))
        return out


class _HelperFacade:
    """Duck-typed Vm for ``helper_impl`` callables, backed by the RTL
    block's input ports (mirrors ``hwsim.sim._HelperContext``)."""

    def __init__(self, context: RtlContext, ctx: XdpContext,
                 stack_layout: List, stack_value: int) -> None:
        self._context = context
        self.maps = context.maps
        self.ctx = ctx
        self.time_ns = context.time_ns
        self.trace_events = context.trace_events
        self._stack_layout = stack_layout  # [(offset, size, low_bit)]
        self._stack_value = stack_value

    def next_prandom(self) -> int:
        return self._context.next_prandom()

    def read_bytes(self, addr: int, size: int) -> bytes:
        if AddressSpace.is_stack(addr):
            off = addr - AddressSpace.STACK_BASE
            for r_off, r_size, low in self._stack_layout:
                if r_off <= off and off + size <= r_off + r_size:
                    shift = low + 8 * (off - r_off)
                    raw = (self._stack_value >> shift) & \
                        ((1 << (8 * size)) - 1)
                    return raw.to_bytes(size, "little")
            raise RtlSimError(
                f"helper read of stack [{off}:{off + size}] outside the "
                "carried layout"
            )
        if AddressSpace.is_packet(addr):
            off = addr - self.ctx.data
            if off < 0 or off + size > len(self.ctx.packet):
                raise RtlSimError("helper packet read out of bounds")
            return bytes(self.ctx.packet[off:off + size])
        if AddressSpace.is_map_value(addr):
            fd = AddressSpace.map_fd_of(addr)
            offset = AddressSpace.map_offset_of(addr)
            return bytes(self.maps[fd].storage[offset:offset + size])
        raise RtlSimError(f"helper read from unmapped address {addr:#x}")


class HelperBlock:
    """Models a helper entity: one combinational node that runs the
    shared helper implementation when requested."""

    def __init__(self, entity_name: str, generics: Dict[str, object],
                 ports: Dict[str, Ref], context: RtlContext) -> None:
        self.name = entity_name
        self.helper_id = int(generics["g_helper_id"])
        self.spec = helper_spec(self.helper_id)
        self.impl = helper_impl(self.helper_id)
        self.win_bytes = int(generics.get("g_win_bytes") or 0)
        self.ports = ports
        self.context = context
        # "off:size;off:size" → [(off, size, low_bit)] ascending
        self.stack_layout: List = []
        desc = generics.get("g_stack_layout") or ""
        low = 0
        for piece in str(desc).split(";"):
            if not piece:
                continue
            off_s, size_s = piece.split(":")
            self.stack_layout.append((int(off_s), int(size_s), low))
            low += 8 * int(size_s)

    def _eval(self, values: List[int]) -> None:
        p = self.ports
        if p["req"].get(values) != 1:
            p["rsp"].set(values, 0)
            return
        shadow = self.context.packet
        if shadow is None:
            raise RtlSimError(f"{self.name}: request with no packet in "
                              "flight")
        self.context.count_op(f"helper:{self.spec.name}")
        has_frame = "frame_i" in p
        packet = bytearray()
        plen = haj = 0
        if has_frame:
            plen = p["plen_i"].get(values)
            haj = _sign16(p["haj_i"].get(values))
            window = _bytes_le(p["frame_i"].get(values), self.win_bytes)
            packet = bytearray(window[:min(plen, self.win_bytes)]
                               + shadow.tail)
        ctx = XdpContext(packet)
        ctx.head_adjust = haj
        ctx.tail_adjust = plen - shadow.orig_len + haj
        ctx.redirect_ifindex = shadow.redirect_ifindex
        stack_value = p["stack_i"].get(values) if "stack_i" in p else 0
        facade = _HelperFacade(self.context, ctx, self.stack_layout,
                               stack_value)
        args = [p[f"r{i}"].get(values) for i in range(1, 6)]
        result = self.impl(facade, *args) & MASK64
        p["rsp"].set(values, result)
        shadow.redirect_ifindex = ctx.redirect_ifindex
        if "frame_o" in p:
            new_packet = bytes(ctx.packet)
            win = new_packet[:self.win_bytes].ljust(self.win_bytes, b"\x00")
            p["frame_o"].set(values, int.from_bytes(win, "little"))
            p["plen_o"].set(values, len(new_packet) & 0xFFFF)
            p["haj_o"].set(values, ctx.head_adjust & 0xFFFF)
            shadow.tail = bytearray(new_packet[self.win_bytes:])

    def nodes(self) -> List[CombNode]:
        p = self.ports
        reads = {p[name].net for name in
                 ("req", "r1", "r2", "r3", "r4", "r5", "frame_i",
                  "plen_i", "haj_i", "stack_i") if name in p}
        writes = {p[name].net for name in
                  ("rsp", "frame_o", "plen_o", "haj_o") if name in p}
        return [CombNode(self._eval, reads, writes, label=self.name,
                         gate=p["req"], idle=[p["rsp"]])]


class AsyncFifo:
    """Depth-agnostic model of ``ehdl_async_fifo``: in verification both
    clocks are the same and at most one packet is in flight, so the FIFO
    degenerates to a wire (write visible the same cycle)."""

    def __init__(self, entity_name: str, generics: Dict[str, object],
                 ports: Dict[str, Ref], context: RtlContext) -> None:
        self.name = entity_name
        self.ports = ports

    def _eval(self, values: List[int]) -> None:
        p = self.ports
        wr = p["wr_en"].get(values)
        p["rd_data"].set(values, p["wr_data"].get(values))
        p["empty"].set(values, 0 if wr else 1)
        p["full"].set(values, 0)

    def nodes(self) -> List[CombNode]:
        p = self.ports
        reads = {p["wr_en"].net, p["wr_data"].net, p["rd_en"].net}
        writes = {p["rd_data"].net, p["empty"].net, p["full"].net}
        return [CombNode(self._eval, reads, writes, label=self.name,
                         ports=p)]


def primitive_factory(entity, generics: Dict[str, object],
                      ports: Dict[str, Ref], context: RtlContext):
    """Dispatch a behavioural entity to its Python model by its
    distinguishing generic."""
    if context is None:
        raise RtlElabError(
            f"entity {entity.name!r}: primitives need an RtlContext"
        )
    if "g_fd" in generics:
        return MapBlock(entity.name, generics, ports, context)
    if "g_helper_id" in generics:
        return HelperBlock(entity.name, generics, ports, context)
    if "g_width" in generics:
        return AsyncFifo(entity.name, generics, ports, context)
    raise RtlElabError(
        f"entity {entity.name!r} is behavioural but matches no known "
        "primitive"
    )
